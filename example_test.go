package shp_test

import (
	"fmt"
	"log"

	"shp"
)

// Example_partitionerSession shows the dynamic-graph workflow: build a
// Partitioner session once, then evolve the hypergraph with deltas and
// absorb each change with a cheap warm Repartition instead of partitioning
// from scratch.
func Example_partitionerSession() {
	// Figure 1's hypergraph: three queries over six data vertices.
	g, err := shp.FromHyperedges(6, [][]int32{{0, 1, 5}, {0, 1, 2, 3}, {3, 4, 5}})
	if err != nil {
		log.Fatal(err)
	}
	p, err := shp.NewPartitioner(g, shp.Options{K: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial fanout: %.3f\n", shp.Fanout(g, p.Assignment(), 2))

	// The graph changes: two new records arrive, a new query spans them
	// together with existing data, and one old query disappears.
	d := p.NewDelta()
	u := d.AddData(1)
	v := d.AddData(1)
	d.AddHyperedge(u, v, 4)
	d.RemoveHyperedge(0)
	if err := p.Apply(d); err != nil {
		log.Fatal(err)
	}

	// Repartition warm-starts from the previous assignment: only the
	// touched neighborhood is re-evaluated.
	res, err := p.Repartition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delta: %d queries over %d records, fanout %.3f\n",
		p.Graph().NumQueries(), p.Graph().NumData(),
		shp.Fanout(p.Graph(), res.Assignment, 2))
	// Output:
	// initial fanout: 1.667
	// after delta: 4 queries over 8 records, fanout 1.500
}

// Example_servingPlane shows the assignment serving plane: a partitioner
// embedded in a service that answers assign(vertex) lookups from an
// immutable epoch snapshot, absorbs churn in the background, and swaps
// refreshed epochs in atomically — with a hard MigrationBudget bounding
// how many records each swap may move (every move is a data copy for the
// serving fleet).
func Example_servingPlane() {
	g, err := shp.GenerateSocialEgoNets(2000, 10, 50, 0.85, 7)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := shp.NewAssignService(g, shp.AssignServiceOptions{
		Core: shp.Options{K: 8, Direct: true, Seed: 7, MigrationBudget: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	bucket, epoch, err := svc.Assign(123)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex 123 -> bucket %d (epoch %d)\n", bucket, epoch)

	// Background churn: each cycle applies a generated delta batch,
	// refines under the budget, and publishes the next epoch. Lookups
	// running concurrently would never block on this.
	churn, err := svc.NewChurn(0.03, 8)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ep, err := svc.ChurnEpoch(churn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: moved %d records (budget 64)\n", ep.ID, ep.Moved)
	}
	// Output:
	// vertex 123 -> bucket 1 (epoch 0)
	// epoch 1: moved 63 records (budget 64)
	// epoch 2: moved 20 records (budget 64)
	// epoch 3: moved 20 records (budget 64)
}
