module shp

go 1.24.0
