package shp_test

import (
	"bytes"
	"math"
	"testing"

	"shp"
)

// figure1 is the paper's running example.
func figure1(t testing.TB) *shp.Hypergraph {
	t.Helper()
	g, err := shp.FromHyperedges(6, [][]int32{{0, 1, 5}, {0, 1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstartFlow(t *testing.T) {
	g := figure1(t)
	res, err := shp.Partition(g, shp.Options{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(2); err != nil {
		t.Fatal(err)
	}
	f := shp.Fanout(g, res.Assignment, 2)
	if f < 1 || f > 3 {
		t.Fatalf("fanout %v out of range", f)
	}
	// The paper's example partition {1,2,3}/{4,5,6} achieves 5/3; SHP
	// should do at least as well.
	if f > 5.0/3.0+1e-9 {
		t.Fatalf("fanout %v worse than the paper's hand partition 5/3", f)
	}
}

func TestDirectModeFacade(t *testing.T) {
	g, err := shp.GeneratePlantedPartition(4, 50, 300, 5, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shp.Partition(g, shp.Options{K: 4, Direct: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shp.Fanout(g, res.Assignment, 4) >= shp.Fanout(g, shp.RandomAssignment(g.NumData(), 4, 3), 4) {
		t.Fatal("direct mode did not improve over random")
	}
}

func TestDistributedFacade(t *testing.T) {
	g, err := shp.GeneratePlantedPartition(4, 60, 300, 5, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shp.PartitionDistributed(g, shp.DistributedOptions{K: 4, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMessages == 0 {
		t.Fatal("distributed run reported no messages")
	}
	if err := res.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelFacade(t *testing.T) {
	g, err := shp.GeneratePlantedPartition(2, 60, 200, 4, 0.9, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := shp.PartitionMultilevel(g, shp.MultilevelConfig{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFacade(t *testing.T) {
	g := figure1(t)
	a := shp.Assignment{0, 0, 0, 1, 1, 1}
	if f := shp.Fanout(g, a, 2); math.Abs(f-5.0/3.0) > 1e-12 {
		t.Fatalf("Fanout = %v", f)
	}
	if pf := shp.PFanout(g, a, 0.5); pf <= 0 || pf > shp.Fanout(g, a, 2) {
		t.Fatalf("PFanout = %v", pf)
	}
	if c := shp.CliqueNetCut(g, a); c <= 0 {
		t.Fatalf("CliqueNetCut = %v", c)
	}
	if s := shp.SOED(g, a, 2); s != 4 {
		t.Fatalf("SOED = %v, want 4 (two cut queries with fanout 2)", s)
	}
	m := shp.Measure(g, a, 2, 0.5)
	if m.Fanout != shp.Fanout(g, a, 2) || m.Imbalance != 0 {
		t.Fatalf("Measure = %+v", m)
	}
}

func TestIOFacadeRoundTrip(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if err := shp.WriteHMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := shp.ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("hmetis round trip lost edges")
	}
	buf.Reset()
	if err := shp.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := shp.ReadEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	a := shp.Assignment{0, 1, 0, 1, 0, 1}
	if err := shp.WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := shp.ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != a[i] {
			t.Fatal("assignment round trip mismatch")
		}
	}
}

func TestMultiDimFacade(t *testing.T) {
	g, err := shp.GeneratePowerLawBipartite(200, 300, 1500, 2.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumData())
	for i := range loads {
		loads[i] = 1
	}
	res, err := shp.PartitionMultiDim(g, shp.MultiDimOptions{K: 3, Loads: [][]float64{loads}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestShardingFacade(t *testing.T) {
	g, err := shp.GenerateSocialEgoNets(500, 8, 50, 0.85, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shp.Partition(g, shp.Options{K: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	c, err := shp.NewCluster(8, res.Assignment, shp.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	m := c.ReplayQueries(g, 11, 1)
	if m.AvgFanout <= 0 || m.AvgLat <= 0 {
		t.Fatalf("measurement empty: %+v", m)
	}
	rows := shp.LatencyVsFanout(shp.LatencyModel{}, 5, 500, 12)
	if len(rows) != 5 {
		t.Fatal("LatencyVsFanout row count wrong")
	}
}

func TestObjectiveConstantsExposed(t *testing.T) {
	g := figure1(t)
	for _, obj := range []shp.Objective{shp.ObjPFanout, shp.ObjFanout, shp.ObjCliqueNet} {
		if _, err := shp.Partition(g, shp.Options{K: 2, Objective: obj, Seed: 1}); err != nil {
			t.Fatalf("objective %v: %v", obj, err)
		}
	}
	for _, mode := range []shp.PairingMode{shp.PairHistogram, shp.PairSimple, shp.PairExact} {
		if _, err := shp.Partition(g, shp.Options{K: 2, Pairing: mode, Seed: 1}); err != nil {
			t.Fatalf("pairing %v: %v", mode, err)
		}
	}
}

func TestPruneFacade(t *testing.T) {
	g, err := shp.FromHyperedges(3, [][]int32{{0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := shp.PruneTrivialQueries(g, 2)
	if p.NumQueries() != 1 {
		t.Fatalf("prune kept %d queries", p.NumQueries())
	}
}
