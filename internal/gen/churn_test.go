package gen

import (
	"testing"
)

func TestChurnBatchesApplyCleanly(t *testing.T) {
	g, err := SocialEgoNets(2000, 10, 50, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	startQ, startD := g.NumQueries(), g.NumData()
	startE := g.NumEdges()
	c, err := NewChurn(g, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 8; batch++ {
		d, err := c.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if d.Empty() {
			t.Fatalf("batch %d is empty", batch)
		}
		if err := g.ApplyDelta(d); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	if g.NumQueries() <= startQ {
		t.Fatal("churn never added hyperedges")
	}
	if g.NumData() <= startD {
		t.Fatal("churn never added data vertices at 5% churn")
	}
	// Replacement keeps the live edge volume in the same ballpark.
	if e := g.NumEdges(); e < startE/2 || e > startE*2 {
		t.Fatalf("edge volume drifted from %d to %d", startE, e)
	}
}

func TestChurnDetectsUnappliedDelta(t *testing.T) {
	g, err := PlantedPartition(4, 100, 300, 4, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChurn(g, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	// The delta was not applied: the next call must refuse.
	if _, err := c.Next(); err == nil {
		t.Fatal("Next accepted an unapplied predecessor")
	}
}

func TestChurnDeterminism(t *testing.T) {
	g1, _ := PlantedPartition(4, 200, 500, 4, 0.9, 1)
	g2 := g1.Clone()
	c1, _ := NewChurn(g1, 0.05, 7)
	c2, _ := NewChurn(g2, 0.05, 7)
	for i := 0; i < 4; i++ {
		d1, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(d1.Ops) != len(d2.Ops) {
			t.Fatalf("batch %d op counts differ", i)
		}
		for j := range d1.Ops {
			a, b := d1.Ops[j], d2.Ops[j]
			if a.Kind != b.Kind || a.Q != b.Q || a.D != b.D || a.Weight != b.Weight || len(a.Members) != len(b.Members) {
				t.Fatalf("batch %d op %d differs", i, j)
			}
		}
		if err := g1.ApplyDelta(d1); err != nil {
			t.Fatal(err)
		}
		if err := g2.ApplyDelta(d2); err != nil {
			t.Fatal(err)
		}
	}
}
