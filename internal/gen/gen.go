// Package gen synthesizes the hypergraphs the experiments run on.
//
// The paper evaluates on SNAP social/web graphs and on Darwini-generated
// Facebook-like graphs (Table 1). Neither source is available offline, so
// this package builds structural stand-ins:
//
//   - PowerLawBipartite: a Chung–Lu style bipartite graph with power-law
//     query and data degrees — the shape of the web-* and soc-* datasets.
//   - SocialEgoNets: a community-structured friendship graph (a Darwini-like
//     construction: heavy intra-community wiring plus random long-range
//     edges) turned into a hypergraph where every user is a query whose
//     hyperedge spans its friends — exactly the storage-sharding workload
//     the paper motivates ("to render a profile-page ... fetch information
//     about a user's friends").
//   - PlantedPartition: a hypergraph with ground-truth communities, used to
//     verify partitioners can recover obvious structure.
//
// What matters for reproducing the paper's qualitative results is skewed
// degrees plus exploitable locality, which these generators provide; see
// DESIGN.md for the substitution argument.
package gen

import (
	"fmt"
	"math"

	"shp/internal/hypergraph"
	"shp/internal/rng"
)

// PowerLawBipartite generates a bipartite graph with roughly numEdges
// incidences where query degrees follow a power law with the given exponent
// (typical web graphs: 2.0–2.5) and data vertices are chosen with skewed
// popularity. Duplicate incidences are removed, so the realized edge count
// is slightly below the target.
func PowerLawBipartite(numQ, numD int, numEdges int64, exponent float64, seed uint64) (*hypergraph.Bipartite, error) {
	if numQ <= 0 || numD <= 0 {
		return nil, fmt.Errorf("gen: need positive vertex counts, got %d/%d", numQ, numD)
	}
	b := hypergraph.NewBuilder(numQ, numD)
	addPowerLawQueries(b, 0, numQ, numD, numEdges, exponent, seed)
	return b.Build()
}

// addPowerLawQueries appends count queries (ids qStart..qStart+count-1)
// whose degrees follow a power law against a ~budget incidence total,
// wired to skew-popular data vertices — the tail generator shared by
// PowerLawBipartite (the whole graph) and HubPowerLawBipartite (everything
// after the pinned hubs).
func addPowerLawQueries(b *hypergraph.Builder, qStart, count, numD int, budget int64, exponent float64, seed uint64) {
	r := rng.New(seed)
	// Zipf-ish weights for query degrees.
	qw := powerWeights(count, exponent, r)
	var qwSum float64
	for _, w := range qw {
		qwSum += w
	}
	// Data popularity: milder skew (exponent + 0.5 tempers hub explosion).
	dw := powerWeights(numD, exponent+0.5, r)
	dAlias := newAlias(dw, rng.NewStream(seed, 1))

	for q := 0; q < count; q++ {
		deg := int(float64(budget) * qw[q] / qwSum)
		if deg < 2 {
			deg = 2 // degree-1 queries are pruned anyway (Sec. 4.1)
		}
		if deg > numD {
			deg = numD
		}
		for e := 0; e < deg; e++ {
			b.AddEdge(int32(qStart+q), dAlias.sample())
		}
	}
}

// HubPowerLawBipartite generates a power-law bipartite graph with a pinned
// fraction of maximum-degree hub queries: the first
// round(hubFraction·numQ) queries (at least one) each span exactly
// hubDegree distinct data vertices (hubDegree <= 0 defaults to numD/4),
// and the remaining queries draw power-law degrees against the leftover
// incidence budget, exactly like PowerLawBipartite.
//
// The preset exists to make hub-frontier refinement costs reproducible:
// whenever a member of a hub hyperedge moves, any refiner that re-walks
// dirty-query memberships pays O(hubDegree) per member per iteration,
// while the patched-accumulator engines pay O(records). Benchmarks and the
// shp2-delta experiment pin their speedups on this shape.
func HubPowerLawBipartite(numQ, numD int, numEdges int64, exponent, hubFraction float64, hubDegree int, seed uint64) (*hypergraph.Bipartite, error) {
	if numQ <= 0 || numD <= 0 {
		return nil, fmt.Errorf("gen: need positive vertex counts, got %d/%d", numQ, numD)
	}
	if hubFraction < 0 || hubFraction > 1 {
		return nil, fmt.Errorf("gen: hubFraction %v outside [0,1]", hubFraction)
	}
	if hubDegree <= 0 {
		hubDegree = numD / 4
	}
	if hubDegree > numD {
		hubDegree = numD
	}
	if hubDegree < 2 {
		hubDegree = 2
	}
	nHubs := int(hubFraction*float64(numQ) + 0.5)
	if nHubs < 1 {
		nHubs = 1
	}
	if nHubs > numQ {
		nHubs = numQ
	}
	b := hypergraph.NewBuilder(numQ, numD)
	for h := 0; h < nHubs; h++ {
		// Distinct members via a per-hub permutation: the hub degree is
		// exact, not a dedup casualty.
		perm := rng.NewStream(seed, 0x4B0B^uint64(h)+1).Perm(numD)
		for _, d := range perm[:hubDegree] {
			b.AddEdge(int32(h), int32(d))
		}
	}
	rest := numQ - nHubs
	budget := numEdges - int64(nHubs)*int64(hubDegree)
	if rest > 0 && budget > 0 {
		addPowerLawQueries(b, nHubs, rest, numD, budget, exponent, seed)
	}
	return b.Build()
}

// SocialEgoNets generates an n-user friendship graph with planted
// communities, then returns the ego-net hypergraph: user u's hyperedge spans
// u and its friends. intraProb is the fraction of each user's edges that
// stay inside its community.
func SocialEgoNets(n, avgDeg, communitySize int, intraProb float64, seed uint64) (*hypergraph.Bipartite, error) {
	if n <= 0 || avgDeg <= 0 || communitySize <= 0 {
		return nil, fmt.Errorf("gen: bad SocialEgoNets parameters n=%d avgDeg=%d communitySize=%d", n, avgDeg, communitySize)
	}
	if intraProb < 0 || intraProb > 1 {
		return nil, fmt.Errorf("gen: intraProb %v outside [0,1]", intraProb)
	}
	r := rng.New(seed)
	// Degree skew: lognormal-ish multiplier around avgDeg, matching the
	// heavy-tailed friend counts Darwini models.
	b := hypergraph.NewBuilder(n, n)
	numCommunities := (n + communitySize - 1) / communitySize
	for u := 0; u < n; u++ {
		mult := math.Exp(r.NormFloat64() * 0.6)
		deg := int(float64(avgDeg) * mult)
		if deg < 2 {
			deg = 2
		}
		if deg > n-1 {
			deg = n - 1
		}
		c := u / communitySize
		b.AddEdge(int32(u), int32(u)) // a user's page needs its own record
		for e := 0; e < deg; e++ {
			var friend int
			if r.Float64() < intraProb {
				lo := c * communitySize
				hi := lo + communitySize
				if hi > n {
					hi = n
				}
				friend = lo + r.Intn(hi-lo)
			} else {
				// Long-range edge, biased toward nearby communities the way
				// real geography/interest graphs are.
				cc := (c + 1 + r.Intn(numCommunities)) % numCommunities
				lo := cc * communitySize
				hi := lo + communitySize
				if hi > n {
					hi = n
				}
				if hi <= lo {
					continue
				}
				friend = lo + r.Intn(hi-lo)
			}
			if friend != u {
				b.AddEdge(int32(u), int32(friend))
			}
		}
	}
	return b.Build()
}

// PlantedPartition generates a hypergraph whose data vertices belong to k
// ground-truth groups; each query picks qdeg vertices from one group with
// probability purity, otherwise uniformly. purity = 1 gives fully separable
// communities (optimal fanout 1).
func PlantedPartition(k, perGroup, numQ, qdeg int, purity float64, seed uint64) (*hypergraph.Bipartite, error) {
	if k <= 0 || perGroup <= 0 || numQ <= 0 || qdeg <= 0 {
		return nil, fmt.Errorf("gen: bad PlantedPartition parameters")
	}
	if purity < 0 || purity > 1 {
		return nil, fmt.Errorf("gen: purity %v outside [0,1]", purity)
	}
	r := rng.New(seed)
	nd := k * perGroup
	b := hypergraph.NewBuilder(numQ, nd)
	for q := 0; q < numQ; q++ {
		group := r.Intn(k)
		for e := 0; e < qdeg; e++ {
			if r.Float64() < purity {
				b.AddEdge(int32(q), int32(group*perGroup+r.Intn(perGroup)))
			} else {
				b.AddEdge(int32(q), int32(r.Intn(nd)))
			}
		}
	}
	return b.Build()
}

// GroundTruth returns the planted assignment for a PlantedPartition graph.
func GroundTruth(k, perGroup int) []int32 {
	out := make([]int32, k*perGroup)
	for i := range out {
		out[i] = int32(i / perGroup)
	}
	return out
}

// powerWeights draws n weights w_i ∝ u^(1/(1-exponent)) — i.e. Pareto tails.
func powerWeights(n int, exponent float64, r *rng.RNG) []float64 {
	w := make([]float64, n)
	inv := 1 / (exponent - 1)
	for i := range w {
		u := r.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		w[i] = math.Pow(u, -inv)
		if w[i] > float64(n) {
			w[i] = float64(n) // cap hubs at n
		}
	}
	return w
}

// alias implements Walker's alias method for O(1) weighted sampling.
type alias struct {
	prob  []float64
	alias []int32
	r     *rng.RNG
}

func newAlias(weights []float64, r *rng.RNG) *alias {
	n := len(weights)
	a := &alias{prob: make([]float64, n), alias: make([]int32, n), r: r}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

func (a *alias) sample() int32 {
	i := a.r.Intn(len(a.prob))
	if a.r.Float64() < a.prob[i] {
		return int32(i)
	}
	return a.alias[i]
}
