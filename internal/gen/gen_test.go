package gen

import (
	"math"
	"testing"

	"shp/internal/core"
	"shp/internal/partition"
	"shp/internal/rng"
)

func TestPowerLawBipartiteShape(t *testing.T) {
	g, err := PowerLawBipartite(2000, 3000, 20000, 2.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 2000 || g.NumData() != 3000 {
		t.Fatalf("shape Q=%d D=%d", g.NumQueries(), g.NumData())
	}
	// Edge count should land within a factor of the target (dedup and the
	// min-degree floor move it).
	if g.NumEdges() < 8000 || g.NumEdges() > 50000 {
		t.Fatalf("edges = %d, want near 20000", g.NumEdges())
	}
	s := g.ComputeStats()
	// Power law: max degree far above average.
	if float64(s.MaxQueryDeg) < 4*s.AvgQueryDeg {
		t.Fatalf("degree distribution not skewed: max %d avg %v", s.MaxQueryDeg, s.AvgQueryDeg)
	}
}

func TestHubPowerLawBipartiteShape(t *testing.T) {
	const (
		numQ   = 2000
		numD   = 3000
		hubDeg = 1200
	)
	g, err := HubPowerLawBipartite(numQ, numD, 30000, 2.2, 0.01, hubDeg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hub fraction is pinned: exactly round(0.01*2000) = 20 queries at
	// exactly hubDeg distinct members, occupying the lowest ids.
	hubs := 0
	for q := 0; q < numQ; q++ {
		deg := g.QueryDegree(int32(q))
		switch {
		case q < 20:
			if deg != hubDeg {
				t.Fatalf("hub query %d has degree %d, want exactly %d", q, deg, hubDeg)
			}
			hubs++
		case deg >= hubDeg:
			t.Fatalf("tail query %d reached hub degree %d", q, deg)
		}
	}
	if hubs != 20 {
		t.Fatalf("%d hub queries, want 20", hubs)
	}
	// Tail stays power-law shaped: max tail degree far above the average.
	s := g.ComputeStats()
	if float64(s.MaxQueryDeg) < 4*s.AvgQueryDeg {
		t.Fatalf("degree distribution not skewed: max %d avg %v", s.MaxQueryDeg, s.AvgQueryDeg)
	}
	// Determinism.
	h, err := HubPowerLawBipartite(numQ, numD, 30000, 2.2, 0.01, hubDeg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != h.NumEdges() {
		t.Fatal("hub generator not deterministic")
	}
	if _, err := HubPowerLawBipartite(10, 10, 100, 2.0, 1.5, 0, 1); err == nil {
		t.Fatal("hubFraction > 1 should be rejected")
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, err := PowerLawBipartite(100, 200, 1000, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLawBipartite(100, 200, 1000, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("generator not deterministic")
	}
	c, err := PowerLawBipartite(100, 200, 1000, 2.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() == c.NumEdges() {
		ae, ce := a.Edges(), c.Edges()
		same := len(ae) == len(ce)
		if same {
			for i := range ae {
				if ae[i] != ce[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLawBipartite(0, 10, 100, 2.0, 1); err == nil {
		t.Fatal("expected error for zero queries")
	}
	if _, err := PowerLawBipartite(10, 0, 100, 2.0, 1); err == nil {
		t.Fatal("expected error for zero data")
	}
}

func TestSocialEgoNetsShape(t *testing.T) {
	g, err := SocialEgoNets(2000, 12, 50, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 2000 || g.NumData() != 2000 {
		t.Fatal("ego-net graph should have one query and one data vertex per user")
	}
	s := g.ComputeStats()
	if s.AvgQueryDeg < 6 || s.AvgQueryDeg > 30 {
		t.Fatalf("average ego-net size %v far from configured 12", s.AvgQueryDeg)
	}
}

func TestSocialEgoNetsCommunitiesArePartitionable(t *testing.T) {
	// The planted communities must be discoverable: SHP should beat random
	// fanout by a wide margin.
	g, err := SocialEgoNets(1600, 10, 100, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	randomF := partition.Fanout(g, partition.Random(g.NumData(), k, 1), k)
	res, err := core.Partition(g, core.Options{K: k, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := partition.Fanout(g, res.Assignment, k)
	if f > randomF*0.7 {
		t.Fatalf("SHP fanout %v vs random %v: communities not exploitable", f, randomF)
	}
}

func TestSocialEgoNetsErrors(t *testing.T) {
	if _, err := SocialEgoNets(0, 10, 10, 0.5, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := SocialEgoNets(10, 10, 10, 1.5, 1); err == nil {
		t.Fatal("expected error for intraProb > 1")
	}
}

func TestPlantedPartitionPuritySeparable(t *testing.T) {
	g, err := PlantedPartition(4, 100, 600, 5, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruth(4, 100)
	f := partition.Fanout(g, truth, 4)
	if math.Abs(f-1) > 1e-9 {
		t.Fatalf("pure planted partition should have fanout 1 under ground truth, got %v", f)
	}
}

func TestPlantedPartitionRecoverable(t *testing.T) {
	g, err := PlantedPartition(4, 100, 800, 6, 0.95, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Partition(g, core.Options{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	truthF := partition.Fanout(g, GroundTruth(4, 100), 4)
	shpF := partition.Fanout(g, res.Assignment, 4)
	if shpF > truthF*1.3 {
		t.Fatalf("SHP fanout %v far above planted optimum %v", shpF, truthF)
	}
}

func TestPlantedPartitionErrors(t *testing.T) {
	if _, err := PlantedPartition(0, 1, 1, 1, 0.5, 1); err == nil {
		t.Fatal("expected parameter error")
	}
	if _, err := PlantedPartition(2, 10, 10, 2, -0.1, 1); err == nil {
		t.Fatal("expected purity error")
	}
}

func TestAliasSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := newAlias(weights, rng.New(9))
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[a.sample()]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > want*0.1 {
			t.Fatalf("alias sampling off for weight %d: got %d want ~%v", i, counts[i], want)
		}
	}
}

func TestGroundTruthShape(t *testing.T) {
	gt := GroundTruth(3, 4)
	if len(gt) != 12 || gt[0] != 0 || gt[11] != 2 {
		t.Fatalf("ground truth = %v", gt)
	}
}
