package gen

import (
	"fmt"

	"shp/internal/hypergraph"
	"shp/internal/rng"
)

// Churn generates an endless stream of structural delta batches over a
// living hypergraph — the workload of the paper's production setting, where
// ego-nets and friendships change continuously and the partitioner is
// re-run incrementally (Section 5).
//
// Each batch removes a churn-fraction of the live hyperedges and replaces
// every one with a perturbed successor (most members kept, a few swapped
// for random vertices — the "friendships change" shape), and occasionally
// introduces brand-new data vertices that the successors then reference
// (the "new users join" shape). Batches chain: the delta returned by Next
// must be applied to the graph before the following Next call, which the
// generator verifies via the vertex counts.
type Churn struct {
	g    *hypergraph.Bipartite
	frac float64
	r    *rng.RNG
	live []int32 // live hyperedge ids (degree > 0)
	expQ int
	expD int
}

// NewChurn prepares a generator producing batches that each touch roughly
// churnFraction of g's live hyperedges. Deterministic for a fixed seed.
func NewChurn(g *hypergraph.Bipartite, churnFraction float64, seed uint64) (*Churn, error) {
	if churnFraction <= 0 || churnFraction > 1 {
		return nil, fmt.Errorf("gen: churn fraction %v outside (0, 1]", churnFraction)
	}
	c := &Churn{
		g:    g,
		frac: churnFraction,
		r:    rng.New(seed),
		expQ: g.NumQueries(),
		expD: g.NumData(),
	}
	for q := 0; q < g.NumQueries(); q++ {
		if g.QueryDegree(int32(q)) > 0 {
			c.live = append(c.live, int32(q))
		}
	}
	if len(c.live) == 0 {
		return nil, fmt.Errorf("gen: graph has no live hyperedges to churn")
	}
	return c, nil
}

// Next builds the next delta batch. The previous batch must have been
// applied to the graph already (Next reads live memberships to build the
// successor hyperedges); a count mismatch returns an error.
func (c *Churn) Next() (*hypergraph.Delta, error) {
	if c.g.NumQueries() != c.expQ || c.g.NumData() != c.expD {
		return nil, fmt.Errorf("gen: graph is %dx%d but the last delta expects %dx%d — apply it before calling Next",
			c.g.NumQueries(), c.g.NumData(), c.expQ, c.expD)
	}
	m := int(c.frac*float64(len(c.live)) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > len(c.live) {
		m = len(c.live)
	}
	d := hypergraph.NewDelta(c.expQ, c.expD)

	// New users join at a tenth of the edge-churn rate.
	nNewD := int(c.frac * 0.1 * float64(c.expD))
	newD := make([]int32, 0, nNewD)
	for i := 0; i < nNewD; i++ {
		newD = append(newD, d.AddData(1))
	}

	// Pick all removals before enqueueing successors: ids added by this
	// batch are not in the graph yet and must not be chosen for removal.
	doomed := make([]int32, 0, m)
	for i := 0; i < m; i++ {
		j := c.r.Intn(len(c.live))
		doomed = append(doomed, c.live[j])
		c.live[j] = c.live[len(c.live)-1]
		c.live = c.live[:len(c.live)-1]
	}
	for _, q := range doomed {
		members := c.g.QueryNeighbors(q) // read before the removal applies
		ms := make([]int32, 0, len(members)+1)
		for _, dv := range members {
			if c.r.Float64() < 0.25 {
				if len(newD) > 0 && c.r.Float64() < 0.3 {
					ms = append(ms, newD[c.r.Intn(len(newD))])
				} else {
					ms = append(ms, int32(c.r.Intn(c.expD)))
				}
			} else {
				ms = append(ms, dv)
			}
		}
		if len(ms) < 2 {
			ms = append(ms, int32(c.r.Intn(c.expD)))
		}
		d.RemoveHyperedge(q)
		c.live = append(c.live, d.AddHyperedge(ms...))
	}
	c.expQ += d.NewQueries()
	c.expD += d.NewData()
	return d, nil
}

// Batches generates n chained batches, applying each to the graph as it
// goes (the graph ends up in the post-trace state). Convenience for writing
// trace files and for tests.
func (c *Churn) Batches(n int) ([]*hypergraph.Delta, error) {
	out := make([]*hypergraph.Delta, 0, n)
	for i := 0; i < n; i++ {
		d, err := c.Next()
		if err != nil {
			return nil, err
		}
		if err := c.g.ApplyDelta(d); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
