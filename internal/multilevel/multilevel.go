package multilevel

import (
	"errors"
	"fmt"

	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
)

// ErrOutOfMemory reports that the configured memory budget was exceeded —
// the failure mode that keeps the real multilevel tools (Parkway, Zoltan)
// from partitioning large hypergraphs on a fixed cluster (Section 2,
// Table 3 of the paper).
var ErrOutOfMemory = errors.New("multilevel: memory budget exceeded")

// Config controls the baseline partitioner.
type Config struct {
	// K is the number of buckets (>= 1).
	K int
	// Epsilon is the allowed imbalance per bucket (default 0.05).
	Epsilon float64
	// Seed drives all randomized choices.
	Seed uint64
	// MaxHyperedge caps hyperedge size during clique-net expansion
	// (default 64). Larger hyperedges are dropped.
	MaxHyperedge int
	// MaxNeighbors caps each vertex's clique-net adjacency, keeping the
	// heaviest edges (default 128).
	MaxNeighbors int
	// CoarsestSize is the matching target for the coarsest graph
	// (default 100 vertices).
	CoarsestSize int
	// FMPasses bounds refinement passes per level (default 8; lower it for
	// a faster, lower-quality run).
	FMPasses int
	// InitialTries is the number of candidate initial splits (default 8).
	InitialTries int
	// MemoryBudget, when > 0, is the simulated per-machine memory in bytes.
	// The input hypergraph, the clique-net graph, and every coarse graph
	// must fit (the coarsest graph lives on a single machine in the real
	// distributed tools).
	MemoryBudget int64
	// MemoryChargeFactor scales the estimated footprint before the budget
	// check (default 1). Experiment harnesses running scaled-down stand-ins
	// set it to paperSize/builtSize so the memory model reflects the
	// full-scale graph the stand-in represents.
	MemoryChargeFactor float64
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.MaxHyperedge == 0 {
		c.MaxHyperedge = 64
	}
	if c.MaxNeighbors == 0 {
		c.MaxNeighbors = 128
	}
	if c.CoarsestSize == 0 {
		c.CoarsestSize = 100
	}
	if c.FMPasses == 0 {
		c.FMPasses = 8
	}
	if c.InitialTries == 0 {
		c.InitialTries = 8
	}
	if c.MemoryChargeFactor == 0 {
		c.MemoryChargeFactor = 1
	}
	return c
}

// charged applies the memory charge factor to a raw byte estimate.
func (c Config) charged(bytes int64) int64 {
	return int64(float64(bytes) * c.MemoryChargeFactor)
}

// EstimateBytes returns the simulated memory footprint the partitioner
// needs for g: the input hypergraph (the real tools hold it in RAM) plus
// the materialized clique-net graph. This is the quantity checked against
// Config.MemoryBudget, exposed so harnesses can calibrate budgets.
func EstimateBytes(g *hypergraph.Bipartite, cfg Config) int64 {
	cfg = cfg.withDefaults()
	cn := CliqueNet(g, cfg.MaxHyperedge, cfg.MaxNeighbors)
	return cfg.charged(inputBytes(g) + cn.estimatedBytes())
}

func inputBytes(g *hypergraph.Bipartite) int64 {
	return 8*g.NumEdges() + 16*int64(g.NumData()+g.NumQueries())
}

// Partition partitions the hypergraph's data vertices into K buckets by
// multilevel recursive bisection on the clique-net graph.
func Partition(g *hypergraph.Bipartite, cfg Config) (partition.Assignment, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("multilevel: K must be >= 1, got %d", cfg.K)
	}
	assignment := make(partition.Assignment, g.NumData())
	if cfg.K == 1 {
		return assignment, nil
	}
	cn := CliqueNet(g, cfg.MaxHyperedge, cfg.MaxNeighbors)
	if need := cfg.charged(inputBytes(g) + cn.estimatedBytes()); cfg.MemoryBudget > 0 && need > cfg.MemoryBudget {
		return nil, fmt.Errorf("%w: input + clique-net graph need %d bytes, budget %d",
			ErrOutOfMemory, need, cfg.MemoryBudget)
	}
	all := make([]int32, g.NumData())
	for i := range all {
		all[i] = int32(i)
	}
	idealPerBucket := float64(cn.TotalWeight()) / float64(cfg.K)
	if err := bisectRecursive(cn, all, 0, cfg.K, cfg, idealPerBucket, assignment); err != nil {
		return nil, err
	}
	return assignment, nil
}

// bisectRecursive splits `vertices` (original data ids, aligned with
// graph g's vertex ids after induction) over buckets [lo, lo+span).
func bisectRecursive(g *Graph, vertices []int32, lo int32, span int, cfg Config,
	idealPerBucket float64, assignment partition.Assignment) error {

	if span == 1 {
		for _, v := range vertices {
			assignment[v] = lo
		}
		return nil
	}
	if cfg.MemoryBudget > 0 && cfg.charged(g.estimatedBytes()) > cfg.MemoryBudget {
		return fmt.Errorf("%w: level graph needs %d bytes, budget %d",
			ErrOutOfMemory, g.estimatedBytes(), cfg.MemoryBudget)
	}
	kLeft := (span + 1) / 2
	kRight := span - kLeft
	propLeft := float64(kLeft) / float64(span)
	capW := [2]float64{
		idealPerBucket * float64(kLeft) * (1 + cfg.Epsilon),
		idealPerBucket * float64(kRight) * (1 + cfg.Epsilon),
	}

	r := rng.NewStream(cfg.Seed, uint64(lo)+uint64(span)<<32)
	hierarchy := g.coarsen(r, max(cfg.CoarsestSize, 4))
	coarsest := hierarchy.graphs[len(hierarchy.graphs)-1]
	if cfg.MemoryBudget > 0 && cfg.charged(coarsest.estimatedBytes()) > cfg.MemoryBudget {
		// The coarsest graph is gathered on one machine in the real tools.
		return fmt.Errorf("%w: coarsest graph needs %d bytes, budget %d",
			ErrOutOfMemory, coarsest.estimatedBytes(), cfg.MemoryBudget)
	}
	side := coarsest.initialBisect(r, propLeft, capW, cfg.InitialTries, cfg.FMPasses)
	for level := len(hierarchy.graphs) - 2; level >= 0; level-- {
		side = project(hierarchy.cmaps[level], side)
		hierarchy.graphs[level].refineFM(side, capW, cfg.FMPasses)
	}

	var leftIdx, rightIdx []int32
	var leftIDs, rightIDs []int32
	for i, v := range vertices {
		if side[i] == 0 {
			leftIdx = append(leftIdx, int32(i))
			leftIDs = append(leftIDs, v)
		} else {
			rightIdx = append(rightIdx, int32(i))
			rightIDs = append(rightIDs, v)
		}
	}
	if kLeft == 1 {
		for _, v := range leftIDs {
			assignment[v] = lo
		}
	} else {
		sub := g.induced(leftIdx)
		if err := bisectRecursive(sub, leftIDs, lo, kLeft, cfg, idealPerBucket, assignment); err != nil {
			return err
		}
	}
	if kRight == 1 {
		for _, v := range rightIDs {
			assignment[v] = lo + int32(kLeft)
		}
	} else {
		sub := g.induced(rightIdx)
		if err := bisectRecursive(sub, rightIDs, lo+int32(kLeft), kRight, cfg, idealPerBucket, assignment); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
