// Package multilevel implements a classical multilevel partitioner over the
// clique-net expansion of a hypergraph. It stands in for the baseline tools
// the paper compares against (hMetis/PaToH/Mondriaan single-machine,
// Zoltan/Parkway distributed): coarsen by heavy-edge matching, split the
// coarsest graph, refine with Fiduccia–Mattheyses on the way back up, and
// recurse for k-way.
//
// The package also models the Section 2 scalability limitation that
// motivates SHP: multilevel schemes materialize the clique-net graph and
// park the coarsest graph on a single machine. A configurable MemoryBudget
// triggers ErrOutOfMemory exactly where the real tools die on large
// hypergraphs, which is how the Table 3 "failed to run" entries are
// reproduced.
package multilevel

import (
	"sort"

	"shp/internal/hypergraph"
)

// Graph is an edge-weighted undirected graph in CSR form (each edge stored
// in both directions).
type Graph struct {
	n   int
	off []int64
	adj []int32
	w   []float32
	vw  []int64 // vertex weights (contracted vertex counts)
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// VertexWeight returns vertex v's weight.
func (g *Graph) VertexWeight(v int32) int64 { return g.vw[v] }

// TotalWeight returns the sum of vertex weights.
func (g *Graph) TotalWeight() int64 {
	var t int64
	for _, w := range g.vw {
		t += w
	}
	return t
}

// estimatedBytes approximates the in-memory footprint, the quantity checked
// against MemoryBudget.
func (g *Graph) estimatedBytes() int64 {
	return int64(len(g.adj))*8 + int64(g.n)*16
}

type wedge struct {
	u, v int32
	w    float32
}

// buildGraph assembles a CSR graph from an accumulated edge list (u < v),
// merging duplicates by summing weights and applying a per-vertex neighbor
// cap (keep heaviest), the standard clique-net sparsification.
func buildGraph(n int, edges []wedge, vw []int64, maxNeighbors int) *Graph {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	merged := edges[:0]
	for _, e := range edges {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.u == e.u && last.v == e.v {
				last.w += e.w
				continue
			}
		}
		merged = append(merged, e)
	}
	// Per-vertex caps: count both directions, keep each vertex's heaviest
	// maxNeighbors edges. An edge survives if either endpoint keeps it.
	if maxNeighbors > 0 {
		type ranked struct {
			idx int32
			w   float32
		}
		perVertex := make([][]ranked, n)
		for i, e := range merged {
			perVertex[e.u] = append(perVertex[e.u], ranked{int32(i), e.w})
			perVertex[e.v] = append(perVertex[e.v], ranked{int32(i), e.w})
		}
		keep := make([]bool, len(merged))
		for v := 0; v < n; v++ {
			lst := perVertex[v]
			if len(lst) > maxNeighbors {
				sort.Slice(lst, func(i, j int) bool { return lst[i].w > lst[j].w })
				lst = lst[:maxNeighbors]
			}
			for _, r := range lst {
				keep[r.idx] = true
			}
		}
		kept := merged[:0]
		for i, e := range merged {
			if keep[i] {
				kept = append(kept, e)
			}
		}
		merged = kept
	}

	g := &Graph{n: n, off: make([]int64, n+1)}
	if vw == nil {
		g.vw = make([]int64, n)
		for i := range g.vw {
			g.vw[i] = 1
		}
	} else {
		g.vw = vw
	}
	deg := make([]int64, n)
	for _, e := range merged {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
	}
	g.adj = make([]int32, g.off[n])
	g.w = make([]float32, g.off[n])
	cursor := make([]int64, n)
	copy(cursor, g.off[:n])
	for _, e := range merged {
		g.adj[cursor[e.u]] = e.v
		g.w[cursor[e.u]] = e.w
		cursor[e.u]++
		g.adj[cursor[e.v]] = e.u
		g.w[cursor[e.v]] = e.w
		cursor[e.v]++
	}
	return g
}

// CliqueNet expands the hypergraph into its clique-net graph (Lemma 2):
// every hyperedge of size <= maxHyperedge contributes a clique with edge
// weight 1 (duplicates summed). Larger hyperedges are skipped — the
// sampling/truncation heuristic the clique-net literature uses, since a
// hyperedge of size s adds s(s-1)/2 edges.
func CliqueNet(g *hypergraph.Bipartite, maxHyperedge, maxNeighbors int) *Graph {
	var edges []wedge
	for q := 0; q < g.NumQueries(); q++ {
		ns := g.QueryNeighbors(int32(q))
		if len(ns) < 2 || len(ns) > maxHyperedge {
			continue
		}
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				edges = append(edges, wedge{u: ns[i], v: ns[j], w: 1})
			}
		}
	}
	return buildGraph(g.NumData(), edges, nil, maxNeighbors)
}

// induced returns the subgraph over the given vertices (relabeled densely,
// preserving weights), used by recursive bisection.
func (g *Graph) induced(vertices []int32) *Graph {
	vmap := make([]int32, g.n)
	for i := range vmap {
		vmap[i] = -1
	}
	for i, v := range vertices {
		vmap[v] = int32(i)
	}
	var edges []wedge
	vw := make([]int64, len(vertices))
	for i, v := range vertices {
		vw[i] = g.vw[v]
		for e := g.off[v]; e < g.off[v+1]; e++ {
			u := g.adj[e]
			if nu := vmap[u]; nu >= 0 && nu > int32(i) {
				edges = append(edges, wedge{u: int32(i), v: nu, w: g.w[e]})
			}
		}
	}
	return buildGraph(len(vertices), edges, vw, 0)
}
