package multilevel

import (
	"container/heap"

	"shp/internal/rng"
)

// Fiduccia–Mattheyses 2-way refinement with lazy-invalidation priority
// queues and best-prefix rollback.

// cut returns the weighted edge cut of a 2-way assignment.
func (g *Graph) cut(side []int8) float64 {
	total := 0.0
	for v := int32(0); int(v) < g.n; v++ {
		for e := g.off[v]; e < g.off[v+1]; e++ {
			u := g.adj[e]
			if u > v && side[u] != side[v] {
				total += float64(g.w[e])
			}
		}
	}
	return total
}

// fmGain returns v's move gain: external minus internal edge weight.
func (g *Graph) fmGain(v int32, side []int8) float64 {
	gain := 0.0
	for e := g.off[v]; e < g.off[v+1]; e++ {
		if side[g.adj[e]] == side[v] {
			gain -= float64(g.w[e])
		} else {
			gain += float64(g.w[e])
		}
	}
	return gain
}

type fmEntry struct {
	v     int32
	gain  float64
	stamp int64
}

type fmHeap []fmEntry

func (h fmHeap) Len() int { return len(h) }
func (h fmHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h fmHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fmHeap) Push(x any)   { *h = append(*h, x.(fmEntry)) }
func (h *fmHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// fmPass runs one FM pass: tentatively move the best movable vertex
// (respecting balance caps), lock it, update neighbor gains, and finally
// roll back to the best prefix. Returns the cut improvement achieved.
func (g *Graph) fmPass(side []int8, w *[2]int64, capW [2]float64) float64 {
	stamps := make([]int64, g.n)
	locked := make([]bool, g.n)
	gains := make([]float64, g.n)
	var pq fmHeap
	for v := int32(0); int(v) < g.n; v++ {
		gains[v] = g.fmGain(v, side)
		pq = append(pq, fmEntry{v: v, gain: gains[v]})
	}
	heap.Init(&pq)

	type record struct {
		v    int32
		gain float64
	}
	var moves []record
	cumulative, best := 0.0, 0.0
	bestIdx := -1

	for pq.Len() > 0 {
		e := heap.Pop(&pq).(fmEntry)
		if locked[e.v] || e.stamp != stamps[e.v] {
			continue
		}
		from := side[e.v]
		to := 1 - from
		vw := g.vw[e.v]
		if float64(w[to]+vw) > capW[to] {
			continue // would unbalance; vertex stays available? no: skip permanently this pass
		}
		// Move and lock.
		side[e.v] = to
		w[from] -= vw
		w[to] += vw
		locked[e.v] = true
		cumulative += e.gain
		moves = append(moves, record{v: e.v, gain: e.gain})
		if cumulative > best+1e-12 {
			best = cumulative
			bestIdx = len(moves) - 1
		}
		// Update neighbors.
		for i := g.off[e.v]; i < g.off[e.v+1]; i++ {
			u := g.adj[i]
			if locked[u] {
				continue
			}
			if side[u] == to {
				gains[u] -= 2 * float64(g.w[i])
			} else {
				gains[u] += 2 * float64(g.w[i])
			}
			stamps[u]++
			heap.Push(&pq, fmEntry{v: u, gain: gains[u], stamp: stamps[u]})
		}
	}
	// Roll back past the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].v
		from := side[v]
		to := 1 - from
		side[v] = to
		vw := g.vw[v]
		w[from] -= vw
		w[to] += vw
	}
	return best
}

// refineFM runs FM passes until no pass improves or maxPasses is reached.
func (g *Graph) refineFM(side []int8, capW [2]float64, maxPasses int) {
	var w [2]int64
	for v := 0; v < g.n; v++ {
		w[side[v]] += g.vw[v]
	}
	for pass := 0; pass < maxPasses; pass++ {
		if g.fmPass(side, &w, capW) < 1e-12 {
			break
		}
	}
}

// initialBisect produces a balanced starting split: vertices are visited in
// randomized weight-descending order and each goes to the side with the
// larger relative deficit (deficit-driven bin packing keeps both sides at
// their targets to within one vertex weight). Best of `tries` candidates by
// cut after an FM polish.
func (g *Graph) initialBisect(r *rng.RNG, propLeft float64, capW [2]float64, tries, fmPasses int) []int8 {
	total := float64(g.TotalWeight())
	target := [2]float64{propLeft * total, (1 - propLeft) * total}
	base := g.sortedByWeightDesc()
	var bestSide []int8
	bestCut := 0.0
	order := make([]int32, len(base))
	for t := 0; t < tries; t++ {
		// Shuffle within a window so tries explore different packings while
		// staying roughly weight-descending.
		copy(order, base)
		for i := 0; i+1 < len(order); i += 2 {
			if r.Bool() {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		side := make([]int8, g.n)
		var w [2]float64
		for _, v := range order {
			d0 := (target[0] - w[0]) / (target[0] + 1)
			d1 := (target[1] - w[1]) / (target[1] + 1)
			s := 0
			if d1 > d0 {
				s = 1
			}
			side[v] = int8(s)
			w[s] += float64(g.vw[v])
		}
		g.refineFM(side, capW, fmPasses)
		c := g.cut(side)
		if bestSide == nil || c < bestCut {
			bestSide = side
			bestCut = c
		}
	}
	return bestSide
}
