package multilevel

import (
	"sort"

	"shp/internal/rng"
)

// matching pairs vertices by heavy-edge matching: visit vertices in random
// order, match each unmatched vertex to its heaviest unmatched neighbor
// (ties broken toward the lighter combined vertex weight, which keeps the
// coarse graph balanced). Returns match[v] = partner or v itself.
func (g *Graph) matching(r *rng.RNG, maxVertexWeight int64) []int32 {
	match := make([]int32, g.n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(g.n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := float32(-1)
		var bestVW int64
		for e := g.off[v]; e < g.off[v+1]; e++ {
			u := g.adj[e]
			if u == v || match[u] >= 0 {
				continue
			}
			if maxVertexWeight > 0 && g.vw[v]+g.vw[u] > maxVertexWeight {
				continue
			}
			if g.w[e] > bestW || (g.w[e] == bestW && g.vw[u] < bestVW) {
				best = u
				bestW = g.w[e]
				bestVW = g.vw[u]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	return match
}

// contract builds the coarse graph from a matching. It returns the coarse
// graph and the fine-to-coarse vertex map.
func (g *Graph) contract(match []int32) (*Graph, []int32) {
	cmap := make([]int32, g.n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := int32(0)
	for v := 0; v < g.n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if p := match[v]; p >= 0 && int(p) != v {
			cmap[p] = nc
		}
		nc++
	}
	vw := make([]int64, nc)
	for v := 0; v < g.n; v++ {
		vw[cmap[v]] += g.vw[v]
	}
	var edges []wedge
	for v := int32(0); int(v) < g.n; v++ {
		cv := cmap[v]
		for e := g.off[v]; e < g.off[v+1]; e++ {
			cu := cmap[g.adj[e]]
			if cu == cv {
				continue // internal edge disappears
			}
			if cv < cu {
				edges = append(edges, wedge{u: cv, v: cu, w: g.w[e]})
			}
		}
	}
	return buildGraph(int(nc), edges, vw, 0), cmap
}

// coarsenResult is one level of the multilevel hierarchy.
type coarsenResult struct {
	graphs []*Graph  // graphs[0] is the original, last is coarsest
	cmaps  [][]int32 // cmaps[i] maps graphs[i] vertices to graphs[i+1]
}

// coarsen builds the hierarchy until the graph has at most targetSize
// vertices or matching stops shrinking it.
func (g *Graph) coarsen(r *rng.RNG, targetSize int) *coarsenResult {
	res := &coarsenResult{graphs: []*Graph{g}}
	cur := g
	// Cap contracted vertex weight so no coarse vertex exceeds a balanced
	// bucket (standard multilevel safeguard).
	maxVW := cur.TotalWeight()/int64(targetSize) + 1
	for cur.n > targetSize {
		match := cur.matching(r, maxVW)
		coarse, cmap := cur.contract(match)
		if float64(coarse.n) > 0.95*float64(cur.n) {
			break // diminishing returns
		}
		res.graphs = append(res.graphs, coarse)
		res.cmaps = append(res.cmaps, cmap)
		cur = coarse
	}
	return res
}

// project lifts a coarse-side assignment to the finer level.
func project(cmap []int32, coarseSide []int8) []int8 {
	fine := make([]int8, len(cmap))
	for v, cv := range cmap {
		fine[v] = coarseSide[cv]
	}
	return fine
}

// sortedByWeightDesc returns vertex ids ordered by weight descending, used
// by the initial balanced split.
func (g *Graph) sortedByWeightDesc() []int32 {
	ids := make([]int32, g.n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		if g.vw[ids[i]] != g.vw[ids[j]] {
			return g.vw[ids[i]] > g.vw[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
