package multilevel

import (
	"errors"
	"math"
	"testing"

	"shp/internal/gen"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
)

func randomBipartite(tb testing.TB, seed uint64, numQ, numD, edges int) *hypergraph.Bipartite {
	tb.Helper()
	r := rng.New(seed)
	b := hypergraph.NewBuilder(numQ, numD)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestCliqueNetWeights(t *testing.T) {
	// Two hyperedges {0,1,2} and {1,2}: pair (1,2) has weight 2, pairs
	// (0,1), (0,2) weight 1.
	g, err := hypergraph.FromHyperedges(3, [][]int32{{0, 1, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	cn := CliqueNet(g, 64, 0)
	if cn.NumVertices() != 3 || cn.NumEdges() != 3 {
		t.Fatalf("clique net shape n=%d m=%d", cn.NumVertices(), cn.NumEdges())
	}
	found := false
	for e := cn.off[1]; e < cn.off[2]; e++ {
		if cn.adj[e] == 2 {
			if cn.w[e] != 2 {
				t.Fatalf("w(1,2) = %v, want 2", cn.w[e])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("edge (1,2) missing")
	}
}

func TestCliqueNetSkipsGiantHyperedges(t *testing.T) {
	he := make([]int32, 100)
	for i := range he {
		he[i] = int32(i)
	}
	g, err := hypergraph.FromHyperedges(100, [][]int32{he, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cn := CliqueNet(g, 50, 0)
	if cn.NumEdges() != 1 {
		t.Fatalf("giant hyperedge not skipped: %d edges", cn.NumEdges())
	}
}

func TestCliqueNetNeighborCap(t *testing.T) {
	// The cap bounds total memory at n*maxNeighbors edges: an edge survives
	// when either endpoint ranks it in its top maxNeighbors, so lightweight
	// vertices keep their connectivity while hubs are trimmed.
	g := randomBipartite(t, 31, 100, 50, 2000)
	capped := CliqueNet(g, 64, 5)
	uncapped := CliqueNet(g, 64, 0)
	if capped.NumEdges() > int64(capped.NumVertices()*5) {
		t.Fatalf("%d edges exceed the n*cap bound %d", capped.NumEdges(), capped.NumVertices()*5)
	}
	if capped.NumEdges() >= uncapped.NumEdges() {
		t.Fatalf("cap did not reduce edges: %d vs %d", capped.NumEdges(), uncapped.NumEdges())
	}
}

func TestMatchingIsValid(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 3, 50, 80, 400), 64, 0)
	match := g.matching(rng.New(1), 0)
	for v := 0; v < g.n; v++ {
		m := match[v]
		if m < 0 {
			t.Fatalf("vertex %d unmatched", v)
		}
		if int(m) != v && match[m] != int32(v) {
			t.Fatalf("matching not symmetric at %d", v)
		}
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 5, 40, 60, 300), 64, 0)
	match := g.matching(rng.New(2), 0)
	coarse, cmap := g.contract(match)
	if coarse.TotalWeight() != g.TotalWeight() {
		t.Fatalf("vertex weight lost: %d -> %d", g.TotalWeight(), coarse.TotalWeight())
	}
	if coarse.n >= g.n {
		t.Fatalf("contraction did not shrink: %d -> %d", g.n, coarse.n)
	}
	for v := 0; v < g.n; v++ {
		if cmap[v] < 0 || int(cmap[v]) >= coarse.n {
			t.Fatalf("cmap out of range at %d", v)
		}
	}
}

func TestCoarsenHierarchy(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 7, 200, 400, 2000), 64, 0)
	h := g.coarsen(rng.New(3), 50)
	if len(h.graphs) < 2 {
		t.Fatal("no coarsening happened")
	}
	for i := 1; i < len(h.graphs); i++ {
		if h.graphs[i].n >= h.graphs[i-1].n {
			t.Fatal("hierarchy not shrinking")
		}
	}
	last := h.graphs[len(h.graphs)-1]
	if last.n > 400 {
		t.Fatalf("coarsest still has %d vertices", last.n)
	}
}

func TestFMImprovesCut(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 11, 150, 200, 1200), 64, 0)
	r := rng.New(4)
	side := make([]int8, g.n)
	for i := range side {
		side[i] = int8(r.Intn(2))
	}
	before := g.cut(side)
	capW := [2]float64{float64(g.TotalWeight()), float64(g.TotalWeight())}
	g.refineFM(side, capW, 8)
	after := g.cut(side)
	if after > before {
		t.Fatalf("FM worsened the cut: %v -> %v", before, after)
	}
	if before > 0 && after >= before {
		t.Fatalf("FM made no progress: %v -> %v", before, after)
	}
}

func TestFMGainMatchesCutDelta(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 13, 30, 40, 200), 64, 0)
	r := rng.New(5)
	side := make([]int8, g.n)
	for i := range side {
		side[i] = int8(r.Intn(2))
	}
	for v := int32(0); int(v) < g.n; v++ {
		gain := g.fmGain(v, side)
		before := g.cut(side)
		side[v] = 1 - side[v]
		after := g.cut(side)
		side[v] = 1 - side[v]
		if math.Abs((before-after)-gain) > 1e-6 {
			t.Fatalf("vertex %d: gain %v but cut delta %v", v, gain, before-after)
		}
	}
}

func TestPartitionValidBalanced(t *testing.T) {
	g := randomBipartite(t, 17, 300, 500, 3000)
	for _, k := range []int{2, 4, 8, 5} {
		a, err := Partition(g, Config{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := partition.Imbalance(a, k); imb > 0.05+0.05 {
			t.Fatalf("k=%d: imbalance %v", k, imb)
		}
	}
}

func TestPartitionRecoversPlantedCommunities(t *testing.T) {
	g, err := gen.PlantedPartition(4, 80, 600, 5, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := partition.Fanout(g, a, 4)
	randomF := partition.Fanout(g, partition.Random(g.NumData(), 4, 9), 4)
	if f > randomF*0.6 {
		t.Fatalf("multilevel fanout %v vs random %v: failed to find planted structure", f, randomF)
	}
}

func TestMemoryBudgetTriggersOOM(t *testing.T) {
	g := randomBipartite(t, 19, 500, 800, 6000)
	_, err := Partition(g, Config{K: 4, Seed: 4, MemoryBudget: 1024})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("tiny budget should OOM, got %v", err)
	}
	// A generous budget succeeds.
	if _, err := Partition(g, Config{K: 4, Seed: 4, MemoryBudget: 1 << 30}); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

func TestPartitionK1(t *testing.T) {
	g := randomBipartite(t, 23, 20, 30, 100)
	a, err := Partition(g, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range a {
		if b != 0 {
			t.Fatal("k=1 should assign all to 0")
		}
	}
	if _, err := Partition(g, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestInducedPreservesWeights(t *testing.T) {
	g := CliqueNet(randomBipartite(t, 29, 40, 60, 300), 64, 0)
	sub := g.induced([]int32{0, 5, 10, 15, 20})
	if sub.NumVertices() != 5 {
		t.Fatal("induced size wrong")
	}
	if sub.vw[0] != g.vw[0] || sub.vw[2] != g.vw[10] {
		t.Fatal("induced vertex weights wrong")
	}
}
