// Package stats provides the small statistical toolkit the experiment
// harness needs: percentiles, online moments, histograms with exponential
// bins, and fixed-width table rendering for reproducing the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the q-th percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks. It sorts a copy; xs is not modified.
// Returns NaN for empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return percentileSorted(cp, q)
}

// Percentiles returns several percentiles in one sort.
func Percentiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	for i, q := range qs {
		out[i] = percentileSorted(cp, q)
	}
	return out
}

func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or NaN for empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Summary holds online-computed moments and extrema.
type Summary struct {
	N        int64
	Sum      float64
	SumSq    float64
	MinV     float64
	MaxV     float64
	hasValue bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.N++
	s.Sum += x
	s.SumSq += x * x
	if !s.hasValue || x < s.MinV {
		s.MinV = x
	}
	if !s.hasValue || x > s.MaxV {
		s.MaxV = x
	}
	s.hasValue = true
}

// Merge folds another summary into this one.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if !s.hasValue {
		*s = o
		return
	}
	s.N += o.N
	s.Sum += o.Sum
	s.SumSq += o.SumSq
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
}

// Mean returns the mean of recorded observations (NaN if none).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

// Variance returns the population variance (NaN if none).
func (s *Summary) Variance() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	m := s.Mean()
	v := s.SumSq/float64(s.N) - m*m
	if v < 0 {
		v = 0 // guard against floating point cancellation
	}
	return v
}

// Min returns the minimum observation (NaN if none).
func (s *Summary) Min() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.MinV
}

// Max returns the maximum observation (NaN if none).
func (s *Summary) Max() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.MaxV
}

// ExpHistogram counts observations into exponentially sized bins:
// bin i covers [base*growth^i, base*growth^(i+1)). Values below base land in
// bin 0. This mirrors the gain histograms in Section 3.4 of the paper.
type ExpHistogram struct {
	Base   float64
	Growth float64
	Counts []int64
}

// NewExpHistogram creates a histogram with the given smallest bin edge,
// growth factor (> 1), and bin count.
func NewExpHistogram(base, growth float64, bins int) *ExpHistogram {
	if base <= 0 || growth <= 1 || bins <= 0 {
		//shp:panics(constructor contract: histogram shape parameters are compile-time constants at every call site)
		panic("stats: invalid ExpHistogram parameters")
	}
	return &ExpHistogram{Base: base, Growth: growth, Counts: make([]int64, bins)}
}

// BinFor returns the bin index for value x (clamped to the valid range).
func (h *ExpHistogram) BinFor(x float64) int {
	if x < h.Base {
		return 0
	}
	bin := int(math.Log(x/h.Base) / math.Log(h.Growth))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	return bin
}

// Add records x.
func (h *ExpHistogram) Add(x float64) { h.Counts[h.BinFor(x)]++ }

// LowerEdge returns the inclusive lower edge of bin i.
func (h *ExpHistogram) LowerEdge(i int) float64 {
	return h.Base * math.Pow(h.Growth, float64(i))
}

// Total returns the number of recorded observations.
func (h *ExpHistogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Table renders rows of columns in fixed-width ASCII, the format the
// experiment harness uses to echo the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
