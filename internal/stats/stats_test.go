package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty input should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilesMatchSingle(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5}
	got := Percentiles(xs, 10, 50, 90)
	for i, q := range []float64{10, 50, 90} {
		if want := Percentile(xs, q); got[i] != want {
			t.Fatalf("Percentiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestPercentileMonotoneInQ(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := float64(a%101), float64(b%101)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Percentile(xs, qa) <= Percentile(xs, qb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		if len(xs) == 0 {
			return s.N == 0 && math.IsNaN(s.Mean())
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		if s.Min() != sorted[0] || s.Max() != sorted[len(sorted)-1] {
			return false
		}
		return math.Abs(s.Mean()-Mean(xs)) < 1e-6*(1+math.Abs(Mean(xs)))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	for i := 0; i < 10; i++ {
		a.Add(float64(i))
		all.Add(float64(i))
	}
	for i := 10; i < 25; i++ {
		b.Add(float64(i))
		all.Add(float64(i))
	}
	a.Merge(b)
	if a.N != all.N || a.Mean() != all.Mean() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged summary differs: %+v vs %+v", a, all)
	}
}

func TestSummaryMergeIntoEmpty(t *testing.T) {
	var a, b Summary
	b.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty failed: %+v", a)
	}
}

func TestExpHistogramBins(t *testing.T) {
	h := NewExpHistogram(1, 2, 8)
	if h.BinFor(0.5) != 0 {
		t.Fatal("values below base should land in bin 0")
	}
	if h.BinFor(1) != 0 || h.BinFor(1.9) != 0 {
		t.Fatal("[1,2) should be bin 0")
	}
	if h.BinFor(2) != 1 || h.BinFor(3.9) != 1 {
		t.Fatal("[2,4) should be bin 1")
	}
	if h.BinFor(1e12) != 7 {
		t.Fatal("huge values should clamp to last bin")
	}
}

func TestExpHistogramTotalAndEdges(t *testing.T) {
	h := NewExpHistogram(0.5, 2, 4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.1)
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d, want 100", h.Total())
	}
	if h.LowerEdge(0) != 0.5 || h.LowerEdge(2) != 2.0 {
		t.Fatalf("LowerEdge wrong: %v %v", h.LowerEdge(0), h.LowerEdge(2))
	}
}

func TestExpHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for growth <= 1")
		}
	}()
	NewExpHistogram(1, 1, 4)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "k", "fanout")
	tb.AddRow("enron", 8, 1.73)
	tb.AddRow("pokec", 512, 7.5)
	out := tb.String()
	if !strings.Contains(out, "enron") || !strings.Contains(out, "1.73") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table should have 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.14:   "3.14",
		314.2:  "314.2",
		0.5:    "0.5000",
		0.0001: "0.0001",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
}
