// Package rng provides a small, fast, deterministic random number generator.
//
// The partitioner must be reproducible: the paper's probabilistic swap
// protocol flips one coin per candidate vertex per iteration, and we want the
// same seed to yield the same partition regardless of goroutine scheduling.
// To that end the generator is splittable: every (seed, stream) pair is an
// independent deterministic sequence, so parallel loops derive a private
// stream per vertex or per worker instead of sharing one locked source.
//
// The core is SplitMix64 (Steele, Lea, Flood; JDK 8's SplittableRandom),
// which passes BigCrush and needs only one 64-bit word of state.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewStream returns a generator for an independent stream derived from
// (seed, stream). Distinct stream values yield statistically independent
// sequences, which makes per-vertex and per-worker determinism cheap.
func NewStream(seed, stream uint64) *RNG {
	// Mix the stream id through one splitmix step so that consecutive
	// stream ids do not produce correlated initial states.
	return &RNG{state: mix64(seed + stream*0x9E3779B97F4A7C15)}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//shp:panics(contract parity with math/rand.Intn: a non-positive bound is a caller bug)
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		//shp:panics(contract parity with math/rand.Int31n: a non-positive bound is a caller bug)
		panic("rng: Int31n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		//shp:panics(contract parity with math/rand: a zero bound is a caller bug)
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n // (2^64 - n) mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second value is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// CoinAt returns a deterministic uniform [0,1) value for a (seed, key) pair
// without allocating: the coin any party would flip for a given vertex and
// iteration. This is how the distributed and single-machine implementations
// make identical move decisions.
func CoinAt(seed, key uint64) float64 {
	return float64(mix64(seed^mix64(key))>>11) / (1 << 53)
}

// Mix combines two 64-bit values into one well-distributed value; useful for
// building CoinAt keys from (iteration, vertex) pairs.
func Mix(a, b uint64) uint64 {
	return mix64(a*0x9E3779B97F4A7C15 + b)
}
