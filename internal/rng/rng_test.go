package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams 0 and 1 produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d occurred %d times out of 70000; badly non-uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestCoinAtDeterministic(t *testing.T) {
	if CoinAt(1, 2) != CoinAt(1, 2) {
		t.Fatal("CoinAt not deterministic")
	}
	if CoinAt(1, 2) == CoinAt(1, 3) {
		t.Fatal("CoinAt identical for different keys")
	}
}

func TestCoinAtUniform(t *testing.T) {
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		c := CoinAt(99, uint64(i))
		if c < 0 || c >= 1 {
			t.Fatalf("CoinAt out of range: %v", c)
		}
		sum += c
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("CoinAt mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkCoinAt(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = CoinAt(42, uint64(i))
	}
	_ = sink
}
