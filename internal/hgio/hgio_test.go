package hgio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"shp/internal/hypergraph"
	"shp/internal/rng"
)

func TestReadHMetisBasic(t *testing.T) {
	in := "% a comment\n3 6\n1 2 6\n1 2 3 4\n4 5 6\n"
	g, err := ReadHMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 3 || g.NumData() != 6 || g.NumEdges() != 10 {
		t.Fatalf("shape Q=%d D=%d E=%d", g.NumQueries(), g.NumData(), g.NumEdges())
	}
	if !reflect.DeepEqual(g.QueryNeighbors(0), []int32{0, 1, 5}) {
		t.Fatalf("query 0 = %v", g.QueryNeighbors(0))
	}
}

func TestReadHMetisVertexWeights(t *testing.T) {
	in := "2 3 10\n1 2\n2 3\n5\n6\n7\n"
	g, err := ReadHMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.DataWeight(0) != 5 || g.DataWeight(2) != 7 {
		t.Fatal("vertex weights not parsed")
	}
}

func TestReadHMetisEdgeWeights(t *testing.T) {
	in := "2 3 1\n9 1 2\n4 2 3\n"
	g, err := ReadHMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edge-weighted parse wrong: %d edges", g.NumEdges())
	}
	if !reflect.DeepEqual(g.QueryNeighbors(0), []int32{0, 1}) {
		t.Fatalf("query 0 = %v", g.QueryNeighbors(0))
	}
	if !g.QueryWeighted() || g.QueryWeight(0) != 9 || g.QueryWeight(1) != 4 {
		t.Fatalf("hyperedge weights not parsed: %d %d", g.QueryWeight(0), g.QueryWeight(1))
	}
}

func TestHMetisQueryWeightedRoundTrip(t *testing.T) {
	g, err := hypergraph.NewBuilder(2, 3).
		AddHyperedge(0, 0, 1).AddHyperedge(1, 1, 2).
		SetQueryWeights([]int32{7, 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "2 3 1\n") {
		t.Fatalf("header should declare fmt 1: %q", buf.String())
	}
	g2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.QueryWeight(0) != 7 || g2.QueryWeight(1) != 3 {
		t.Fatal("query weight round trip failed")
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edges changed in round trip")
	}
}

func TestHMetisBothWeightsRoundTrip(t *testing.T) {
	g, err := hypergraph.NewBuilder(1, 2).
		AddHyperedge(0, 0, 1).
		SetQueryWeights([]int32{5}).
		SetDataWeights([]int32{2, 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "1 2 11\n") {
		t.Fatalf("header should declare fmt 11: %q", buf.String())
	}
	g2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.QueryWeight(0) != 5 || g2.DataWeight(0) != 2 || g2.DataWeight(1) != 3 {
		t.Fatal("fmt 11 round trip failed")
	}
}

func TestReadHMetisErrors(t *testing.T) {
	cases := []string{
		"",                  // no header
		"1\n",               // short header
		"1 2\n",             // missing hyperedge line
		"1 2\n1 5\n",        // vertex out of range
		"1 2\nx\n",          // non-numeric vertex
		"1 2 10\n1\n1\nx\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadHMetis(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestHMetisRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		b := hypergraph.NewBuilder(10, 15)
		for i := 0; i < 50; i++ {
			b.AddEdge(int32(r.Intn(10)), int32(r.Intn(15)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteHMetis(&buf, g); err != nil {
			return false
		}
		g2, err := ReadHMetis(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Edges(), g2.Edges())
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHMetisWeightedRoundTrip(t *testing.T) {
	g, err := hypergraph.NewBuilder(2, 3).
		AddHyperedge(0, 0, 1).AddHyperedge(1, 1, 2).
		SetDataWeights([]int32{2, 4, 8}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for d := int32(0); d < 3; d++ {
		if g.DataWeight(d) != g2.DataWeight(d) {
			t.Fatalf("weight mismatch at %d", d)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := hypergraph.FromHyperedges(6, [][]int32{{0, 1, 5}, {0, 1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) || g2.NumQueries() != 3 || g2.NumData() != 6 {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestEdgeListInferredSizes(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 0\n2 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 3 || g.NumData() != 5 {
		t.Fatalf("inferred Q=%d D=%d", g.NumQueries(), g.NumData())
	}
}

func TestEdgeListHeaderOverridesSizes(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("%% q=10 d=20\n0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 10 || g.NumData() != 20 {
		t.Fatalf("header sizes Q=%d D=%d", g.NumQueries(), g.NumData())
	}
}

func TestEdgeListComments(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("comments not skipped")
	}
}

func TestEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "-1 0\n", "%% q=x\n0 0\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	a := []int32{0, 3, 1, 2, 2, 0}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip: %v -> %v", a, got)
	}
}

func TestAssignmentSkipsComments(t *testing.T) {
	got, err := ReadAssignment(strings.NewReader("# header\n1\n\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("got %v", got)
	}
}
