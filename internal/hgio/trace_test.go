package hgio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"shp/internal/hypergraph"
)

func TestDeltaTraceRoundTrip(t *testing.T) {
	g, err := hypergraph.FromHyperedges(8, [][]int32{{0, 1, 2}, {2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	replay := g.Clone()

	d1 := hypergraph.NewDelta(g.NumQueries(), g.NumData())
	v := d1.AddData(2)
	d1.AddHyperedge(v, 0, 3)
	d1.RemoveHyperedge(1)
	d2 := hypergraph.NewDelta(d1.BaseQueries+d1.NewQueries(), d1.BaseData+d1.NewData())
	d2.SetDataWeight(v, 5)
	d2.AddWeightedHyperedge(3, 1, 2, v)
	deltas := []*hypergraph.Delta{d1, d2}

	var buf bytes.Buffer
	if err := WriteDeltaTrace(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadDeltaTrace(bytes.NewReader(buf.Bytes()), g.NumQueries(), g.NumData())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(deltas) {
		t.Fatalf("parsed %d batches, wrote %d", len(parsed), len(deltas))
	}

	// Applying the original and the parsed trace must produce identical
	// graphs.
	for _, d := range deltas {
		if err := g.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range parsed {
		if err := replay.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := replay.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != replay.NumQueries() || g.NumData() != replay.NumData() || g.NumEdges() != replay.NumEdges() {
		t.Fatalf("replayed graph differs: %dx%d/%d vs %dx%d/%d",
			replay.NumQueries(), replay.NumData(), replay.NumEdges(),
			g.NumQueries(), g.NumData(), g.NumEdges())
	}
	for q := 0; q < g.NumQueries(); q++ {
		if !reflect.DeepEqual(g.QueryNeighbors(int32(q)), replay.QueryNeighbors(int32(q))) {
			t.Fatalf("query %d differs after replay", q)
		}
	}
	for dv := 0; dv < g.NumData(); dv++ {
		if g.DataWeight(int32(dv)) != replay.DataWeight(int32(dv)) {
			t.Fatalf("data weight %d differs after replay", dv)
		}
	}
}

func TestDeltaTraceParsing(t *testing.T) {
	trace := `
# a comment
addq 1 0 1
rmq 0

commit
addd 3
addq 2 2 4
` // trailing batch without commit
	deltas, err := ReadDeltaTrace(strings.NewReader(trace), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d batches, want 2", len(deltas))
	}
	if deltas[1].BaseQueries != 4 || deltas[1].BaseData != 4 {
		t.Fatalf("second batch bases %d/%d", deltas[1].BaseQueries, deltas[1].BaseData)
	}
	if deltas[1].NewData() != 1 || deltas[1].NewQueries() != 1 {
		t.Fatal("second batch op counts wrong")
	}
	for _, bad := range []string{"addq 1", "rmq", "setw 1", "bogus 3", "addd x"} {
		if _, err := ReadDeltaTrace(strings.NewReader(bad), 3, 4); err == nil {
			t.Fatalf("accepted malformed line %q", bad)
		}
	}
}
