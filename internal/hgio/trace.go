package hgio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"shp/internal/hypergraph"
)

// Delta-trace format: a line-oriented text encoding of chained structural
// delta batches, for replaying graph churn through a partitioner session
// (`shp -stream trace.txt`).
//
//	# comment
//	addq <weight> <d1> <d2> ...   add a hyperedge over the given vertices
//	rmq  <q>                      remove hyperedge q
//	addd <weight>                 add a data vertex
//	setw <d> <weight>             set the weight of data vertex d
//	commit                        end of batch
//
// Ids of added vertices are implicit: they are assigned densely in op order
// exactly as Delta.AddHyperedge/AddData do, so a trace written against a
// graph with known vertex counts replays identically on any graph with the
// same counts. Later ops (and later batches) may reference earlier implicit
// ids. A trailing batch without a final commit is accepted.

// WriteDeltaTrace writes the batches in the trace format.
func WriteDeltaTrace(w io.Writer, deltas []*hypergraph.Delta) error {
	bw := bufio.NewWriter(w)
	for _, d := range deltas {
		for _, op := range d.Ops {
			switch op.Kind {
			case hypergraph.OpAddHyperedge:
				weight := op.Weight
				if weight == 0 {
					weight = 1
				}
				fmt.Fprintf(bw, "addq %d", weight)
				for _, m := range op.Members {
					fmt.Fprintf(bw, " %d", m)
				}
				fmt.Fprintln(bw)
			case hypergraph.OpRemoveHyperedge:
				fmt.Fprintf(bw, "rmq %d\n", op.Q)
			case hypergraph.OpAddData:
				fmt.Fprintf(bw, "addd %d\n", op.Weight)
			case hypergraph.OpSetDataWeight:
				fmt.Fprintf(bw, "setw %d %d\n", op.D, op.Weight)
			default:
				return fmt.Errorf("hgio: cannot serialize delta op kind %v", op.Kind)
			}
		}
		fmt.Fprintln(bw, "commit")
	}
	return bw.Flush()
}

// ReadDeltaTrace parses a trace written for a graph with the given vertex
// counts and returns the chained delta batches. Each batch's base counts
// continue where the previous batch left off, so the result can be applied
// in order with ApplyDelta (or Partitioner.Apply).
func ReadDeltaTrace(r io.Reader, baseQueries, baseData int) ([]*hypergraph.Delta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*hypergraph.Delta
	curQ, curD := baseQueries, baseData
	cur := hypergraph.NewDelta(curQ, curD)
	lineNo := 0
	atoi := func(s string) (int32, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		return int32(v), err
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("hgio: trace line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "addq":
			if len(fields) < 3 {
				return nil, bad("addq needs a weight and at least one member")
			}
			weight, err := atoi(fields[1])
			if err != nil {
				return nil, bad("bad weight")
			}
			members := make([]int32, 0, len(fields)-2)
			for _, f := range fields[2:] {
				m, err := atoi(f)
				if err != nil {
					return nil, bad("bad member id")
				}
				members = append(members, m)
			}
			cur.AddWeightedHyperedge(weight, members...)
		case "rmq":
			if len(fields) != 2 {
				return nil, bad("rmq needs one id")
			}
			q, err := atoi(fields[1])
			if err != nil {
				return nil, bad("bad query id")
			}
			cur.RemoveHyperedge(q)
		case "addd":
			if len(fields) != 2 {
				return nil, bad("addd needs a weight")
			}
			w, err := atoi(fields[1])
			if err != nil {
				return nil, bad("bad weight")
			}
			cur.AddData(w)
		case "setw":
			if len(fields) != 3 {
				return nil, bad("setw needs an id and a weight")
			}
			d, err := atoi(fields[1])
			if err != nil {
				return nil, bad("bad data id")
			}
			w, err := atoi(fields[2])
			if err != nil {
				return nil, bad("bad weight")
			}
			cur.SetDataWeight(d, w)
		case "commit":
			if len(fields) != 1 {
				return nil, bad("commit takes no arguments")
			}
			out = append(out, cur)
			curQ += cur.NewQueries()
			curD += cur.NewData()
			cur = hypergraph.NewDelta(curQ, curD)
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !cur.Empty() {
		out = append(out, cur)
	}
	return out, nil
}
