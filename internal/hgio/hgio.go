// Package hgio reads and writes hypergraphs and partition assignments.
//
// Two on-disk formats are supported:
//
//   - The hMetis/PaToH ".hgr" format used by the partitioners the paper
//     compares against: a header line "numHyperedges numVertices [fmt]"
//     followed by one line per hyperedge listing 1-indexed vertex ids.
//     fmt 10 appends one vertex-weight line per vertex after the hyperedges.
//   - A plain bipartite edge list ("q d" per line, 0-indexed) with an
//     optional "%% q=<n> d=<m>" header; without the header, sizes are
//     inferred from the maximum ids.
//
// Assignments are stored one bucket id per line, data vertex order.
package hgio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"shp/internal/hypergraph"
)

// ReadHMetis parses the hMetis hypergraph format.
func ReadHMetis(r io.Reader) (*hypergraph.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line, err := nextContentLine(sc)
	if err != nil {
		return nil, fmt.Errorf("hgio: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("hgio: malformed header %q", line)
	}
	numQ, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("hgio: bad hyperedge count: %w", err)
	}
	numD, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("hgio: bad vertex count: %w", err)
	}
	format := 0
	if len(fields) == 3 {
		format, err = strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("hgio: bad format flag: %w", err)
		}
	}
	edgeWeighted := format == 1 || format == 11
	vertexWeighted := format == 10 || format == 11

	b := hypergraph.NewBuilder(numQ, numD)
	var qWeights []int32
	if edgeWeighted {
		qWeights = make([]int32, numQ)
	}
	for q := 0; q < numQ; q++ {
		// Empty lines are valid here: they encode empty hyperedges, so only
		// comment lines are skipped (unlike the header).
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("hgio: hyperedge %d: %w", q+1, err)
		}
		fs := strings.Fields(line)
		start := 0
		if edgeWeighted {
			if len(fs) == 0 {
				return nil, fmt.Errorf("hgio: hyperedge %d: missing weight", q+1)
			}
			wv, err := strconv.Atoi(fs[0])
			if err != nil || wv < 1 {
				return nil, fmt.Errorf("hgio: hyperedge %d: bad weight %q", q+1, fs[0])
			}
			qWeights[q] = int32(wv)
			start = 1
		}
		for _, f := range fs[start:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hgio: hyperedge %d: bad vertex %q", q+1, f)
			}
			if v < 1 || v > numD {
				return nil, fmt.Errorf("hgio: hyperedge %d: vertex %d out of range [1,%d]", q+1, v, numD)
			}
			b.AddEdge(int32(q), int32(v-1))
		}
	}
	if edgeWeighted {
		b.SetQueryWeights(qWeights)
	}
	if vertexWeighted {
		weights := make([]int32, numD)
		for d := 0; d < numD; d++ {
			line, err := nextContentLine(sc)
			if err != nil {
				return nil, fmt.Errorf("hgio: vertex weight %d: %w", d+1, err)
			}
			w, err := strconv.Atoi(strings.TrimSpace(line))
			if err != nil {
				return nil, fmt.Errorf("hgio: vertex weight %d: %w", d+1, err)
			}
			weights[d] = int32(w)
		}
		b.SetDataWeights(weights)
	}
	return b.Build()
}

// WriteHMetis writes g in the hMetis format (fmt 1 with hyperedge weights,
// 10 with vertex weights, 11 with both).
func WriteHMetis(w io.Writer, g *hypergraph.Bipartite) error {
	bw := bufio.NewWriter(w)
	format := ""
	switch {
	case g.Weighted() && g.QueryWeighted():
		format = " 11"
	case g.Weighted():
		format = " 10"
	case g.QueryWeighted():
		format = " 1"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumQueries(), g.NumData(), format); err != nil {
		return err
	}
	for q := 0; q < g.NumQueries(); q++ {
		if g.QueryWeighted() {
			if _, err := fmt.Fprintf(bw, "%d ", g.QueryWeight(int32(q))); err != nil {
				return err
			}
		}
		ns := g.QueryNeighbors(int32(q))
		for i, d := range ns {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(d) + 1)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for d := 0; d < g.NumData(); d++ {
			if _, err := fmt.Fprintln(bw, g.DataWeight(int32(d))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the bipartite edge-list format.
func ReadEdgeList(r io.Reader) (*hypergraph.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var edges []hypergraph.Edge
	numQ, numD := -1, -1
	maxQ, maxD := int32(-1), int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "%%") {
			for _, f := range strings.Fields(line[2:]) {
				if v, ok := strings.CutPrefix(f, "q="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("hgio: line %d: bad q=: %w", lineNo, err)
					}
					numQ = n
				}
				if v, ok := strings.CutPrefix(f, "d="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("hgio: line %d: bad d=: %w", lineNo, err)
					}
					numD = n
				}
			}
			continue
		}
		fs := strings.Fields(line)
		if len(fs) != 2 {
			return nil, fmt.Errorf("hgio: line %d: want 'q d', got %q", lineNo, line)
		}
		q, err := strconv.Atoi(fs[0])
		if err != nil {
			return nil, fmt.Errorf("hgio: line %d: %w", lineNo, err)
		}
		d, err := strconv.Atoi(fs[1])
		if err != nil {
			return nil, fmt.Errorf("hgio: line %d: %w", lineNo, err)
		}
		if q < 0 || d < 0 {
			return nil, fmt.Errorf("hgio: line %d: negative id", lineNo)
		}
		edges = append(edges, hypergraph.Edge{Q: int32(q), D: int32(d)})
		if int32(q) > maxQ {
			maxQ = int32(q)
		}
		if int32(d) > maxD {
			maxD = int32(d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numQ < 0 {
		numQ = int(maxQ) + 1
	}
	if numD < 0 {
		numD = int(maxD) + 1
	}
	return hypergraph.FromEdges(numQ, numD, edges)
}

// WriteEdgeList writes g in the bipartite edge-list format with a size header.
func WriteEdgeList(w io.Writer, g *hypergraph.Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%% q=%d d=%d\n", g.NumQueries(), g.NumData()); err != nil {
		return err
	}
	for q := 0; q < g.NumQueries(); q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", q, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteAssignment writes one bucket id per data vertex per line.
func WriteAssignment(w io.Writer, assignment []int32) error {
	bw := bufio.NewWriter(w)
	for _, b := range assignment {
		if _, err := fmt.Fprintln(bw, b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignment reads an assignment written by WriteAssignment.
func ReadAssignment(r io.Reader) ([]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var out []int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("hgio: line %d: %w", lineNo, err)
		}
		out = append(out, int32(v))
	}
	return out, sc.Err()
}

func nextContentLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// nextLine returns the next non-comment line, preserving empty lines.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
