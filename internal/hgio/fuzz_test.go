package hgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadHMetis checks the parser never panics and that anything it
// accepts round-trips through WriteHMetis.
func FuzzReadHMetis(f *testing.F) {
	f.Add("3 6\n1 2 6\n1 2 3 4\n4 5 6\n")
	f.Add("2 3 1\n9 1 2\n4 2 3\n")
	f.Add("2 3 10\n1 2\n2 3\n5\n6\n7\n")
	f.Add("1 2 11\n5 1 2\n2\n3\n")
	f.Add("% comment\n1 1\n1\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("1 1\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadHMetis(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHMetis(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadHMetis(&buf)
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v\noutput:\n%s", err, buf.String())
		}
		if g2.NumQueries() != g.NumQueries() || g2.NumData() != g.NumData() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d,%d) -> (%d,%d,%d)",
				g.NumQueries(), g.NumData(), g.NumEdges(),
				g2.NumQueries(), g2.NumData(), g2.NumEdges())
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser never panics and accepted
// inputs round-trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 0\n1 2\n")
	f.Add("%% q=10 d=20\n0 0\n")
	f.Add("# comment\n\n0 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed edge count")
		}
	})
}

// FuzzReadAssignment checks the assignment parser never panics.
func FuzzReadAssignment(f *testing.F) {
	f.Add("1\n2\n3\n")
	f.Add("# c\n\n-1\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadAssignment(strings.NewReader(input))
	})
}
