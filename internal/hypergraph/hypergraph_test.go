package hypergraph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"shp/internal/rng"
)

// figure1 builds the paper's Figure 1 example: queries {1,2,6}, {1,2,3,4},
// {4,5,6} over six data vertices (0-indexed here).
func figure1(t *testing.T) *Bipartite {
	t.Helper()
	g, err := FromHyperedges(6, [][]int32{
		{0, 1, 5},
		{0, 1, 2, 3},
		{3, 4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure1Shape(t *testing.T) {
	g := figure1(t)
	if g.NumQueries() != 3 || g.NumData() != 6 || g.NumEdges() != 10 {
		t.Fatalf("got Q=%d D=%d E=%d", g.NumQueries(), g.NumData(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.QueryNeighbors(1); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("query 1 neighbors = %v", got)
	}
	if got := g.DataNeighbors(0); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("data 0 neighbors = %v", got)
	}
	if g.QueryDegree(0) != 3 || g.DataDegree(3) != 2 {
		t.Fatal("degree accessors wrong")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g, err := NewBuilder(1, 3).
		AddEdge(0, 1).AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("duplicates not removed: %d edges", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	if _, err := NewBuilder(1, 1).AddEdge(0, 5).Build(); err == nil {
		t.Fatal("expected error for out-of-range data id")
	}
	if _, err := NewBuilder(1, 1).AddEdge(3, 0).Build(); err == nil {
		t.Fatal("expected error for out-of-range query id")
	}
	if _, err := NewBuilder(1, 1).AddEdge(0, -1).Build(); err == nil {
		t.Fatal("expected error for negative id")
	}
}

func TestBuilderWeights(t *testing.T) {
	g, err := NewBuilder(1, 2).AddEdge(0, 0).SetDataWeights([]int32{3, 5}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.DataWeight(0) != 3 || g.DataWeight(1) != 5 {
		t.Fatal("weights not preserved")
	}
	if g.TotalDataWeight() != 8 {
		t.Fatalf("TotalDataWeight = %d", g.TotalDataWeight())
	}
	if _, err := NewBuilder(1, 2).SetDataWeights([]int32{1}).Build(); err == nil {
		t.Fatal("expected weight length error")
	}
}

func TestUnweightedDefaults(t *testing.T) {
	g := figure1(t)
	if g.Weighted() || g.DataWeight(2) != 1 || g.TotalDataWeight() != 6 {
		t.Fatal("unweighted defaults wrong")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := figure1(t)
	edges := g.Edges()
	g2, err := FromEdges(g.NumQueries(), g.NumData(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edge round trip changed the graph")
	}
}

func TestStats(t *testing.T) {
	g := figure1(t)
	s := g.ComputeStats()
	if s.NumEdges != 10 || s.MaxQueryDeg != 4 || s.MaxDataDeg != 2 || s.IsolatedData != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgQueryDeg < 3.3 || s.AvgQueryDeg > 3.4 {
		t.Fatalf("AvgQueryDeg = %v", s.AvgQueryDeg)
	}
}

func TestIsolatedDataCounted(t *testing.T) {
	g, err := FromEdges(1, 4, []Edge{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s := g.ComputeStats(); s.IsolatedData != 2 {
		t.Fatalf("IsolatedData = %d, want 2", s.IsolatedData)
	}
}

func TestPruneTrivialQueries(t *testing.T) {
	g, err := FromHyperedges(5, [][]int32{
		{0},       // degree 1: pruned
		{1, 2},    // kept
		{},        // degree 0: pruned
		{2, 3, 4}, // kept
	})
	if err != nil {
		t.Fatal(err)
	}
	p := PruneTrivialQueries(g, 2)
	if p.NumQueries() != 2 || p.NumData() != 5 || p.NumEdges() != 5 {
		t.Fatalf("pruned shape Q=%d D=%d E=%d", p.NumQueries(), p.NumData(), p.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.QueryNeighbors(1), []int32{2, 3, 4}) {
		t.Fatal("pruned adjacency wrong")
	}
	// No-op prune returns the same graph.
	if q := PruneTrivialQueries(p, 2); q != p {
		t.Fatal("no-op prune should return the receiver")
	}
}

func TestInducedByData(t *testing.T) {
	g := figure1(t)
	// Take the right half {3,4,5} (0-indexed data ids).
	sub, keptQ := g.InducedByData([]int32{3, 4, 5}, 2)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only query 2 = {3,4,5} retains >= 2 members; query 0 has one member (5),
	// query 1 has one member (3).
	if sub.NumQueries() != 1 || !reflect.DeepEqual(keptQ, []int32{2}) {
		t.Fatalf("kept queries = %v", keptQ)
	}
	if !reflect.DeepEqual(sub.QueryNeighbors(0), []int32{0, 1, 2}) {
		t.Fatalf("relabeled neighbors = %v", sub.QueryNeighbors(0))
	}
}

func TestInducedByDataPreservesWeights(t *testing.T) {
	g, err := NewBuilder(1, 3).AddHyperedge(0, 0, 1, 2).SetDataWeights([]int32{7, 8, 9}).Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.InducedByData([]int32{2, 0}, 2)
	if sub.DataWeight(0) != 9 || sub.DataWeight(1) != 7 {
		t.Fatal("induced subgraph weights wrong")
	}
}

func TestInducedByDataUnsortedSubset(t *testing.T) {
	g := figure1(t)
	sub, _ := g.InducedByData([]int32{5, 0, 1}, 2)
	if err := sub.Validate(); err != nil {
		t.Fatalf("unsorted subset produced invalid CSR: %v", err)
	}
	// Query 0 = {0,1,5} has all three members; relabeled ids {0,1,2}.
	found := false
	for q := 0; q < sub.NumQueries(); q++ {
		if sub.QueryDegree(int32(q)) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a fully contained hyperedge in the induced subgraph")
	}
}

// randomGraph builds a random bipartite graph for property tests.
func randomGraph(seed uint64, numQ, numD, edges int) *Bipartite {
	r := rng.New(seed)
	b := NewBuilder(numQ, numD)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyCSRSymmetry(t *testing.T) {
	// The two CSR directions must describe the same incidence set.
	if err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 20, 30, 100)
		if g.Validate() != nil {
			return false
		}
		var fromQ, fromD []Edge
		for q := 0; q < g.NumQueries(); q++ {
			for _, d := range g.QueryNeighbors(int32(q)) {
				fromQ = append(fromQ, Edge{int32(q), d})
			}
		}
		for d := 0; d < g.NumData(); d++ {
			for _, q := range g.DataNeighbors(int32(d)) {
				fromD = append(fromD, Edge{q, int32(d)})
			}
		}
		less := func(es []Edge) func(i, j int) bool {
			return func(i, j int) bool {
				if es[i].Q != es[j].Q {
					return es[i].Q < es[j].Q
				}
				return es[i].D < es[j].D
			}
		}
		sort.Slice(fromQ, less(fromQ))
		sort.Slice(fromD, less(fromD))
		return reflect.DeepEqual(fromQ, fromD)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegreeSumsMatchEdges(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 15, 25, 80)
		var qSum, dSum int64
		for q := 0; q < g.NumQueries(); q++ {
			qSum += int64(g.QueryDegree(int32(q)))
		}
		for d := 0; d < g.NumData(); d++ {
			dSum += int64(g.DataDegree(int32(d)))
		}
		return qSum == g.NumEdges() && dSum == g.NumEdges()
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInducedSubgraphEdgesAreSubset(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 15, 25, 80)
		r := rng.New(seed ^ 0xabcdef)
		var subset []int32
		for d := 0; d < g.NumData(); d++ {
			if r.Bool() {
				subset = append(subset, int32(d))
			}
		}
		if len(subset) == 0 {
			return true
		}
		sub, keptQ := g.InducedByData(subset, 2)
		if sub.Validate() != nil {
			return false
		}
		// Every induced incidence must exist in the parent graph.
		for q := 0; q < sub.NumQueries(); q++ {
			origQ := keptQ[q]
			for _, nd := range sub.QueryNeighbors(int32(q)) {
				origD := subset[nd]
				found := false
				for _, d := range g.QueryNeighbors(origQ) {
					if d == origD {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxQueryDegree(t *testing.T) {
	g := figure1(t)
	if g.MaxQueryDegree() != 4 {
		t.Fatalf("MaxQueryDegree = %d", g.MaxQueryDegree())
	}
	empty, _ := FromEdges(0, 0, nil)
	if empty.MaxQueryDegree() != 0 {
		t.Fatal("empty graph max degree should be 0")
	}
}

// TestMaxQueryDegreeCached verifies the cached maximum stays consistent with
// a rescan through every construction path: Build, PruneTrivialQueries, and
// InducedByData (which relabel and drop hyperedges).
func TestMaxQueryDegreeCached(t *testing.T) {
	rescan := func(g *Bipartite) int {
		maxDeg := 0
		for q := 0; q < g.NumQueries(); q++ {
			if d := g.QueryDegree(int32(q)); d > maxDeg {
				maxDeg = d
			}
		}
		return maxDeg
	}
	r := rng.New(42)
	b := NewBuilder(50, 80)
	for i := 0; i < 400; i++ {
		b.AddEdge(int32(r.Intn(50)), int32(r.Intn(80)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.MaxQueryDegree(), rescan(g); got != want {
		t.Fatalf("Build: cached %d, rescan %d", got, want)
	}
	pruned := PruneTrivialQueries(g, 4)
	if got, want := pruned.MaxQueryDegree(), rescan(pruned); got != want {
		t.Fatalf("PruneTrivialQueries: cached %d, rescan %d", got, want)
	}
	subset := make([]int32, 0, 40)
	for d := int32(0); d < 80; d += 2 {
		subset = append(subset, d)
	}
	sub, _ := g.InducedByData(subset, 2)
	if got, want := sub.MaxQueryDegree(), rescan(sub); got != want {
		t.Fatalf("InducedByData: cached %d, rescan %d", got, want)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	r := rng.New(1)
	edges := make([]Edge, 100000)
	for i := range edges {
		edges[i] = Edge{Q: int32(r.Intn(10000)), D: int32(r.Intn(20000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(10000, 20000, edges); err != nil {
			b.Fatal(err)
		}
	}
}
