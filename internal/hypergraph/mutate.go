package hypergraph

import (
	"fmt"
	"slices"
)

// Graph mutation: the delta layer for dynamic hypergraphs.
//
// Production hypergraphs churn continuously (the paper's Section 5
// "incremental updates": friendships form, ego-nets change, records are
// created), so the partitioner needs a first-class way to say "the graph
// changed" without rebuilding it. A Delta is an ordered batch of structural
// ops — add/remove hyperedge, add data vertex, set data weight — that
// ApplyDelta splices into the adjacency in place:
//
//   - The first mutation converts the packed CSR into the segment layout
//     (start/capacity/live-length per vertex over the same arenas).
//   - Removing a hyperedge zeroes its live length and deletes the query from
//     each member's reverse segment with a short memmove — O(Σ deg(d)) for
//     its members, nothing else is touched.
//   - Adding a hyperedge appends a fresh segment at the forward-arena tail
//     and appends the new query id to each member's reverse segment; a full
//     reverse segment relocates to the arena tail with doubled capacity
//     (amortized O(1) per insertion). New query ids are always larger than
//     existing ones, so reverse lists stay sorted by construction.
//   - Hyperedge membership is immutable once added: edits are expressed as
//     remove + add, which keeps every segment's capacity requirement fixed
//     at creation time (the partitioner's per-query state relies on this).
//
// Every applied op bumps Version; cached derived state (max query degree,
// memoized stats) is maintained or version-tagged so it can never go stale.

// OpKind identifies one structural delta operation.
type OpKind uint8

const (
	// OpAddHyperedge appends a new hyperedge (query vertex) spanning
	// Members. The new query id is assigned densely at build time.
	OpAddHyperedge OpKind = iota
	// OpRemoveHyperedge removes hyperedge Q: its incidences disappear and
	// the query id remains as an empty (degree-0) tombstone, so existing
	// ids never shift.
	OpRemoveHyperedge
	// OpAddData appends a new data vertex with the given Weight.
	OpAddData
	// OpSetDataWeight changes the weight of data vertex D to Weight.
	OpSetDataWeight
)

func (k OpKind) String() string {
	switch k {
	case OpAddHyperedge:
		return "add-hyperedge"
	case OpRemoveHyperedge:
		return "remove-hyperedge"
	case OpAddData:
		return "add-data"
	case OpSetDataWeight:
		return "set-data-weight"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// DeltaOp is one structural operation. Which fields are meaningful depends
// on Kind; ids of added vertices are assigned by the Delta builder (dense,
// in op order) and recorded here.
type DeltaOp struct {
	Kind OpKind
	// Q is the removed hyperedge (OpRemoveHyperedge) or the id assigned to
	// an added one (OpAddHyperedge).
	Q int32
	// D is the target data vertex (OpSetDataWeight) or the id assigned to
	// an added one (OpAddData).
	D int32
	// Weight is the data-vertex weight (OpAddData, OpSetDataWeight) or the
	// query weight of an added hyperedge (0 means 1).
	Weight int32
	// Members are the data vertices of an added hyperedge. They may
	// reference vertices added earlier in the same delta.
	Members []int32
}

// Delta is an ordered batch of structural changes built against a graph
// with known vertex counts. Ids for added vertices are assigned densely at
// build time (BaseData + #adds so far, likewise for queries), so a delta
// can be constructed, serialized, and applied without the graph in hand —
// but only to a graph whose counts match the base, in construction order.
type Delta struct {
	// BaseQueries and BaseData are the vertex counts of the graph this
	// delta was built against; ApplyDelta rejects a mismatch.
	BaseQueries int
	BaseData    int
	// Ops are applied in order.
	Ops []DeltaOp

	addQ int
	addD int
}

// NewDelta starts an empty delta against a graph with the given counts.
func NewDelta(numQueries, numData int) *Delta {
	return &Delta{BaseQueries: numQueries, BaseData: numData}
}

// NewQueries returns the number of hyperedges this delta adds.
func (d *Delta) NewQueries() int { return d.addQ }

// NewData returns the number of data vertices this delta adds.
func (d *Delta) NewData() int { return d.addD }

// Empty reports whether the delta holds no operations.
func (d *Delta) Empty() bool { return len(d.Ops) == 0 }

// AddHyperedge records a new hyperedge spanning the given data vertices and
// returns the query id it will receive. Members may include vertices added
// earlier in this delta; duplicates are removed at apply time.
func (d *Delta) AddHyperedge(members ...int32) int32 {
	return d.AddWeightedHyperedge(1, members...)
}

// AddWeightedHyperedge is AddHyperedge with an explicit query weight.
func (d *Delta) AddWeightedHyperedge(weight int32, members ...int32) int32 {
	q := int32(d.BaseQueries + d.addQ)
	d.addQ++
	d.Ops = append(d.Ops, DeltaOp{
		Kind: OpAddHyperedge, Q: q, Weight: weight,
		Members: slices.Clone(members),
	})
	return q
}

// RemoveHyperedge records the removal of hyperedge q. Removing an already
// empty hyperedge is a no-op (beyond the version bump).
func (d *Delta) RemoveHyperedge(q int32) {
	d.Ops = append(d.Ops, DeltaOp{Kind: OpRemoveHyperedge, Q: q})
}

// AddData records a new data vertex with the given weight (use 1 on
// unweighted graphs) and returns the id it will receive.
func (d *Delta) AddData(weight int32) int32 {
	v := int32(d.BaseData + d.addD)
	d.addD++
	d.Ops = append(d.Ops, DeltaOp{Kind: OpAddData, D: v, Weight: weight})
	return v
}

// SetDataWeight records a weight change for data vertex v. On a previously
// unweighted graph this materializes unit weights for everyone else.
func (d *Delta) SetDataWeight(v, weight int32) {
	d.Ops = append(d.Ops, DeltaOp{Kind: OpSetDataWeight, D: v, Weight: weight})
}

// validate checks every op against the target counts without mutating
// anything, so ApplyDelta is atomic: either the whole delta applies or the
// graph is untouched.
func (d *Delta) validate(g *Bipartite) error {
	if d.BaseQueries != g.numQ || d.BaseData != g.numD {
		return fmt.Errorf("hypergraph: delta built against %d queries / %d data, graph has %d / %d",
			d.BaseQueries, d.BaseData, g.numQ, g.numD)
	}
	nq, nd := g.numQ, g.numD
	for i, op := range d.Ops {
		switch op.Kind {
		case OpAddData:
			if op.Weight <= 0 {
				return fmt.Errorf("hypergraph: delta op %d adds data vertex with non-positive weight %d", i, op.Weight)
			}
			if int(op.D) != nd {
				return fmt.Errorf("hypergraph: delta op %d assigns data id %d, expected %d", i, op.D, nd)
			}
			nd++
		case OpAddHyperedge:
			if len(op.Members) == 0 {
				return fmt.Errorf("hypergraph: delta op %d adds an empty hyperedge", i)
			}
			if op.Weight < 0 {
				return fmt.Errorf("hypergraph: delta op %d adds hyperedge with negative weight %d", i, op.Weight)
			}
			if int(op.Q) != nq {
				return fmt.Errorf("hypergraph: delta op %d assigns query id %d, expected %d", i, op.Q, nq)
			}
			for _, m := range op.Members {
				if m < 0 || int(m) >= nd {
					return fmt.Errorf("hypergraph: delta op %d references data %d out of range [0,%d)", i, m, nd)
				}
			}
			nq++
		case OpRemoveHyperedge:
			if op.Q < 0 || int(op.Q) >= nq {
				return fmt.Errorf("hypergraph: delta op %d removes query %d out of range [0,%d)", i, op.Q, nq)
			}
		case OpSetDataWeight:
			if op.D < 0 || int(op.D) >= nd {
				return fmt.Errorf("hypergraph: delta op %d targets data %d out of range [0,%d)", i, op.D, nd)
			}
			if op.Weight <= 0 {
				return fmt.Errorf("hypergraph: delta op %d sets non-positive weight %d", i, op.Weight)
			}
		default:
			return fmt.Errorf("hypergraph: delta op %d has unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// ApplyDelta splices the delta into the graph in place, op by op. The call
// is atomic: it validates everything first and only then mutates, bumping
// Version once per op. Not safe for use concurrently with readers.
func (g *Bipartite) ApplyDelta(d *Delta) error {
	if err := d.validate(g); err != nil {
		return err
	}
	g.ensureMutable()
	for i := range d.Ops {
		op := &d.Ops[i]
		switch op.Kind {
		case OpAddData:
			g.applyAddData(op.Weight)
		case OpAddHyperedge:
			g.applyAddHyperedge(op.Members, op.Weight)
		case OpRemoveHyperedge:
			g.applyRemoveHyperedge(op.Q)
		case OpSetDataWeight:
			g.applySetDataWeight(op.D, op.Weight)
		}
		g.version++
	}
	return nil
}

// ensureMutable converts the packed CSR into the equivalent segment layout
// (live length == capacity for every vertex) on the first mutation. Weight
// arrays are copied so graphs derived from this one before the mutation
// (prunes, induced subproblems) keep their snapshot.
func (g *Bipartite) ensureMutable() {
	if g.qLen != nil {
		return
	}
	g.qStart = make([]int64, g.numQ)
	g.qCap = make([]int32, g.numQ)
	g.qLen = make([]int32, g.numQ)
	for q := 0; q < g.numQ; q++ {
		g.qStart[q] = g.qOff[q]
		n := int32(g.qOff[q+1] - g.qOff[q])
		g.qCap[q] = n
		g.qLen[q] = n
	}
	g.dStart = make([]int64, g.numD)
	g.dCap = make([]int32, g.numD)
	g.dLen = make([]int32, g.numD)
	for dv := 0; dv < g.numD; dv++ {
		g.dStart[dv] = g.dOff[dv]
		n := int32(g.dOff[dv+1] - g.dOff[dv])
		g.dCap[dv] = n
		g.dLen[dv] = n
	}
	g.numE = int64(len(g.qAdj))
	g.qOff, g.dOff = nil, nil
	if g.dWeight != nil {
		g.dWeight = slices.Clone(g.dWeight)
	}
	if g.qWeight != nil {
		g.qWeight = slices.Clone(g.qWeight)
	}
}

func (g *Bipartite) applyAddData(weight int32) {
	g.dStart = append(g.dStart, int64(len(g.dAdj)))
	g.dCap = append(g.dCap, 0)
	g.dLen = append(g.dLen, 0)
	if g.dWeight == nil && weight != 1 {
		g.materializeDataWeights()
	}
	if g.dWeight != nil {
		g.dWeight = append(g.dWeight, weight)
	}
	g.numD++
}

func (g *Bipartite) applySetDataWeight(v, weight int32) {
	if g.dWeight == nil {
		if weight == 1 {
			return
		}
		g.materializeDataWeights()
	}
	g.dWeight[v] = weight
}

// materializeDataWeights switches an unweighted graph to explicit unit
// weights so one vertex's weight can diverge.
func (g *Bipartite) materializeDataWeights() {
	g.dWeight = make([]int32, g.numD)
	for i := range g.dWeight {
		g.dWeight[i] = 1
	}
}

func (g *Bipartite) applyAddHyperedge(members []int32, weight int32) {
	ms := slices.Clone(members)
	slices.Sort(ms)
	ms = slices.Compact(ms)
	q := int32(g.numQ)
	g.qStart = append(g.qStart, int64(len(g.qAdj)))
	g.qCap = append(g.qCap, int32(len(ms)))
	g.qLen = append(g.qLen, int32(len(ms)))
	g.qAdj = append(g.qAdj, ms...)
	if weight == 0 {
		weight = 1
	}
	if g.qWeight == nil && weight != 1 {
		g.qWeight = make([]int32, g.numQ)
		for i := range g.qWeight {
			g.qWeight[i] = 1
		}
	}
	if g.qWeight != nil {
		g.qWeight = append(g.qWeight, weight)
	}
	g.numQ++
	for _, dv := range ms {
		g.reverseAppend(dv, q)
	}
	g.numE += int64(len(ms))
	switch {
	case len(ms) > g.maxQDeg:
		g.maxQDeg = len(ms)
		g.maxQDegCount = 1
	case len(ms) == g.maxQDeg:
		g.maxQDegCount++
	}
}

// reverseAppend inserts query q at the end of data vertex dv's live reverse
// segment. q is always the largest query id in the graph at insertion time,
// so appending preserves sorted order. A full segment relocates to the arena
// tail with doubled capacity; the vacated slots become garbage (bounded by
// the doubling schedule, reclaimed by Clone-free rebuilds if ever needed).
func (g *Bipartite) reverseAppend(dv, q int32) {
	if g.dLen[dv] == g.dCap[dv] {
		newCap := g.dCap[dv] * 2
		if newCap < 4 {
			newCap = 4
		}
		start := int64(len(g.dAdj))
		g.dAdj = append(g.dAdj, g.dAdj[g.dStart[dv]:g.dStart[dv]+int64(g.dLen[dv])]...)
		g.dAdj = append(g.dAdj, make([]int32, newCap-g.dLen[dv])...)
		g.dStart[dv] = start
		g.dCap[dv] = newCap
	}
	g.dAdj[g.dStart[dv]+int64(g.dLen[dv])] = q
	g.dLen[dv]++
}

func (g *Bipartite) applyRemoveHyperedge(q int32) {
	deg := g.qLen[q]
	if deg == 0 {
		return
	}
	members := g.qAdj[g.qStart[q] : g.qStart[q]+int64(deg)]
	for _, dv := range members {
		g.reverseRemove(dv, q)
	}
	g.qLen[q] = 0
	g.numE -= int64(deg)
	if int(deg) == g.maxQDeg {
		g.maxQDegCount--
		if g.maxQDegCount == 0 {
			g.computeMaxQueryDegree()
		}
	}
}

// reverseRemove deletes query q from data vertex dv's live reverse segment.
func (g *Bipartite) reverseRemove(dv, q int32) {
	s := g.dStart[dv]
	n := int64(g.dLen[dv])
	seg := g.dAdj[s : s+n]
	i, j := 0, len(seg)
	for i < j {
		h := (i + j) / 2
		if seg[h] < q {
			i = h + 1
		} else {
			j = h
		}
	}
	if i >= len(seg) || seg[i] != q {
		//shp:panics(invariant: forward and reverse adjacency must stay mirrored; continuing would corrupt the graph)
		panic(fmt.Sprintf("hypergraph: reverse adjacency of data %d lost query %d", dv, q))
	}
	copy(seg[i:], seg[i+1:])
	g.dLen[dv]--
}

// Clone returns a deep copy of the graph in its current layout. Mutating
// either copy never affects the other.
func (g *Bipartite) Clone() *Bipartite {
	cp := &Bipartite{
		numQ:         g.numQ,
		numD:         g.numD,
		numE:         g.numE,
		version:      g.version,
		maxQDeg:      g.maxQDeg,
		maxQDegCount: g.maxQDegCount,
		qOff:         slices.Clone(g.qOff),
		dOff:         slices.Clone(g.dOff),
		qAdj:         slices.Clone(g.qAdj),
		dAdj:         slices.Clone(g.dAdj),
		qStart:       slices.Clone(g.qStart),
		qCap:         slices.Clone(g.qCap),
		qLen:         slices.Clone(g.qLen),
		dStart:       slices.Clone(g.dStart),
		dCap:         slices.Clone(g.dCap),
		dLen:         slices.Clone(g.dLen),
		dWeight:      slices.Clone(g.dWeight),
		qWeight:      slices.Clone(g.qWeight),
	}
	return cp
}
