// Package hypergraph implements the bipartite query–data representation of a
// hypergraph used throughout the paper (Section 1, Figure 1).
//
// A hypergraph with vertex set D and hyperedges Q is stored as an undirected
// bipartite graph G = (Q ∪ D, E): each query vertex q corresponds to one
// hyperedge spanning exactly the data vertices adjacent to q. Build produces
// a compact compressed sparse row (CSR) layout in both directions, which is
// what the partitioner's two passes (per-query neighbor-data aggregation,
// per-data gain computation) need.
//
// Graphs can also evolve after construction: ApplyDelta splices hyperedge
// additions/removals, new data vertices, and weight changes into the
// adjacency in place (see mutate.go). The first mutation switches the graph
// from the packed CSR to an equivalent segment layout with spare capacity;
// all accessors work identically on both.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"shp/internal/par"
)

// Bipartite is a bipartite graph between queries (hyperedges) and data
// vertices. Vertex ids are dense: queries are 0..NumQueries-1 and data
// vertices 0..NumData-1, in separate id spaces.
//
// Two internal layouts exist. Compact (what Build produces): classic CSR,
// the live adjacency of vertex x is qAdj[qOff[x]:qOff[x+1]]. Mutable
// (entered by the first ApplyDelta): every vertex owns an arena segment
// [qStart[x], qStart[x]+qCap[x]) of which the first qLen[x] slots are live,
// so hyperedges can be removed (len drops to 0, capacity stays) and
// adjacency lists can grow (segments relocate to the arena tail with
// amortized doubling) without rewriting the arrays. Accessors are layout
// independent; concurrent readers are safe in either layout as long as no
// mutation is in flight.
type Bipartite struct {
	numQ int
	numD int

	// Compact layout: CSR from queries to data (qAdj[qOff[q]:qOff[q+1]] are
	// the data vertices of hyperedge q, sorted ascending) and from data to
	// queries. nil in mutable layout.
	qOff []int64
	dOff []int64

	// Adjacency arenas, shared by both layouts.
	qAdj []int32
	dAdj []int32

	// Mutable layout: per-vertex segment start/capacity/live length over the
	// arenas. nil in compact layout; qLen != nil identifies mutable mode.
	qStart []int64
	qCap   []int32
	qLen   []int32
	dStart []int64
	dCap   []int32
	dLen   []int32

	// numE is the live incidence count in mutable layout (compact layout
	// derives it from len(qAdj)).
	numE int64

	// version counts mutations: it is bumped by every applied delta op, so
	// any state derived from the graph can be tagged with the version it was
	// computed at and checked for staleness (Validate asserts the internal
	// caches below are fresh).
	version uint64

	// Optional per-data-vertex weights; nil means unit weights.
	dWeight []int32

	// Optional per-query (hyperedge) weights; nil means unit weights.
	// Weighted queries contribute proportionally to fanout objectives —
	// useful when hyperedges represent query classes with different rates.
	qWeight []int32

	// maxQDeg caches the largest hyperedge size. Every refiner construction
	// (including each recursive bisection node) sizes its gain tables from
	// it, so it is computed once at Build/rebuildReverse time instead of
	// rescanning all queries per lookup. Mutations keep it current eagerly:
	// insertions grow it in O(1), and maxQDegCount — the number of
	// hyperedges currently at the maximum — defers the O(|Q|) rescan on
	// removal until the last max-degree hyperedge actually disappears
	// (uniform-degree graphs would otherwise rescan on every removal).
	maxQDeg      int
	maxQDegCount int

	// statsCache memoizes ComputeStats at statsVersion; a version mismatch
	// triggers recomputation, so mutation can never serve stale stats.
	statsMu      sync.Mutex
	statsCache   *Stats
	statsVersion uint64
}

// Edge is a (query, data) incidence.
type Edge struct {
	Q int32
	D int32
}

// NumQueries returns |Q|, the number of hyperedges.
func (g *Bipartite) NumQueries() int { return g.numQ }

// NumData returns |D|, the number of data vertices.
func (g *Bipartite) NumData() int { return g.numD }

// NumEdges returns |E|, the number of live incidences (sum of hyperedge
// sizes).
func (g *Bipartite) NumEdges() int64 {
	if g.qLen != nil {
		return g.numE
	}
	return int64(len(g.qAdj))
}

// Version returns the mutation counter: 0 for a freshly built graph, bumped
// by every delta op ApplyDelta splices in. Derived state (assignments,
// cached stats, partitioner sessions) can be tagged with the version it was
// computed at to detect staleness.
func (g *Bipartite) Version() uint64 { return g.version }

// QueryNeighbors returns the data vertices of hyperedge q as a shared slice;
// callers must not modify it.
func (g *Bipartite) QueryNeighbors(q int32) []int32 {
	if g.qLen != nil {
		s := g.qStart[q]
		return g.qAdj[s : s+int64(g.qLen[q])]
	}
	return g.qAdj[g.qOff[q]:g.qOff[q+1]]
}

// DataNeighbors returns the queries adjacent to data vertex d as a shared
// slice; callers must not modify it.
func (g *Bipartite) DataNeighbors(d int32) []int32 {
	if g.dLen != nil {
		s := g.dStart[d]
		return g.dAdj[s : s+int64(g.dLen[d])]
	}
	return g.dAdj[g.dOff[d]:g.dOff[d+1]]
}

// QueryDegree returns the size of hyperedge q.
func (g *Bipartite) QueryDegree(q int32) int {
	if g.qLen != nil {
		return int(g.qLen[q])
	}
	return int(g.qOff[q+1] - g.qOff[q])
}

// DataDegree returns the number of hyperedges containing data vertex d.
func (g *Bipartite) DataDegree(d int32) int {
	if g.dLen != nil {
		return int(g.dLen[d])
	}
	return int(g.dOff[d+1] - g.dOff[d])
}

// DataWeight returns the weight of data vertex d (1 if unweighted).
func (g *Bipartite) DataWeight(d int32) int32 {
	if g.dWeight == nil {
		return 1
	}
	return g.dWeight[d]
}

// Weighted reports whether the graph carries non-unit data-vertex weights.
func (g *Bipartite) Weighted() bool { return g.dWeight != nil }

// QueryWeight returns the weight of hyperedge q (1 if unweighted).
func (g *Bipartite) QueryWeight(q int32) int32 {
	if g.qWeight == nil {
		return 1
	}
	return g.qWeight[q]
}

// QueryWeighted reports whether the graph carries non-unit query weights.
func (g *Bipartite) QueryWeighted() bool { return g.qWeight != nil }

// TotalQueryWeight returns the sum of query weights.
func (g *Bipartite) TotalQueryWeight() int64 {
	if g.qWeight == nil {
		return int64(g.numQ)
	}
	var sum int64
	for _, w := range g.qWeight {
		sum += int64(w)
	}
	return sum
}

// TotalDataWeight returns the sum of data vertex weights.
func (g *Bipartite) TotalDataWeight() int64 {
	if g.dWeight == nil {
		return int64(g.numD)
	}
	var sum int64
	for _, w := range g.dWeight {
		sum += int64(w)
	}
	return sum
}

// MaxQueryDegree returns the largest hyperedge size (0 for empty graphs).
// The value is cached at construction time.
func (g *Bipartite) MaxQueryDegree() int { return g.maxQDeg }

// computeMaxQueryDegree rescans all query degrees (and how many hyperedges
// sit at the maximum); called whenever the forward adjacency is
// (re)assembled and when a mutation removes the last max-degree hyperedge.
func (g *Bipartite) computeMaxQueryDegree() {
	maxDeg, count := 0, 0
	for q := 0; q < g.numQ; q++ {
		switch d := g.QueryDegree(int32(q)); {
		case d > maxDeg:
			maxDeg = d
			count = 1
		case d == maxDeg:
			count++
		}
	}
	g.maxQDeg = maxDeg
	g.maxQDegCount = count
}

// Edges returns all incidences. Intended for tests and small graphs.
func (g *Bipartite) Edges() []Edge {
	out := make([]Edge, 0, len(g.qAdj))
	for q := 0; q < g.numQ; q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			out = append(out, Edge{Q: int32(q), D: d})
		}
	}
	return out
}

// Stats summarizes the graph for dataset tables.
type Stats struct {
	NumQueries   int
	NumData      int
	NumEdges     int64
	AvgQueryDeg  float64
	MaxQueryDeg  int
	AvgDataDeg   float64
	MaxDataDeg   int
	IsolatedData int // data vertices in no hyperedge
}

// ComputeStats returns summary statistics, scanning the graph once and
// memoizing the result per mutation version: a second call on an unchanged
// graph is free, and any mutation invalidates the cache (ApplyDelta bumps
// Version, so a stale result can never be served).
func (g *Bipartite) ComputeStats() Stats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	if g.statsCache != nil && g.statsVersion == g.version {
		return *g.statsCache
	}
	s := g.computeStats()
	g.statsCache = &s
	g.statsVersion = g.version
	return s
}

// computeStats is the uncached scan behind ComputeStats.
func (g *Bipartite) computeStats() Stats {
	s := Stats{NumQueries: g.numQ, NumData: g.numD, NumEdges: g.NumEdges()}
	for q := 0; q < g.numQ; q++ {
		if d := g.QueryDegree(int32(q)); d > s.MaxQueryDeg {
			s.MaxQueryDeg = d
		}
	}
	for d := 0; d < g.numD; d++ {
		deg := g.DataDegree(int32(d))
		if deg > s.MaxDataDeg {
			s.MaxDataDeg = deg
		}
		if deg == 0 {
			s.IsolatedData++
		}
	}
	if g.numQ > 0 {
		s.AvgQueryDeg = float64(s.NumEdges) / float64(g.numQ)
	}
	if g.numD > 0 {
		s.AvgDataDeg = float64(s.NumEdges) / float64(g.numD)
	}
	return s
}

// Validate checks internal adjacency invariants — offset/segment layout,
// strict sortedness, forward/reverse symmetry (mutable layout) — plus the
// freshness of every cached derived value (max query degree and memoized
// stats must match a from-scratch recomputation at the current Version).
// It is used by tests and by the file loaders; a healthy Build or ApplyDelta
// never produces an invalid graph.
func (g *Bipartite) Validate() error {
	if g.qLen != nil {
		if err := g.validateMutableLayout(); err != nil {
			return err
		}
	} else {
		if err := g.validateCompactLayout(); err != nil {
			return err
		}
	}
	for q := 0; q < g.numQ; q++ {
		prev := int32(-1)
		for _, d := range g.QueryNeighbors(int32(q)) {
			if d < 0 || int(d) >= g.numD {
				return fmt.Errorf("hypergraph: query %d references data %d out of range", q, d)
			}
			if d <= prev {
				return fmt.Errorf("hypergraph: query %d adjacency not strictly sorted", q)
			}
			prev = d
		}
	}
	for d := 0; d < g.numD; d++ {
		prev := int32(-1)
		for _, q := range g.DataNeighbors(int32(d)) {
			if q < 0 || int(q) >= g.numQ {
				return fmt.Errorf("hypergraph: data %d references query %d out of range", d, q)
			}
			if q <= prev {
				return fmt.Errorf("hypergraph: data %d adjacency not strictly sorted", d)
			}
			prev = q
		}
	}
	if g.qLen != nil {
		// In the mutable layout the two directions evolve independently, so
		// check full symmetry: every live (q, d) incidence must appear in
		// the reverse adjacency too (counts being equal then implies the
		// reverse holds as well).
		for q := 0; q < g.numQ; q++ {
			for _, d := range g.QueryNeighbors(int32(q)) {
				ns := g.DataNeighbors(d)
				if i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(q) }); i >= len(ns) || ns[i] != int32(q) {
					return fmt.Errorf("hypergraph: incidence (%d, %d) missing from reverse adjacency", q, d)
				}
			}
		}
	}
	// Cached-value freshness: mutation maintains maxQDeg eagerly and tags
	// the stats memo with the version it was computed at; both must match a
	// recomputation or some mutation path failed to invalidate them.
	maxDeg, maxCount := 0, 0
	for q := 0; q < g.numQ; q++ {
		switch d := g.QueryDegree(int32(q)); {
		case d > maxDeg:
			maxDeg = d
			maxCount = 1
		case d == maxDeg:
			maxCount++
		}
	}
	if maxDeg != g.maxQDeg {
		return fmt.Errorf("hypergraph: cached max query degree %d stale (actual %d at version %d)", g.maxQDeg, maxDeg, g.version)
	}
	if maxDeg > 0 && maxCount != g.maxQDegCount {
		return fmt.Errorf("hypergraph: cached max-degree count %d stale (actual %d at version %d)", g.maxQDegCount, maxCount, g.version)
	}
	g.statsMu.Lock()
	cached, cachedVersion := g.statsCache, g.statsVersion
	g.statsMu.Unlock()
	if cached != nil && cachedVersion == g.version {
		if fresh := g.computeStats(); *cached != fresh {
			return fmt.Errorf("hypergraph: cached stats stale at version %d: %+v != %+v", g.version, *cached, fresh)
		}
	}
	if g.dWeight != nil {
		if len(g.dWeight) != g.numD {
			return errors.New("hypergraph: weight array length mismatch")
		}
		for d, w := range g.dWeight {
			if w <= 0 {
				return fmt.Errorf("hypergraph: non-positive weight %d at data vertex %d", w, d)
			}
		}
	}
	if g.qWeight != nil {
		if len(g.qWeight) != g.numQ {
			return errors.New("hypergraph: query weight array length mismatch")
		}
		for q, w := range g.qWeight {
			if w <= 0 {
				return fmt.Errorf("hypergraph: non-positive weight %d at query %d", w, q)
			}
		}
	}
	return nil
}

// validateCompactLayout checks the packed-CSR offset invariants.
func (g *Bipartite) validateCompactLayout() error {
	if len(g.qOff) != g.numQ+1 || len(g.dOff) != g.numD+1 {
		return errors.New("hypergraph: offset array length mismatch")
	}
	if g.qOff[0] != 0 || g.dOff[0] != 0 {
		return errors.New("hypergraph: offsets must start at 0")
	}
	if g.qOff[g.numQ] != int64(len(g.qAdj)) || g.dOff[g.numD] != int64(len(g.dAdj)) {
		return errors.New("hypergraph: offsets must end at adjacency length")
	}
	if len(g.qAdj) != len(g.dAdj) {
		return fmt.Errorf("hypergraph: asymmetric edge counts %d vs %d", len(g.qAdj), len(g.dAdj))
	}
	for q := 0; q < g.numQ; q++ {
		if g.qOff[q] > g.qOff[q+1] {
			return fmt.Errorf("hypergraph: decreasing query offsets at %d", q)
		}
	}
	for d := 0; d < g.numD; d++ {
		if g.dOff[d] > g.dOff[d+1] {
			return fmt.Errorf("hypergraph: decreasing data offsets at %d", d)
		}
	}
	return nil
}

// validateMutableLayout checks the segment arrays of a mutated graph:
// consistent lengths, every segment inside its arena with live length within
// capacity, no two live segments overlapping, and live totals matching the
// maintained incidence count on both sides.
func (g *Bipartite) validateMutableLayout() error {
	if len(g.qStart) != g.numQ || len(g.qCap) != g.numQ || len(g.qLen) != g.numQ {
		return errors.New("hypergraph: query segment array length mismatch")
	}
	if len(g.dStart) != g.numD || len(g.dCap) != g.numD || len(g.dLen) != g.numD {
		return errors.New("hypergraph: data segment array length mismatch")
	}
	check := func(side string, n int, start []int64, capv, live []int32, arena []int32) (int64, error) {
		type seg struct{ start, end int64 }
		segs := make([]seg, 0, n)
		var total int64
		for i := 0; i < n; i++ {
			if live[i] < 0 || capv[i] < 0 || live[i] > capv[i] {
				return 0, fmt.Errorf("hypergraph: %s segment %d has live %d capacity %d", side, i, live[i], capv[i])
			}
			if start[i] < 0 || start[i]+int64(capv[i]) > int64(len(arena)) {
				return 0, fmt.Errorf("hypergraph: %s segment %d [%d,+%d) outside arena of %d", side, i, start[i], capv[i], len(arena))
			}
			if capv[i] > 0 {
				segs = append(segs, seg{start[i], start[i] + int64(capv[i])})
			}
			total += int64(live[i])
		}
		sort.Slice(segs, func(a, b int) bool { return segs[a].start < segs[b].start })
		for i := 1; i < len(segs); i++ {
			if segs[i].start < segs[i-1].end {
				return 0, fmt.Errorf("hypergraph: overlapping %s segments at arena offset %d", side, segs[i].start)
			}
		}
		return total, nil
	}
	qTotal, err := check("query", g.numQ, g.qStart, g.qCap, g.qLen, g.qAdj)
	if err != nil {
		return err
	}
	dTotal, err := check("data", g.numD, g.dStart, g.dCap, g.dLen, g.dAdj)
	if err != nil {
		return err
	}
	if qTotal != g.numE || dTotal != g.numE {
		return fmt.Errorf("hypergraph: live totals %d/%d disagree with edge count %d", qTotal, dTotal, g.numE)
	}
	return nil
}

// Builder accumulates incidences and produces an immutable Bipartite.
// Duplicate (q, d) incidences are removed by Build.
type Builder struct {
	numQ     int
	numD     int
	edges    []Edge
	weights  []int32
	qWeights []int32
}

// NewBuilder creates a builder for a graph with the given vertex counts.
func NewBuilder(numQueries, numData int) *Builder {
	return &Builder{numQ: numQueries, numD: numData}
}

// AddEdge records that hyperedge q contains data vertex d.
func (b *Builder) AddEdge(q, d int32) *Builder {
	b.edges = append(b.edges, Edge{Q: q, D: d})
	return b
}

// AddHyperedge records that hyperedge q contains all the given data vertices.
func (b *Builder) AddHyperedge(q int32, data ...int32) *Builder {
	for _, d := range data {
		b.AddEdge(q, d)
	}
	return b
}

// SetDataWeights attaches per-data-vertex weights (length must be numData).
func (b *Builder) SetDataWeights(w []int32) *Builder {
	b.weights = w
	return b
}

// SetQueryWeights attaches per-hyperedge weights (length must be
// numQueries).
func (b *Builder) SetQueryWeights(w []int32) *Builder {
	b.qWeights = w
	return b
}

// Build validates ids, deduplicates incidences, and assembles CSR in both
// directions. The builder can be reused afterwards.
func (b *Builder) Build() (*Bipartite, error) {
	if b.numQ < 0 || b.numD < 0 {
		return nil, errors.New("hypergraph: negative vertex count")
	}
	for _, e := range b.edges {
		if e.Q < 0 || int(e.Q) >= b.numQ {
			return nil, fmt.Errorf("hypergraph: query id %d out of range [0,%d)", e.Q, b.numQ)
		}
		if e.D < 0 || int(e.D) >= b.numD {
			return nil, fmt.Errorf("hypergraph: data id %d out of range [0,%d)", e.D, b.numD)
		}
	}
	if b.weights != nil && len(b.weights) != b.numD {
		return nil, fmt.Errorf("hypergraph: %d weights for %d data vertices", len(b.weights), b.numD)
	}
	if b.qWeights != nil && len(b.qWeights) != b.numQ {
		return nil, fmt.Errorf("hypergraph: %d query weights for %d queries", len(b.qWeights), b.numQ)
	}
	g := &Bipartite{numQ: b.numQ, numD: b.numD}
	if b.weights != nil {
		g.dWeight = make([]int32, b.numD)
		copy(g.dWeight, b.weights)
	}
	if b.qWeights != nil {
		g.qWeight = make([]int32, b.numQ)
		copy(g.qWeight, b.qWeights)
	}

	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Q != edges[j].Q {
			return edges[i].Q < edges[j].Q
		}
		return edges[i].D < edges[j].D
	})
	// Deduplicate.
	uniq := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	edges = uniq

	g.qOff = make([]int64, b.numQ+1)
	g.qAdj = make([]int32, len(edges))
	for _, e := range edges {
		g.qOff[e.Q+1]++
	}
	for q := 0; q < b.numQ; q++ {
		g.qOff[q+1] += g.qOff[q]
	}
	for i, e := range edges {
		g.qAdj[i] = e.D // edges sorted by (Q, D): positions align with qOff
		_ = i
	}

	// Reverse CSR via counting sort on data id.
	g.dOff = make([]int64, b.numD+1)
	g.dAdj = make([]int32, len(edges))
	for _, e := range edges {
		g.dOff[e.D+1]++
	}
	for d := 0; d < b.numD; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	cursor := make([]int64, b.numD)
	copy(cursor, g.dOff[:b.numD])
	for _, e := range edges { // edges sorted by Q, so each dAdj list ends up sorted by Q
		g.dAdj[cursor[e.D]] = e.Q
		cursor[e.D]++
	}
	g.computeMaxQueryDegree()
	return g, nil
}

// FromEdges is a convenience constructor from an incidence list.
func FromEdges(numQueries, numData int, edges []Edge) (*Bipartite, error) {
	b := NewBuilder(numQueries, numData)
	b.edges = append(b.edges, edges...)
	return b.Build()
}

// FromHyperedges builds a graph from explicit hyperedge vertex lists. The
// number of data vertices is inferred as max id + 1 unless numData is larger.
func FromHyperedges(numData int, hyperedges [][]int32) (*Bipartite, error) {
	maxD := numData - 1
	total := 0
	for _, he := range hyperedges {
		total += len(he)
		for _, d := range he {
			if int(d) > maxD {
				maxD = int(d)
			}
		}
	}
	b := NewBuilder(len(hyperedges), maxD+1)
	b.edges = make([]Edge, 0, total)
	for q, he := range hyperedges {
		for _, d := range he {
			b.AddEdge(int32(q), d)
		}
	}
	return b.Build()
}

// PruneTrivialQueries returns a graph with hyperedges of size < minDegree
// removed (the paper removes isolated and degree-one queries, which have
// fanout 1 under every partition and only add noise to the objective).
// Data vertices are preserved, including any that become isolated.
func PruneTrivialQueries(g *Bipartite, minDegree int) *Bipartite {
	keep := make([]int32, 0, g.numQ)
	for q := 0; q < g.numQ; q++ {
		if g.QueryDegree(int32(q)) >= minDegree {
			keep = append(keep, int32(q))
		}
	}
	if len(keep) == g.numQ {
		return g
	}
	out := &Bipartite{numQ: len(keep), numD: g.numD, dWeight: g.dWeight}
	if g.qWeight != nil {
		out.qWeight = make([]int32, len(keep))
		for i, q := range keep {
			out.qWeight[i] = g.qWeight[q]
		}
	}
	out.qOff = make([]int64, len(keep)+1)
	var total int64
	for i, q := range keep {
		total += int64(g.QueryDegree(q))
		out.qOff[i+1] = total
	}
	out.qAdj = make([]int32, total)
	par.For(len(keep), 0, func(start, end int) {
		for i := start; i < end; i++ {
			copy(out.qAdj[out.qOff[i]:out.qOff[i+1]], g.QueryNeighbors(keep[i]))
		}
	})
	out.rebuildReverse()
	return out
}

// InducedByData returns the subgraph induced by the given data vertices:
// data vertices are relabeled 0..len(dataIDs)-1 in the given order, and only
// hyperedges with at least minQueryDegree members inside the subset are kept
// (relabeled densely). It returns the subgraph and the kept original query
// ids aligned with the new query ids.
//
// This is the substrate for recursive bisection: each recursion step operates
// on the compact induced problem (Section 3.3, "Recursive partitioning").
func (g *Bipartite) InducedByData(dataIDs []int32, minQueryDegree int) (*Bipartite, []int32) {
	dmap := make([]int32, g.numD)
	for i := range dmap {
		dmap[i] = -1
	}
	// When dataIDs is strictly increasing (the recursive partitioner always
	// passes monotone subsets), dmap preserves order and the filtered
	// adjacency lists come out sorted for free.
	monotone := true
	for newID, d := range dataIDs {
		dmap[d] = int32(newID)
		if newID > 0 && d <= dataIDs[newID-1] {
			monotone = false
		}
	}
	// Count per-query membership inside the subset.
	qCount := make([]int32, g.numQ)
	for _, d := range dataIDs {
		for _, q := range g.DataNeighbors(d) {
			qCount[q]++
		}
	}
	keptQ := make([]int32, 0)
	for q := 0; q < g.numQ; q++ {
		if int(qCount[q]) >= minQueryDegree {
			keptQ = append(keptQ, int32(q))
		}
	}
	out := &Bipartite{numQ: len(keptQ), numD: len(dataIDs)}
	if g.dWeight != nil {
		out.dWeight = make([]int32, len(dataIDs))
		for i, d := range dataIDs {
			out.dWeight[i] = g.dWeight[d]
		}
	}
	if g.qWeight != nil {
		out.qWeight = make([]int32, len(keptQ))
		for i, q := range keptQ {
			out.qWeight[i] = g.qWeight[q]
		}
	}
	out.qOff = make([]int64, len(keptQ)+1)
	var total int64
	for i, q := range keptQ {
		total += int64(qCount[q])
		out.qOff[i+1] = total
	}
	out.qAdj = make([]int32, total)
	par.For(len(keptQ), 0, func(start, end int) {
		for i := start; i < end; i++ {
			q := keptQ[i]
			dst := out.qAdj[out.qOff[i]:out.qOff[i+1]]
			n := 0
			for _, d := range g.QueryNeighbors(q) {
				if nd := dmap[d]; nd >= 0 {
					dst[n] = nd
					n++
				}
			}
			if !monotone {
				// dmap is order-dependent, so re-sort for the CSR invariant.
				sort.Slice(dst, func(a, b int) bool { return dst[a] < dst[b] })
			}
		}
	})
	out.rebuildReverse()
	return out, keptQ
}

// rebuildReverse recomputes the data->query CSR from the query->data CSR,
// along with the cached maximum query degree.
func (g *Bipartite) rebuildReverse() {
	g.computeMaxQueryDegree()
	g.dOff = make([]int64, g.numD+1)
	g.dAdj = make([]int32, len(g.qAdj))
	for _, d := range g.qAdj {
		g.dOff[d+1]++
	}
	for d := 0; d < g.numD; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	cursor := make([]int64, g.numD)
	copy(cursor, g.dOff[:g.numD])
	for q := 0; q < g.numQ; q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			g.dAdj[cursor[d]] = int32(q)
			cursor[d]++
		}
	}
}
