// Package hypergraph implements the bipartite query–data representation of a
// hypergraph used throughout the paper (Section 1, Figure 1).
//
// A hypergraph with vertex set D and hyperedges Q is stored as an undirected
// bipartite graph G = (Q ∪ D, E): each query vertex q corresponds to one
// hyperedge spanning exactly the data vertices adjacent to q. The structure
// is immutable after Build and stores compressed sparse row (CSR) adjacency
// in both directions, which is what the partitioner's two passes (per-query
// neighbor-data aggregation, per-data gain computation) need.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"

	"shp/internal/par"
)

// Bipartite is an immutable bipartite graph between queries (hyperedges) and
// data vertices. Vertex ids are dense: queries are 0..NumQueries-1 and data
// vertices 0..NumData-1, in separate id spaces.
type Bipartite struct {
	numQ int
	numD int

	// CSR from queries to data: qAdj[qOff[q]:qOff[q+1]] are the data
	// vertices of hyperedge q, sorted ascending.
	qOff []int64
	qAdj []int32

	// CSR from data to queries, sorted ascending.
	dOff []int64
	dAdj []int32

	// Optional per-data-vertex weights; nil means unit weights.
	dWeight []int32

	// Optional per-query (hyperedge) weights; nil means unit weights.
	// Weighted queries contribute proportionally to fanout objectives —
	// useful when hyperedges represent query classes with different rates.
	qWeight []int32

	// maxQDeg caches the largest hyperedge size. Every refiner construction
	// (including each recursive bisection node) sizes its gain tables from
	// it, so it is computed once at Build/rebuildReverse time instead of
	// rescanning all queries per lookup.
	maxQDeg int
}

// Edge is a (query, data) incidence.
type Edge struct {
	Q int32
	D int32
}

// NumQueries returns |Q|, the number of hyperedges.
func (g *Bipartite) NumQueries() int { return g.numQ }

// NumData returns |D|, the number of data vertices.
func (g *Bipartite) NumData() int { return g.numD }

// NumEdges returns |E|, the number of incidences (sum of hyperedge sizes).
func (g *Bipartite) NumEdges() int64 { return int64(len(g.qAdj)) }

// QueryNeighbors returns the data vertices of hyperedge q as a shared slice;
// callers must not modify it.
func (g *Bipartite) QueryNeighbors(q int32) []int32 {
	return g.qAdj[g.qOff[q]:g.qOff[q+1]]
}

// DataNeighbors returns the queries adjacent to data vertex d as a shared
// slice; callers must not modify it.
func (g *Bipartite) DataNeighbors(d int32) []int32 {
	return g.dAdj[g.dOff[d]:g.dOff[d+1]]
}

// QueryDegree returns the size of hyperedge q.
func (g *Bipartite) QueryDegree(q int32) int {
	return int(g.qOff[q+1] - g.qOff[q])
}

// DataDegree returns the number of hyperedges containing data vertex d.
func (g *Bipartite) DataDegree(d int32) int {
	return int(g.dOff[d+1] - g.dOff[d])
}

// DataWeight returns the weight of data vertex d (1 if unweighted).
func (g *Bipartite) DataWeight(d int32) int32 {
	if g.dWeight == nil {
		return 1
	}
	return g.dWeight[d]
}

// Weighted reports whether the graph carries non-unit data-vertex weights.
func (g *Bipartite) Weighted() bool { return g.dWeight != nil }

// QueryWeight returns the weight of hyperedge q (1 if unweighted).
func (g *Bipartite) QueryWeight(q int32) int32 {
	if g.qWeight == nil {
		return 1
	}
	return g.qWeight[q]
}

// QueryWeighted reports whether the graph carries non-unit query weights.
func (g *Bipartite) QueryWeighted() bool { return g.qWeight != nil }

// TotalQueryWeight returns the sum of query weights.
func (g *Bipartite) TotalQueryWeight() int64 {
	if g.qWeight == nil {
		return int64(g.numQ)
	}
	var sum int64
	for _, w := range g.qWeight {
		sum += int64(w)
	}
	return sum
}

// TotalDataWeight returns the sum of data vertex weights.
func (g *Bipartite) TotalDataWeight() int64 {
	if g.dWeight == nil {
		return int64(g.numD)
	}
	var sum int64
	for _, w := range g.dWeight {
		sum += int64(w)
	}
	return sum
}

// MaxQueryDegree returns the largest hyperedge size (0 for empty graphs).
// The value is cached at construction time.
func (g *Bipartite) MaxQueryDegree() int { return g.maxQDeg }

// computeMaxQueryDegree rescans qOff; called whenever the forward CSR is
// (re)assembled.
func (g *Bipartite) computeMaxQueryDegree() {
	maxDeg := 0
	for q := 0; q < g.numQ; q++ {
		if d := int(g.qOff[q+1] - g.qOff[q]); d > maxDeg {
			maxDeg = d
		}
	}
	g.maxQDeg = maxDeg
}

// Edges returns all incidences. Intended for tests and small graphs.
func (g *Bipartite) Edges() []Edge {
	out := make([]Edge, 0, len(g.qAdj))
	for q := 0; q < g.numQ; q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			out = append(out, Edge{Q: int32(q), D: d})
		}
	}
	return out
}

// Stats summarizes the graph for dataset tables.
type Stats struct {
	NumQueries   int
	NumData      int
	NumEdges     int64
	AvgQueryDeg  float64
	MaxQueryDeg  int
	AvgDataDeg   float64
	MaxDataDeg   int
	IsolatedData int // data vertices in no hyperedge
}

// ComputeStats scans the graph once and returns summary statistics.
func (g *Bipartite) ComputeStats() Stats {
	s := Stats{NumQueries: g.numQ, NumData: g.numD, NumEdges: g.NumEdges()}
	for q := 0; q < g.numQ; q++ {
		if d := g.QueryDegree(int32(q)); d > s.MaxQueryDeg {
			s.MaxQueryDeg = d
		}
	}
	for d := 0; d < g.numD; d++ {
		deg := g.DataDegree(int32(d))
		if deg > s.MaxDataDeg {
			s.MaxDataDeg = deg
		}
		if deg == 0 {
			s.IsolatedData++
		}
	}
	if g.numQ > 0 {
		s.AvgQueryDeg = float64(s.NumEdges) / float64(g.numQ)
	}
	if g.numD > 0 {
		s.AvgDataDeg = float64(s.NumEdges) / float64(g.numD)
	}
	return s
}

// Validate checks internal CSR invariants. It is used by tests and by the
// file loaders; a healthy Build never produces an invalid graph.
func (g *Bipartite) Validate() error {
	if len(g.qOff) != g.numQ+1 || len(g.dOff) != g.numD+1 {
		return errors.New("hypergraph: offset array length mismatch")
	}
	if g.qOff[0] != 0 || g.dOff[0] != 0 {
		return errors.New("hypergraph: offsets must start at 0")
	}
	if g.qOff[g.numQ] != int64(len(g.qAdj)) || g.dOff[g.numD] != int64(len(g.dAdj)) {
		return errors.New("hypergraph: offsets must end at adjacency length")
	}
	if len(g.qAdj) != len(g.dAdj) {
		return fmt.Errorf("hypergraph: asymmetric edge counts %d vs %d", len(g.qAdj), len(g.dAdj))
	}
	for q := 0; q < g.numQ; q++ {
		if g.qOff[q] > g.qOff[q+1] {
			return fmt.Errorf("hypergraph: decreasing query offsets at %d", q)
		}
		prev := int32(-1)
		for _, d := range g.QueryNeighbors(int32(q)) {
			if d < 0 || int(d) >= g.numD {
				return fmt.Errorf("hypergraph: query %d references data %d out of range", q, d)
			}
			if d <= prev {
				return fmt.Errorf("hypergraph: query %d adjacency not strictly sorted", q)
			}
			prev = d
		}
	}
	for d := 0; d < g.numD; d++ {
		if g.dOff[d] > g.dOff[d+1] {
			return fmt.Errorf("hypergraph: decreasing data offsets at %d", d)
		}
		prev := int32(-1)
		for _, q := range g.DataNeighbors(int32(d)) {
			if q < 0 || int(q) >= g.numQ {
				return fmt.Errorf("hypergraph: data %d references query %d out of range", d, q)
			}
			if q <= prev {
				return fmt.Errorf("hypergraph: data %d adjacency not strictly sorted", d)
			}
			prev = q
		}
	}
	if g.dWeight != nil {
		if len(g.dWeight) != g.numD {
			return errors.New("hypergraph: weight array length mismatch")
		}
		for d, w := range g.dWeight {
			if w <= 0 {
				return fmt.Errorf("hypergraph: non-positive weight %d at data vertex %d", w, d)
			}
		}
	}
	if g.qWeight != nil {
		if len(g.qWeight) != g.numQ {
			return errors.New("hypergraph: query weight array length mismatch")
		}
		for q, w := range g.qWeight {
			if w <= 0 {
				return fmt.Errorf("hypergraph: non-positive weight %d at query %d", w, q)
			}
		}
	}
	return nil
}

// Builder accumulates incidences and produces an immutable Bipartite.
// Duplicate (q, d) incidences are removed by Build.
type Builder struct {
	numQ     int
	numD     int
	edges    []Edge
	weights  []int32
	qWeights []int32
}

// NewBuilder creates a builder for a graph with the given vertex counts.
func NewBuilder(numQueries, numData int) *Builder {
	return &Builder{numQ: numQueries, numD: numData}
}

// AddEdge records that hyperedge q contains data vertex d.
func (b *Builder) AddEdge(q, d int32) *Builder {
	b.edges = append(b.edges, Edge{Q: q, D: d})
	return b
}

// AddHyperedge records that hyperedge q contains all the given data vertices.
func (b *Builder) AddHyperedge(q int32, data ...int32) *Builder {
	for _, d := range data {
		b.AddEdge(q, d)
	}
	return b
}

// SetDataWeights attaches per-data-vertex weights (length must be numData).
func (b *Builder) SetDataWeights(w []int32) *Builder {
	b.weights = w
	return b
}

// SetQueryWeights attaches per-hyperedge weights (length must be
// numQueries).
func (b *Builder) SetQueryWeights(w []int32) *Builder {
	b.qWeights = w
	return b
}

// Build validates ids, deduplicates incidences, and assembles CSR in both
// directions. The builder can be reused afterwards.
func (b *Builder) Build() (*Bipartite, error) {
	if b.numQ < 0 || b.numD < 0 {
		return nil, errors.New("hypergraph: negative vertex count")
	}
	for _, e := range b.edges {
		if e.Q < 0 || int(e.Q) >= b.numQ {
			return nil, fmt.Errorf("hypergraph: query id %d out of range [0,%d)", e.Q, b.numQ)
		}
		if e.D < 0 || int(e.D) >= b.numD {
			return nil, fmt.Errorf("hypergraph: data id %d out of range [0,%d)", e.D, b.numD)
		}
	}
	if b.weights != nil && len(b.weights) != b.numD {
		return nil, fmt.Errorf("hypergraph: %d weights for %d data vertices", len(b.weights), b.numD)
	}
	if b.qWeights != nil && len(b.qWeights) != b.numQ {
		return nil, fmt.Errorf("hypergraph: %d query weights for %d queries", len(b.qWeights), b.numQ)
	}
	g := &Bipartite{numQ: b.numQ, numD: b.numD}
	if b.weights != nil {
		g.dWeight = make([]int32, b.numD)
		copy(g.dWeight, b.weights)
	}
	if b.qWeights != nil {
		g.qWeight = make([]int32, b.numQ)
		copy(g.qWeight, b.qWeights)
	}

	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Q != edges[j].Q {
			return edges[i].Q < edges[j].Q
		}
		return edges[i].D < edges[j].D
	})
	// Deduplicate.
	uniq := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	edges = uniq

	g.qOff = make([]int64, b.numQ+1)
	g.qAdj = make([]int32, len(edges))
	for _, e := range edges {
		g.qOff[e.Q+1]++
	}
	for q := 0; q < b.numQ; q++ {
		g.qOff[q+1] += g.qOff[q]
	}
	for i, e := range edges {
		g.qAdj[i] = e.D // edges sorted by (Q, D): positions align with qOff
		_ = i
	}

	// Reverse CSR via counting sort on data id.
	g.dOff = make([]int64, b.numD+1)
	g.dAdj = make([]int32, len(edges))
	for _, e := range edges {
		g.dOff[e.D+1]++
	}
	for d := 0; d < b.numD; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	cursor := make([]int64, b.numD)
	copy(cursor, g.dOff[:b.numD])
	for _, e := range edges { // edges sorted by Q, so each dAdj list ends up sorted by Q
		g.dAdj[cursor[e.D]] = e.Q
		cursor[e.D]++
	}
	g.computeMaxQueryDegree()
	return g, nil
}

// FromEdges is a convenience constructor from an incidence list.
func FromEdges(numQueries, numData int, edges []Edge) (*Bipartite, error) {
	b := NewBuilder(numQueries, numData)
	b.edges = append(b.edges, edges...)
	return b.Build()
}

// FromHyperedges builds a graph from explicit hyperedge vertex lists. The
// number of data vertices is inferred as max id + 1 unless numData is larger.
func FromHyperedges(numData int, hyperedges [][]int32) (*Bipartite, error) {
	maxD := numData - 1
	total := 0
	for _, he := range hyperedges {
		total += len(he)
		for _, d := range he {
			if int(d) > maxD {
				maxD = int(d)
			}
		}
	}
	b := NewBuilder(len(hyperedges), maxD+1)
	b.edges = make([]Edge, 0, total)
	for q, he := range hyperedges {
		for _, d := range he {
			b.AddEdge(int32(q), d)
		}
	}
	return b.Build()
}

// PruneTrivialQueries returns a graph with hyperedges of size < minDegree
// removed (the paper removes isolated and degree-one queries, which have
// fanout 1 under every partition and only add noise to the objective).
// Data vertices are preserved, including any that become isolated.
func PruneTrivialQueries(g *Bipartite, minDegree int) *Bipartite {
	keep := make([]int32, 0, g.numQ)
	for q := 0; q < g.numQ; q++ {
		if g.QueryDegree(int32(q)) >= minDegree {
			keep = append(keep, int32(q))
		}
	}
	if len(keep) == g.numQ {
		return g
	}
	out := &Bipartite{numQ: len(keep), numD: g.numD, dWeight: g.dWeight}
	if g.qWeight != nil {
		out.qWeight = make([]int32, len(keep))
		for i, q := range keep {
			out.qWeight[i] = g.qWeight[q]
		}
	}
	out.qOff = make([]int64, len(keep)+1)
	var total int64
	for i, q := range keep {
		total += int64(g.QueryDegree(q))
		out.qOff[i+1] = total
	}
	out.qAdj = make([]int32, total)
	par.For(len(keep), 0, func(start, end int) {
		for i := start; i < end; i++ {
			copy(out.qAdj[out.qOff[i]:out.qOff[i+1]], g.QueryNeighbors(keep[i]))
		}
	})
	out.rebuildReverse()
	return out
}

// InducedByData returns the subgraph induced by the given data vertices:
// data vertices are relabeled 0..len(dataIDs)-1 in the given order, and only
// hyperedges with at least minQueryDegree members inside the subset are kept
// (relabeled densely). It returns the subgraph and the kept original query
// ids aligned with the new query ids.
//
// This is the substrate for recursive bisection: each recursion step operates
// on the compact induced problem (Section 3.3, "Recursive partitioning").
func (g *Bipartite) InducedByData(dataIDs []int32, minQueryDegree int) (*Bipartite, []int32) {
	dmap := make([]int32, g.numD)
	for i := range dmap {
		dmap[i] = -1
	}
	// When dataIDs is strictly increasing (the recursive partitioner always
	// passes monotone subsets), dmap preserves order and the filtered
	// adjacency lists come out sorted for free.
	monotone := true
	for newID, d := range dataIDs {
		dmap[d] = int32(newID)
		if newID > 0 && d <= dataIDs[newID-1] {
			monotone = false
		}
	}
	// Count per-query membership inside the subset.
	qCount := make([]int32, g.numQ)
	for _, d := range dataIDs {
		for _, q := range g.DataNeighbors(d) {
			qCount[q]++
		}
	}
	keptQ := make([]int32, 0)
	for q := 0; q < g.numQ; q++ {
		if int(qCount[q]) >= minQueryDegree {
			keptQ = append(keptQ, int32(q))
		}
	}
	out := &Bipartite{numQ: len(keptQ), numD: len(dataIDs)}
	if g.dWeight != nil {
		out.dWeight = make([]int32, len(dataIDs))
		for i, d := range dataIDs {
			out.dWeight[i] = g.dWeight[d]
		}
	}
	if g.qWeight != nil {
		out.qWeight = make([]int32, len(keptQ))
		for i, q := range keptQ {
			out.qWeight[i] = g.qWeight[q]
		}
	}
	out.qOff = make([]int64, len(keptQ)+1)
	var total int64
	for i, q := range keptQ {
		total += int64(qCount[q])
		out.qOff[i+1] = total
	}
	out.qAdj = make([]int32, total)
	par.For(len(keptQ), 0, func(start, end int) {
		for i := start; i < end; i++ {
			q := keptQ[i]
			dst := out.qAdj[out.qOff[i]:out.qOff[i+1]]
			n := 0
			for _, d := range g.QueryNeighbors(q) {
				if nd := dmap[d]; nd >= 0 {
					dst[n] = nd
					n++
				}
			}
			if !monotone {
				// dmap is order-dependent, so re-sort for the CSR invariant.
				sort.Slice(dst, func(a, b int) bool { return dst[a] < dst[b] })
			}
		}
	})
	out.rebuildReverse()
	return out, keptQ
}

// rebuildReverse recomputes the data->query CSR from the query->data CSR,
// along with the cached maximum query degree.
func (g *Bipartite) rebuildReverse() {
	g.computeMaxQueryDegree()
	g.dOff = make([]int64, g.numD+1)
	g.dAdj = make([]int32, len(g.qAdj))
	for _, d := range g.qAdj {
		g.dOff[d+1]++
	}
	for d := 0; d < g.numD; d++ {
		g.dOff[d+1] += g.dOff[d]
	}
	cursor := make([]int64, g.numD)
	copy(cursor, g.dOff[:g.numD])
	for q := 0; q < g.numQ; q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			g.dAdj[cursor[d]] = int32(q)
			cursor[d]++
		}
	}
}
