package hypergraph

import (
	"reflect"
	"sort"
	"testing"

	"shp/internal/rng"
)

// rebuildFromScratch constructs a compact graph with the same id space and
// live edge set as g: removed hyperedges stay as empty queries, so the two
// graphs are comparable vertex by vertex.
func rebuildFromScratch(t *testing.T, g *Bipartite) *Bipartite {
	t.Helper()
	b := NewBuilder(g.NumQueries(), g.NumData())
	for q := 0; q < g.NumQueries(); q++ {
		for _, d := range g.QueryNeighbors(int32(q)) {
			b.AddEdge(int32(q), d)
		}
	}
	if g.Weighted() {
		w := make([]int32, g.NumData())
		for d := range w {
			w[d] = g.DataWeight(int32(d))
		}
		b.SetDataWeights(w)
	}
	if g.QueryWeighted() {
		w := make([]int32, g.NumQueries())
		for q := range w {
			w[q] = g.QueryWeight(int32(q))
		}
		b.SetQueryWeights(w)
	}
	fresh, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return fresh
}

// assertEdgeIdentical fails unless the two graphs have identical dimensions,
// live edge sets, weights, and degree structure.
func assertEdgeIdentical(t *testing.T, got, want *Bipartite) {
	t.Helper()
	if got.NumQueries() != want.NumQueries() || got.NumData() != want.NumData() {
		t.Fatalf("dimensions differ: %dx%d vs %dx%d",
			got.NumQueries(), got.NumData(), want.NumQueries(), want.NumData())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", got.NumEdges(), want.NumEdges())
	}
	for q := 0; q < got.NumQueries(); q++ {
		if !reflect.DeepEqual(got.QueryNeighbors(int32(q)), want.QueryNeighbors(int32(q))) {
			t.Fatalf("query %d members differ: %v vs %v",
				q, got.QueryNeighbors(int32(q)), want.QueryNeighbors(int32(q)))
		}
		if got.QueryWeight(int32(q)) != want.QueryWeight(int32(q)) {
			t.Fatalf("query %d weight differs", q)
		}
	}
	for d := 0; d < got.NumData(); d++ {
		if !reflect.DeepEqual(got.DataNeighbors(int32(d)), want.DataNeighbors(int32(d))) {
			t.Fatalf("data %d adjacency differs: %v vs %v",
				d, got.DataNeighbors(int32(d)), want.DataNeighbors(int32(d)))
		}
		if got.DataWeight(int32(d)) != want.DataWeight(int32(d)) {
			t.Fatalf("data %d weight differs", d)
		}
	}
	if got.MaxQueryDegree() != want.MaxQueryDegree() {
		t.Fatalf("max query degree differs: %d vs %d", got.MaxQueryDegree(), want.MaxQueryDegree())
	}
	if got.ComputeStats() != want.ComputeStats() {
		t.Fatalf("stats differ: %+v vs %+v", got.ComputeStats(), want.ComputeStats())
	}
}

func smallGraph(t *testing.T) *Bipartite {
	t.Helper()
	g, err := FromHyperedges(6, [][]int32{{0, 1, 5}, {0, 1, 2, 3}, {3, 4, 5}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyDeltaBasicOps(t *testing.T) {
	g := smallGraph(t)
	if g.Version() != 0 {
		t.Fatalf("fresh graph has version %d", g.Version())
	}

	d := NewDelta(g.NumQueries(), g.NumData())
	nv := d.AddData(1)
	if nv != 6 {
		t.Fatalf("new data id %d, want 6", nv)
	}
	nq := d.AddHyperedge(nv, 0, 4)
	if nq != 4 {
		t.Fatalf("new query id %d, want 4", nq)
	}
	d.RemoveHyperedge(1)
	d.SetDataWeight(2, 3)

	if err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if g.Version() != 4 {
		t.Fatalf("version %d after 4 ops", g.Version())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.QueryDegree(1) != 0 {
		t.Fatalf("removed hyperedge has degree %d", g.QueryDegree(1))
	}
	if got := g.QueryNeighbors(4); !reflect.DeepEqual(got, []int32{0, 4, 6}) {
		t.Fatalf("new hyperedge members %v", got)
	}
	if g.DataWeight(2) != 3 || g.DataWeight(0) != 1 {
		t.Fatal("weights not applied")
	}
	assertEdgeIdentical(t, g, rebuildFromScratch(t, g))
}

func TestApplyDeltaAtomicOnError(t *testing.T) {
	g := smallGraph(t)
	d := NewDelta(g.NumQueries(), g.NumData())
	d.AddHyperedge(0, 1)
	d.AddHyperedge(99) // out of range
	if err := g.ApplyDelta(d); err == nil {
		t.Fatal("expected error for out-of-range member")
	}
	if g.Version() != 0 || g.NumQueries() != 4 {
		t.Fatal("failed delta must not mutate the graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Base mismatch is rejected too.
	stale := NewDelta(g.NumQueries()-1, g.NumData())
	stale.RemoveHyperedge(0)
	if err := g.ApplyDelta(stale); err == nil {
		t.Fatal("expected error for base mismatch")
	}
}

func TestApplyDeltaRandomizedEquivalence(t *testing.T) {
	r := rng.New(7)
	g, err := FromHyperedges(50, func() [][]int32 {
		hes := make([][]int32, 120)
		for i := range hes {
			deg := 2 + r.Intn(6)
			for j := 0; j < deg; j++ {
				hes[i] = append(hes[i], int32(r.Intn(50)))
			}
		}
		return hes
	}())
	if err != nil {
		t.Fatal(err)
	}
	live := make([]int32, 0, g.NumQueries())
	for q := 0; q < g.NumQueries(); q++ {
		live = append(live, int32(q))
	}
	for round := 0; round < 20; round++ {
		d := NewDelta(g.NumQueries(), g.NumData())
		newD := make([]int32, 0, 2)
		for i := 0; i < r.Intn(3); i++ {
			newD = append(newD, d.AddData(int32(1+r.Intn(3))))
		}
		for i := 0; i < 1+r.Intn(5); i++ {
			switch r.Intn(3) {
			case 0: // remove a random live hyperedge
				if len(live) == 0 {
					continue
				}
				j := r.Intn(len(live))
				d.RemoveHyperedge(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			case 1: // add a hyperedge over old and new vertices
				deg := 2 + r.Intn(5)
				ms := make([]int32, 0, deg)
				for j := 0; j < deg; j++ {
					if len(newD) > 0 && r.Intn(4) == 0 {
						ms = append(ms, newD[r.Intn(len(newD))])
					} else {
						ms = append(ms, int32(r.Intn(g.NumData())))
					}
				}
				live = append(live, d.AddHyperedge(ms...))
			default:
				d.SetDataWeight(int32(r.Intn(g.NumData())), int32(1+r.Intn(4)))
			}
		}
		if err := g.ApplyDelta(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertEdgeIdentical(t, g, rebuildFromScratch(t, g))
	}
}

func TestValidateCatchesStaleCaches(t *testing.T) {
	g := smallGraph(t)
	_ = g.ComputeStats() // populate the memo at version 0
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cached max degree: Validate must notice.
	g.maxQDeg++
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a stale max query degree")
	}
	g.maxQDeg--
	// Corrupt the stats memo without bumping the version.
	g.statsCache.NumEdges++
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted stale cached stats")
	}
	g.statsCache.NumEdges--
	// A mutation invalidates the memo by version, so Validate stays clean
	// and ComputeStats returns fresh numbers.
	before := g.ComputeStats()
	d := NewDelta(g.NumQueries(), g.NumData())
	d.RemoveHyperedge(0)
	if err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	after := g.ComputeStats()
	if after.NumEdges != before.NumEdges-3 {
		t.Fatalf("stats not refreshed after mutation: %+v", after)
	}
}

func TestCloneIsolation(t *testing.T) {
	g := smallGraph(t)
	cp := g.Clone()
	d := NewDelta(g.NumQueries(), g.NumData())
	d.RemoveHyperedge(0)
	d.AddHyperedge(2, 3)
	if err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if cp.NumQueries() != 4 || cp.NumEdges() != 12 || cp.Version() != 0 {
		t.Fatal("clone changed when the original was mutated")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// And the other direction, from a mutable-layout original.
	cp2 := g.Clone()
	d2 := NewDelta(cp2.NumQueries(), cp2.NumData())
	d2.RemoveHyperedge(2)
	if err := cp2.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if g.QueryDegree(2) == 0 {
		t.Fatal("mutating a clone affected the original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseSegmentGrowth(t *testing.T) {
	// One data vertex gains many new hyperedges, forcing repeated reverse
	// segment relocations; adjacency must stay sorted and symmetric.
	g, err := FromHyperedges(4, [][]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d := NewDelta(g.NumQueries(), g.NumData())
		d.AddHyperedge(0, int32(1+i%3))
		if err := g.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.DataDegree(0) != 41 {
		t.Fatalf("data 0 degree %d, want 41", g.DataDegree(0))
	}
	ns := g.DataNeighbors(0)
	if !sort.SliceIsSorted(ns, func(a, b int) bool { return ns[a] < ns[b] }) {
		t.Fatal("reverse adjacency lost sortedness")
	}
}
