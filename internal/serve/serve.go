// Package serve is the assignment serving plane: a partitioner embedded in
// a long-lived service that answers assign(vertex) lookups at high rate
// while the underlying graph churns.
//
// The paper's production setting (Section 5) separates the two roles this
// package joins: partitioning runs offline over the latest graph, and the
// serving tier consumes its output as an immutable routing table, swapped
// atomically when a new epoch lands. Here both live in one process: a
// core.Session owns the mutable graph and refinement state behind a mutex
// (Session is documented not safe for concurrent use), while lookups read a
// lock-free atomic pointer to an immutable Epoch snapshot. A repartition
// builds the next Epoch off to the side and publishes it with one pointer
// store, so readers never block, never see a half-written assignment, and
// every lookup is attributable to exactly one epoch id.
//
// The migration story is the serving plane's reason to exist: each swap
// invalidates the records that changed bucket, and in a real store each of
// those is a data copy. Options.Core.MigrationBudget caps that per-epoch
// traffic exactly (see core.Options); Epoch.Moved and Epoch.Migrated report
// it per swap.
package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"shp/internal/core"
	"shp/internal/gen"
	"shp/internal/hgio"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
	"shp/internal/sharding"
)

// Options configures a Service.
type Options struct {
	// Core configures the embedded partitioner. K is required; set
	// MigrationBudget to bound per-epoch migration traffic.
	Core core.Options
	// Model, when non-nil, replays the full query workload against every
	// new epoch through the sharding latency simulator and attaches the
	// Measurement to the Epoch — the serving-cost view of a swap. Costs one
	// pass over all hyperedges per epoch.
	Model *sharding.LatencyModel
	// ReplaySeed seeds the per-epoch replay (the epoch id is mixed in so
	// epochs draw distinct latencies). Only used with Model.
	ReplaySeed uint64
	// ReplayMinCount is the per-fanout minimum observation count for replay
	// percentile rows. Only used with Model.
	ReplayMinCount int
}

// Epoch is one immutable routing-table generation. Everything in it is
// fixed at swap time; lookups hold a pointer to the whole struct, so a
// reader's bucket, epoch id, and checksum are always mutually consistent.
type Epoch struct {
	// ID numbers epochs from 0, strictly increasing by 1 per swap.
	ID uint64
	// K is the bucket count.
	K int
	// Assignment maps each data vertex known at swap time to its bucket.
	// Immutable by contract: the service never writes it after the swap,
	// and callers must not either.
	Assignment partition.Assignment
	// Moved counts records whose bucket differs from the previous epoch
	// (vertices new in this epoch are placements, not moves, and are not
	// counted) — the data copies this swap causes downstream.
	Moved int64
	// Migrated is the engine's own budget accounting for the epoch
	// (core.Result.Migrated): it additionally charges refining a just-placed
	// new vertex off its placement spot, so Moved <= Migrated <=
	// MigrationBudget whenever a budget is set. 0 when no budget is set.
	Migrated int64
	// Fanout is the average query fanout under this epoch's assignment.
	Fanout float64
	// Checksum folds the assignment through rng.Mix; a torn or stale read
	// of Assignment cannot reproduce it. Race tests verify lookups against
	// it.
	Checksum uint64
	// SwappedAt is the wall-clock publication time (telemetry only).
	SwappedAt time.Time
	// Replay is the sharding-simulator measurement of the full workload
	// against this epoch; nil unless Options.Model is set.
	Replay *sharding.Measurement
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Epoch is the current epoch id; Swaps is the number of epochs
	// published (Epoch + 1).
	Epoch uint64 `json:"epoch"`
	Swaps uint64 `json:"swaps"`
	// Lookups counts Assign calls since start; LookupErrors the subset that
	// missed (vertex outside the snapshot).
	Lookups      uint64 `json:"lookups"`
	LookupErrors uint64 `json:"lookup_errors"`
	// Sampled is the number of lookups with a latency measurement (1 in 64).
	Sampled uint64 `json:"sampled"`
	// P50 and P99 are sampled lookup latencies in nanoseconds (0 until
	// enough samples exist).
	P50 int64 `json:"p50_ns"`
	P99 int64 `json:"p99_ns"`
	// MovedTotal sums Epoch.Moved over all swaps — cumulative migration
	// traffic since start.
	MovedTotal int64 `json:"moved_total"`
	// Records is the current epoch's assignment length.
	Records int `json:"records"`
}

// Service serves assignment lookups from an atomically swapped epoch
// snapshot while a core.Session maintains the graph behind it. Lookups
// (Assign, Current, Stats) are safe for any number of goroutines and never
// block on mutations; mutations (ApplyDelta, ApplyTrace, Repartition,
// ChurnEpoch) serialize on an internal mutex.
type Service struct {
	opts Options

	// mu guards session, churn generators handed to ChurnEpoch, and epoch
	// publication order. core.Session is not safe for concurrent use.
	mu      sync.Mutex
	session *core.Session

	current atomic.Pointer[Epoch]

	lookups      atomic.Uint64
	lookupErrors atomic.Uint64
	movedTotal   atomic.Int64
	swaps        atomic.Uint64
	hist         latencyHist
}

// New builds a Service over the graph and publishes epoch 0 (the first
// partition) before returning, so Assign never observes a nil epoch.
func New(g *hypergraph.Bipartite, opts Options) (*Service, error) {
	sess, err := core.NewSession(g, opts.Core)
	if err != nil {
		return nil, err
	}
	s := &Service{opts: opts, session: sess}
	if _, err := s.Repartition(); err != nil {
		return nil, err
	}
	return s, nil
}

// sampleMask samples 1 lookup in 64 for latency measurement: cheap enough
// to leave on at full load, dense enough for stable percentiles.
const sampleMask = 63

// Assign returns the bucket serving vertex v and the epoch id the answer
// came from. Lock-free: it reads the current epoch snapshot, so a
// concurrent swap cannot tear the answer — bucket and epoch id always
// match. Vertices added to the graph after the current epoch's swap miss
// until the next repartition publishes them.
func (s *Service) Assign(v int32) (bucket int32, epoch uint64, err error) {
	n := s.lookups.Add(1)
	sampled := n&sampleMask == 0
	var start time.Time
	if sampled {
		start = time.Now() //shp:nondet(lookup-latency telemetry only; never feeds an assignment)
	}
	ep := s.current.Load()
	if v < 0 || int(v) >= len(ep.Assignment) {
		s.lookupErrors.Add(1)
		return 0, ep.ID, fmt.Errorf("serve: vertex %d outside epoch %d snapshot (%d records)", v, ep.ID, len(ep.Assignment))
	}
	bucket = ep.Assignment[v]
	if sampled {
		s.hist.observe(time.Since(start)) //shp:nondet(lookup-latency telemetry only; never feeds an assignment)
	}
	return bucket, ep.ID, nil
}

// Current returns the live epoch snapshot. The snapshot is immutable;
// callers may hold it as long as they like.
func (s *Service) Current() *Epoch { return s.current.Load() }

// Stats snapshots the service counters. Counters are read individually, so
// a snapshot taken under load is approximate across fields but each field
// is exact.
func (s *Service) Stats() Stats {
	ep := s.current.Load()
	sampled, p50, p99 := s.hist.summary()
	return Stats{
		Epoch:        ep.ID,
		Swaps:        s.swaps.Load(),
		Lookups:      s.lookups.Load(),
		LookupErrors: s.lookupErrors.Load(),
		Sampled:      sampled,
		P50:          p50,
		P99:          p99,
		MovedTotal:   s.movedTotal.Load(),
		Records:      len(ep.Assignment),
	}
}

// ApplyDelta applies one structural delta to the graph. The change is not
// visible to lookups until the next Repartition publishes an epoch built on
// it.
func (s *Service) ApplyDelta(d *hypergraph.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.session.Apply(d)
}

// ApplyTrace reads a delta trace (hgio trace format) and applies every
// batch in order, returning the number applied. Batches already applied
// when an error occurs stay applied.
func (s *Service) ApplyTrace(r io.Reader) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.session.Graph()
	deltas, err := hgio.ReadDeltaTrace(r, g.NumQueries(), g.NumData())
	if err != nil {
		return 0, err
	}
	for i, d := range deltas {
		if err := s.session.Apply(d); err != nil {
			return i, fmt.Errorf("serve: applying trace batch %d: %w", i, err)
		}
	}
	return len(deltas), nil
}

// Repartition runs one refinement epoch over the current graph and
// atomically publishes the result as the next Epoch. Lookups switch to it
// with no interruption: requests in flight finish on the old snapshot.
func (s *Service) Repartition() (*Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repartitionLocked()
}

func (s *Service) repartitionLocked() (*Epoch, error) {
	res, err := s.session.Repartition()
	if err != nil {
		return nil, err
	}
	prev := s.current.Load()
	ep := &Epoch{
		K:          res.K,
		Assignment: res.Assignment,
		Migrated:   res.Migrated,
		Fanout:     partition.Fanout(s.session.Graph(), res.Assignment, res.K),
		Checksum:   Checksum(res.Assignment),
		SwappedAt:  time.Now(), //shp:nondet(swap timestamp telemetry only; never feeds an assignment)
	}
	if prev != nil {
		ep.ID = prev.ID + 1
		n := len(prev.Assignment)
		if len(res.Assignment) < n {
			n = len(res.Assignment)
		}
		for i := 0; i < n; i++ {
			if prev.Assignment[i] != res.Assignment[i] {
				ep.Moved++
			}
		}
	}
	if s.opts.Model != nil {
		c, err := sharding.NewCluster(res.K, res.Assignment, *s.opts.Model)
		if err != nil {
			return nil, err
		}
		m := c.ReplayQueries(s.session.Graph(), rng.Mix(s.opts.ReplaySeed, ep.ID), s.opts.ReplayMinCount)
		ep.Replay = &m
	}
	s.current.Store(ep)
	s.swaps.Add(1)
	s.movedTotal.Add(ep.Moved)
	return ep, nil
}

// NewChurn builds a churn generator over the service's graph, for driving
// synthetic epochs through ChurnEpoch. The generator shares the service's
// graph: only use it through ChurnEpoch, which holds the service lock.
func (s *Service) NewChurn(frac float64, seed uint64) (*gen.Churn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gen.NewChurn(s.session.Graph(), frac, seed)
}

// ChurnEpoch runs one full churn cycle — generate a delta batch, apply it,
// repartition, swap — under a single critical section, and returns the
// published epoch. This is the deterministic unit the background loop and
// the benchmarks both drive.
func (s *Service) ChurnEpoch(c *gen.Churn) (*Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := c.Next()
	if err != nil {
		return nil, err
	}
	if err := s.session.Apply(d); err != nil {
		return nil, err
	}
	return s.repartitionLocked()
}

// RunChurn drives ChurnEpoch on a fixed interval until ctx is done,
// reporting each published epoch (or terminal error) to each, which may be
// nil. Returns ctx.Err() on cancellation, or the first churn error.
func (s *Service) RunChurn(ctx context.Context, c *gen.Churn, interval time.Duration, each func(*Epoch)) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select { //shp:nondet(background churn pacing; epoch contents are pinned by the generator seed, only timing varies)
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		ep, err := s.ChurnEpoch(c)
		if err != nil {
			return err
		}
		if each != nil {
			each(ep)
		}
	}
}

// Checksum folds an assignment into a single value through rng.Mix,
// chaining so both bucket values and their order matter. Race tests verify
// a lookup-reconstructed assignment against the epoch's checksum: a torn
// read cannot reproduce it.
func Checksum(a partition.Assignment) uint64 {
	h := rng.Mix(0x5e4e, uint64(len(a)))
	for _, b := range a {
		h = rng.Mix(h, uint64(uint32(b)))
	}
	return h
}
