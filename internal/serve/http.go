package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler exposes the service over HTTP:
//
//	GET  /assign?v=ID        bucket serving vertex ID, with the epoch id
//	GET  /epoch              current epoch metadata (no assignment body)
//	GET  /stats              service counters (Stats)
//	POST /delta              apply a delta trace (hgio trace format) from
//	                         the request body; ?repartition=1 publishes a
//	                         new epoch immediately after
//	POST /repartition        run one epoch and swap
//
// Lookup endpoints never block behind mutations; mutation endpoints
// serialize with each other.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /assign", s.handleAssign)
	mux.HandleFunc("GET /epoch", s.handleEpoch)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /delta", s.handleDelta)
	mux.HandleFunc("POST /repartition", s.handleRepartition)
	return mux
}

// assignReply is the /assign response body.
type assignReply struct {
	Vertex int32  `json:"vertex"`
	Bucket int32  `json:"bucket"`
	Epoch  uint64 `json:"epoch"`
}

// epochReply is the /epoch and /repartition response body: Epoch metadata
// without the assignment (which can be millions of records).
type epochReply struct {
	ID       uint64  `json:"id"`
	K        int     `json:"k"`
	Records  int     `json:"records"`
	Moved    int64   `json:"moved"`
	Migrated int64   `json:"migrated"`
	Fanout   float64 `json:"fanout"`
	Checksum uint64  `json:"checksum"`
	// SwappedAt is RFC 3339 with nanoseconds; telemetry only.
	SwappedAt string `json:"swapped_at"`
	// AvgReplayLatency is the mean simulated query latency (units of t)
	// when the service replays workloads per epoch; 0 otherwise.
	AvgReplayLatency float64 `json:"avg_replay_latency,omitempty"`
	AvgReplayFanout  float64 `json:"avg_replay_fanout,omitempty"`
}

func newEpochReply(ep *Epoch) epochReply {
	r := epochReply{
		ID:        ep.ID,
		K:         ep.K,
		Records:   len(ep.Assignment),
		Moved:     ep.Moved,
		Migrated:  ep.Migrated,
		Fanout:    ep.Fanout,
		Checksum:  ep.Checksum,
		SwappedAt: ep.SwappedAt.Format("2006-01-02T15:04:05.999999999Z07:00"),
	}
	if ep.Replay != nil {
		r.AvgReplayLatency = ep.Replay.AvgLat
		r.AvgReplayFanout = ep.Replay.AvgFanout
	}
	return r
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode error means the client hung up mid-response; there is no
	// one left to report it to.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (s *Service) handleAssign(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("v")
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad vertex %q: %w", raw, err))
		return
	}
	bucket, epoch, err := s.Assign(int32(v))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, assignReply{Vertex: int32(v), Bucket: bucket, Epoch: epoch})
}

func (s *Service) handleEpoch(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, newEpochReply(s.Current()))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleDelta(w http.ResponseWriter, r *http.Request) {
	applied, err := s.ApplyTrace(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reply := struct {
		Applied int    `json:"applied"`
		Epoch   uint64 `json:"epoch"`
	}{Applied: applied, Epoch: s.Current().ID}
	if r.URL.Query().Get("repartition") == "1" {
		ep, err := s.Repartition()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		reply.Epoch = ep.ID
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleRepartition(w http.ResponseWriter, r *http.Request) {
	ep, err := s.Repartition()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, newEpochReply(ep))
}
