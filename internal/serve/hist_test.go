package serve

import (
	"testing"
	"time"
)

func TestBinIndexMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, 1, 2, 3, 4, 7, 8, 100, time.Microsecond,
		1500, 10 * time.Microsecond, time.Millisecond, time.Second, time.Hour} {
		idx := binIndex(d)
		if idx < prev {
			t.Fatalf("binIndex(%v) = %d below previous %d", d, idx, prev)
		}
		if idx < 0 || idx >= histOctaves*histSub {
			t.Fatalf("binIndex(%v) = %d out of range", d, idx)
		}
		prev = idx
	}
	if binIndex(1000*time.Hour) != histOctaves*histSub-1 {
		t.Fatal("huge duration should clamp to the last bin")
	}
}

func TestBinValueBracketsInput(t *testing.T) {
	for ns := int64(1); ns < int64(time.Minute); ns = ns*5 + 3 {
		d := time.Duration(ns)
		lo := binValue(binIndex(d))
		// The representative is the bin's lower bound; log-linear bins are
		// at most 25% wide, so the input is within [lo, 1.25*lo].
		if lo > ns || ns > lo+lo/4+1 {
			t.Fatalf("duration %d landed in bin starting %d", ns, lo)
		}
	}
}

func TestHistSummaryQuantiles(t *testing.T) {
	var h latencyHist
	if n, _, _ := h.summary(); n != 0 {
		t.Fatal("empty histogram reports samples")
	}
	// 99 fast observations, 1 slow: p50 fast, p99 slow.
	for i := 0; i < 99; i++ {
		h.observe(100 * time.Nanosecond)
	}
	h.observe(time.Millisecond)
	n, p50, p99 := h.summary()
	if n != 100 {
		t.Fatalf("samples = %d", n)
	}
	if p50 > 200 {
		t.Fatalf("p50 = %dns for a fast-dominated distribution", p50)
	}
	if p99 < int64(time.Millisecond)/2 {
		t.Fatalf("p99 = %dns should reflect the slow tail", p99)
	}
}
