package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, h http.Handler, method, target, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, target, w.Body.String(), err)
		}
	}
	return w
}

func TestHTTPAssign(t *testing.T) {
	s := testService(t, 31, 0)
	h := s.Handler()
	ep := s.Current()

	var reply assignReply
	if w := doJSON(t, h, "GET", "/assign?v=5", "", &reply); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if reply.Vertex != 5 || reply.Bucket != ep.Assignment[5] || reply.Epoch != ep.ID {
		t.Fatalf("reply %+v does not match snapshot", reply)
	}
	if w := doJSON(t, h, "GET", "/assign?v=notanumber", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage vertex: status %d", w.Code)
	}
	if w := doJSON(t, h, "GET", "/assign?v=99999999", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("out-of-snapshot vertex: status %d", w.Code)
	}
}

func TestHTTPEpochAndStats(t *testing.T) {
	s := testService(t, 32, 0)
	h := s.Handler()

	var ep epochReply
	doJSON(t, h, "GET", "/epoch", "", &ep)
	cur := s.Current()
	if ep.ID != cur.ID || ep.Records != len(cur.Assignment) || ep.Checksum != cur.Checksum {
		t.Fatalf("epoch reply %+v does not match Current()", ep)
	}
	doJSON(t, h, "GET", "/assign?v=0", "", nil)
	var st Stats
	doJSON(t, h, "GET", "/stats", "", &st)
	if st.Lookups == 0 || st.Swaps != 1 {
		t.Fatalf("stats %+v after one lookup and one swap", st)
	}
}

func TestHTTPRepartition(t *testing.T) {
	s := testService(t, 33, 0)
	h := s.Handler()
	var ep epochReply
	if w := doJSON(t, h, "POST", "/repartition", "", &ep); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ep.ID != 1 {
		t.Fatalf("repartition published epoch %d, want 1", ep.ID)
	}
	if s.Current().ID != 1 {
		t.Fatal("swap not visible to lookups")
	}
}

func TestHTTPDelta(t *testing.T) {
	s := testService(t, 34, 0)
	h := s.Handler()

	// One batch adding a hyperedge over existing data vertices. The change
	// is invisible until a repartition.
	trace := "addq 1 0 1 2\ncommit\n"
	var reply struct {
		Applied int    `json:"applied"`
		Epoch   uint64 `json:"epoch"`
	}
	if w := doJSON(t, h, "POST", "/delta", trace, &reply); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if reply.Applied != 1 || reply.Epoch != 0 {
		t.Fatalf("reply %+v, want 1 batch applied and epoch still 0", reply)
	}

	// Same again with an immediate repartition: the epoch advances.
	if w := doJSON(t, h, "POST", "/delta?repartition=1", trace, &reply); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if reply.Epoch != 1 {
		t.Fatalf("delta+repartition left epoch at %d", reply.Epoch)
	}

	if w := doJSON(t, h, "POST", "/delta", "addq not a trace\n", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace: status %d", w.Code)
	}
}
