package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log-linear histogram of lookup latencies:
// one octave per power-of-two nanosecond range, four linear sub-buckets per
// octave (~19% relative resolution), atomic counters throughout. Writers
// only ever Add; readers sum a snapshot. Both sides are wait-free, which is
// the point — latency telemetry must not perturb the latencies it measures.
type latencyHist struct {
	// bins[e*histSub+s] counts samples with bit length e+1 and sub-bucket s.
	// 40 octaves cover 1ns through ~18 minutes; anything longer clamps into
	// the last bin.
	bins [histOctaves * histSub]atomic.Uint64
}

const (
	histOctaves = 40
	histSub     = 4
)

// binIndex maps a duration to its bin.
func binIndex(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	e := bits.Len64(ns) - 1 // octave: floor(log2 ns)
	s := 0
	if e >= 2 {
		s = int((ns >> (uint(e) - 2)) & 3) // top-two mantissa bits
	}
	idx := e*histSub + s
	if idx >= histOctaves*histSub {
		idx = histOctaves*histSub - 1
	}
	return idx
}

// binValue is the representative (lower-bound) duration of a bin.
func binValue(idx int) int64 {
	e := idx / histSub
	s := idx % histSub
	v := int64(1) << uint(e)
	if e >= 2 {
		v += int64(s) << (uint(e) - 2)
	}
	return v
}

func (h *latencyHist) observe(d time.Duration) {
	h.bins[binIndex(d)].Add(1)
}

// summary returns the sample count and the p50/p99 latencies in
// nanoseconds (bin lower bounds; zero when empty). The snapshot is not
// atomic across bins — percentiles under load are approximate by up to the
// samples that land mid-scan, which telemetry tolerates.
func (h *latencyHist) summary() (samples uint64, p50, p99 int64) {
	var counts [histOctaves * histSub]uint64
	var total uint64
	for i := range h.bins {
		counts[i] = h.bins[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0, 0, 0
	}
	quantile := func(q float64) int64 {
		target := uint64(q * float64(total))
		if target >= total {
			target = total - 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen > target {
				return binValue(i)
			}
		}
		return binValue(len(counts) - 1)
	}
	return total, quantile(0.50), quantile(0.99)
}
