package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"shp/internal/core"
	"shp/internal/gen"
	"shp/internal/rng"
)

// testService builds a small social workload service; budget 0 means no
// migration budget.
func testService(t *testing.T, seed uint64, budget int64) *Service {
	t.Helper()
	g, err := gen.SocialEgoNets(600, 10, 40, 0.85, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Options{Core: core.Options{K: 8, Direct: true, Seed: seed, MigrationBudget: budget}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewPublishesEpochZero(t *testing.T) {
	s := testService(t, 21, 0)
	ep := s.Current()
	if ep == nil {
		t.Fatal("no epoch published")
	}
	if ep.ID != 0 {
		t.Fatalf("first epoch id = %d", ep.ID)
	}
	if ep.Moved != 0 {
		t.Fatalf("epoch 0 reports %d moved records; there is no previous epoch to move from", ep.Moved)
	}
	if err := ep.Assignment.Validate(ep.K); err != nil {
		t.Fatal(err)
	}
	if Checksum(ep.Assignment) != ep.Checksum {
		t.Fatal("epoch checksum does not match its assignment")
	}
	if ep.Fanout <= 1 {
		t.Fatalf("implausible fanout %v", ep.Fanout)
	}
}

func TestAssignMatchesSnapshot(t *testing.T) {
	s := testService(t, 22, 0)
	ep := s.Current()
	for v := int32(0); v < int32(len(ep.Assignment)); v += 7 {
		b, id, err := s.Assign(v)
		if err != nil {
			t.Fatal(err)
		}
		if b != ep.Assignment[v] || id != ep.ID {
			t.Fatalf("Assign(%d) = (%d, %d), snapshot says (%d, %d)", v, b, id, ep.Assignment[v], ep.ID)
		}
	}
	if _, _, err := s.Assign(int32(len(ep.Assignment))); err == nil {
		t.Fatal("out-of-snapshot vertex should miss")
	}
	if _, _, err := s.Assign(-1); err == nil {
		t.Fatal("negative vertex should miss")
	}
	st := s.Stats()
	if st.LookupErrors != 2 {
		t.Fatalf("LookupErrors = %d, want 2", st.LookupErrors)
	}
	if st.Lookups < 2 {
		t.Fatalf("Lookups = %d", st.Lookups)
	}
}

func TestChurnEpochsAdvanceAndAccount(t *testing.T) {
	const budget = 30
	s := testService(t, 23, budget)
	c, err := s.NewChurn(0.05, 24)
	if err != nil {
		t.Fatal(err)
	}
	var movedTotal int64
	for e := 1; e <= 5; e++ {
		ep, err := s.ChurnEpoch(c)
		if err != nil {
			t.Fatal(err)
		}
		if ep.ID != uint64(e) {
			t.Fatalf("epoch id %d after %d churn cycles", ep.ID, e)
		}
		if ep.Migrated > budget {
			t.Fatalf("epoch %d: Migrated %d over budget %d", e, ep.Migrated, budget)
		}
		if ep.Moved > ep.Migrated {
			t.Fatalf("epoch %d: Moved %d exceeds engine accounting %d", e, ep.Moved, ep.Migrated)
		}
		if err := ep.Assignment.Validate(ep.K); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		movedTotal += ep.Moved
	}
	st := s.Stats()
	if st.Swaps != 6 || st.Epoch != 5 {
		t.Fatalf("Swaps = %d, Epoch = %d after 5 churn cycles", st.Swaps, st.Epoch)
	}
	if st.MovedTotal != movedTotal {
		t.Fatalf("MovedTotal = %d, epochs sum to %d", st.MovedTotal, movedTotal)
	}
}

func TestServiceDeterministicAcrossInstances(t *testing.T) {
	run := func() []uint64 {
		s := testService(t, 25, 50)
		c, err := s.NewChurn(0.04, 26)
		if err != nil {
			t.Fatal(err)
		}
		sums := []uint64{s.Current().Checksum}
		for e := 0; e < 3; e++ {
			ep, err := s.ChurnEpoch(c)
			if err != nil {
				t.Fatal(err)
			}
			sums = append(sums, ep.Checksum)
		}
		return sums
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d checksum differs across identical runs: %x vs %x", i, a[i], b[i])
		}
	}
}

// TestConcurrentLookupsAcrossSwaps hammers Assign from several goroutines
// while the main goroutine drives churn epochs through the swap path. Run
// under -race this checks the epoch-publication memory ordering; the
// assertions check the consistency contract: epoch ids never go backwards,
// every bucket is in range for the epoch that served it, and a snapshot
// always matches its own checksum (no torn assignment).
func TestConcurrentLookupsAcrossSwaps(t *testing.T) {
	s := testService(t, 27, 200)
	c, err := s.NewChurn(0.05, 28)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewStream(1000, uint64(id))
			last := uint64(0)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := s.Current()
				if ep.ID < last {
					errs <- fmt.Errorf("epoch went backwards: saw %d after %d", ep.ID, last)
					return
				}
				last = ep.ID
				if iter%512 == 0 {
					// Full-snapshot verification: a torn publication
					// cannot reproduce its own checksum.
					if Checksum(ep.Assignment) != ep.Checksum {
						errs <- fmt.Errorf("torn snapshot: epoch %d fails its checksum", ep.ID)
						return
					}
				}
				v := int32(r.Intn(len(ep.Assignment)))
				b, servedBy, err := s.Assign(v)
				if err != nil {
					errs <- err
					return
				}
				if b < 0 || int(b) >= ep.K {
					errs <- fmt.Errorf("bucket %d out of range [0, %d)", b, ep.K)
					return
				}
				if servedBy < ep.ID {
					errs <- fmt.Errorf("lookup served by epoch %d older than observed %d", servedBy, ep.ID)
					return
				}
			}
		}(i)
	}
	epochs := 6
	if testing.Short() {
		epochs = 3
	}
	for e := 0; e < epochs; e++ {
		if _, err := s.ChurnEpoch(c); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		// On a loaded single-core machine the churn loop can finish before
		// any reader goroutine is ever scheduled, so the hammer would stop
		// having hammered nothing. Yield until lookups flow between epochs.
		for s.Stats().Lookups == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.Lookups == 0 {
		t.Fatal("hammer made no lookups")
	}
}

func TestRunChurnStopsOnCancel(t *testing.T) {
	s := testService(t, 29, 0)
	c, err := s.NewChurn(0.05, 30)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	swapped := make(chan struct{}, 16)
	done := make(chan error, 1)
	go func() {
		done <- s.RunChurn(ctx, c, time.Millisecond, func(*Epoch) { swapped <- struct{}{} })
	}()
	<-swapped
	cancel()
	if err := <-done; err == nil {
		t.Fatal("RunChurn returned nil after cancellation")
	}
	if s.Current().ID == 0 {
		t.Fatal("background churn never published an epoch")
	}
}
