// Package par provides small helpers for data-parallel loops.
//
// The partitioner's hot loops (gain computation, neighbor-data aggregation)
// are embarrassingly parallel over vertices. These helpers split an index
// range into contiguous chunks, one batch per worker, so that per-worker
// scratch buffers (the k-sized counting arrays from Section 3.3 of the paper)
// can be reused without locking.
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested parallelism: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For runs fn(start, end) over disjoint contiguous chunks covering [0, n),
// using the given number of workers. fn is called at most `workers` times
// concurrently and each call receives a half-open range. Chunks are assigned
// statically, so the decomposition is deterministic for a given (n, workers).
func For(n, workers int, fn func(start, end int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Each runs fn(i) once for every i in [0, n) with one goroutine per index
// and waits for all of them: For at full width, packaged for coarse
// per-shard work (one BSP worker, one transport endpoint per call) where
// the per-index closure is the natural unit.
func Each(n int, fn func(i int)) {
	For(n, n, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForWorker is like For but also passes the worker index, so callers can
// index into pre-allocated per-worker scratch state.
func ForWorker(n, workers int, fn func(worker, start, end int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	idx := 0
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(id, s, e int) {
			defer wg.Done()
			fn(id, s, e)
		}(idx, start, end)
		idx++
	}
	wg.Wait()
}

// SumInt64 runs a parallel reduction: fn maps each chunk to a partial sum.
func SumInt64(n, workers int, fn func(start, end int) int64) int64 {
	workers = Workers(workers)
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	partials := make([]int64, workers)
	ForWorker(n, workers, func(w, s, e int) {
		partials[w] = fn(s, e)
	})
	var total int64
	for _, p := range partials {
		total += p
	}
	return total
}

// SumFloat64 runs a parallel float64 reduction over chunks. The chunking (and
// therefore the floating-point summation order) is deterministic for a given
// (n, workers) pair.
func SumFloat64(n, workers int, fn func(start, end int) float64) float64 {
	workers = Workers(workers)
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	partials := make([]float64, workers)
	ForWorker(n, workers, func(w, s, e int) {
		partials[w] = fn(s, e)
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
