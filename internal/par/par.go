// Package par provides small helpers for data-parallel loops.
//
// The partitioner's hot loops (gain computation, neighbor-data aggregation)
// are embarrassingly parallel over vertices. These helpers split an index
// range into contiguous chunks, one batch per worker, so that per-worker
// scratch buffers (the k-sized counting arrays from Section 3.3 of the paper)
// can be reused without locking.
//
// Determinism contract: the worker count decides only how fast things run,
// never what is computed. The chunk decomposition for a given (n, workers)
// is a pure function (ForShards), integer reductions are exact in any fold
// order, and the float64 reduction fixes its fold decomposition by n alone —
// so a kernel built from these helpers returns the same bits for every
// worker count as long as its own per-chunk work is order independent.
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested parallelism: values <= 0 mean GOMAXPROCS.
// This is the one place the repo is allowed to read GOMAXPROCS (enforced by
// the shplint nondet-sources analyzer): everywhere else the machine's core
// count must be invisible to what is computed.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Shard is one contiguous half-open chunk of an index range.
type Shard struct {
	Start, End int
}

// ForShards returns the static chunk decomposition For and ForWorker use for
// (n, workers): at most `workers` disjoint contiguous ranges, ascending,
// covering [0, n) exactly (empty for n <= 0). Kernels use it to precompute
// per-worker scratch, or to fix a reduction's fold boundaries up front.
// workers <= 0 means GOMAXPROCS, like everywhere else in this package.
func ForShards(n, workers int) []Shard {
	workers = Workers(workers)
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	shards := make([]Shard, 0, workers)
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		shards = append(shards, Shard{Start: start, End: end})
	}
	return shards
}

// For runs fn(start, end) over disjoint contiguous chunks covering [0, n),
// using the given number of workers. fn is called at most `workers` times
// concurrently and each call receives a half-open range. Chunks are assigned
// statically (see ForShards), so the decomposition is deterministic for a
// given (n, workers).
func For(n, workers int, fn func(start, end int)) {
	ForWorker(n, workers, func(_, start, end int) { fn(start, end) })
}

// Each runs fn(i) once for every i in [0, n) with one goroutine per index
// and waits for all of them: For at full width, packaged for coarse
// per-shard work (one BSP worker, one transport endpoint per call) where
// the per-index closure is the natural unit.
func Each(n int, fn func(i int)) {
	For(n, n, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForWorker is like For but also passes the worker index (dense in
// [0, len(ForShards(n, workers)))), so callers can index into pre-allocated
// per-worker scratch state. A single-chunk decomposition runs inline on the
// calling goroutine.
func ForWorker(n, workers int, fn func(worker, start, end int)) {
	shards := ForShards(n, workers)
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 {
		fn(0, shards[0].Start, shards[0].End)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for w, sh := range shards {
		go func(id, s, e int) {
			defer wg.Done()
			fn(id, s, e)
		}(w, sh.Start, sh.End)
	}
	wg.Wait()
}

// SumInt64 runs a parallel reduction: fn maps each chunk to a partial sum.
// Integer addition is exact, so the result is independent of the worker
// count (and of any fold order) by construction.
func SumInt64(n, workers int, fn func(start, end int) int64) int64 {
	if n <= 0 {
		return 0
	}
	shards := ForShards(n, workers)
	partials := make([]int64, len(shards))
	ForWorker(n, workers, func(w, s, e int) {
		partials[w] = fn(s, e)
	})
	var total int64
	for _, p := range partials {
		total += p
	}
	return total
}

// sumShardSize fixes the decomposition of parallel float64 reductions
// independently of the worker count: partials are computed per fixed-size
// index shard and folded in ascending shard order, so the summation order —
// and with it the result, bit for bit — is a function of n alone. 8192
// indices per partial keeps the per-shard call overhead invisible next to
// the summand work while still exposing enough shards to scale.
const sumShardSize = 8192

// SumFloat64 runs a parallel float64 reduction over chunks. Unlike the
// integer fold, float64 addition is not associative once sums leave the
// dyadic grid's exact range, so the fold boundaries must not move with the
// worker count: fn is invoked once per fixed-size shard (see sumShardSize)
// and the partials are folded in ascending shard order. The result depends
// only on n and fn, never on workers.
func SumFloat64(n, workers int, fn func(start, end int) float64) float64 {
	if n <= 0 {
		return 0
	}
	shards := (n + sumShardSize - 1) / sumShardSize
	partials := make([]float64, shards)
	For(shards, workers, func(s, e int) {
		for i := s; i < e; i++ {
			lo := i * sumShardSize
			hi := lo + sumShardSize
			if hi > n {
				hi = n
			}
			partials[i] = fn(lo, hi)
		}
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
