package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 1000} {
			touched := make([]int32, n)
			For(n, workers, func(s, e int) {
				for i := s; i < e; i++ {
					atomic.AddInt32(&touched[i], 1)
				}
			})
			for i, c := range touched {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d touched %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForWorkerDistinctIDs(t *testing.T) {
	const n, workers = 100, 4
	seen := make([]int32, workers)
	ForWorker(n, workers, func(w, s, e int) {
		atomic.AddInt32(&seen[w], 1)
	})
	total := int32(0)
	for _, c := range seen {
		if c > 1 {
			t.Fatalf("worker id reused: %v", seen)
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no workers ran")
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(s, e int) { ran = true })
	For(-3, 4, func(s, e int) { ran = true })
	if ran {
		t.Fatal("For ran chunks for non-positive n")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
	if Workers(0) <= 0 {
		t.Fatal("Workers(0) not positive")
	}
	if Workers(-1) <= 0 {
		t.Fatal("Workers(-1) not positive")
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	if err := quick.Check(func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 2000)
		workers := int(workersRaw%8) + 1
		got := SumInt64(n, workers, func(s, e int) int64 {
			var sum int64
			for i := s; i < e; i++ {
				sum += int64(i)
			}
			return sum
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return got == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64Deterministic(t *testing.T) {
	f := func(s, e int) float64 {
		sum := 0.0
		for i := s; i < e; i++ {
			sum += 1.0 / float64(i+1)
		}
		return sum
	}
	a := SumFloat64(100000, 4, f)
	b := SumFloat64(100000, 4, f)
	if a != b {
		t.Fatalf("SumFloat64 not deterministic: %v != %v", a, b)
	}
}

func TestSumFloat64CloseToSerial(t *testing.T) {
	f := func(s, e int) float64 {
		sum := 0.0
		for i := s; i < e; i++ {
			sum += 0.5
		}
		return sum
	}
	got := SumFloat64(999, 7, f)
	if got != 499.5 {
		t.Fatalf("SumFloat64 = %v, want 499.5", got)
	}
}

// TestForShardsProperties checks the decomposition invariants over the edge
// cases the kernels rely on: n == 0, n < workers, n == workers, and the
// chunk-boundary off-by-ones around multiples of the chunk size.
func TestForShardsProperties(t *testing.T) {
	cases := []struct{ n, workers int }{
		{0, 4}, {-1, 4}, {1, 1}, {1, 8}, {3, 8}, {7, 8}, {8, 8}, {9, 8},
		{15, 4}, {16, 4}, {17, 4}, {31, 4}, {32, 4}, {33, 4}, {1000, 7},
	}
	for _, tc := range cases {
		shards := ForShards(tc.n, tc.workers)
		if tc.n <= 0 {
			if len(shards) != 0 {
				t.Fatalf("n=%d workers=%d: want no shards, got %v", tc.n, tc.workers, shards)
			}
			continue
		}
		if len(shards) > tc.workers {
			t.Fatalf("n=%d workers=%d: %d shards exceeds worker count", tc.n, tc.workers, len(shards))
		}
		next := 0
		for i, sh := range shards {
			if sh.Start != next || sh.End <= sh.Start {
				t.Fatalf("n=%d workers=%d: shard %d = %+v not contiguous ascending from %d",
					tc.n, tc.workers, i, sh, next)
			}
			next = sh.End
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: shards cover [0,%d), want [0,%d)", tc.n, tc.workers, next, tc.n)
		}
	}
}

// TestForShardsMatchesForWorker pins that ForShards returns exactly the
// chunks ForWorker hands out, worker id for worker id, for arbitrary
// (n, workers) — the property kernels assume when they size per-worker
// scratch from ForShards before running the loop.
func TestForShardsMatchesForWorker(t *testing.T) {
	if err := quick.Check(func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 3000)
		workers := int(workersRaw%16) + 1
		want := ForShards(n, workers)
		got := make([]Shard, len(want))
		var mu sync.Mutex
		ForWorker(n, workers, func(w, s, e int) {
			mu.Lock()
			got[w] = Shard{Start: s, End: e}
			mu.Unlock()
		})
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSumFloat64WorkerCountIndependent pins the tentpole contract: the float
// fold decomposition is a function of n alone, so every worker count returns
// the same bits — including on summands that are NOT exactly representable,
// where fold order genuinely matters.
func TestSumFloat64WorkerCountIndependent(t *testing.T) {
	f := func(s, e int) float64 {
		sum := 0.0
		for i := s; i < e; i++ {
			sum += 1.0 / float64(i+1)
		}
		return sum
	}
	for _, n := range []int{1, 100, sumShardSize - 1, sumShardSize, sumShardSize + 1, 100000} {
		base := SumFloat64(n, 1, f)
		for _, workers := range []int{2, 3, 8, 16} {
			if got := SumFloat64(n, workers, f); got != base {
				t.Fatalf("n=%d: SumFloat64 with %d workers = %v, serial = %v", n, workers, got, base)
			}
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 4, func(s, e int) {})
	}
}

func TestEachCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		var mu sync.Mutex
		seen := make(map[int]int)
		Each(n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("n=%d: Each hit %d distinct indices", n, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}
