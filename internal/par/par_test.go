package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 1000} {
			touched := make([]int32, n)
			For(n, workers, func(s, e int) {
				for i := s; i < e; i++ {
					atomic.AddInt32(&touched[i], 1)
				}
			})
			for i, c := range touched {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d touched %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForWorkerDistinctIDs(t *testing.T) {
	const n, workers = 100, 4
	seen := make([]int32, workers)
	ForWorker(n, workers, func(w, s, e int) {
		atomic.AddInt32(&seen[w], 1)
	})
	total := int32(0)
	for _, c := range seen {
		if c > 1 {
			t.Fatalf("worker id reused: %v", seen)
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no workers ran")
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(s, e int) { ran = true })
	For(-3, 4, func(s, e int) { ran = true })
	if ran {
		t.Fatal("For ran chunks for non-positive n")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
	if Workers(0) <= 0 {
		t.Fatal("Workers(0) not positive")
	}
	if Workers(-1) <= 0 {
		t.Fatal("Workers(-1) not positive")
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	if err := quick.Check(func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 2000)
		workers := int(workersRaw%8) + 1
		got := SumInt64(n, workers, func(s, e int) int64 {
			var sum int64
			for i := s; i < e; i++ {
				sum += int64(i)
			}
			return sum
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return got == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64Deterministic(t *testing.T) {
	f := func(s, e int) float64 {
		sum := 0.0
		for i := s; i < e; i++ {
			sum += 1.0 / float64(i+1)
		}
		return sum
	}
	a := SumFloat64(100000, 4, f)
	b := SumFloat64(100000, 4, f)
	if a != b {
		t.Fatalf("SumFloat64 not deterministic: %v != %v", a, b)
	}
}

func TestSumFloat64CloseToSerial(t *testing.T) {
	f := func(s, e int) float64 {
		sum := 0.0
		for i := s; i < e; i++ {
			sum += 0.5
		}
		return sum
	}
	got := SumFloat64(999, 7, f)
	if got != 499.5 {
		t.Fatalf("SumFloat64 = %v, want 499.5", got)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 4, func(s, e int) {})
	}
}

func TestEachCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		var mu sync.Mutex
		seen := make(map[int]int)
		Each(n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("n=%d: Each hit %d distinct indices", n, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}
