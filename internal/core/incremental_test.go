package core

import (
	"fmt"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"shp/internal/hypergraph"
	"shp/internal/rng"
)

// The incremental refinement engine must be invisible: for a fixed seed,
// maintaining neighbor data in place and re-evaluating only frontier
// vertices has to produce byte-identical assignments and iteration
// histories to rebuilding everything from scratch each iteration. These
// tests pin that contract for SHP-2, SHP-k, weighted graphs, the pairing
// protocols, and warm starts, plus a property test for the maintained
// neighbor data itself.

// largeRandomBipartite builds a graph big enough that recursive bisection
// tasks exceed incrementalMinSize and actually exercise the frontier path.
func largeRandomBipartite(tb testing.TB, seed uint64, numQ, numD, edges int) *hypergraph.Bipartite {
	tb.Helper()
	if numD < incrementalMinSize {
		tb.Fatalf("graph too small to exercise the incremental path: %d < %d", numD, incrementalMinSize)
	}
	return randomBipartite(tb, seed, numQ, numD, edges)
}

// runBoth partitions g twice with only DisableIncremental flipped and
// asserts identical outcomes.
func runBoth(t *testing.T, g *hypergraph.Bipartite, opts Options) {
	t.Helper()
	inc := opts
	inc.DisableIncremental = false
	full := opts
	full.DisableIncremental = true

	ri, err := Partition(g, inc)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Partition(g, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ri.Assignment, rf.Assignment) {
		diff := 0
		for i := range ri.Assignment {
			if ri.Assignment[i] != rf.Assignment[i] {
				diff++
			}
		}
		t.Fatalf("assignments differ at %d/%d vertices", diff, len(ri.Assignment))
	}
	if ri.Iterations != rf.Iterations {
		t.Fatalf("iteration counts differ: incremental %d, full %d", ri.Iterations, rf.Iterations)
	}
	if !reflect.DeepEqual(ri.History, rf.History) {
		n := len(ri.History)
		if len(rf.History) < n {
			n = len(rf.History)
		}
		for i := 0; i < n; i++ {
			if ri.History[i] != rf.History[i] {
				t.Fatalf("history diverges at %d: incremental %+v, full %+v", i, ri.History[i], rf.History[i])
			}
		}
		t.Fatalf("history lengths differ: incremental %d, full %d", len(ri.History), len(rf.History))
	}
}

func TestIncrementalMatchesFullSHP2(t *testing.T) {
	g := largeRandomBipartite(t, 11, 3000, 6000, 24000)
	for _, seed := range []uint64{1, 7, 42} {
		runBoth(t, g, Options{K: 8, Seed: seed})
	}
}

func TestIncrementalMatchesFullSHPk(t *testing.T) {
	g := randomBipartite(t, 12, 500, 900, 4000)
	for _, seed := range []uint64{1, 9} {
		runBoth(t, g, Options{K: 7, Direct: true, Seed: seed, TrackFanout: true})
	}
}

func TestIncrementalMatchesFullWeighted(t *testing.T) {
	r := rng.New(99)
	numQ, numD := 2000, 4000
	b := hypergraph.NewBuilder(numQ, numD)
	for i := 0; i < 16000; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	dw := make([]int32, numD)
	for i := range dw {
		dw[i] = int32(1 + r.Intn(5))
	}
	qw := make([]int32, numQ)
	for i := range qw {
		qw[i] = int32(1 + r.Intn(4))
	}
	g, err := b.SetDataWeights(dw).SetQueryWeights(qw).Build()
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, g, Options{K: 6, Seed: 5})
	runBoth(t, g, Options{K: 6, Direct: true, Seed: 5})
}

func TestIncrementalMatchesFullConfigurations(t *testing.T) {
	g := largeRandomBipartite(t, 13, 2500, 5000, 20000)
	warm := make([]int32, g.NumData())
	wr := rng.New(3)
	for i := range warm {
		warm[i] = int32(wr.Intn(8))
	}
	configs := []Options{
		{K: 8, Seed: 2, Pairing: PairSimple},
		{K: 8, Seed: 2, Pairing: PairExact},
		{K: 8, Seed: 2, Branching: 4},
		{K: 16, Seed: 2, Direct: true, Pairing: PairSimple},
		{K: 8, Seed: 2, Initial: warm, MoveCostPenalty: 0.1},
		{K: 8, Seed: 2, Direct: true, Initial: warm, MoveCostPenalty: 0.1},
		{K: 8, Seed: 2, Objective: ObjCliqueNet},
		{K: 8, Seed: 2, Objective: ObjFanout, Direct: true},
		// Force the safety-net rebuild to fire mid-run: it must not change
		// anything either.
		{K: 8, Seed: 2, Direct: true, NDRebuildEvery: 3},
	}
	for i, opts := range configs {
		t.Run(fmt.Sprintf("config%d", i), func(t *testing.T) {
			runBoth(t, g, opts)
		})
	}
}

// TestIncrementalMatchesFullConvergedWarmStart pins the realistic warm-start
// path: a converged assignment perturbed by a small churn, re-refined with
// Options.Initial and a MoveCostPenalty. The incremental and full engines
// must produce byte-identical results through it, for both SHP-2 and SHP-k,
// and across penalty strengths (including zero). The random-warm configs in
// TestIncrementalMatchesFullConfigurations cover the balance-repair path;
// this covers the converged one, where most gains are negative and the
// penalty gate actually bites.
func TestIncrementalMatchesFullConvergedWarmStart(t *testing.T) {
	g := largeRandomBipartite(t, 19, 2500, 5000, 20000)
	base, err := Partition(g, Options{K: 8, Seed: 6, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	perturb := func(frac float64) []int32 {
		warm := append([]int32(nil), base.Assignment...)
		r := rng.New(123)
		n := int(frac * float64(len(warm)))
		for i := 0; i < n; i++ {
			warm[r.Intn(len(warm))] = int32(r.Intn(8))
		}
		return warm
	}
	for _, tc := range []struct {
		name    string
		opts    Options
		churn   float64
		penalty float64
	}{
		{"shp2-penalty", Options{K: 8, Seed: 7}, 0.02, 0.1},
		{"shp2-nopenalty", Options{K: 8, Seed: 7}, 0.02, 0},
		{"shpk-penalty", Options{K: 8, Seed: 7, Direct: true}, 0.02, 0.1},
		{"shpk-heavypenalty", Options{K: 8, Seed: 7, Direct: true}, 0.1, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Initial = perturb(tc.churn)
			opts.MoveCostPenalty = tc.penalty
			runBoth(t, g, opts)
		})
	}
}

// ndSnapshot captures the live neighbor-data entries of a directState.
type ndSnapshot struct {
	len     []int32
	bucket  []int32
	count   []int32
	entries int64
}

func snapshotND(st *directState) ndSnapshot {
	s := ndSnapshot{
		len:     append([]int32(nil), st.nd.len...),
		entries: st.nd.entries,
	}
	nq := st.g.NumQueries()
	for q := 0; q < nq; q++ {
		for _, e := range st.nd.seg(int32(q)) {
			s.bucket = append(s.bucket, e.B)
			s.count = append(s.count, e.C)
		}
	}
	return s
}

// TestMaintainedNDMatchesRebuild applies random move batches through the
// delta path and checks the maintained neighbor data (entries, counts,
// canonical order, live totals) against a from-scratch rebuild after every
// batch.
func TestMaintainedNDMatchesRebuild(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomBipartite(t, seed, 50, 80, 400)
		opts := Options{K: 6, P: 0.5, Epsilon: 10, Direct: true}.withDefaults()
		st := newDirectState(g, opts, seed, nil, 0)
		st.buildNeighborData()
		r := rng.New(seed ^ 0xBEEF)
		for batch := 0; batch < 5; batch++ {
			var accepted []move
			seen := make(map[int32]bool)
			nMoves := 1 + r.Intn(20)
			for i := 0; i < nMoves; i++ {
				v := int32(r.Intn(g.NumData()))
				if seen[v] {
					continue // a real batch moves each vertex at most once
				}
				seen[v] = true
				from := st.bucket[v]
				to := int32(r.Intn(opts.K))
				if to == from {
					to = (to + 1) % int32(opts.K)
				}
				st.bucket[v] = to
				wv := int64(g.DataWeight(v))
				st.bucketW[from] -= wv
				st.bucketW[to] += wv
				accepted = append(accepted, move{v: v, from: from})
			}
			st.applyNDDeltas(accepted)
			got := snapshotND(st)
			st.buildNeighborData()
			want := snapshotND(st)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPatchedStateMatchesRebuild verifies the exact-patching invariant
// directly: after a refinement iteration whose batch went through the patch
// regime, every inactive (non-mover) vertex's patched Equation 1 state —
// base term and candidate accumulators, including refcounts — must equal a
// from-scratch rebuild bit for bit.
func TestPatchedStateMatchesRebuild(t *testing.T) {
	for _, seed := range []uint64{17, 23, 99} {
		g := randomBipartite(t, 21, 60, 100, 500)
		opts := Options{K: 5, P: 0.5, Direct: true}.withDefaults()
		st := newDirectState(g, opts, seed, nil, 0)
		st.buildNeighborData()
		patched := 0
		for iter := 0; iter < 6; iter++ {
			st.computeProposals()
			accepted := st.applyMoves(iter)
			st.applyNDDeltas(accepted)
			if len(accepted) == 0 {
				break
			}
			if len(accepted)*sweepFallbackDiv >= g.NumData() {
				continue // sweep regime: everyone is active, nothing cached
			}
			ref := newDirectState(g, opts, seed, nil, 0)
			copy(ref.bucket, st.bucket)
			ref.recountWeights()
			ref.buildNeighborData()
			scratch := ref.proposalScratches()
			for v := 0; v < g.NumData(); v++ {
				if st.active[v] == activeRebuild {
					continue // movers are rebuilt before the next selection
				}
				ref.rebuildVertex(scratch[0], v)
				if st.propBase[v] != ref.propBase[v] {
					t.Fatalf("seed %d iter %d vertex %d: patched base %v != rebuilt %v",
						seed, iter, v, st.propBase[v], ref.propBase[v])
				}
				if !slices.Equal(st.cand[v], ref.cand[v]) {
					t.Fatalf("seed %d iter %d vertex %d: patched candidates %v != rebuilt %v",
						seed, iter, v, st.cand[v], ref.cand[v])
				}
				patched++
			}
		}
		if patched == 0 {
			t.Logf("seed %d: no patch-regime iterations exercised", seed)
		}
	}
}

// TestDuplicateMoveBatchDeltas exercises repeated deltas hitting the same
// query from several movers in one batch (insert/remove churn on shared
// segments).
func TestDuplicateMoveBatchDeltas(t *testing.T) {
	g := randomBipartite(t, 31, 10, 40, 200) // dense: every query sees many movers
	opts := Options{K: 4, P: 0.5, Epsilon: 10, Direct: true, Parallelism: 3}.withDefaults()
	st := newDirectState(g, opts, 8, nil, 0)
	st.buildNeighborData()
	var accepted []move
	for v := int32(0); v < 20; v++ {
		from := st.bucket[v]
		to := (from + 1 + v%3) % 4
		st.bucket[v] = to
		st.bucketW[from]--
		st.bucketW[to]++
		accepted = append(accepted, move{v: v, from: from})
	}
	st.applyNDDeltas(accepted)
	got := snapshotND(st)
	st.buildNeighborData()
	if want := snapshotND(st); !reflect.DeepEqual(got, want) {
		t.Fatal("maintained neighbor data diverged from rebuild after a dense move batch")
	}
}
