package core

import "math"

// Move-gain machinery (Equation 1 of the paper).
//
// For probabilistic fanout, the gain of moving data vertex v from bucket cur
// to bucket tgt is (written as an improvement, positive = objective falls):
//
//	gain(v) = p · Σ_{q ∈ N(v)} ((1-p)^{n_cur(q)-1} − (1-p)^{n_tgt(q)})
//
// All refiners evaluate this through a precomputed table T[i] = (1-p')^i, so
// one table swap re-targets the same code at different objectives:
//
//   - p-fanout: T[i] = (1-p)^i, multiplier p.
//   - p-fanout with recursive lookahead (Section 3.4): a bucket that will
//     later split into t buckets contributes t·(1−(1−p/t)^r); the gain keeps
//     the same shape with p' = p/t because t·p' = p. So T[i] = (1-p/t)^i
//     with multiplier p.
//   - clique-net (Lemma 2's p → 0 limit): the within-bucket pair weight
//     changes by n_tgt − (n_cur − 1), which is the same expression with
//     T[i] = −i and multiplier 1.
//
// The matching objective value of a bucket holding c of q's vertices comes
// from a contribution table C[c] (t·(1−(1−p/t)^c) or −C(c,2) respectively);
// refiners report Σ_q Σ_buckets C[n_bucket(q)].

// gainGridBits fixes the dyadic grid all probabilistic-fanout table values
// are rounded to: every T[i] is an integer multiple of 2^-gainGridBits.
// Sums and integer-weighted sums of grid values are EXACT in float64 while
// |sum| < 2^(53-gainGridBits) (≈2M at 32 bits) — addition of exact dyadic
// values has no rounding, so it is associative and commutative. The
// incremental refinement engine leans on this: per-vertex gain accumulators
// patched term-by-term land on exactly the same bits as a from-scratch
// resummation, in any order, which is what makes the patched and rebuilt
// proposal states interchangeable. The quantization perturbs table values
// by ≤2^-33 (≈1e-10), far below any quality-relevant scale; the clique-net
// tables are integers and sit on the grid already.
const gainGridBits = 32

// quantize rounds x to the shared dyadic gain grid.
func quantize(x float64) float64 {
	const scale = 1 << gainGridBits
	return math.Round(x*scale) / scale
}

// GainTables bundles the per-objective lookup tables for one side/bucket
// role. maxN is the largest neighbor count that will be looked up
// (the maximum query degree of the subproblem).
type GainTables struct {
	// T[i] is the gain table value for a bucket currently holding i of a
	// query's data vertices.
	T []float64
	// C[i] is the objective contribution of a bucket holding i of a query's
	// data vertices.
	C []float64
	// mult scales the summed T differences into objective units.
	mult float64
}

// NewPFanoutTables builds tables for probabilistic fanout with fanout
// probability p and lookahead split count t (t = 1 disables lookahead).
func NewPFanoutTables(p float64, t int, maxN int) GainTables {
	if t < 1 {
		t = 1
	}
	pp := p / float64(t)
	T := make([]float64, maxN+2)
	C := make([]float64, maxN+2)
	T[0] = 1
	base := 1 - pp
	for i := 1; i < len(T); i++ {
		T[i] = quantize(T[i-1] * base)
	}
	tf := float64(t)
	for i := range C {
		C[i] = tf * (1 - T[i]) // exact: T on the grid, tf a small integer
	}
	return GainTables{T: T, C: C, mult: p}
}

// NewCliqueNetTables builds tables for the clique-net edge-cut objective.
// The reported "objective" is the negated within-bucket pair weight, so that
// smaller is better, consistent with the other objectives.
func NewCliqueNetTables(maxN int) GainTables {
	T := make([]float64, maxN+2)
	C := make([]float64, maxN+2)
	for i := range T {
		T[i] = -float64(i)
		C[i] = -float64(i) * float64(i-1) / 2
	}
	return GainTables{T: T, C: C, mult: 1}
}

// tablesFor builds the tables for the configured objective.
func tablesFor(opts Options, t int, maxN int) GainTables {
	switch opts.Objective {
	case ObjCliqueNet:
		return NewCliqueNetTables(maxN)
	case ObjFanout:
		return NewPFanoutTables(1, 1, maxN)
	default:
		lookT := t
		if opts.DisableLookahead {
			lookT = 1
		}
		return NewPFanoutTables(opts.P, lookT, maxN)
	}
}

// Mult returns the gain multiplier (p for probabilistic fanout, 1 for the
// clique-net objective). Exposed for the distributed implementation.
func (g GainTables) Mult() float64 { return g.mult }

// Patch arithmetic for incrementally maintained Equation 1 accumulators.
//
// Both in-process refiners and the distributed plane maintain per-vertex
// gain sums whose terms are table values T[·]: the own-bucket sum
// Σ_q T[n_cur(q)−1] and, per candidate/sibling bucket b, sums of T[n_b(q)]
// terms. When one query's count in bucket b changes cOld → cNew, the exact
// change to those sums is a difference of two table values. Because every
// T entry lies on the shared dyadic grid (gainGridBits), these differences —
// and any sequence of them folded into an accumulator — are exact float64
// arithmetic while |sum| < 2^(53-gainGridBits), so a patched accumulator is
// bit-identical to a from-scratch resummation in any order. DeltaOwn and
// DeltaAway are that arithmetic, shared so the distributed implementation
// patches with exactly the bits the in-process engine uses.

// DeltaOwn returns the change to an own-bucket accumulator term
// (contribution T[c−1], or 0 when the vertex's bucket has no entry) when a
// query's count there goes cOld → cNew. Counts of 0 mean "entry absent".
func (g GainTables) DeltaOwn(cOld, cNew int32) float64 {
	var oldT, newT float64
	if cOld > 0 {
		oldT = g.T[cOld-1]
	}
	if cNew > 0 {
		newT = g.T[cNew-1]
	}
	return newT - oldT
}

// DeltaAway returns the change to an away-bucket accumulator term when a
// query's count there goes cOld → cNew. It serves both conventions in use:
// the candidate form T[c]−T[0] (zero when absent) and the raw sibling form
// T[c] (T[0] when absent) — the constant terms cancel in the difference, so
// T[cNew] − T[cOld] is the exact delta for both.
func (g GainTables) DeltaAway(cOld, cNew int32) float64 {
	return g.T[cNew] - g.T[cOld]
}
