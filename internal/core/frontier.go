package core

import "slices"

// Frontier ordering. The per-iteration frontiers the incremental engines
// maintain must be ascending — that is the canonical order the bit-identity
// discipline pins for bin updates and gain passes — but the collection
// buffers assemble them unsorted (members of distinct dirty queries
// interleave). A comparison sort is O(|F| log |F|) with a ~50 ns/element
// constant and dominates hub-heavy batches, so frontiers are ordered with
// counting passes instead, keeping assembly cost proportional to the
// frontier itself.
//
// The sort doubles as the parallel plane's deterministic reduction: every
// phase that collects vertices concurrently (per-worker frontier buffers,
// the coin phase's per-shard decided buffers) concatenates its partial
// lists in ascending shard/worker order and radix-sorts the result, erasing
// whatever interleaving the decomposition produced. Any two decompositions
// that collect the same SET of vertices therefore hand downstream phases
// the identical sequence — which is why worker counts and shard layouts can
// change freely without moving a single result bit.

const (
	frontierRadixBits = 11
	frontierRadixSize = 1 << frontierRadixBits
	frontierRadixMask = frontierRadixSize - 1
	// Below this size the per-pass count-array clears cost more than a
	// comparison sort of the whole slice.
	frontierRadixMin = 128
)

// radixSortInt32 sorts a ascending. Values must lie in [0, bound). Small
// slices fall through to a comparison sort; larger ones take LSD counting
// passes over 11-bit digits — O(len(a)) per pass, with the pass count set
// by bound, not by len(a). scratch must be at least len(a) long; the sorted
// result always ends up in a.
func radixSortInt32(a, scratch []int32, bound int32) {
	if len(a) < frontierRadixMin {
		slices.Sort(a)
		return
	}
	src, dst := a, scratch[:len(a)]
	var count [frontierRadixSize]int32
	for shift := 0; bound>>shift > 0; shift += frontierRadixBits {
		for i := range count {
			count[i] = 0
		}
		for _, v := range src {
			count[(v>>shift)&frontierRadixMask]++
		}
		var sum int32
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & frontierRadixMask
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
