package core

import (
	"testing"

	"shp/internal/partition"
	"shp/internal/rng"
)

func TestMultiDimBalancesAllDimensions(t *testing.T) {
	g := randomBipartite(t, 3, 400, 600, 4000)
	r := rng.New(5)
	// Two anti-correlated dimensions: hard for single-dimension balance.
	cpu := make([]float64, 600)
	mem := make([]float64, 600)
	for v := range cpu {
		cpu[v] = 1 + 4*r.Float64()
		mem[v] = 6 - cpu[v] + r.Float64()
	}
	res, err := PartitionMultiDim(g, MultiDimOptions{
		K:     4,
		C:     4,
		Loads: [][]float64{cpu, mem},
		Base:  Options{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
	for d, imb := range res.Imbalance {
		if imb > 0.15 {
			t.Fatalf("dimension %d imbalance %v too high", d, imb)
		}
	}
	// Fanout should still beat random: the merge must not destroy locality.
	f := partition.Fanout(g, res.Assignment, 4)
	randomF := partition.Fanout(g, partition.Random(600, 4, 11), 4)
	if f >= randomF {
		t.Fatalf("multidim fanout %v >= random %v", f, randomF)
	}
}

func TestMultiDimSingleDimensionMatchesWeighted(t *testing.T) {
	g := randomBipartite(t, 7, 200, 300, 1500)
	loads := make([]float64, 300)
	for v := range loads {
		loads[v] = 1
	}
	res, err := PartitionMultiDim(g, MultiDimOptions{K: 2, Loads: [][]float64{loads}, Base: Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance[0] > 0.12 {
		t.Fatalf("unit-load imbalance %v", res.Imbalance[0])
	}
	if res.FineResult == nil || res.FineResult.K != 8 {
		t.Fatal("fine result missing or wrong size")
	}
}

func TestMultiDimValidation(t *testing.T) {
	g := randomBipartite(t, 9, 20, 30, 100)
	unit := make([]float64, 30)
	cases := []MultiDimOptions{
		{K: 0, Loads: [][]float64{unit}},
		{K: 2},
		{K: 2, C: -1, Loads: [][]float64{unit}},
		{K: 2, Loads: [][]float64{unit[:5]}},
		{K: 2, Loads: [][]float64{{-1}}},
	}
	for i, o := range cases {
		if _, err := PartitionMultiDim(g, o); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestMultiDimZeroLoadDimension(t *testing.T) {
	g := randomBipartite(t, 13, 100, 150, 700)
	unit := make([]float64, 150)
	zero := make([]float64, 150)
	for v := range unit {
		unit[v] = 1
	}
	res, err := PartitionMultiDim(g, MultiDimOptions{K: 3, Loads: [][]float64{unit, zero}, Base: Options{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance[1] != -1 && res.Imbalance[1] > 0 {
		t.Fatalf("zero-load dimension imbalance %v should not constrain", res.Imbalance[1])
	}
}
