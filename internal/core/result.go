package core

import (
	"time"

	"shp/internal/partition"
)

// IterStats records one refinement iteration for convergence analysis
// (Figure 7 of the paper plots these series).
type IterStats struct {
	// Level is the recursion level (0-based) for recursive mode, or 0 for
	// direct mode.
	Level int
	// Task identifies the bisection subproblem within the level by the
	// first bucket of its range; 0 in direct mode.
	Task int
	// Iter is the iteration index within the refinement, 0-based.
	Iter int
	// Objective is the optimized objective value on the subproblem after
	// the iteration (sum over its queries, not normalized).
	Objective float64
	// Moved is the number of data vertices that changed bucket.
	Moved int64
	// MovedFraction is Moved divided by the subproblem size.
	MovedFraction float64
	// Fanout is the global average fanout after the iteration; only filled
	// when Options.TrackFanout is set (direct mode).
	Fanout float64
}

// WorkStats records one refinement iteration's work-counter deltas — the
// observability companion to IterStats, kept separate so the incremental and
// DisableIncremental paths can stay byte-identical on IterStats while
// legitimately differing here (sublinear frontier work is the whole point).
type WorkStats struct {
	// Level/Task/Iter locate the iteration exactly like IterStats.
	Level int
	Task  int
	Iter  int
	// Frontier is the number of vertices the iteration's gain pass visited
	// (|D| on the full path or after a sweep fallback).
	Frontier int64
	// GainWork counts Equation 1 work units: one per table term summed in a
	// gain rebuild, one per delta record folded into an accumulator.
	GainWork int64
	// ScanWork counts per-vertex visits in the phases around the gain math
	// (gain/sync/coin/trim/selection loops).
	ScanWork int64
}

// Result is a finished partitioning.
type Result struct {
	// Assignment maps each data vertex to its bucket in [0, K).
	Assignment partition.Assignment
	// K is the bucket count.
	K int
	// Iterations is the total number of refinement iterations across all
	// levels and subproblems.
	Iterations int
	// History holds per-iteration statistics ordered by (Level, Task, Iter).
	History []IterStats
	// Work holds per-iteration work counters, ordered like History. Unlike
	// History it is NOT pinned across the incremental/full paths.
	Work []WorkStats
	// Elapsed is the wall-clock partitioning time.
	Elapsed time.Duration
	// Migrated is the number of records that ended the epoch on a bucket
	// other than the one they started it on — the serving-plane migration
	// traffic the epoch causes. Only tracked when Options.MigrationBudget is
	// set (it is then <= the budget, pinned by test); 0 otherwise.
	Migrated int64
}
