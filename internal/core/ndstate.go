package core

import (
	"fmt"
	"slices"

	"shp/internal/hypergraph"
	"shp/internal/par"
)

// The shared incremental-gain kernel.
//
// Every refiner in this repo — the SHP-k direct engine (direct.go), the
// SHP-2 bisections (refine2.go), and the distributed plane
// (internal/distshp) — maintains the same two structures between move
// batches:
//
//   - per-query neighbor data: for each query, the sorted sparse list of
//     (bucket, count) pairs over its adjacent data vertices;
//   - per-vertex Equation 1 accumulators: sums of gain-table terms T[·]
//     whose inputs are exactly those counts.
//
// This file is the one implementation of the neighbor-data side: a
// fixed-capacity sorted CSR (ndState) with in-place ±1 count transfers,
// plus the dirty-query machinery that snapshots each touched query's
// pre-batch segment, diffs out the net per-bucket changes, and hands the
// canonical (bucket, cOld, cNew) records to the refiner so it can patch
// its members' accumulators through GainTables.DeltaOwn/DeltaAway.
// Because every table value lies on the shared dyadic grid (gainGridBits),
// a patched accumulator is bit-identical to a from-scratch resummation in
// any order — the property all the "incremental == DisableIncremental"
// guarantees rest on.
//
// The entry types and slice-level operations are exported so the
// distributed plane's query vertices can keep their own per-query mirrors
// (one sorted slice per vertex rather than a CSR) in exactly the same
// canonical layout, sharing the diff code bit for bit.

// NDEntry is one live neighbor-data slot: bucket B holds C of the owning
// query's data vertices. Interleaving bucket and count keeps the Equation 1
// sweep on a single memory stream.
type NDEntry struct {
	B, C int32
}

// NDChange is one changed neighbor-data entry of a dirty query: bucket B's
// count went from COld to CNew (0 = entry absent).
type NDChange struct {
	B          int32
	COld, CNew int32
}

// changeGroup addresses the contiguous NDChange records of one dirty query.
type changeGroup struct {
	q      int32
	off, n int32
}

// ndUpdate routes one neighbor-data count transfer to a query's owner.
type ndUpdate struct{ q, from, to int32 }

// move records one applied relocation (the destination is the vertex's
// current bucket). It is the unit of work every batch API below consumes.
type move struct {
	v    int32
	from int32
}

// deltaScratch is one owner-worker's reusable dirty-query diff state.
type deltaScratch struct {
	snapArena []NDEntry // pre-batch segment snapshots, concatenated
	snapOff   []int32   // snapshot offsets per dirty query (+ sentinel)
	dirtyQ    []int32   // dirty queries in first-touch order
	recs      []NDChange
	groups    []changeGroup
	entryDiff int64
}

func (ds *deltaScratch) reset() {
	ds.snapArena = ds.snapArena[:0]
	ds.snapOff = ds.snapOff[:0]
	ds.dirtyQ = ds.dirtyQ[:0]
	ds.recs = ds.recs[:0]
	ds.groups = ds.groups[:0]
	ds.entryDiff = 0
}

// bucketID constrains the per-vertex bucket representation a refiner uses:
// the direct engine stores int32 bucket ids, the bisections int8 sides.
type bucketID interface{ ~int8 | ~int32 }

// ndState is the sparse neighbor data over queries, stored as a
// fixed-capacity CSR so entries can be inserted and removed in place:
// query q owns the segment [off[q], off[q+1]) with capacity min(deg(q), k),
// of which the first len[q] slots are live. Entries are kept sorted by
// bucket id — the canonical order both the full rebuild and the incremental
// maintenance produce, so the two paths are interchangeable bit for bit.
type ndState struct {
	off     []int64
	len     []int32
	ent     []NDEntry
	entries int64 // total live entries (= summed fanout)

	// Dirty-query diff machinery (unused by refiners running with
	// DisableIncremental): dirtyFlag dedups dirty queries during delta
	// application; delta holds the per-owner scratch; updates is the reused
	// [source][owner] routing buffer of applyMoveBatch.
	dirtyFlag []uint8
	delta     []deltaScratch
	updates   [][][]ndUpdate
}

// newNDState sizes the CSR for g: a query with degree d can touch at most
// min(d, k) distinct buckets, so its segment never overflows. When
// incremental is set the dirty-query scratch for `workers` owner goroutines
// is allocated too.
func newNDState(g *hypergraph.Bipartite, k, workers int, incremental bool) *ndState {
	nq := g.NumQueries()
	nd := &ndState{
		off: make([]int64, nq+1),
		len: make([]int32, nq),
	}
	for q := 0; q < nq; q++ {
		c := g.QueryDegree(int32(q))
		if c > k {
			c = k
		}
		nd.off[q+1] = nd.off[q] + int64(c)
	}
	nd.ent = make([]NDEntry, nd.off[nq])
	if incremental {
		nd.dirtyFlag = make([]uint8, nq)
		nd.delta = make([]deltaScratch, workers)
	}
	return nd
}

// seg returns query q's live entries.
func (nd *ndState) seg(q int32) []NDEntry {
	off := nd.off[q]
	return nd.ent[off : off+int64(nd.len[q])]
}

// appendQuery grows the CSR by one query with the given segment capacity
// (warm sessions splice in hyperedges added since the last sync).
func (nd *ndState) appendQuery(capacity int32) {
	nq := len(nd.len)
	nd.off = append(nd.off, nd.off[nq]+int64(capacity))
	nd.len = append(nd.len, 0)
	if need := nd.off[nq+1]; int64(len(nd.ent)) < need {
		nd.ent = append(nd.ent, make([]NDEntry, need-int64(len(nd.ent)))...)
	}
	if nd.dirtyFlag != nil {
		nd.dirtyFlag = append(nd.dirtyFlag, 0)
	}
}

// build recomputes the neighbor data from scratch (supersteps 1–2 of
// Figure 3). Entries land in canonical sorted-by-bucket order, matching
// what incremental maintenance preserves. Offsets are fixed capacities, so
// one parallel pass suffices. k bounds the distinct bucket ids in `bucket`.
func ndBuild[B bucketID](nd *ndState, g *hypergraph.Bipartite, workers, k int, bucket []B) {
	nq := g.NumQueries()
	scratch := make([][]int32, workers)
	touched := make([][]int32, workers)
	for w := range scratch {
		scratch[w] = make([]int32, k)
		touched[w] = make([]int32, 0, 64)
	}
	par.ForWorker(nq, workers, func(w, start, end int) {
		cnt := scratch[w]
		for q := start; q < end; q++ {
			tl := touched[w][:0]
			for _, d := range g.QueryNeighbors(int32(q)) {
				b := int32(bucket[d])
				if cnt[b] == 0 {
					tl = append(tl, b)
				}
				cnt[b]++
			}
			slices.Sort(tl)
			pos := nd.off[q]
			for _, b := range tl {
				nd.ent[pos] = NDEntry{B: b, C: cnt[b]}
				cnt[b] = 0
				pos++
			}
			nd.len[q] = int32(len(tl))
			touched[w] = tl[:0]
		}
	})
	nd.entries = par.SumInt64(nq, workers, func(start, end int) int64 {
		var sum int64
		for q := start; q < end; q++ {
			sum += int64(nd.len[q])
		}
		return sum
	})
}

// applyEntryDelta moves one unit of query q's neighbor count from bucket
// `from` to bucket `to`, preserving sorted order, and returns the live-entry
// delta (-1, 0, or +1).
func (nd *ndState) applyEntryDelta(q, from, to int32) int64 {
	off := nd.off[q]
	n := int64(nd.len[q])
	var delta int64
	i := off
	for ; i < off+n; i++ {
		if nd.ent[i].B == from {
			break
		}
	}
	if i == off+n {
		//shp:panics(invariant: an incremental retract must match a prior assert; continuing would corrupt neighbor counts)
		panic(fmt.Sprintf("core: neighbor data for query %d lost bucket %d", q, from))
	}
	nd.ent[i].C--
	if nd.ent[i].C == 0 {
		copy(nd.ent[i:off+n-1], nd.ent[i+1:off+n])
		n--
		delta--
	}
	j := off
	for ; j < off+n; j++ {
		if nd.ent[j].B >= to {
			break
		}
	}
	if j < off+n && nd.ent[j].B == to {
		nd.ent[j].C++
	} else {
		copy(nd.ent[j+1:off+n+1], nd.ent[j:off+n])
		nd.ent[j] = NDEntry{B: to, C: 1}
		n++
		delta++
	}
	nd.len[q] = int32(n)
	return delta
}

// applyMoveBatch patches the neighbor data in place for the queries adjacent
// to the accepted moves (decrement the origin's count, increment the
// target's, inserting/removing sparse entries as they cross zero). When
// patch is set, each dirty query's pre-batch segment is snapshotted on first
// touch and the net per-entry changes are diffed into the per-owner scratch
// (nd.delta[*].groups/recs) so the refiner can fold them into its members'
// accumulators. accepted must contain each vertex at most once (one move
// batch), with bucket[v] already holding the destination.
//
// Parallel structure: source workers scan contiguous slices of the batch
// (ascending, so each owner receives its updates in the batch's canonical
// mover order) and route every transfer to the query's owner — the
// par.ForShards(nq, w) chunk holding q — then each owner applies its
// shard's transfers and diffs its dirty queries with no locking. The owner
// decomposition moves with the worker count, but that never shows through:
// count transfers are integers, segment edits are per-query, and every
// consumer of the per-owner groups either folds exact grid deltas
// (order-free) or canonicalizes with a radix sort. Worker count decides
// only who does the work, not what is computed — the contract the whole
// parallel plane is built on.
func ndApplyMoveBatch[B bucketID](nd *ndState, g *hypergraph.Bipartite, workers int, accepted []move, bucket []B, patch bool) {
	nq := g.NumQueries()
	w := workers
	if w < 1 {
		w = 1
	}
	// ceil(nq/w) is exactly the par.ForShards chunk width, giving the O(1)
	// owner lookup below (owner of q = q/chunk).
	chunk := (nq + w - 1) / w
	if chunk == 0 {
		chunk = 1
	}
	if nd.updates == nil {
		nd.updates = make([][][]ndUpdate, w)
	}
	outs := nd.updates
	for sw := range outs {
		for d := range outs[sw] {
			outs[sw][d] = outs[sw][d][:0]
		}
	}
	par.ForWorker(len(accepted), w, func(sw, start, end int) {
		o := outs[sw]
		if o == nil {
			o = make([][]ndUpdate, w)
			outs[sw] = o
		}
		for i := start; i < end; i++ {
			m := accepted[i]
			to := int32(bucket[m.v])
			for _, q := range g.DataNeighbors(m.v) {
				dw := int(q) / chunk
				o[dw] = append(o[dw], ndUpdate{q: q, from: m.from, to: to})
			}
		}
	})

	// Parallel by query owner: apply the ±1 count transfers, snapshotting
	// each dirty query's pre-batch segment on first touch so the net
	// per-entry changes can be diffed out afterwards.
	par.Each(w, func(dw int) {
		ds := &nd.delta[dw]
		ds.reset()
		for sw := 0; sw < w; sw++ {
			if outs[sw] == nil {
				continue
			}
			for _, u := range outs[sw][dw] {
				if nd.dirtyFlag[u.q] == 0 {
					nd.dirtyFlag[u.q] = 1
					ds.dirtyQ = append(ds.dirtyQ, u.q)
					if patch {
						ds.snapOff = append(ds.snapOff, int32(len(ds.snapArena)))
						ds.snapArena = append(ds.snapArena, nd.seg(u.q)...)
					}
				}
				ds.entryDiff += nd.applyEntryDelta(u.q, u.from, u.to)
			}
		}
		if patch {
			ds.snapOff = append(ds.snapOff, int32(len(ds.snapArena)))
			for i, q := range ds.dirtyQ {
				old := ds.snapArena[ds.snapOff[i]:ds.snapOff[i+1]]
				start := int32(len(ds.recs))
				ds.recs = NDDiff(ds.recs, old, nd.seg(q))
				if n := int32(len(ds.recs)) - start; n > 0 {
					ds.groups = append(ds.groups, changeGroup{q: q, off: start, n: n})
				}
			}
		}
		for _, q := range ds.dirtyQ {
			nd.dirtyFlag[q] = 0
		}
	})
	for i := range nd.delta {
		nd.entries += nd.delta[i].entryDiff
	}
}

// lowerBound returns the index of the first element of sorted that is >= x.
func lowerBound(sorted []int32, x int32) int {
	i, j := 0, len(sorted)
	for i < j {
		h := (i + j) / 2
		if sorted[h] < x {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// NDDiff appends the (bucket, oldCount, newCount) records for the entries
// that differ between two sorted segments. 0 means "entry absent" on either
// side. Shared with the distributed plane's query vertices, whose delta
// records must match the in-process diff bit for bit.
func NDDiff(recs []NDChange, old, cur []NDEntry) []NDChange {
	i, j := 0, 0
	for i < len(old) || j < len(cur) {
		switch {
		case j >= len(cur) || (i < len(old) && old[i].B < cur[j].B):
			recs = append(recs, NDChange{B: old[i].B, COld: old[i].C})
			i++
		case i >= len(old) || cur[j].B < old[i].B:
			recs = append(recs, NDChange{B: cur[j].B, CNew: cur[j].C})
			j++
		default:
			if old[i].C != cur[j].C {
				recs = append(recs, NDChange{B: old[i].B, COld: old[i].C, CNew: cur[j].C})
			}
			i++
			j++
		}
	}
	return recs
}

// NDInc adds one unit of bucket b to a sorted entry slice, inserting the
// entry if absent, and returns the (possibly reallocated) slice. This is
// the registration half of applyEntryDelta for callers that keep their own
// per-query mirrors (the distributed plane's query vertices).
func NDInc(ent []NDEntry, b int32) []NDEntry {
	i := 0
	for ; i < len(ent); i++ {
		if ent[i].B >= b {
			break
		}
	}
	if i < len(ent) && ent[i].B == b {
		ent[i].C++
		return ent
	}
	ent = append(ent, NDEntry{})
	copy(ent[i+1:], ent[i:])
	ent[i] = NDEntry{B: b, C: 1}
	return ent
}

// NDDec removes one unit of bucket b from a sorted entry slice, dropping
// the entry as its count crosses zero, and returns the shortened slice.
func NDDec(ent []NDEntry, b int32) []NDEntry {
	i := 0
	for ; i < len(ent); i++ {
		if ent[i].B == b {
			break
		}
	}
	if i == len(ent) {
		//shp:panics(invariant: the mirror must contain every bucket the base state does; continuing would corrupt counts)
		panic(fmt.Sprintf("core: neighbor-data mirror lost bucket %d", b))
	}
	ent[i].C--
	if ent[i].C == 0 {
		ent = append(ent[:i], ent[i+1:]...)
	}
	return ent
}

// NDCount returns bucket b's count in a sorted entry slice (0 when absent).
func NDCount(ent []NDEntry, b int32) int32 {
	lo, hi := 0, len(ent)
	for lo < hi {
		mid := (lo + hi) / 2
		if ent[mid].B < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ent) && ent[lo].B == b {
		return ent[lo].C
	}
	return 0
}
