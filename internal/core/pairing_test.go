package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinForMonotone(t *testing.T) {
	prev := -1
	for _, g := range []float64{0, 1e-13, 1e-12, 1e-9, 1e-6, 0.001, 0.5, 1, 100, 1e20} {
		b := binFor(g)
		if b < prev {
			t.Fatalf("binFor not monotone at %v: %d < %d", g, b, prev)
		}
		if b < 0 || b >= histBins {
			t.Fatalf("binFor(%v) = %d out of range", g, b)
		}
		prev = b
	}
}

func TestDirHistAddAndTotal(t *testing.T) {
	var h DirHist
	h.Add(0.5)
	h.Add(-0.25)
	h.Add(0)
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
	var pos, neg int64
	for i := 0; i < histBins; i++ {
		pos += h.posCount[i]
		neg += h.negCount[i]
	}
	if pos != 1 || neg != 2 {
		t.Fatalf("pos=%d neg=%d, want 1 and 2 (zero counts as non-positive)", pos, neg)
	}
}

func TestDirHistMerge(t *testing.T) {
	var a, b DirHist
	a.Add(1)
	b.Add(1)
	b.Add(-2)
	a.Merge(&b)
	if a.Total() != 3 {
		t.Fatalf("merged total = %d", a.Total())
	}
}

func TestDirHistRemoveInvertsAdd(t *testing.T) {
	gains := []float64{0.5, -0.25, 0, 1e-13, 100, -3}
	var h DirHist
	for _, g := range gains {
		h.Add(g)
	}
	if h.WireSize() == 0 {
		t.Fatal("populated histogram reports zero wire size")
	}
	for _, g := range gains {
		h.Remove(g)
	}
	if h.Total() != 0 {
		t.Fatalf("total after removing every add = %d, want 0", h.Total())
	}
	if got := h.WireSize(); got != 0 {
		t.Fatalf("empty histogram wire size = %d, want 0", got)
	}
	// Delta histograms legitimately go negative (a retract folded before the
	// matching assert's aggregator); a later Add must restore them exactly.
	h.Remove(0.5)
	h.Add(0.5)
	if h.Total() != 0 || h.WireSize() != 0 {
		t.Fatalf("retract-then-assert left residue: total %d, wire %d", h.Total(), h.WireSize())
	}
}

func TestDirHistWireSizePerBin(t *testing.T) {
	var h DirHist
	h.Add(0.5)
	one := h.WireSize()
	if one <= 0 {
		t.Fatal("single-bin histogram reports non-positive wire size")
	}
	h.Add(0.5) // same bin: no new bin on the wire
	if got := h.WireSize(); got != one {
		t.Fatalf("second entry in same bin changed wire size: %d vs %d", got, one)
	}
	h.Add(-2) // second direction/bin
	if got := h.WireSize(); got != 2*one {
		t.Fatalf("two occupied bins cost %d, want %d", got, 2*one)
	}
}

func TestOrderedBinsBestFirst(t *testing.T) {
	var h DirHist
	h.Add(100)
	h.Add(0.001)
	h.Add(-0.5)
	h.Add(-200)
	bins := h.orderedBins()
	if len(bins) != 4 {
		t.Fatalf("got %d bins", len(bins))
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].meanGain > bins[i-1].meanGain {
			t.Fatalf("bins not in descending gain order: %v then %v", bins[i-1].meanGain, bins[i].meanGain)
		}
	}
}

func TestMatchHistogramsBalancedSwap(t *testing.T) {
	// Equal positive proposals both directions: all should move (up to the
	// anti-oscillation damping cap).
	var a, b DirHist
	for i := 0; i < 10; i++ {
		a.Add(1.0)
		b.Add(2.0)
	}
	pa, pb := MatchHistograms(&a, &b, 0, 0)
	if p := pa.ProbFor(1.0); p != dampProb {
		t.Fatalf("direction A probability = %v, want %v", p, dampProb)
	}
	if p := pb.ProbFor(2.0); p != dampProb {
		t.Fatalf("direction B probability = %v, want %v", p, dampProb)
	}
}

func TestMatchHistogramsOneSidedNoExtras(t *testing.T) {
	// Positive proposals only on one side, no headroom: nothing moves.
	var a, b DirHist
	for i := 0; i < 10; i++ {
		a.Add(1.0)
	}
	pa, _ := MatchHistograms(&a, &b, 0, 0)
	if p := pa.ProbFor(1.0); p != 0 {
		t.Fatalf("one-sided with no extras moved with probability %v", p)
	}
}

func TestMatchHistogramsExtras(t *testing.T) {
	// One-sided positive proposals with headroom 5 of 10: probability 0.5.
	var a, b DirHist
	for i := 0; i < 10; i++ {
		a.Add(1.0)
	}
	pa, _ := MatchHistograms(&a, &b, 5, 0)
	if p := pa.ProbFor(1.0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("extras probability = %v, want 0.5", p)
	}
}

func TestMatchHistogramsPositiveNegativePairing(t *testing.T) {
	// A has large positive gains, B only slightly negative ones: the summed
	// gain is positive, so the pair should swap (Section 3.4's "frees up
	// additional movement").
	var a, b DirHist
	for i := 0; i < 4; i++ {
		a.Add(10.0)
		b.Add(-0.5)
	}
	pa, pb := MatchHistograms(&a, &b, 0, 0)
	if p := pa.ProbFor(10.0); p != dampProb {
		t.Fatalf("positive side probability = %v, want %v", p, dampProb)
	}
	if p := pb.ProbFor(-0.5); p != dampProb {
		t.Fatalf("negative side probability = %v, want %v", p, dampProb)
	}
}

func TestMatchHistogramsRejectsNetNegative(t *testing.T) {
	// Summed gain negative: no pairing.
	var a, b DirHist
	a.Add(0.5)
	b.Add(-10.0)
	pa, pb := MatchHistograms(&a, &b, 0, 0)
	if pa.ProbFor(0.5) != 0 || pb.ProbFor(-10.0) != 0 {
		t.Fatal("net-negative pair was allowed to swap")
	}
}

func TestMatchHistogramsPartialBin(t *testing.T) {
	// 10 proposals one way, 4 the other: boundary bin gets 4/10.
	var a, b DirHist
	for i := 0; i < 10; i++ {
		a.Add(1.0)
	}
	for i := 0; i < 4; i++ {
		b.Add(1.0)
	}
	pa, pb := MatchHistograms(&a, &b, 0, 0)
	if p := pa.ProbFor(1.0); math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("partial bin probability = %v, want 0.4", p)
	}
	if p := pb.ProbFor(1.0); p != dampProb {
		t.Fatalf("smaller side probability = %v, want %v", p, dampProb)
	}
}

func TestMatchHistogramsExpectedFlowBalanced(t *testing.T) {
	// Property: without extras, expected flow A->B equals expected flow
	// B->A (the paper's balance-in-expectation invariant), up to the small
	// asymmetry introduced by the damping cap (which trims at most a
	// (1 - dampProb) fraction from fully matched bins).
	err := quick.Check(func(seed uint64, na, nb uint8) bool {
		var a, b DirHist
		r := newSeq(seed)
		for i := 0; i < int(na%50); i++ {
			a.Add(r.next()*4 - 1) // gains in [-1, 3)
		}
		for i := 0; i < int(nb%50); i++ {
			b.Add(r.next()*4 - 1)
		}
		pa, pb := MatchHistograms(&a, &b, 0, 0)
		flow := func(h *DirHist, p *ProbTable) float64 {
			f := 0.0
			for i := 0; i < histBins; i++ {
				f += float64(h.posCount[i]) * p.pos[i]
				f += float64(h.negCount[i]) * p.neg[i]
			}
			return f
		}
		fa, fb := flow(&a, &pa), flow(&b, &pb)
		tol := (1 - dampProb) * math.Max(fa, fb) / dampProb
		return math.Abs(fa-fb) <= tol+1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatchSimple(t *testing.T) {
	var a, b DirHist
	for i := 0; i < 10; i++ {
		a.Add(1.0)
	}
	for i := 0; i < 6; i++ {
		b.Add(2.0)
	}
	a.Add(-1) // negative proposals are ignored by the simple protocol
	pa, pb := MatchSimple(&a, &b, 0, 0)
	if p := pa.ProbFor(1.0); math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("S-matrix prob A = %v, want 0.6", p)
	}
	if p := pb.ProbFor(2.0); p != 1 {
		t.Fatalf("S-matrix prob B = %v, want 1", p)
	}
	if p := pa.ProbFor(-1.0); p != 0 {
		t.Fatalf("negative gain moved under simple protocol: %v", p)
	}
}

func TestProbTableZeroGain(t *testing.T) {
	var p ProbTable
	p.neg[0] = 0.25
	if got := p.ProbFor(0); got != 0.25 {
		t.Fatalf("zero gain should use negative bin 0: %v", got)
	}
}

// seq is a tiny deterministic float sequence for property tests.
type seq struct{ state uint64 }

func newSeq(seed uint64) *seq { return &seq{state: seed} }

func (s *seq) next() float64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return float64(s.state>>11) / (1 << 53)
}
