package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codecs for the pairing-plane state (DirHist, ProbTable) so the
// distributed master's closure state can ride checkpoint snapshots. Both
// encodings are sparse (only informative bins) and canonical (positive bins
// ascending, then negative bins ascending), so equal values encode to
// identical bytes — the property the snapshot-equality tests pin.

// signBin packs a sign flag and a bin index into one byte: bit 7 is the
// sign (0 = positive half, 1 = negative half), bits 0..6 the bin. histBins
// is 64, so bins always fit.
func signBin(negative bool, bin int) byte {
	b := byte(bin)
	if negative {
		b |= 0x80
	}
	return b
}

// AppendBinary encodes h sparsely onto buf: uvarint entry count, then per
// informative bin a sign/bin byte, a varint count, and the 8-byte sum.
func (h *DirHist) AppendBinary(buf []byte) []byte {
	n := 0
	for i := 0; i < histBins; i++ {
		if h.posCount[i] != 0 || h.posSum[i] != 0 {
			n++
		}
		if h.negCount[i] != 0 || h.negSum[i] != 0 {
			n++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < histBins; i++ {
		if h.posCount[i] != 0 || h.posSum[i] != 0 {
			buf = append(buf, signBin(false, i))
			buf = binary.AppendVarint(buf, h.posCount[i])
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.posSum[i]))
		}
	}
	for i := 0; i < histBins; i++ {
		if h.negCount[i] != 0 || h.negSum[i] != 0 {
			buf = append(buf, signBin(true, i))
			buf = binary.AppendVarint(buf, h.negCount[i])
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.negSum[i]))
		}
	}
	return buf
}

// DecodeDirHist reads one DirHist from the front of data, returning it and
// the number of bytes consumed.
func DecodeDirHist(data []byte) (DirHist, int, error) {
	var h DirHist
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return h, 0, fmt.Errorf("core: truncated DirHist header")
	}
	if n > uint64(len(data)) { // each entry is >= 10 bytes
		return h, 0, fmt.Errorf("core: DirHist entry count %d exceeds payload", n)
	}
	off := used
	for i := uint64(0); i < n; i++ {
		if len(data) < off+1 {
			return h, 0, fmt.Errorf("core: truncated DirHist entry")
		}
		sb := data[off]
		off++
		bin := int(sb & 0x7F)
		if bin >= histBins {
			return h, 0, fmt.Errorf("core: DirHist bin %d out of range", bin)
		}
		count, cn := binary.Varint(data[off:])
		if cn <= 0 {
			return h, 0, fmt.Errorf("core: truncated DirHist count")
		}
		off += cn
		if len(data) < off+8 {
			return h, 0, fmt.Errorf("core: truncated DirHist sum")
		}
		sum := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if sb&0x80 != 0 {
			h.negCount[bin] = count
			h.negSum[bin] = sum
		} else {
			h.posCount[bin] = count
			h.posSum[bin] = sum
		}
	}
	return h, off, nil
}

// BinarySize returns the exact size AppendBinary would add.
func (h *DirHist) BinarySize() int {
	n := 0
	sz := 0
	for i := 0; i < histBins; i++ {
		if h.posCount[i] != 0 || h.posSum[i] != 0 {
			n++
			sz += 1 + varintLen(h.posCount[i]) + 8
		}
		if h.negCount[i] != 0 || h.negSum[i] != 0 {
			n++
			sz += 1 + varintLen(h.negCount[i]) + 8
		}
	}
	return uvarintLen(uint64(n)) + sz
}

// AppendBinary encodes p sparsely onto buf: uvarint entry count, then per
// nonzero bin a sign/bin byte and the 8-byte probability.
func (p *ProbTable) AppendBinary(buf []byte) []byte {
	n := 0
	for i := 0; i < histBins; i++ {
		if p.pos[i] != 0 {
			n++
		}
		if p.neg[i] != 0 {
			n++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < histBins; i++ {
		if p.pos[i] != 0 {
			buf = append(buf, signBin(false, i))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.pos[i]))
		}
	}
	for i := 0; i < histBins; i++ {
		if p.neg[i] != 0 {
			buf = append(buf, signBin(true, i))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.neg[i]))
		}
	}
	return buf
}

// DecodeProbTable reads one ProbTable from the front of data, returning it
// and the number of bytes consumed.
func DecodeProbTable(data []byte) (ProbTable, int, error) {
	var p ProbTable
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return p, 0, fmt.Errorf("core: truncated ProbTable header")
	}
	off := used
	for i := uint64(0); i < n; i++ {
		if len(data) < off+9 {
			return p, 0, fmt.Errorf("core: truncated ProbTable entry")
		}
		sb := data[off]
		bin := int(sb & 0x7F)
		if bin >= histBins {
			return p, 0, fmt.Errorf("core: ProbTable bin %d out of range", bin)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off+1:]))
		off += 9
		if sb&0x80 != 0 {
			p.neg[bin] = v
		} else {
			p.pos[bin] = v
		}
	}
	return p, off, nil
}

// BinarySize returns the exact size AppendBinary would add.
func (p *ProbTable) BinarySize() int {
	n := 0
	for i := 0; i < histBins; i++ {
		if p.pos[i] != 0 {
			n++
		}
		if p.neg[i] != 0 {
			n++
		}
	}
	return uvarintLen(uint64(n)) + 9*n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}
