package core

import (
	"sort"

	"shp/internal/hypergraph"
	"shp/internal/par"
	"shp/internal/partition"
	"shp/internal/rng"
)

// directState is the SHP-k refiner: direct k-way local search with sparse
// per-query neighbor data, exactly the structure of the paper's distributed
// implementation (Figure 3) evaluated in-process:
//
//	superstep 1+2: buildNeighborData (n_i(q) for buckets with n_i > 0)
//	superstep 2:   computeProposals  (Equation 1 gains, best target)
//	superstep 3+4: applyMoves        (master pairing + probabilistic moves)
//
// It also serves recursive r-way splitting for r > 2, where each of the r
// buckets carries its own lookahead split count.
type directState struct {
	g    *hypergraph.Bipartite
	opts Options
	seed uint64
	k    int

	workers  int
	maxIters int

	bucket  []int32
	bucketW []int64
	targetW []float64
	capW    []float64

	// tables[c] is the gain table of bucket c (lookahead varies per bucket
	// during recursive r-way splits; uniform t=1 in plain direct mode).
	tables []GainTables

	// Sparse neighbor data, CSR over queries: for query q the buckets with
	// n_i(q) > 0 and their counts live at [ndOff[q], ndOff[q+1]).
	ndOff    []int64
	ndBucket []int32
	ndCount  []int32

	target []int32
	gains  []float64

	history []IterStats
}

// newDirectState prepares the refiner. spans gives each bucket's final
// split count for lookahead (nil = all ones = no lookahead).
// idealPerBucket is the global ideal weight of one final bucket; <= 0
// derives it from the subproblem (correct for plain direct mode).
func newDirectState(g *hypergraph.Bipartite, opts Options, seed uint64, spans []int, idealPerBucket float64) *directState {
	k := opts.K
	st := &directState{
		g: g, opts: opts, seed: seed, k: k,
		workers:  par.Workers(opts.Parallelism),
		maxIters: opts.MaxIters,
	}
	if spans == nil {
		spans = make([]int, k)
		for i := range spans {
			spans[i] = 1
		}
	}
	maxN := g.MaxQueryDegree()
	byT := map[int]GainTables{}
	st.tables = make([]GainTables, k)
	for c := 0; c < k; c++ {
		tb, ok := byT[spans[c]]
		if !ok {
			tb = tablesFor(opts, spans[c], maxN)
			byT[spans[c]] = tb
		}
		st.tables[c] = tb
	}

	spanSum := 0
	for _, s := range spans {
		spanSum += s
	}
	total := float64(g.TotalDataWeight())
	if idealPerBucket <= 0 {
		idealPerBucket = total / float64(spanSum)
	}
	st.targetW = make([]float64, k)
	st.capW = make([]float64, k)
	for c := 0; c < k; c++ {
		st.targetW[c] = total * float64(spans[c]) / float64(spanSum)
		st.capW[c] = idealPerBucket * float64(spans[c]) * (1 + opts.Epsilon)
	}

	nd := g.NumData()
	st.bucket = make([]int32, nd)
	st.target = make([]int32, nd)
	st.gains = make([]float64, nd)
	st.bucketW = make([]int64, k)
	st.ndOff = make([]int64, g.NumQueries()+1)

	if opts.Initial != nil {
		copy(st.bucket, opts.Initial)
		st.recountWeights()
		st.repairBalance()
	} else {
		st.randomInit()
	}
	return st
}

// randomInit cuts a random permutation at the per-bucket weight targets,
// giving near-perfect initial balance for any span distribution.
func (st *directState) randomInit() {
	order := rng.NewStream(st.seed, 0xD1CE).Perm(st.g.NumData())
	c := 0
	var acc float64
	for _, v := range order {
		wv := float64(st.g.DataWeight(int32(v)))
		for c < st.k-1 && acc+wv/2 >= st.targetW[c] {
			c++
			acc = 0
		}
		st.bucket[v] = int32(c)
		acc += wv
	}
	st.recountWeights()
}

func (st *directState) recountWeights() {
	for c := range st.bucketW {
		st.bucketW[c] = 0
	}
	for v := 0; v < st.g.NumData(); v++ {
		st.bucketW[st.bucket[v]] += int64(st.g.DataWeight(int32(v)))
	}
}

// repairBalance moves vertices (deterministic random order) out of over-cap
// buckets into the lightest under-target buckets. Needed for warm starts.
func (st *directState) repairBalance() {
	lightest := func() int32 {
		best, bestSlack := int32(0), -1.0
		for c := 0; c < st.k; c++ {
			if slack := st.targetW[c] - float64(st.bucketW[c]); slack > bestSlack {
				bestSlack = slack
				best = int32(c)
			}
		}
		return best
	}
	order := rng.NewStream(st.seed, 0xBA1A).Perm(st.g.NumData())
	for _, v := range order {
		c := st.bucket[v]
		if float64(st.bucketW[c]) <= st.capW[c] {
			continue
		}
		dst := lightest()
		if dst == c {
			continue
		}
		wv := int64(st.g.DataWeight(int32(v)))
		st.bucket[v] = dst
		st.bucketW[c] -= wv
		st.bucketW[dst] += wv
	}
}

// buildNeighborData recomputes the sparse per-query bucket counts
// (supersteps 1–2 of Figure 3). Two passes: count distinct buckets per
// query, prefix-sum, then fill.
func (st *directState) buildNeighborData() {
	nq := st.g.NumQueries()
	scratch := make([][]int32, st.workers)
	touched := make([][]int32, st.workers)
	for w := range scratch {
		scratch[w] = make([]int32, st.k)
		touched[w] = make([]int32, 0, 64)
	}
	par.ForWorker(nq, st.workers, func(w, start, end int) {
		cnt := scratch[w]
		for q := start; q < end; q++ {
			tl := touched[w][:0]
			for _, d := range st.g.QueryNeighbors(int32(q)) {
				b := st.bucket[d]
				if cnt[b] == 0 {
					tl = append(tl, b)
				}
				cnt[b]++
			}
			st.ndOff[q+1] = int64(len(tl))
			for _, b := range tl {
				cnt[b] = 0
			}
			touched[w] = tl[:0]
		}
	})
	st.ndOff[0] = 0
	for q := 0; q < nq; q++ {
		st.ndOff[q+1] += st.ndOff[q]
	}
	totalEntries := st.ndOff[nq]
	if int64(cap(st.ndBucket)) < totalEntries {
		st.ndBucket = make([]int32, totalEntries)
		st.ndCount = make([]int32, totalEntries)
	} else {
		st.ndBucket = st.ndBucket[:totalEntries]
		st.ndCount = st.ndCount[:totalEntries]
	}
	par.ForWorker(nq, st.workers, func(w, start, end int) {
		cnt := scratch[w]
		for q := start; q < end; q++ {
			tl := touched[w][:0]
			for _, d := range st.g.QueryNeighbors(int32(q)) {
				b := st.bucket[d]
				if cnt[b] == 0 {
					tl = append(tl, b)
				}
				cnt[b]++
			}
			pos := st.ndOff[q]
			for _, b := range tl {
				st.ndBucket[pos] = b
				st.ndCount[pos] = cnt[b]
				cnt[b] = 0
				pos++
			}
			touched[w] = tl[:0]
		}
	})
}

// objectiveFromND sums the objective over the current neighbor data.
func (st *directState) objectiveFromND() float64 {
	nq := st.g.NumQueries()
	return par.SumFloat64(nq, st.workers, func(start, end int) float64 {
		sum := 0.0
		for q := start; q < end; q++ {
			wq := float64(st.g.QueryWeight(int32(q)))
			for e := st.ndOff[q]; e < st.ndOff[q+1]; e++ {
				sum += wq * st.tables[st.ndBucket[e]].C[st.ndCount[e]]
			}
		}
		return sum
	})
}

// fanoutFromND returns the average fanout implied by the neighbor data.
func (st *directState) fanoutFromND() float64 {
	nq := st.g.NumQueries()
	if nq == 0 {
		return 0
	}
	return float64(st.ndOff[nq]) / float64(nq)
}

// computeProposals evaluates Equation 1 for every data vertex against all
// buckets its queries touch, and records the best admissible target.
func (st *directState) computeProposals() {
	nd := st.g.NumData()
	type ws struct {
		acc  []float64
		gen  []int32
		tl   []int32
		genC int32
	}
	scratch := make([]*ws, st.workers)
	for w := range scratch {
		scratch[w] = &ws{acc: make([]float64, st.k), gen: make([]int32, st.k), tl: make([]int32, 0, 64)}
	}
	penalty := st.opts.MoveCostPenalty
	par.ForWorker(nd, st.workers, func(w, start, end int) {
		s := scratch[w]
		for v := start; v < end; v++ {
			cur := st.bucket[v]
			tCur := st.tables[cur]
			s.genC++
			s.tl = s.tl[:0]
			base := 0.0
			wdeg := 0.0 // query-weighted degree of v
			for _, q := range st.g.DataNeighbors(int32(v)) {
				wq := float64(st.g.QueryWeight(q))
				wdeg += wq
				for e := st.ndOff[q]; e < st.ndOff[q+1]; e++ {
					b := st.ndBucket[e]
					c := st.ndCount[e]
					if b == cur {
						base += wq * tCur.T[c-1]
						continue
					}
					if s.gen[b] != s.genC {
						s.gen[b] = s.genC
						s.acc[b] = 0
						s.tl = append(s.tl, b)
					}
					s.acc[b] += wq * (st.tables[b].T[c] - st.tables[b].T[0])
				}
			}
			best := int32(-1)
			bestGain := 0.0
			wv := float64(st.g.DataWeight(int32(v)))
			for _, b := range s.tl {
				if float64(st.bucketW[b])+wv > st.capW[b] {
					continue // target bucket is full
				}
				gain := tCur.mult * (base - wdeg*st.tables[b].T[0] - s.acc[b])
				if penalty > 0 && st.opts.Initial != nil {
					if cur == st.opts.Initial[v] {
						gain -= penalty
					} else if b == st.opts.Initial[v] {
						gain += penalty
					}
				}
				if best < 0 || gain > bestGain {
					best = b
					bestGain = gain
				}
			}
			st.target[v] = best
			st.gains[v] = bestGain
		}
	})
}

// pairKey packs an ordered (from, to) bucket pair.
func pairKey(from, to int32) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// applyMoves aggregates proposals into per-direction gain histograms (the
// master's O(k²)-bounded state, kept sparse here), computes move
// probabilities, and executes the probabilistic moves.
func (st *directState) applyMoves(iter int) int64 {
	nd := st.g.NumData()
	partials := make([]map[uint64]*DirHist, st.workers)
	par.ForWorker(nd, st.workers, func(w, start, end int) {
		m := make(map[uint64]*DirHist)
		for v := start; v < end; v++ {
			tgt := st.target[v]
			if tgt < 0 {
				continue
			}
			key := pairKey(st.bucket[v], tgt)
			h := m[key]
			if h == nil {
				h = &DirHist{}
				m[key] = h
			}
			h.Add(st.gains[v])
		}
		partials[w] = m
	})
	hists := make(map[uint64]*DirHist)
	for _, m := range partials {
		for key, h := range m {
			if g, ok := hists[key]; ok {
				g.Merge(h)
			} else {
				hists[key] = h
			}
		}
	}

	var empty DirHist
	probs := make(map[uint64]*ProbTable, len(hists))
	for key, h := range hists {
		if _, done := probs[key]; done {
			continue
		}
		from := int32(key >> 32)
		to := int32(uint32(key))
		rkey := pairKey(to, from)
		rh := hists[rkey]
		if rh == nil {
			rh = &empty
		}
		var pa, pb ProbTable
		if st.opts.Pairing == PairSimple {
			pa, pb = MatchSimple(h, rh, 0, 0)
		} else {
			pa, pb = MatchHistograms(h, rh, 0, 0)
		}
		probs[key] = &pa
		if rh != &empty {
			probs[rkey] = &pb
		}
	}

	// Phase 1 (parallel): per-vertex coin decisions.
	decided := make([]bool, nd)
	iterKey := rng.Mix(uint64(iter)+1, 0xD0D)
	par.For(nd, st.workers, func(start, end int) {
		for v := start; v < end; v++ {
			tgt := st.target[v]
			if tgt < 0 {
				continue
			}
			pt := probs[pairKey(st.bucket[v], tgt)]
			if pt == nil {
				continue
			}
			p := pt.ProbFor(st.gains[v])
			if p <= 0 {
				continue
			}
			if p >= 1 || rng.CoinAt(st.seed, rng.Mix(iterKey, uint64(v))) < p {
				decided[v] = true
			}
		}
	})
	// Phase 2 (serial, deterministic): apply all decided moves (so opposing
	// flows cancel), then undo the lowest-gain arrivals of over-cap buckets
	// until every cap holds again. Undone vertices return to their origin,
	// which held them at iteration start, so the undo loop terminates with
	// all caps satisfied.
	type move struct {
		v    int32
		from int32
	}
	var applied []move
	for v := 0; v < nd; v++ {
		if !decided[v] {
			continue
		}
		cur := st.bucket[v]
		tgt := st.target[v]
		wv := int64(st.g.DataWeight(int32(v)))
		st.bucket[v] = tgt
		st.bucketW[cur] -= wv
		st.bucketW[tgt] += wv
		applied = append(applied, move{int32(v), cur})
	}
	live := int64(len(applied))
	for {
		over := int32(-1)
		for c := 0; c < st.k; c++ {
			if float64(st.bucketW[c]) > st.capW[c] {
				over = int32(c)
				break
			}
		}
		if over < 0 {
			break
		}
		var arrivals []move
		for _, m := range applied {
			if decided[m.v] && st.bucket[m.v] == over {
				arrivals = append(arrivals, m)
			}
		}
		if len(arrivals) == 0 {
			break // pre-existing violation (warm start); nothing to undo
		}
		sort.Slice(arrivals, func(i, j int) bool {
			gi, gj := st.gains[arrivals[i].v], st.gains[arrivals[j].v]
			if gi != gj {
				return gi < gj
			}
			return arrivals[i].v < arrivals[j].v
		})
		for _, m := range arrivals {
			if float64(st.bucketW[over]) <= st.capW[over] {
				break
			}
			wv := int64(st.g.DataWeight(m.v))
			st.bucket[m.v] = m.from
			st.bucketW[over] -= wv
			st.bucketW[m.from] += wv
			decided[m.v] = false
			live--
		}
	}
	return live
}

// run iterates refinement to convergence. Neighbor data built at the start
// of each round also provides the previous round's objective, so metrics
// cost no extra passes.
func (st *directState) run() {
	n := st.g.NumData()
	if n == 0 || st.k <= 1 {
		return
	}
	for iter := 0; ; iter++ {
		st.buildNeighborData()
		if iter > 0 {
			last := &st.history[len(st.history)-1]
			last.Objective = st.objectiveFromND()
			if st.opts.TrackFanout {
				last.Fanout = st.fanoutFromND()
			}
			if last.Moved == 0 || last.MovedFraction < st.opts.MinMoveFraction {
				break
			}
		}
		if iter >= st.maxIters {
			break
		}
		st.computeProposals()
		moved := st.applyMoves(iter)
		st.history = append(st.history, IterStats{
			Iter: iter, Moved: moved, MovedFraction: float64(moved) / float64(n),
		})
	}
}

// partitionDirect runs SHP-k on the whole graph.
func partitionDirect(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	st := newDirectState(g, opts, rng.Mix(opts.Seed, 0xD12EC7), nil, 0)
	st.run()
	assignment := make(partition.Assignment, g.NumData())
	copy(assignment, st.bucket)
	return &Result{
		Assignment: assignment,
		K:          opts.K,
		Iterations: len(st.history),
		History:    st.history,
	}, nil
}
