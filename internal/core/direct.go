package core

import (
	"slices"
	"sync/atomic"

	"shp/internal/hypergraph"
	"shp/internal/par"
	"shp/internal/partition"
	"shp/internal/rng"
)

// directState is the SHP-k refiner: direct k-way local search with sparse
// per-query neighbor data, exactly the structure of the paper's distributed
// implementation (Figure 3) evaluated in-process:
//
//	superstep 1+2: buildNeighborData (n_i(q) for buckets with n_i > 0)
//	superstep 2:   computeProposals  (Equation 1 gains, best target)
//	superstep 3+4: applyMoves        (master pairing + probabilistic moves)
//
// It also serves recursive r-way splitting for r > 2, where each of the r
// buckets carries its own lookahead split count.
//
// # The incremental engine
//
// By default the refiner makes per-iteration cost proportional to churn
// instead of |E| (Section 3.3's dirty-query idea pushed all the way into
// the in-process hot loop):
//
//   - The neighbor data is patched in place after each move batch, only for
//     the queries adjacent to moved vertices (decrement the origin bucket's
//     count, increment the target's, inserting and removing sparse entries
//     as they cross zero).
//   - Every vertex carries its Equation 1 state in patchable form: base
//     (the own-bucket term), wdeg (static query-weighted degree), and a
//     sorted candidate list of (bucket, refs, acc) accumulators. Because
//     all gain-table values live on a shared dyadic grid (see gainGridBits)
//     these sums are exact, so applying the per-entry deltas of a dirty
//     query to its members' accumulators produces bit-for-bit the same
//     state as re-walking their whole neighborhoods — hub queries no longer
//     force their entire membership through a full re-evaluation.
//   - Only moved vertices (whose own bucket, and with it the meaning of
//     base/acc, changed) are rebuilt from scratch. When a batch moves a
//     large fraction of the graph, patch volume would exceed a sweep, so
//     the engine deterministically falls back to a full rebuild sweep for
//     that iteration — interchangeable because patched and swept states are
//     identical.
//   - The per-candidate balance-admissibility filter (the only part of a
//     proposal that depends on global bucket weights) is re-evaluated every
//     iteration for every vertex from the cached accumulators; that argmax
//     is a few flops per candidate.
//
// Options.DisableIncremental replaces all of this with a full neighbor-data
// rebuild and a full proposal sweep per iteration; both paths produce
// byte-identical partitions and histories for a fixed seed.
type directState struct {
	g    *hypergraph.Bipartite
	opts Options
	seed uint64
	k    int

	workers  int
	maxIters int

	bucket  []int32
	bucketW []int64
	targetW []float64
	capW    []float64

	// tables[c] is the gain table of bucket c (lookahead varies per bucket
	// during recursive r-way splits; uniform t=1 in plain direct mode).
	tables []GainTables

	// Sparse neighbor data over queries: the shared kernel's fixed-capacity
	// sorted CSR (see ndstate.go), which also owns the dirty-query diff
	// machinery the patch path feeds on.
	nd *ndState

	// Per-vertex Equation 1 state: cand[v] holds the candidate buckets of v
	// in ascending bucket order with their exact acc sums and contributing-
	// query refcounts; propBase[v] is the own-bucket term; wdegArr[v] the
	// static query-weighted degree.
	cand     [][]proposalCand
	propBase []float64
	wdegArr  []float64

	target []int32
	gains  []float64

	// Incremental-engine state (nil/unused when Options.DisableIncremental):
	// active holds each vertex's pending work — activeRebuild for movers
	// (and everyone after a fallback sweep or safety-net rebuild),
	// activeSelect for vertices whose accumulators were patched.
	// admiss/prevAdmiss track the per-bucket balance-admissibility vector
	// between iterations: on unit-weight graphs an untouched vertex under
	// an unchanged vector would reproduce its previous argmax exactly, so
	// selection is skipped.
	active     []uint8
	admiss     []bool
	prevAdmiss []bool
	admissSame bool

	// frontier is the sorted list of vertices applyNDDeltas marked active —
	// exactly the vertices whose proposal inputs changed in the last batch.
	// While frontierValid, the stable-skip selection pass and the mark
	// clearing walk it instead of scanning all of |D|; sweep fallbacks and
	// external mark injection (a warm Session's engine sync) invalidate it.
	// frontWork holds the per-worker collection buffers, frontScratch the
	// radix-sort ping-pong buffer.
	frontier      []int32
	frontierValid bool
	frontWork     [][]int32
	frontScratch  []int32

	// forceSelect makes the next computeProposals re-run selection for
	// every vertex even when the admissibility vector is stable. A warm
	// Session sets it when an input outside the admissibility vector
	// changed under cached proposals — e.g. the MoveCostPenalty reference
	// assignment was re-snapshotted — after which caches are fresh again.
	forceSelect bool

	// uniformT is set when every bucket shares one gain table (always true
	// in plain direct mode, where no bucket carries lookahead): the
	// Equation 1 sweeps then skip the per-entry table indirection. The
	// specialized loops perform the identical float operations, so results
	// do not depend on which path runs.
	uniformT []float64

	// qw holds per-query weights as float64 (nil when unit-weighted),
	// mirroring the bisection refiner.
	qw []float64

	// Per-iteration move-protocol scratch, reused across iterations: decided
	// flags (cleared through decidedList, never by an O(|D|) sweep), the
	// ascending list of decided vertices with its per-worker collection
	// buffers, the applied-move buffer, and the per-destination trim groups.
	decided     []bool
	decidedList []int32
	decWork     [][]int32
	appliedBuf  []move
	byDst       [][]move
	dstSorted   []bool

	// Dense pair-histogram scratch (k <= densePairK): per-shard (fixed
	// vertex-range, see histShardCount — NOT per-worker, so the fold layout
	// survives any Parallelism) and merged accumulators plus the per-pair
	// probability tables, all reused across iterations so the move protocol
	// performs no map operations. Resized when a warm session grows |D|.
	pairAccs  []*pairAcc
	pairMerge *pairAcc
	probTabs  []ProbTable

	// Migration-budget state (nil/inactive unless Options.MigrationBudget is
	// set and an epoch reference exists): migRef is the epoch-start
	// assignment the budget is charged against, migrated the current count
	// of vertices off their reference bucket, costlyBuf the reusable
	// admission-scratch of applyMoves' budget filter.
	migRef    []int32
	migrated  int64
	costlyBuf []int32

	// gainWork counts Equation 1 work units (one per neighbor query walked
	// in a vertex rebuild); scanWork counts per-vertex visits in the
	// selection/coin/trim loops; lastFrontier is the vertex count the most
	// recent selection pass visited. Pure observability counters.
	gainWork     int64
	scanWork     int64
	lastFrontier int64

	history []IterStats
	work    []WorkStats
}

// proposalCand is one candidate bucket of a data vertex: refs adjacent
// queries currently have an entry for b, contributing the exact accumulator
// acc = Σ_q wq·(T_b[c_q(b)] − T_b[0]). The move gain is derived from acc at
// selection time.
type proposalCand struct {
	b    int32
	refs int32
	acc  float64
}

// Pending-work levels in the refiners' active vectors (directState.active
// and bisection.active share the scheme).
const (
	activeSelect  = 1 // accumulators patched: re-derive the gain/argmax only
	activeRebuild = 2 // bucket changed (or full sweep): rebuild state
)

// sweepFallbackDiv sets the deterministic patch-vs-sweep switch: when a
// batch moves more than NumData/sweepFallbackDiv vertices, patching members
// of dirty queries would cost more than one full rebuild sweep, so the
// engine marks everyone active instead. Both regimes produce identical
// state, so the threshold is a pure performance knob.
const sweepFallbackDiv = 8

// densePairK bounds the dense (from, to) pair index space: k*k int32 slots
// per shard accumulator. Beyond it the histogram protocol falls back to
// maps; both containers hold identical histograms, so results do not depend
// on the choice.
const densePairK = 128

// histShardMin/histShardMax fix the pair-histogram fold decomposition as a
// function of the vertex count ALONE: proposals are accumulated into
// per-shard partial histograms over fixed contiguous vertex ranges (one
// shard per histShardMin vertices, capped at histShardMax to bound the
// k²-sized accumulators), then merged in ascending shard order. Histogram
// sums are float folds, so their boundaries must never move with the worker
// count — workers only decide who computes which shard. The cap and floor
// are pure performance knobs; any fixed layout yields worker-count-
// independent bits.
const (
	histShardMin = 2048
	histShardMax = 32
)

// histShardCount returns the fixed pair-histogram shard count for nd
// vertices.
func histShardCount(nd int) int {
	s := nd / histShardMin
	if s < 1 {
		s = 1
	}
	if s > histShardMax {
		s = histShardMax
	}
	return s
}

// pairAcc accumulates per-direction gain histograms in dense
// generation-stamped slots indexed by from*k+to. reset is O(1); slots are
// (re)zeroed lazily on first touch.
type pairAcc struct {
	gen   []int32
	slot  []int32
	genC  int32
	keys  []int32 // touched pair indices, first-encounter order
	hists []DirHist
}

func newPairAcc(k int) *pairAcc {
	return &pairAcc{gen: make([]int32, k*k), slot: make([]int32, k*k)}
}

func (a *pairAcc) reset() {
	a.genC++
	a.keys = a.keys[:0]
	a.hists = a.hists[:0]
}

// at returns the histogram for pair index idx, allocating its slot on first
// touch. The pointer must not be retained across calls (the backing array
// may grow).
func (a *pairAcc) at(idx int32) *DirHist {
	if a.gen[idx] != a.genC {
		a.gen[idx] = a.genC
		a.slot[idx] = int32(len(a.keys))
		a.keys = append(a.keys, idx)
		if n := len(a.hists); n < cap(a.hists) {
			a.hists = a.hists[:n+1]
			a.hists[n] = DirHist{}
		} else {
			a.hists = append(a.hists, DirHist{})
		}
	}
	return &a.hists[a.slot[idx]]
}

// lookup returns the histogram for idx, or nil if the pair was not touched
// since the last reset.
func (a *pairAcc) lookup(idx int32) *DirHist {
	if a.gen[idx] != a.genC {
		return nil
	}
	return &a.hists[a.slot[idx]]
}

// newDirectState prepares the refiner. spans gives each bucket's final
// split count for lookahead (nil = all ones = no lookahead).
// idealPerBucket is the global ideal weight of one final bucket; <= 0
// derives it from the subproblem (correct for plain direct mode).
func newDirectState(g *hypergraph.Bipartite, opts Options, seed uint64, spans []int, idealPerBucket float64) *directState {
	k := opts.K
	st := &directState{
		g: g, opts: opts, seed: seed, k: k,
		workers:  par.Workers(opts.Parallelism),
		maxIters: opts.MaxIters,
	}
	if spans == nil {
		spans = make([]int, k)
		for i := range spans {
			spans[i] = 1
		}
	}
	maxN := g.MaxQueryDegree()
	byT := map[int]GainTables{}
	st.tables = make([]GainTables, k)
	for c := 0; c < k; c++ {
		tb, ok := byT[spans[c]]
		if !ok {
			tb = tablesFor(opts, spans[c], maxN)
			byT[spans[c]] = tb
		}
		st.tables[c] = tb
	}

	st.uniformT = st.tables[0].T
	for c := 1; c < k; c++ {
		if &st.tables[c].T[0] != &st.uniformT[0] {
			st.uniformT = nil
			break
		}
	}

	spanSum := 0
	for _, s := range spans {
		spanSum += s
	}
	total := float64(g.TotalDataWeight())
	if idealPerBucket <= 0 {
		idealPerBucket = total / float64(spanSum)
	}
	st.targetW = make([]float64, k)
	st.capW = make([]float64, k)
	for c := 0; c < k; c++ {
		st.targetW[c] = total * float64(spans[c]) / float64(spanSum)
		st.capW[c] = idealPerBucket * float64(spans[c]) * (1 + opts.Epsilon)
	}

	nd := g.NumData()
	nq := g.NumQueries()
	st.bucket = make([]int32, nd)
	st.target = make([]int32, nd)
	st.gains = make([]float64, nd)
	st.bucketW = make([]int64, k)
	st.cand = make([][]proposalCand, nd)
	st.propBase = make([]float64, nd)
	st.wdegArr = make([]float64, nd)

	st.nd = newNDState(g, k, st.workers, !opts.DisableIncremental)
	if g.QueryWeighted() {
		st.qw = make([]float64, nq)
		for q := range st.qw {
			st.qw[q] = float64(g.QueryWeight(int32(q)))
		}
	}
	par.For(nd, st.workers, func(start, end int) {
		for v := start; v < end; v++ {
			wdeg := 0.0
			if st.qw == nil {
				wdeg = float64(len(g.DataNeighbors(int32(v))))
			} else {
				for _, q := range g.DataNeighbors(int32(v)) {
					wdeg += st.qw[q]
				}
			}
			st.wdegArr[v] = wdeg
		}
	})

	if !opts.DisableIncremental {
		st.active = make([]uint8, nd)
		st.markAllActive() // fresh state: everything needs evaluation
	}

	if opts.Initial != nil {
		copy(st.bucket, opts.Initial)
		st.recountWeights()
		st.repairBalance(nil)
	} else {
		st.randomInit()
	}
	if opts.MigrationBudget != 0 && opts.Initial != nil {
		// Cold warm-start with a budget: the epoch reference is the initial
		// assignment after the deterministic balance repair (feasibility
		// outranks migration cost). Sessions re-snapshot this per epoch.
		st.migRef = append([]int32(nil), st.bucket...)
	}
	return st
}

// budgetRemaining returns how many more records this epoch may still move
// away from the reference assignment, or -1 when no budget is active.
func (st *directState) budgetRemaining() int64 {
	if st.migRef == nil || st.opts.MigrationBudget == 0 {
		return -1
	}
	budget := st.opts.MigrationBudget
	if budget < 0 {
		budget = 0 // MigrationFrozen and friends: a budget of exactly zero
	}
	if remaining := budget - st.migrated; remaining > 0 {
		return remaining
	}
	return 0
}

// enforceMigrationBudget drops the lowest-gain budget-consuming moves from
// the decided list until the remaining budget can absorb the batch. A move
// consumes budget exactly when it takes a vertex off its epoch-start bucket;
// moves of already-migrated vertices (including returns to the reference)
// are free. In-batch returns do not refund budget until the next iteration,
// which is what makes the invariant trim-proof: however the balance trim
// later edits the batch, at most `remaining` vertices can newly leave their
// reference bucket, so migrated never exceeds the budget. Admission is
// highest-gain-first with ties to the lower vertex id; the surviving list
// keeps its ascending-vertex order (the canonical apply order).
func (st *directState) enforceMigrationBudget(list []int32, remaining int64) []int32 {
	costly := st.costlyBuf[:0]
	for _, v := range list {
		if st.bucket[v] == st.migRef[v] {
			costly = append(costly, v)
		}
	}
	st.costlyBuf = costly
	if int64(len(costly)) <= remaining {
		return list // everything fits: the batch is untouched, bit for bit
	}
	slices.SortFunc(costly, func(a, b int32) int {
		ga, gb := st.gains[a], st.gains[b]
		if ga > gb {
			return -1
		}
		if ga < gb {
			return 1
		}
		return int(a - b)
	})
	for _, v := range costly[remaining:] {
		st.decided[v] = false
	}
	out := list[:0]
	for _, v := range list {
		if st.decided[v] {
			out = append(out, v)
		}
	}
	return out
}

// randomInit cuts a random permutation at the per-bucket weight targets,
// giving near-perfect initial balance for any span distribution.
func (st *directState) randomInit() {
	order := rng.NewStream(st.seed, 0xD1CE).Perm(st.g.NumData())
	c := 0
	var acc float64
	for _, v := range order {
		wv := float64(st.g.DataWeight(int32(v)))
		for c < st.k-1 && acc+wv/2 >= st.targetW[c] {
			c++
			acc = 0
		}
		st.bucket[v] = int32(c)
		acc += wv
	}
	st.recountWeights()
}

func (st *directState) recountWeights() {
	for c := range st.bucketW {
		st.bucketW[c] = 0
	}
	for v := 0; v < st.g.NumData(); v++ {
		st.bucketW[st.bucket[v]] += int64(st.g.DataWeight(int32(v)))
	}
}

// repairBalance moves vertices (deterministic random order) out of over-cap
// buckets into the lightest under-target buckets. Needed for warm starts.
// One copy owns the repair policy for both the cold path and warm sessions:
// onMove (optional) observes every applied move so a session can keep its
// maintained engine state exact; the move order and destination rule must
// never diverge between the two, or warm starts stop matching cold ones.
func (st *directState) repairBalance(onMove func(v, from, to int32)) {
	over := false
	for c := 0; c < st.k; c++ {
		if float64(st.bucketW[c]) > st.capW[c] {
			over = true
			break
		}
	}
	if !over {
		return
	}
	lightest := func() int32 {
		best, bestSlack := int32(0), -1.0
		for c := 0; c < st.k; c++ {
			if slack := st.targetW[c] - float64(st.bucketW[c]); slack > bestSlack {
				bestSlack = slack
				best = int32(c)
			}
		}
		return best
	}
	order := rng.NewStream(st.seed, 0xBA1A).Perm(st.g.NumData())
	for _, v := range order {
		c := st.bucket[v]
		if float64(st.bucketW[c]) <= st.capW[c] {
			continue
		}
		dst := lightest()
		if dst == c {
			continue
		}
		wv := int64(st.g.DataWeight(int32(v)))
		st.bucket[v] = dst
		st.bucketW[c] -= wv
		st.bucketW[dst] += wv
		if onMove != nil {
			onMove(int32(v), c, dst)
		}
	}
}

// buildNeighborData recomputes the sparse per-query bucket counts from
// scratch (supersteps 1–2 of Figure 3) via the shared kernel.
func (st *directState) buildNeighborData() {
	ndBuild(st.nd, st.g, st.workers, st.k, st.bucket)
}

// objectiveFromND sums the objective over the current neighbor data.
func (st *directState) objectiveFromND() float64 {
	nq := st.g.NumQueries()
	return par.SumFloat64(nq, st.workers, func(start, end int) float64 {
		sum := 0.0
		for q := start; q < end; q++ {
			wq := float64(st.g.QueryWeight(int32(q)))
			for _, e := range st.nd.seg(int32(q)) {
				sum += wq * st.tables[e.B].C[e.C]
			}
		}
		return sum
	})
}

// fanoutFromND returns the average fanout implied by the neighbor data.
func (st *directState) fanoutFromND() float64 {
	nq := st.g.NumQueries()
	if nq == 0 {
		return 0
	}
	return float64(st.nd.entries) / float64(nq)
}

// proposalScratch is the per-worker state of one Equation 1 rebuild sweep.
type proposalScratch struct {
	acc  []float64
	refs []int32
	gen  []int32
	tl   []int32
	genC int32
}

func (st *directState) proposalScratches() []*proposalScratch {
	scratch := make([]*proposalScratch, st.workers)
	for w := range scratch {
		scratch[w] = &proposalScratch{
			acc:  make([]float64, st.k),
			refs: make([]int32, st.k),
			gen:  make([]int32, st.k),
			tl:   make([]int32, 0, 64),
		}
	}
	return scratch
}

// rebuildVertex recomputes vertex v's Equation 1 state — propBase[v] and the
// sorted candidate list — from the current neighbor data. All sums are
// exact (grid values), so this produces the same bits as any sequence of
// patches arriving at the same neighbor data.
func (st *directState) rebuildVertex(s *proposalScratch, v int) {
	cur := st.bucket[v]
	s.genC++
	genC := s.genC
	s.tl = s.tl[:0]
	base := 0.0
	// Hoist the kernel CSR's arrays: the per-entry loops below are the
	// engine's hottest memory stream, and going through st.nd on every
	// access costs a dependent load per entry.
	ndOff, ndLen, ndEnt := st.nd.off, st.nd.len, st.nd.ent
	switch T := st.uniformT; {
	case T != nil && st.qw == nil:
		t0 := T[0]
		for _, q := range st.g.DataNeighbors(int32(v)) {
			off := ndOff[q]
			for _, e := range ndEnt[off : off+int64(ndLen[q])] {
				if e.B == cur {
					base += T[e.C-1]
					continue
				}
				if s.gen[e.B] != genC {
					s.gen[e.B] = genC
					s.acc[e.B] = 0
					s.refs[e.B] = 0
					s.tl = append(s.tl, e.B)
				}
				s.acc[e.B] += T[e.C] - t0
				s.refs[e.B]++
			}
		}
	case T != nil:
		t0 := T[0]
		for _, q := range st.g.DataNeighbors(int32(v)) {
			wq := st.qw[q]
			off := ndOff[q]
			for _, e := range ndEnt[off : off+int64(ndLen[q])] {
				if e.B == cur {
					base += wq * T[e.C-1]
					continue
				}
				if s.gen[e.B] != genC {
					s.gen[e.B] = genC
					s.acc[e.B] = 0
					s.refs[e.B] = 0
					s.tl = append(s.tl, e.B)
				}
				s.acc[e.B] += wq * (T[e.C] - t0)
				s.refs[e.B]++
			}
		}
	default:
		tCur := st.tables[cur]
		for _, q := range st.g.DataNeighbors(int32(v)) {
			wq := 1.0
			if st.qw != nil {
				wq = st.qw[q]
			}
			off := ndOff[q]
			for _, e := range ndEnt[off : off+int64(ndLen[q])] {
				if e.B == cur {
					base += wq * tCur.T[e.C-1]
					continue
				}
				if s.gen[e.B] != genC {
					s.gen[e.B] = genC
					s.acc[e.B] = 0
					s.refs[e.B] = 0
					s.tl = append(s.tl, e.B)
				}
				s.acc[e.B] += wq * (st.tables[e.B].T[e.C] - st.tables[e.B].T[0])
				s.refs[e.B]++
			}
		}
	}
	st.propBase[v] = base
	slices.Sort(s.tl)
	dst := st.cand[v][:0]
	for _, b := range s.tl {
		dst = append(dst, proposalCand{b: b, refs: s.refs[b], acc: s.acc[b]})
	}
	st.cand[v] = dst
}

// selectProposal derives each candidate's gain from the cached accumulators,
// applies the balance-admissibility filter (the only proposal input that
// depends on global bucket weights), and records the best target (or -1).
// Runs every iteration for every vertex.
func (st *directState) selectProposal(v int) (int32, float64) {
	cands := st.cand[v]
	best := int32(-1)
	bestGain := 0.0
	if len(cands) == 0 {
		return best, bestGain
	}
	cur := st.bucket[v]
	base := st.propBase[v]
	wdeg := st.wdegArr[v]
	mult := st.tables[cur].mult
	wv := float64(st.g.DataWeight(int32(v)))
	penalty := st.opts.MoveCostPenalty
	usePenalty := penalty > 0 && st.opts.Initial != nil
	// Exact gain ties are broken by a seed-keyed hash of (vertex, bucket):
	// candidates are scanned in ascending bucket order, so "first wins"
	// would systematically herd tied vertices into low bucket ids on
	// symmetric instances. The hash keeps the choice deterministic but
	// unbiased, like the first-encounter order the paper's random bucket
	// numbering produces.
	var bestHash uint64
	vh := rng.Mix(st.seed, uint64(v))
	if T := st.uniformT; T != nil {
		wt0 := wdeg * T[0]
		for i := range cands {
			b := cands[i].b
			if float64(st.bucketW[b])+wv > st.capW[b] {
				continue // target bucket is full
			}
			gain := mult * (base - wt0 - cands[i].acc)
			if usePenalty {
				if cur == st.opts.Initial[v] {
					gain -= penalty
				} else if b == st.opts.Initial[v] {
					gain += penalty
				}
			}
			switch {
			case best < 0 || gain > bestGain:
				best = b
				bestGain = gain
				bestHash = 0
			case gain == bestGain:
				if bestHash == 0 {
					bestHash = rng.Mix(vh, uint64(uint32(best)))
				}
				if h := rng.Mix(vh, uint64(uint32(b))); h < bestHash {
					best = b
					bestHash = h
				}
			}
		}
		return best, bestGain
	}
	for i := range cands {
		b := cands[i].b
		if float64(st.bucketW[b])+wv > st.capW[b] {
			continue // target bucket is full
		}
		gain := mult * (base - wdeg*st.tables[b].T[0] - cands[i].acc)
		if usePenalty {
			if cur == st.opts.Initial[v] {
				gain -= penalty
			} else if b == st.opts.Initial[v] {
				gain += penalty
			}
		}
		switch {
		case best < 0 || gain > bestGain:
			best = b
			bestGain = gain
			bestHash = 0
		case gain == bestGain:
			if bestHash == 0 {
				bestHash = rng.Mix(vh, uint64(uint32(best)))
			}
			if h := rng.Mix(vh, uint64(uint32(b))); h < bestHash {
				best = b
				bestHash = h
			}
		}
	}
	return best, bestGain
}

// computeProposals brings every vertex's proposal up to date: rebuild the
// Equation 1 state of vertices flagged for rebuild (all of them in full
// mode), then run the balance-filtered argmax. On unit-weight graphs the
// argmax of an untouched vertex is skipped entirely when the per-bucket
// admissibility vector is unchanged from the previous iteration — its
// cached target and gain are exactly what a re-run would produce.
func (st *directState) computeProposals() {
	nd := st.g.NumData()
	scratch := st.proposalScratches()
	full := st.opts.DisableIncremental
	st.refreshAdmissibility()
	skipStable := !full && st.admissSame && !st.g.Weighted() && !st.forceSelect
	st.forceSelect = false
	var work int64
	if skipStable && st.frontierValid {
		// Frontier mode: the stable skip would pass over every unmarked
		// vertex anyway, and the marked ones are exactly the frontier — so
		// visit only it, with no O(|D|) scan to find the marks. Cached
		// targets and gains of stable vertices stay exactly what a re-run
		// would produce (that is the stable-skip contract).
		f := st.frontier
		par.ForWorker(len(f), st.workers, func(w, start, end int) {
			s := scratch[w]
			var local int64
			for i := start; i < end; i++ {
				v := int(f[i])
				if st.active[v] == activeRebuild {
					st.rebuildVertex(s, v)
					local += int64(len(st.g.DataNeighbors(int32(v))))
				}
				st.target[v], st.gains[v] = st.selectProposal(v)
			}
			atomic.AddInt64(&work, local)
		})
		st.gainWork += work
		st.scanWork += int64(len(f))
		st.lastFrontier = int64(len(f))
		return
	}
	par.ForWorker(nd, st.workers, func(w, start, end int) {
		s := scratch[w]
		var local int64
		for v := start; v < end; v++ {
			if full || st.active[v] == activeRebuild {
				st.rebuildVertex(s, v)
				local += int64(len(st.g.DataNeighbors(int32(v))))
			} else if skipStable && st.active[v] == 0 {
				continue
			}
			st.target[v], st.gains[v] = st.selectProposal(v)
		}
		atomic.AddInt64(&work, local)
	})
	st.gainWork += work
	st.scanWork += int64(nd)
	st.lastFrontier = int64(nd)
}

// refreshAdmissibility recomputes the per-bucket unit-weight admissibility
// vector and whether it changed since the previous iteration.
func (st *directState) refreshAdmissibility() {
	if st.admiss == nil {
		st.admiss = make([]bool, st.k)
		st.prevAdmiss = make([]bool, st.k)
		st.admissSame = false
	} else {
		copy(st.prevAdmiss, st.admiss)
		st.admissSame = true
	}
	for b := 0; b < st.k; b++ {
		st.admiss[b] = float64(st.bucketW[b])+1 <= st.capW[b]
		if st.admiss[b] != st.prevAdmiss[b] {
			st.admissSame = false
		}
	}
}

// markAllActive schedules every vertex for a rebuild (initial iteration,
// sweep fallback, and safety-net rebuilds).
func (st *directState) markAllActive() {
	if st.active == nil {
		return
	}
	for i := range st.active {
		st.active[i] = activeRebuild
	}
	st.frontierValid = false // marks now cover everyone, not a frontier
}

// pairKey packs an ordered (from, to) bucket pair.
func pairKey(from, to int32) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// matchDense aggregates the proposals into per-direction gain histograms and
// runs the pairing protocol over dense, reused pair slots — no map
// operations anywhere near the per-vertex loops. Requires k <= densePairK.
// Accumulation runs over the fixed histogram shards (see histShardCount) and
// merges them in ascending shard order, so both the histogram float folds
// and the first-encounter order of the merged pair keys depend only on the
// vertex count — never on how many workers executed the shards.
func (st *directState) matchDense() func(from, tgt int32) *ProbTable {
	nd := st.g.NumData()
	k := int32(st.k)
	bounds := par.ForShards(nd, histShardCount(nd))
	shards := len(bounds)
	if len(st.pairAccs) != shards {
		st.pairAccs = make([]*pairAcc, shards)
	}
	if st.pairMerge == nil {
		st.pairMerge = newPairAcc(st.k)
	}
	par.For(shards, st.workers, func(s, e int) {
		for sh := s; sh < e; sh++ {
			acc := st.pairAccs[sh]
			if acc == nil {
				acc = newPairAcc(st.k)
				st.pairAccs[sh] = acc
			}
			acc.reset()
			for v := bounds[sh].Start; v < bounds[sh].End; v++ {
				tgt := st.target[v]
				if tgt < 0 {
					continue
				}
				acc.at(st.bucket[v]*k + tgt).Add(st.gains[v])
			}
		}
	})
	m := st.pairMerge
	m.reset()
	for _, acc := range st.pairAccs {
		if acc == nil {
			continue
		}
		for i, idx := range acc.keys {
			m.at(idx).Merge(&acc.hists[i])
		}
	}

	if cap(st.probTabs) < len(m.keys) {
		st.probTabs = make([]ProbTable, len(m.keys))
	}
	probs := st.probTabs[:len(m.keys)]
	processed := make([]bool, len(m.keys))
	var empty DirHist
	for si, idx := range m.keys {
		if processed[si] {
			continue
		}
		from := idx / k
		to := idx % k
		ridx := to*k + from
		rh := m.lookup(ridx)
		h := &m.hists[si]
		if rh == nil {
			rh = &empty
		}
		var pa, pb ProbTable
		if st.opts.Pairing == PairSimple {
			pa, pb = MatchSimple(h, rh, 0, 0)
		} else {
			pa, pb = MatchHistograms(h, rh, 0, 0)
		}
		probs[si] = pa
		processed[si] = true
		if rh != &empty {
			rsi := m.slot[ridx]
			probs[rsi] = pb
			processed[rsi] = true
		}
	}
	return func(from, tgt int32) *ProbTable {
		idx := from*k + tgt
		if m.gen[idx] != m.genC {
			return nil
		}
		return &probs[m.slot[idx]]
	}
}

// matchSparse is the map-keyed fallback for large k, where k*k index arrays
// would outgrow the caches. It computes exactly the same histograms and
// probability tables as matchDense, over the same fixed shard layout:
// per-shard partial maps merged in ascending shard order (key-ascending
// within each shard), so the float folds are worker-count independent here
// too.
func (st *directState) matchSparse() func(from, tgt int32) *ProbTable {
	nd := st.g.NumData()
	bounds := par.ForShards(nd, histShardCount(nd))
	partials := make([]map[uint64]*DirHist, len(bounds))
	par.For(len(bounds), st.workers, func(s, e int) {
		for sh := s; sh < e; sh++ {
			m := make(map[uint64]*DirHist)
			for v := bounds[sh].Start; v < bounds[sh].End; v++ {
				tgt := st.target[v]
				if tgt < 0 {
					continue
				}
				key := pairKey(st.bucket[v], tgt)
				h := m[key]
				if h == nil {
					h = &DirHist{}
					m[key] = h
				}
				h.Add(st.gains[v])
			}
			partials[sh] = m
		}
	})
	hists := make(map[uint64]*DirHist)
	for _, m := range partials {
		for _, key := range sortedDirKeys(m) {
			h := m[key]
			if g, ok := hists[key]; ok {
				g.Merge(h)
			} else {
				hists[key] = h
			}
		}
	}

	var empty DirHist
	probs := make(map[uint64]*ProbTable, len(hists))
	// Key-ascending so the lower direction key always plays the A side of
	// the matcher and the probability tables are bit-reproducible.
	for _, key := range sortedDirKeys(hists) {
		h := hists[key]
		if _, done := probs[key]; done {
			continue
		}
		from := int32(key >> 32)
		to := int32(uint32(key))
		rkey := pairKey(to, from)
		rh := hists[rkey]
		if rh == nil {
			rh = &empty
		}
		var pa, pb ProbTable
		if st.opts.Pairing == PairSimple {
			pa, pb = MatchSimple(h, rh, 0, 0)
		} else {
			pa, pb = MatchHistograms(h, rh, 0, 0)
		}
		probs[key] = &pa
		if rh != &empty {
			probs[rkey] = &pb
		}
	}
	return func(from, tgt int32) *ProbTable {
		return probs[pairKey(from, tgt)]
	}
}

// sortedDirKeys returns m's direction keys in ascending order, so histogram
// merges and pair matching never run in map iteration order.
func sortedDirKeys(m map[uint64]*DirHist) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// applyMoves aggregates proposals into per-direction gain histograms (the
// master's O(k²)-bounded state, kept sparse here), computes move
// probabilities, and executes the probabilistic moves. It returns the moves
// that survived the balance trim, in ascending vertex order.
func (st *directState) applyMoves(iter int) []move {
	nd := st.g.NumData()
	var probOf func(from, tgt int32) *ProbTable
	if st.k <= densePairK {
		probOf = st.matchDense()
	} else {
		probOf = st.matchSparse()
	}

	// Phase 1 (parallel): per-vertex coin decisions, collected into
	// per-worker lists. par.ForWorker hands out contiguous ascending ranges
	// in worker order, so the concatenation is globally ascending — the
	// serial apply phase walks the list instead of re-scanning all of |D|
	// for the set flags. Flags were cleared through the previous call's
	// list, so no O(|D|) clear either.
	if st.decided == nil {
		st.decided = make([]bool, nd)
	}
	if st.decWork == nil {
		st.decWork = make([][]int32, st.workers)
	}
	for w := range st.decWork {
		// Reset every buffer, not just the ones this batch engages: fewer
		// workers may run than last time, and a stale buffer would leak old
		// vertices into the decided list.
		st.decWork[w] = st.decWork[w][:0]
	}
	decided := st.decided
	iterKey := rng.Mix(uint64(iter)+1, 0xD0D)
	par.ForWorker(nd, st.workers, func(w, start, end int) {
		buf := st.decWork[w]
		for v := start; v < end; v++ {
			tgt := st.target[v]
			if tgt < 0 {
				continue
			}
			pt := probOf(st.bucket[v], tgt)
			if pt == nil {
				continue
			}
			p := pt.ProbFor(st.gains[v])
			if p <= 0 {
				continue
			}
			if p >= 1 || rng.CoinAt(st.seed, rng.Mix(iterKey, uint64(v))) < p {
				decided[v] = true
				buf = append(buf, int32(v))
			}
		}
		st.decWork[w] = buf
	})
	st.scanWork += int64(nd)
	list := st.decidedList[:0]
	for _, buf := range st.decWork {
		list = append(list, buf...)
	}
	if remaining := st.budgetRemaining(); remaining >= 0 {
		list = st.enforceMigrationBudget(list, remaining)
	}
	st.decidedList = list
	// Phase 2 (serial, deterministic): apply all decided moves (so opposing
	// flows cancel), then undo the lowest-gain arrivals of over-cap buckets
	// until every cap holds again. Undone vertices return to their origin,
	// which held them at iteration start, so the undo loop terminates with
	// all caps satisfied. Arrivals are grouped by destination bucket in one
	// pass over the applied moves: a decided vertex's bucket only changes
	// when it is itself undone (clearing its decided flag), so the groups
	// stay valid for the whole trim.
	applied := st.appliedBuf[:0]
	if st.byDst == nil {
		st.byDst = make([][]move, st.k)
		st.dstSorted = make([]bool, st.k)
	}
	for c := range st.byDst {
		st.byDst[c] = st.byDst[c][:0]
		st.dstSorted[c] = false
	}
	byDst := st.byDst
	for _, v := range list {
		cur := st.bucket[v]
		tgt := st.target[v]
		wv := int64(st.g.DataWeight(v))
		st.bucket[v] = tgt
		st.bucketW[cur] -= wv
		st.bucketW[tgt] += wv
		m := move{v, cur}
		applied = append(applied, m)
		byDst[tgt] = append(byDst[tgt], m)
	}
	st.scanWork += int64(len(list))
	sorted := st.dstSorted
	for {
		over := int32(-1)
		for c := 0; c < st.k; c++ {
			if float64(st.bucketW[c]) > st.capW[c] {
				over = int32(c)
				break
			}
		}
		if over < 0 {
			break
		}
		arrivals := byDst[over]
		if !sorted[over] {
			slices.SortFunc(arrivals, func(a, b move) int {
				ga, gb := st.gains[a.v], st.gains[b.v]
				if ga < gb {
					return -1
				}
				if ga > gb {
					return 1
				}
				return int(a.v - b.v)
			})
			sorted[over] = true
		}
		any := false
		for _, m := range arrivals {
			if !decided[m.v] {
				continue // already undone by an earlier trim
			}
			any = true
			if float64(st.bucketW[over]) <= st.capW[over] {
				break
			}
			wv := int64(st.g.DataWeight(m.v))
			st.bucket[m.v] = m.from
			st.bucketW[over] -= wv
			st.bucketW[m.from] += wv
			decided[m.v] = false
		}
		if !any {
			break // pre-existing violation (warm start); nothing to undo
		}
	}
	accepted := applied[:0]
	for _, m := range applied {
		if decided[m.v] {
			accepted = append(accepted, m)
		}
	}
	// Clear the decision flags through the list (undone vertices are already
	// false), so the next iteration starts clean without an O(|D|) clear.
	for _, m := range accepted {
		decided[m.v] = false
	}
	if st.migRef != nil {
		// Exact migration accounting: each accepted move changes the count of
		// off-reference vertices by +1 (left the reference bucket), -1
		// (returned to it), or 0 (moved between two non-reference buckets).
		// Vertices appear at most once per batch, so the fold is exact.
		for _, m := range accepted {
			if m.from == st.migRef[m.v] {
				st.migrated++
			} else if st.bucket[m.v] == st.migRef[m.v] {
				st.migrated--
			}
		}
	}
	st.appliedBuf = applied
	return accepted
}

// applyNDDeltas runs the kernel's move-batch pass (count transfers plus
// dirty-query diff collection), then reconciles the per-vertex proposal
// state: either by patching the members of each dirty query with the
// query's exact entry deltas (small batches), or by scheduling a full
// rebuild sweep (large batches). Movers themselves are always rebuilt —
// their own bucket changed, which reshapes base/acc. Member patches run
// over disjoint vertex ranges using the sorted member lists; all patch
// arithmetic is exact, so results are independent of worker count and of
// the patch-vs-sweep choice. accepted must contain each vertex at most
// once (one move batch), with st.bucket already holding the destination.
func (st *directState) applyNDDeltas(accepted []move) {
	nd := st.g.NumData()
	w := st.workers
	if w < 1 {
		w = 1
	}
	patch := len(accepted)*sweepFallbackDiv < nd
	ndApplyMoveBatch(st.nd, st.g, w, accepted, st.bucket, patch)

	// Clear the previous batch's marks through the frontier they form (the
	// marked set IS the frontier while frontierValid); a full clear is only
	// needed when the marks are not frontier-backed (first batch, or after a
	// sweep fallback or external mark injection).
	if st.frontierValid {
		for _, v := range st.frontier {
			st.active[v] = 0
		}
		st.scanWork += int64(len(st.frontier))
	} else {
		for i := range st.active {
			st.active[i] = 0
		}
		st.scanWork += int64(len(st.active))
	}
	if !patch {
		st.markAllActive()
		return
	}
	if st.frontWork == nil {
		st.frontWork = make([][]int32, w)
	}
	for i := range st.frontWork {
		// Reset every buffer, not just the ones this batch engages: fewer
		// workers may run than last time, and a stale buffer would leak old
		// vertices into the frontier.
		st.frontWork[i] = st.frontWork[i][:0]
	}
	// Parallel by vertex range: fold each dirty query's entry deltas into
	// its members' accumulators. Member lists are sorted, so each worker
	// binary-searches its slice of every group; exact arithmetic makes the
	// patch order (and the range partition) irrelevant to the result. The
	// first touch of each vertex also records it in the worker's frontier
	// buffer (vertex ranges are disjoint, so the flag read is race-free).
	par.ForWorker(nd, w, func(pw, vs, ve int) {
		lo32, hi32 := int32(vs), int32(ve)
		buf := st.frontWork[pw]
		for dw := range st.nd.delta {
			ds := &st.nd.delta[dw]
			for _, grp := range ds.groups {
				members := st.g.QueryNeighbors(grp.q)
				i := lowerBound(members, lo32)
				wq := 1.0
				if st.qw != nil {
					wq = st.qw[grp.q]
				}
				recs := ds.recs[grp.off : grp.off+grp.n]
				for _, v := range members[i:] {
					if v >= hi32 {
						break
					}
					st.patchVertex(v, wq, recs)
					if st.active[v] == 0 {
						buf = append(buf, v)
					}
					st.active[v] = activeSelect
				}
			}
		}
		st.frontWork[pw] = buf
	})
	f := st.frontier[:0]
	for _, buf := range st.frontWork {
		f = append(f, buf...)
	}
	// Movers are rebuilt next iteration: their own bucket changed, so the
	// cached base/acc (and any patches applied to them above) refer to the
	// wrong frame. This overrides any activeSelect mark from the patch pass.
	// Zero-degree movers were not collected as members of any dirty query.
	for _, m := range accepted {
		if st.active[m.v] == 0 {
			f = append(f, m.v)
		}
		st.active[m.v] = activeRebuild
	}
	// Ascending order is the canonical proposal-pass order; the collected
	// buffers interleave members of distinct dirty queries, so order them
	// with O(|F|) counting passes (see radixSortInt32) rather than a
	// comparison sort.
	if cap(st.frontScratch) < len(f) {
		st.frontScratch = make([]int32, len(f))
	}
	radixSortInt32(f, st.frontScratch[:cap(st.frontScratch)], int32(nd))
	st.frontier = f
	st.frontierValid = true
}

// patchVertex folds one dirty query's entry deltas into vertex v's cached
// Equation 1 state. For v's own bucket the base term is adjusted; for any
// other bucket the candidate accumulator is adjusted, inserting or removing
// the candidate as its contributing-query refcount crosses zero. Records
// and candidates are both sorted by bucket, so one two-pointer walk covers
// all deltas without per-record searches. Movers may be patched against
// their post-move bucket, leaving garbage — harmless, as movers are fully
// rebuilt before the next selection.
func (st *directState) patchVertex(v int32, wq float64, recs []NDChange) {
	cur := st.bucket[v]
	cands := st.cand[v]
	ci := 0
	for _, r := range recs {
		if r.B == cur {
			st.propBase[v] += wq * st.tables[cur].DeltaOwn(r.COld, r.CNew)
			continue
		}
		// DeltaAway is the exact candidate-accumulator change: the candidate
		// terms are T[c]−T[0] (0 when absent), and the T[0]s cancel in the
		// difference.
		dAcc := st.tables[r.B].DeltaAway(r.COld, r.CNew)
		var dref int32
		if r.COld == 0 {
			dref++
		}
		if r.CNew == 0 {
			dref--
		}
		for ci < len(cands) && cands[ci].b < r.B {
			ci++
		}
		if ci < len(cands) && cands[ci].b == r.B {
			cands[ci].refs += dref
			if cands[ci].refs <= 0 {
				cands = append(cands[:ci], cands[ci+1:]...)
			} else {
				cands[ci].acc += wq * dAcc
			}
			continue
		}
		cands = append(cands, proposalCand{})
		copy(cands[ci+1:], cands[ci:])
		cands[ci] = proposalCand{b: r.B, refs: dref, acc: wq * dAcc}
		ci++
	}
	st.cand[v] = cands
}

// run builds the neighbor data from scratch and iterates refinement to
// convergence.
func (st *directState) run() {
	if st.g.NumData() == 0 || st.k <= 1 {
		return
	}
	st.buildNeighborData()
	st.markAllActive()
	st.refine()
}

// refine iterates refinement to convergence from the current neighbor-data
// and proposal state (which run builds from scratch and a warm Session
// patches in place between calls). The neighbor data maintained (or
// rebuilt) across iterations also provides each round's objective, so
// metrics cost no extra graph passes. History entries are appended to
// st.history; callers that reuse the state across refinement epochs
// truncate it first.
func (st *directState) refine() {
	n := st.g.NumData()
	if n == 0 || st.k <= 1 {
		return
	}
	full := st.opts.DisableIncremental
	rebuildEvery := st.opts.NDRebuildEvery
	for iter := 0; ; iter++ {
		if iter > 0 {
			if full || (rebuildEvery > 0 && iter%rebuildEvery == 0) {
				st.buildNeighborData()
				st.markAllActive()
			}
			last := &st.history[len(st.history)-1]
			last.Objective = st.objectiveFromND()
			if st.opts.TrackFanout {
				last.Fanout = st.fanoutFromND()
			}
			if last.Moved == 0 || last.MovedFraction < st.opts.MinMoveFraction {
				break
			}
		}
		if iter >= st.maxIters {
			break
		}
		gw0, sw0 := st.gainWork, st.scanWork
		st.computeProposals()
		accepted := st.applyMoves(iter)
		if !full {
			st.applyNDDeltas(accepted)
		}
		moved := int64(len(accepted))
		st.history = append(st.history, IterStats{
			Iter: iter, Moved: moved, MovedFraction: float64(moved) / float64(n),
		})
		st.work = append(st.work, WorkStats{
			Iter:     iter,
			Frontier: st.lastFrontier,
			GainWork: st.gainWork - gw0,
			ScanWork: st.scanWork - sw0,
		})
	}
}

// partitionDirect runs SHP-k on the whole graph.
func partitionDirect(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	st := newDirectState(g, opts, rng.Mix(opts.Seed, 0xD12EC7), nil, 0)
	st.run()
	assignment := make(partition.Assignment, g.NumData())
	copy(assignment, st.bucket)
	return &Result{
		Assignment: assignment,
		K:          opts.K,
		Iterations: len(st.history),
		History:    st.history,
		Work:       st.work,
		Migrated:   st.migrated,
	}, nil
}
