package core

import (
	"slices"
	"sync/atomic"

	"shp/internal/hypergraph"
	"shp/internal/par"
	"shp/internal/rng"
)

// bisection is one 2-way refinement subproblem over a compact induced graph.
// Recursive bisection (SHP-2) builds one of these per recursion node; the
// two "sides" are the node's two children.
//
// # The incremental engine
//
// Like the SHP-k refiner (direct.go), the bisection runs on the shared
// incremental-gain kernel (ndstate.go). Its neighbor data is the two-bucket
// special case of the kernel's per-query segments — a (c0, c1) pair — so
// the counts live in two dense arrays rather than a sparse CSR, but
// everything downstream of a count change is the kernel's machinery:
//
//   - Every data vertex carries its Equation 1 state in patchable form:
//     accOwn = Σ_q wq·T_cur[n_cur(q)−1] and accOth = Σ_q wq·T_oth[n_oth(q)],
//     from which the gain is mult·(accOwn − accOth) plus the warm-start
//     penalty.
//   - After a move batch, each dirty query's canonical (side, cOld, cNew)
//     changes are derived from the batch's net count deltas (every move is
//     a ±1 transfer, so cOld is exactly cNew minus the net delta — no
//     snapshots needed), and folded into the clean members' accumulators
//     through GainTables.DeltaOwn/DeltaAway. A hub query with one mover
//     costs two branch-free adds per member instead of each member
//     re-walking its whole membership, so frontier cost is O(churn).
//   - Movers are rebuilt (their own side changed, which swaps the meaning
//     of the two accumulators), and batches that move more than
//     1/sweepFallbackDiv of the vertices fall back to a full rebuild sweep.
//     Every Options.NDRebuildEvery iterations a safety-net recount rebuilds
//     the maintained counts from scratch.
//
// All patch arithmetic lives on the shared dyadic grid, so the patched and
// rebuilt states are bit-identical, and the engine is pinned byte-identical
// to Options.DisableIncremental (full per-iteration gain recomputation) —
// the same guarantee the direct engine carries.
type bisection struct {
	g    *hypergraph.Bipartite
	opts Options
	seed uint64

	level, task int
	workers     int
	maxIters    int

	// Lookahead split counts: side 0 will later split into tSplit[0] final
	// buckets, side 1 into tSplit[1] (Section 3.4's final-p-fanout
	// approximation). Both 1 when lookahead is disabled or at leaf level.
	tSplit [2]int
	tables [2]GainTables

	// eps is the imbalance allowance granted to this recursion level.
	eps float64

	side []int8     // current side of each data vertex
	home []int8     // warm-start side, -1 when absent (for MoveCostPenalty)
	n    [2][]int32 // per-query neighbor counts per side
	w    [2]int64   // side weights

	// Incremental-engine state (nil when Options.DisableIncremental):
	// accOwn/accOth are the per-vertex patchable Equation 1 accumulators;
	// active holds each vertex's pending work (activeRebuild for movers and
	// full sweeps, activeSelect for patched accumulators); d holds each
	// dirty query's net per-side count delta for the current batch, dirtyQ
	// the touched queries in first-touch order (deduped by dirtyFlag);
	// lastMoved collects the batch's movers; pgs is the reusable buffer the
	// per-dirty-query patch groups land in.
	accOwn, accOth []float64
	active         []uint8
	d              [2][]int32
	dirtyFlag      []uint8
	dirtyQ         []int32
	lastMoved      []int32
	pgs            []patchGroup
	pgsReady       bool
	allActive      bool

	// Owner-sharded parallel patch routing (see applyBatchPatched): route
	// is the reused [source][owner] transfer buffer, ownerDirty/ownerPGs
	// the per-owner dirty-query lists and derived patch groups.
	route      [][][]sideUpdate
	ownerDirty [][]int32
	ownerPGs   [][]patchGroup

	// frontier is the sorted list of vertices finishPatch marked active —
	// exactly the vertices whose (side, gain) can have changed since the
	// last iteration. While frontierValid, the gain pass and the bin sync
	// walk it instead of scanning all of |D|; sweep fallbacks invalidate it
	// (the marks then cover everyone). frontWork holds the per-worker
	// collection buffers, frontScratch the radix-sort ping-pong buffer.
	// Maintained only on the incremental path.
	frontier      []int32
	frontierValid bool
	frontWork     [][]int32
	frontScratch  []int32

	// bins is the maintained gain-bin structure (see gainbins.go), kept on
	// BOTH paths — the histogram sums must come from the same float
	// operation sequence for the paths to stay bit-identical.
	bins *gainBins

	// Reusable per-iteration scratch for the probabilistic move protocol:
	// decided flags plus the (ascending) list of decided vertices, and the
	// trim pass's arrival buffer. All cleared through the lists they were
	// filled from, so idle iterations never pay an O(|D|) clear. coinWork
	// and coinScan are the coin phase's per-bin-shard collection buffers
	// and scan counters (sized by the shard layout, not the worker count).
	decided     []bool
	decidedList []int32
	arrivalsBuf []int32
	coinWork    [][]int32
	coinScan    []int64

	targetW [2]float64
	capW    [2]float64

	gains []float64

	// qw holds per-query weights as float64 (nil when unit-weighted):
	// weighted queries scale their Equation 1 terms and objective
	// contributions proportionally.
	qw []float64

	// gainWork counts Equation 1 work units deterministically: one per
	// table term summed in a gain rebuild, one per delta record folded into
	// an accumulator. workHist snapshots the running total after every
	// iteration. scanWork counts the per-vertex visits of the phases around
	// the gain math — the gain/sync/coin/trim loops — and scanHist mirrors
	// workHist for it; together they pin the engine's frontier-
	// proportionality. lastFrontier records the vertex count the most
	// recent gain pass visited. All are pure observability counters (never
	// read by the algorithm).
	gainWork     int64
	workHist     []int64
	scanWork     int64
	scanHist     []int64
	lastFrontier int64

	history []IterStats
	work    []WorkStats
}

// newBisection prepares a subproblem. propLeft is the share of total weight
// destined for side 0 (e.g. 3/5 when splitting 5 buckets into 3+2).
// idealPerBucket is the global ideal weight of one final bucket
// (total graph weight / K); balance caps are expressed against it so that
// per-level ε allowances telescope to the overall (1+ε)·n/k bound instead of
// compounding. Pass <= 0 to derive it from the subproblem itself.
func newBisection(g *hypergraph.Bipartite, opts Options, seed uint64, level, task int,
	tLeft, tRight int, propLeft, eps, idealPerBucket float64, home []int8) *bisection {

	b := &bisection{
		g: g, opts: opts, seed: seed,
		level: level, task: task,
		workers:  par.Workers(opts.Parallelism),
		maxIters: opts.MaxIters,
		tSplit:   [2]int{tLeft, tRight},
		eps:      eps,
		home:     home,
	}
	maxN := g.MaxQueryDegree()
	b.tables[0] = tablesFor(opts, tLeft, maxN)
	b.tables[1] = tablesFor(opts, tRight, maxN)

	nd := g.NumData()
	nq := g.NumQueries()
	b.side = make([]int8, nd)
	b.gains = make([]float64, nd)
	// The histogram protocol shards the bins by fixed vertex ranges so the
	// sync and coin phases parallelize; the exact pairing needs one global
	// order and keeps a single shard. Keyed off opts alone, never workers.
	b.bins = newGainBins(nd, opts.Pairing != PairExact)
	b.n[0] = make([]int32, nq)
	b.n[1] = make([]int32, nq)
	if !opts.DisableIncremental {
		b.accOwn = make([]float64, nd)
		b.accOth = make([]float64, nd)
		b.active = make([]uint8, nd)
		b.d[0] = make([]int32, nq)
		b.d[1] = make([]int32, nq)
		b.dirtyFlag = make([]uint8, nq)
		b.allActive = true // fresh state: everything needs evaluation
	}
	if g.QueryWeighted() {
		b.qw = make([]float64, nq)
		for q := range b.qw {
			b.qw[q] = float64(g.QueryWeight(int32(q)))
		}
	}

	total := g.TotalDataWeight()
	b.targetW[0] = float64(total) * propLeft
	b.targetW[1] = float64(total) - b.targetW[0]
	if idealPerBucket <= 0 {
		idealPerBucket = float64(total) / float64(tLeft+tRight)
	}
	b.capW[0] = idealPerBucket * float64(tLeft) * (1 + eps)
	b.capW[1] = idealPerBucket * float64(tRight) * (1 + eps)

	b.initialSplit(propLeft)
	b.recountNeighborData()
	return b
}

// initialSplit assigns sides. With a warm start (home), vertices keep their
// home side and only balance violations are repaired; otherwise a random
// permutation is cut at the target weight, giving the near-perfect initial
// balance the paper's random initialization relies on.
func (b *bisection) initialSplit(propLeft float64) {
	nd := b.g.NumData()
	if b.home != nil {
		copy(b.side, b.home)
		for i, h := range b.home {
			if h < 0 {
				// Vertex without a warm-start side: deterministic coin.
				if rng.CoinAt(b.seed^0x5157, uint64(i)) < propLeft {
					b.side[i] = 0
				} else {
					b.side[i] = 1
				}
			}
		}
		b.recountWeights()
		b.repairBalance()
		return
	}
	order := rng.NewStream(b.seed, 0xF00D).Perm(nd)
	var acc float64
	for _, v := range order {
		wv := float64(b.g.DataWeight(int32(v)))
		if acc+wv/2 < b.targetW[0] {
			b.side[v] = 0
			acc += wv
		} else {
			b.side[v] = 1
		}
	}
	b.recountWeights()
}

func (b *bisection) recountWeights() {
	b.w[0], b.w[1] = 0, 0
	for v := 0; v < b.g.NumData(); v++ {
		b.w[b.side[v]] += int64(b.g.DataWeight(int32(v)))
	}
}

// repairBalance flips vertices from the over-cap side (in deterministic
// random order) until both caps hold. Needed only for warm starts.
func (b *bisection) repairBalance() {
	for s := 0; s < 2; s++ {
		if float64(b.w[s]) <= b.capW[s] {
			continue
		}
		order := rng.NewStream(b.seed, 0xBA1A).Perm(b.g.NumData())
		for _, v := range order {
			if float64(b.w[s]) <= b.targetW[s] {
				break
			}
			if b.side[v] != int8(s) {
				continue
			}
			b.side[v] = int8(1 - s)
			wv := int64(b.g.DataWeight(int32(v)))
			b.w[s] -= wv
			b.w[1-s] += wv
		}
	}
}

// recountNeighborData rebuilds the per-query side counts from scratch (the
// two-bucket form of the kernel's ndBuild).
func (b *bisection) recountNeighborData() {
	nq := b.g.NumQueries()
	par.For(nq, b.workers, func(start, end int) {
		for q := start; q < end; q++ {
			var c0, c1 int32
			for _, d := range b.g.QueryNeighbors(int32(q)) {
				if b.side[d] == 0 {
					c0++
				} else {
					c1++
				}
			}
			b.n[0][q] = c0
			b.n[1][q] = c1
		}
	})
}

// rebuildGain resums vertex v's Equation 1 accumulators from the current
// side counts and derives the gain. All terms are grid values, so the
// resummation lands on the same bits as any sequence of patches arriving at
// the same counts.
func (b *bisection) rebuildGain(v int32) int64 {
	cur := b.side[v]
	oth := 1 - cur
	tCur := b.tables[cur].T
	tOth := b.tables[oth].T
	own, sumOth := 0.0, 0.0
	neighbors := b.g.DataNeighbors(v)
	if b.qw == nil {
		for _, q := range neighbors {
			own += tCur[b.n[cur][q]-1]
			sumOth += tOth[b.n[oth][q]]
		}
	} else {
		for _, q := range neighbors {
			wq := b.qw[q]
			own += wq * tCur[b.n[cur][q]-1]
			sumOth += wq * tOth[b.n[oth][q]]
		}
	}
	b.accOwn[v] = own
	b.accOth[v] = sumOth
	b.deriveGain(v)
	return int64(2 * len(neighbors))
}

// deriveGain turns vertex v's cached accumulators into its move gain:
// Equation 1 plus the incremental-update penalty. Grid-exact sums make
// accOwn − accOth equal, bit for bit, to the interleaved single-pass
// summation the full path performs.
func (b *bisection) deriveGain(v int32) {
	g := b.tables[0].mult * (b.accOwn[v] - b.accOth[v])
	if b.opts.MoveCostPenalty > 0 && b.home != nil && b.home[v] >= 0 {
		if b.side[v] == b.home[v] {
			g -= b.opts.MoveCostPenalty // would leave home
		} else {
			g += b.opts.MoveCostPenalty // would return home
		}
	}
	b.gains[v] = g
}

// computeGains brings every vertex's Equation 1 gain up to date. On the
// full path (DisableIncremental) every vertex re-walks its membership each
// iteration. On the incremental path only flagged vertices do anything:
// movers (and full sweeps) resum their accumulators, patched vertices
// re-derive the gain from the already-exact accumulators, and untouched
// vertices keep their cached gain — which is bit-identical to what a
// recomputation would produce, because none of its inputs changed.
func (b *bisection) computeGains() {
	nd := b.g.NumData()
	if b.active == nil {
		// Full path: one interleaved Equation 1 pass per vertex.
		par.For(nd, b.workers, func(start, end int) {
			for v := start; v < end; v++ {
				b.gains[v] = b.freshGain(int32(v))
			}
		})
		b.gainWork += 2 * int64(b.g.NumEdges())
		b.lastFrontier = int64(nd)
		return
	}
	var work int64
	if !b.allActive && b.frontierValid {
		// Frontier mode: the flagged vertices are exactly the frontier, so
		// visit only it — no O(|D|) scan to find the marks.
		f := b.frontier
		par.ForWorker(len(f), b.workers, func(_, start, end int) {
			var local int64
			for i := start; i < end; i++ {
				v := f[i]
				if b.active[v] == activeRebuild {
					local += b.rebuildGain(v)
				} else if b.active[v] == activeSelect {
					b.deriveGain(v)
				}
			}
			atomic.AddInt64(&work, local)
		})
		b.gainWork += work
		b.scanWork += int64(len(f))
		b.lastFrontier = int64(len(f))
		return
	}
	all := b.allActive
	par.ForWorker(nd, b.workers, func(_, start, end int) {
		var local int64
		for v := start; v < end; v++ {
			if all || b.active[v] == activeRebuild {
				local += b.rebuildGain(int32(v))
			} else if b.active[v] == activeSelect {
				b.deriveGain(int32(v))
			}
		}
		atomic.AddInt64(&work, local)
	})
	b.gainWork += work
	b.scanWork += int64(nd)
	b.lastFrontier = int64(nd)
}

// syncBins reconciles the maintained gain bins with the current (side,
// gain) state, after computeGains and before any consumer. Both paths
// apply the same canonical changed-only update rule in ascending vertex
// order within each bin shard (see gainbins.go); only how the candidate
// set is discovered differs — comparison scan over everyone, or the
// frontier. Shards are disjoint vertex ranges, so the parallel sweep is
// lock-free, and the per-shard update sequences are identical for every
// worker count (workers only decide who processes which shards).
func (b *bisection) syncBins() {
	nd := b.g.NumData()
	if b.active == nil || b.allActive || !b.frontierValid {
		par.For(b.bins.shards, b.workers, func(s, e int) {
			for sh := s; sh < e; sh++ {
				lo, hi := b.bins.shardRange(sh)
				for v := lo; v < hi; v++ {
					b.bins.update(int32(v), b.side[v], b.gains[v])
				}
			}
		})
		b.scanWork += int64(nd)
		return
	}
	// The frontier is sorted ascending, so each shard's candidates are one
	// contiguous slice of it, found by binary search.
	f := b.frontier
	par.For(b.bins.shards, b.workers, func(s, e int) {
		for sh := s; sh < e; sh++ {
			lo, hi := b.bins.shardRange(sh)
			i := lowerBound(f, int32(lo))
			for _, v := range f[i:] {
				if v >= int32(hi) {
					break
				}
				b.bins.update(v, b.side[v], b.gains[v])
			}
		}
	})
	b.scanWork += int64(len(f))
}

// objective returns the subproblem's current objective value (sum over
// queries of both sides' contributions, using the lookahead tables).
func (b *bisection) objective() float64 {
	nq := b.g.NumQueries()
	return par.SumFloat64(nq, b.workers, func(start, end int) float64 {
		sum := 0.0
		c0 := b.tables[0].C
		c1 := b.tables[1].C
		for q := start; q < end; q++ {
			c := c0[b.n[0][q]] + c1[b.n[1][q]]
			if b.qw != nil {
				c *= b.qw[q]
			}
			sum += c
		}
		return sum
	})
}

// extras returns the one-sided move allowances (in vertices) for directions
// 0->1 and 1->0, derived from the receiving side's remaining ε headroom.
func (b *bisection) extras() (into1, into0 int64) {
	avgW := 1.0
	if b.g.Weighted() {
		avgW = float64(b.g.TotalDataWeight()) / float64(b.g.NumData())
	}
	head1 := (b.capW[1] - float64(b.w[1])) / avgW
	head0 := (b.capW[0] - float64(b.w[0])) / avgW
	// 0.9 safety margin: probabilistic rounding can overshoot the expected
	// number of extra moves.
	if head1 > 0 {
		into1 = int64(head1 * 0.9)
	}
	if head0 > 0 {
		into0 = int64(head0 * 0.9)
	}
	return into1, into0
}

// run iterates refinement until convergence and returns the final sides.
func (b *bisection) run() []int8 {
	nd := b.g.NumData()
	if nd == 0 {
		return b.side
	}
	incremental := b.active != nil
	rebuildEvery := b.opts.NDRebuildEvery
	for iter := 0; iter < b.maxIters; iter++ {
		b.allActive = iter == 0
		if incremental && rebuildEvery > 0 && iter > 0 && iter%rebuildEvery == 0 {
			// Safety net: recompute the maintained counts from scratch and
			// re-evaluate everything. Never changes results.
			b.recountNeighborData()
			b.allActive = true
		}
		gw0, sw0 := b.gainWork, b.scanWork
		b.computeGains()
		var moved int64
		if b.opts.Pairing == PairExact {
			moved = b.applyExact(iter)
		} else {
			moved = b.applyProbabilistic(iter)
		}
		b.history = append(b.history, IterStats{
			Level: b.level, Task: b.task, Iter: iter,
			Objective:     b.objective(),
			Moved:         moved,
			MovedFraction: float64(moved) / float64(nd),
		})
		b.workHist = append(b.workHist, b.gainWork)
		b.scanHist = append(b.scanHist, b.scanWork)
		b.work = append(b.work, WorkStats{
			Level: b.level, Task: b.task, Iter: iter,
			Frontier: b.lastFrontier,
			GainWork: b.gainWork - gw0,
			ScanWork: b.scanWork - sw0,
		})
		if moved == 0 || float64(moved)/float64(nd) < b.opts.MinMoveFraction {
			break
		}
	}
	return b.side
}

// applyProbabilistic runs the histogram (or S-matrix) protocol: read the
// per-direction gain histograms off the maintained bins, let the "master"
// compute per-bin move probabilities, then move each vertex with its bin's
// probability using a per-vertex deterministic coin. No phase scans all of
// |D|: the histogram costs O(bins), the coin phase visits only the bins
// the matching granted positive probability, and the apply/trim phases
// walk the decided list.
func (b *bisection) applyProbabilistic(iter int) int64 {
	nd := b.g.NumData()
	b.syncBins()
	hist0 := b.bins.hist(0)
	hist1 := b.bins.hist(1)
	into1, into0 := b.extras()
	var probs [2]ProbTable
	if b.opts.Pairing == PairSimple {
		probs[0], probs[1] = MatchSimple(&hist0, &hist1, into1, into0)
	} else {
		probs[0], probs[1] = MatchHistograms(&hist0, &hist1, into1, into0)
	}

	// Phase 1: per-vertex coin decisions, visiting only populated bins with
	// positive move probability, in parallel over the fixed bin shards. The
	// decision per vertex is its own deterministic coin against its bin's
	// probability (a vertex's bin probability IS its ProbFor), so the
	// decided set is independent of visit order and of the worker count;
	// the per-shard buffers are concatenated in ascending shard order and
	// radix-sorted back into the canonical ascending order the apply phase
	// requires. decided[v] writes stay within v's shard, so the sweep is
	// lock-free.
	if b.decided == nil {
		b.decided = make([]bool, nd)
	}
	decided := b.decided
	if len(b.coinWork) != b.bins.shards {
		b.coinWork = make([][]int32, b.bins.shards)
		b.coinScan = make([]int64, b.bins.shards)
	}
	iterKey := rng.Mix(uint64(iter)+1, 0xC01)
	par.For(b.bins.shards, b.workers, func(s, e int) {
		for sh := s; sh < e; sh++ {
			buf := b.coinWork[sh][:0]
			var scan int64
			shBase := sh * binSlots
			for side := 0; side < 2; side++ {
				base := shBase + side*2*histBins
				pt := &probs[side]
				for sign := 0; sign < 2; sign++ {
					for bin := 0; bin < histBins; bin++ {
						var p float64
						if sign == 0 {
							p = pt.pos[bin]
						} else {
							p = pt.neg[bin]
						}
						if p <= 0 {
							continue
						}
						vs := b.bins.list[base+sign*histBins+bin]
						scan += int64(len(vs))
						for _, v := range vs {
							if p >= 1 || rng.CoinAt(b.seed, rng.Mix(iterKey, uint64(v))) < p {
								decided[v] = true
								buf = append(buf, v)
							}
						}
					}
				}
			}
			b.coinWork[sh] = buf
			b.coinScan[sh] = scan
		}
	})
	list := b.decidedList[:0]
	for sh := 0; sh < b.bins.shards; sh++ {
		list = append(list, b.coinWork[sh]...)
		b.scanWork += b.coinScan[sh]
	}
	if cap(b.frontScratch) < len(list) {
		b.frontScratch = make([]int32, len(list))
	}
	radixSortInt32(list, b.frontScratch[:cap(b.frontScratch)], int32(nd))
	b.decidedList = list
	// Phase 2 (serial, deterministic): apply all decided moves, then undo
	// the lowest-gain arrivals of any side that breached its cap. Applying
	// first lets opposing flows cancel (a swap must not deadlock on two
	// full sides); the undo pass upgrades the paper's balance-in-
	// expectation to a hard cap. Because total weight never exceeds
	// capL + capR, trimming one side cannot push the other over its cap.
	for _, v := range list {
		cur := b.side[v]
		oth := 1 - cur
		wv := int64(b.g.DataWeight(v))
		b.side[v] = oth
		b.w[cur] -= wv
		b.w[oth] += wv
	}
	b.scanWork += int64(len(list))
	for s := int8(0); s < 2; s++ {
		if float64(b.w[s]) <= b.capW[s] {
			continue
		}
		arrivals := b.arrivalsBuf[:0]
		for _, v := range list {
			// decided[v] guards against double-undo: a vertex undone by the
			// other side's trim pass is already back home and must not be
			// flipped again (that would desynchronize the neighbor counts).
			if decided[v] && b.side[v] == s {
				arrivals = append(arrivals, v)
			}
		}
		b.scanWork += int64(len(list))
		slices.SortFunc(arrivals, func(x, y int32) int {
			gx, gy := b.gains[x], b.gains[y]
			if gx < gy {
				return -1
			}
			if gx > gy {
				return 1
			}
			return int(x - y)
		})
		for _, v := range arrivals {
			if float64(b.w[s]) <= b.capW[s] {
				break
			}
			wv := int64(b.g.DataWeight(v))
			b.side[v] = 1 - s
			b.w[s] -= wv
			b.w[1-s] += wv
			decided[v] = false // undone
		}
		b.arrivalsBuf = arrivals
	}
	accepted := list[:0]
	for _, v := range list {
		if decided[v] {
			accepted = append(accepted, v)
		}
	}
	// Clear the decision flags through the list (undone vertices are
	// already false), so the next iteration starts clean without an O(|D|)
	// clear.
	for _, v := range accepted {
		decided[v] = false
	}
	// Phase 3: neighbor-count updates for surviving moves. Small batches on
	// the incremental path go through the patch collector (counts, net
	// deltas, dirty queries, member patches — O(churn·deg), owner-sharded
	// in parallel past a size gate); everything else takes the parallel
	// atomic path, with a full rebuild sweep scheduled when the engine is
	// on.
	if b.active != nil && len(accepted)*sweepFallbackDiv < nd {
		b.applyBatchPatched(accepted)
		b.finishPatch(accepted)
		return int64(len(accepted))
	}
	par.For(len(accepted), b.workers, func(start, end int) {
		for i := start; i < end; i++ {
			v := accepted[i]
			oth := b.side[v] // already flipped
			cur := 1 - oth
			for _, q := range b.g.DataNeighbors(v) {
				atomic.AddInt32(&b.n[cur][q], -1)
				atomic.AddInt32(&b.n[oth][q], 1)
			}
		}
	})
	if b.active != nil {
		for i := range b.active {
			b.active[i] = activeRebuild
		}
		b.frontierValid = false
	}
	return int64(len(accepted))
}

// applyMovePatched folds one already-flipped mover's count transfers into
// the maintained side counts while accumulating the batch's net per-query
// deltas and the dirty-query list the diff will read. This is the serial
// collector; churn-sized batches route through it directly, and first-touch
// order fixes the dirty list deterministically.
func (b *bisection) applyMovePatched(v int32) {
	oth := b.side[v] // already flipped
	cur := 1 - oth
	for _, q := range b.g.DataNeighbors(v) {
		b.n[cur][q]--
		b.n[oth][q]++
		b.d[cur][q]--
		b.d[oth][q]++
		if b.dirtyFlag[q] == 0 {
			b.dirtyFlag[q] = 1
			b.dirtyQ = append(b.dirtyQ, q)
		}
	}
}

// sideUpdate routes one mover's ±1 count transfer to its query's owner in
// the parallel patch collector.
type sideUpdate struct {
	q  int32
	to int8
}

// parallelPatchMin gates the owner-sharded parallel patch collector:
// batches below it take the serial collector, whose per-mover loop beats
// the routing overhead at churn scale. The branches produce identical
// results — count transfers are integer, the derived patch groups are the
// same set, and every downstream order is canonicalized — so the gate (and
// the worker count that feeds it) is a pure performance knob.
const parallelPatchMin = 256

// applyBatchPatched folds a whole accepted batch into the maintained side
// counts and derives the per-dirty-query patch groups. Large batches shard
// the work by query owner, mirroring the kernel's ndApplyMoveBatch: source
// workers route each mover's transfers to the owning query range, then each
// owner applies its shard's transfers and derives its dirty queries' groups
// without locking (a query belongs to exactly one owner). Per-owner group
// lists are concatenated in ascending owner order; group order is
// immaterial to results (exact patch arithmetic, radix-sorted frontier), so
// worker count never shows through.
func (b *bisection) applyBatchPatched(accepted []int32) {
	if b.workers == 1 || len(accepted) < parallelPatchMin {
		for _, v := range accepted {
			b.applyMovePatched(v)
		}
		return
	}
	nq := b.g.NumQueries()
	w := b.workers
	chunk := (nq + w - 1) / w
	if chunk == 0 {
		chunk = 1
	}
	if b.route == nil {
		b.route = make([][][]sideUpdate, w)
		b.ownerDirty = make([][]int32, w)
		b.ownerPGs = make([][]patchGroup, w)
	}
	route := b.route
	for sw := range route {
		for dw := range route[sw] {
			route[sw][dw] = route[sw][dw][:0]
		}
	}
	par.ForWorker(len(accepted), w, func(sw, start, end int) {
		o := route[sw]
		if o == nil {
			o = make([][]sideUpdate, w)
			route[sw] = o
		}
		for i := start; i < end; i++ {
			v := accepted[i]
			to := b.side[v] // already flipped
			for _, q := range b.g.DataNeighbors(v) {
				dw := int(q) / chunk
				o[dw] = append(o[dw], sideUpdate{q: q, to: to})
			}
		}
	})
	par.Each(w, func(dw int) {
		dirty := b.ownerDirty[dw][:0]
		for sw := 0; sw < w; sw++ {
			if route[sw] == nil {
				continue
			}
			for _, u := range route[sw][dw] {
				from := 1 - u.to
				b.n[from][u.q]--
				b.n[u.to][u.q]++
				b.d[from][u.q]--
				b.d[u.to][u.q]++
				if b.dirtyFlag[u.q] == 0 {
					b.dirtyFlag[u.q] = 1
					dirty = append(dirty, u.q)
				}
			}
		}
		pgs := b.ownerPGs[dw][:0]
		for _, q := range dirty {
			if pg, ok := b.derivePatchGroup(q); ok {
				pgs = append(pgs, pg)
			}
		}
		b.ownerDirty[dw] = dirty
		b.ownerPGs[dw] = pgs
	})
	b.pgs = b.pgs[:0]
	for dw := 0; dw < w; dw++ {
		b.pgs = append(b.pgs, b.ownerPGs[dw]...)
	}
	b.pgsReady = true
}

// patchGroup is one dirty query's precomputed accumulator adjustments: a
// member on side s gains own[s] on accOwn (its own-side term moved through
// DeltaOwn) and away[1−s] on accOth (the opposite side's term through
// DeltaAway); a side whose count did not change contributes exactly 0.
// Precomputing the four products once per query replaces the per-member
// record walk with two branch-free adds — the products are the same
// wq·Delta values per-member patching would compute, so the folded sums
// are bit-identical.
type patchGroup struct {
	q         int32
	own, away [2]float64
	nrec      int64 // changed sides, for the gainWork accounting
}

// derivePatchGroup turns one dirty query's net count deltas into its patch
// group (cOld = cNew − net, exactly what a pre-batch snapshot would have
// diffed out), resetting the query's delta and dirty-flag state. ok is
// false when the deltas net to zero (opposing flips cancelled). Callers
// owning disjoint query shards may run concurrently.
func (b *bisection) derivePatchGroup(q int32) (patchGroup, bool) {
	pg := patchGroup{q: q}
	wq := 1.0
	if b.qw != nil {
		wq = b.qw[q]
	}
	for s := int32(0); s < 2; s++ {
		if dd := b.d[s][q]; dd != 0 {
			cNew := b.n[s][q]
			cOld := cNew - dd
			pg.own[s] = wq * b.tables[s].DeltaOwn(cOld, cNew)
			pg.away[s] = wq * b.tables[s].DeltaAway(cOld, cNew)
			pg.nrec++
			b.d[s][q] = 0
		}
	}
	b.dirtyFlag[q] = 0
	return pg, pg.nrec > 0
}

// finishPatch closes a patched move batch: each dirty query's patch group
// is folded into the clean members' accumulators in parallel over disjoint
// vertex ranges — exact arithmetic makes the patch order (and the range
// partition) irrelevant to the result. Movers are scheduled for a rebuild:
// their own side changed, so the cached accumulators (and any patches
// applied to them above) refer to the wrong frame. Groups are derived here
// from the serial collector's dirty list unless the parallel collector
// already derived them in its owner pass (pgsReady).
func (b *bisection) finishPatch(movers []int32) {
	if !b.pgsReady {
		b.pgs = b.pgs[:0]
		for _, q := range b.dirtyQ {
			if pg, ok := b.derivePatchGroup(q); ok {
				b.pgs = append(b.pgs, pg)
			}
		}
		b.dirtyQ = b.dirtyQ[:0]
	}
	b.pgsReady = false

	// Clear the previous batch's marks through the frontier they form (the
	// marked set IS the frontier while frontierValid); a full clear is only
	// needed when the marks are not frontier-backed (first batch, or after a
	// sweep fallback or external invalidation).
	if b.frontierValid {
		for _, v := range b.frontier {
			b.active[v] = 0
		}
		b.scanWork += int64(len(b.frontier))
	} else {
		for i := range b.active {
			b.active[i] = 0
		}
		b.scanWork += int64(len(b.active))
	}
	nd := b.g.NumData()
	if b.frontWork == nil {
		b.frontWork = make([][]int32, b.workers)
	}
	for w := range b.frontWork {
		// Reset every buffer, not just the ones this batch engages:
		// par.ForWorker may use fewer workers than last time, and a stale
		// buffer would leak old vertices into the frontier.
		b.frontWork[w] = b.frontWork[w][:0]
	}
	var work int64
	par.ForWorker(nd, b.workers, func(w, vs, ve int) {
		lo32, hi32 := int32(vs), int32(ve)
		buf := b.frontWork[w]
		var local int64
		for gi := range b.pgs {
			pg := &b.pgs[gi]
			members := b.g.QueryNeighbors(pg.q)
			i := lowerBound(members, lo32)
			for _, v := range members[i:] {
				if v >= hi32 {
					break
				}
				c := b.side[v]
				b.accOwn[v] += pg.own[c] //shp:rawfloat(pg.own/pg.away hold DeltaOwn/DeltaAway table values hoisted once per group; same dyadic grid, same bits)
				b.accOth[v] += pg.away[1-c]
				if b.active[v] == 0 {
					buf = append(buf, v)
				}
				b.active[v] = activeSelect
				local += pg.nrec
			}
		}
		b.frontWork[w] = buf
		atomic.AddInt64(&work, local)
	})
	b.gainWork += work

	f := b.frontier[:0]
	for _, buf := range b.frontWork {
		f = append(f, buf...)
	}
	for _, v := range movers {
		// First-touch: movers of positive degree were already collected as
		// members of their own dirty queries; zero-degree movers were not.
		if b.active[v] == 0 {
			f = append(f, v)
		}
		b.active[v] = activeRebuild
	}
	// Ascending order is the canonical bin-update (and gain-pass) order the
	// bit-identity discipline requires; the collected buffers interleave
	// members of distinct dirty queries, so order them with O(|F|) counting
	// passes (see radixSortInt32) rather than a comparison sort.
	if cap(b.frontScratch) < len(f) {
		b.frontScratch = make([]int32, len(f))
	}
	radixSortInt32(f, b.frontScratch[:cap(b.frontScratch)], int32(nd))
	b.frontier = f
	b.frontierValid = true
}

// discardPatch drops a batch's collected deltas without diffing (the sweep
// fallback of the exact pairing, whose batch size is only known at the
// end) and schedules the full rebuild sweep instead.
func (b *bisection) discardPatch() {
	b.pgsReady = false
	for _, q := range b.dirtyQ {
		b.d[0][q], b.d[1][q] = 0, 0
		b.dirtyFlag[q] = 0
	}
	b.dirtyQ = b.dirtyQ[:0]
	for i := range b.active {
		b.active[i] = activeRebuild
	}
	b.frontierValid = false
}

// freshGain recomputes vertex v's Equation 1 gain from the current counts
// (as opposed to the batch gains computed at the start of the iteration).
// This is both the full path's per-vertex evaluation and the exact
// pairing's mid-batch re-check.
func (b *bisection) freshGain(v int32) float64 {
	cur := b.side[v]
	oth := 1 - cur
	tCur := b.tables[cur].T
	tOth := b.tables[oth].T
	sum := 0.0
	if b.qw == nil {
		for _, q := range b.g.DataNeighbors(v) {
			sum += tCur[b.n[cur][q]-1] - tOth[b.n[oth][q]]
		}
	} else {
		for _, q := range b.g.DataNeighbors(v) {
			sum += b.qw[q] * (tCur[b.n[cur][q]-1] - tOth[b.n[oth][q]])
		}
	}
	g := b.tables[0].mult * sum
	if b.opts.MoveCostPenalty > 0 && b.home != nil && b.home[v] >= 0 {
		if cur == b.home[v] {
			g -= b.opts.MoveCostPenalty
		} else {
			g += b.opts.MoveCostPenalty
		}
	}
	return g
}

// moveExact applies one move, maintaining counts and weights immediately
// (the exact pairing interleaves moves with fresh gain reads) and, on the
// incremental path, the same net-delta bookkeeping the patched batch
// collector keeps.
func (b *bisection) moveExact(v int32) {
	cur := b.side[v]
	oth := 1 - cur
	b.side[v] = oth
	wv := int64(b.g.DataWeight(v))
	b.w[cur] -= wv
	b.w[oth] += wv
	if b.active != nil {
		b.applyMovePatched(v)
		b.lastMoved = append(b.lastMoved, v)
		return
	}
	for _, q := range b.g.DataNeighbors(v) {
		b.n[cur][q]--
		b.n[oth][q]++
	}
}

// applyExact runs the "ideal serial implementation" the paper describes as
// the reference (Section 3.4): both sides' candidates are consumed in exact
// (gain desc, id asc) order and paired greedily from the top. Each pair's
// gains are re-evaluated against the current state before applying, so
// every applied pair strictly improves the objective — this is what rules
// out the batch-move oscillation and makes the objective monotone.
// One-sided positive-gain extras then use the ε headroom. Fully
// deterministic.
//
// Instead of materializing and sorting both full queues every iteration,
// the order comes from two cursors over the maintained gain bins: bins are
// consumed best-first and sorted in place, lazily, on first touch, so an
// iteration that pairs only a handful of vertices sorts only the bins it
// actually reaches.
//
// The batch size is only known at the end, so net deltas are always
// collected (two int adds per transfer) and either diffed into patches or
// discarded in favor of the sweep, depending on the realized moved count.
func (b *bisection) applyExact(iter int) int64 {
	_ = iter
	b.lastMoved = b.lastMoved[:0] // repopulated by moveExact
	b.syncBins()
	cur0 := newBinCursor(b.bins, b.gains, 0)
	cur1 := newBinCursor(b.bins, b.gains, 1)
	var moved int64
	for {
		u, gu0, ok0 := cur0.peek()
		v, gv0, ok1 := cur1.peek()
		if !ok0 || !ok1 {
			break
		}
		// Stop once even the stale (optimistic upper-bound order) sums are
		// non-positive.
		if gu0+gv0 <= 0 {
			break
		}
		cur0.advance()
		cur1.advance()
		// Both vertices may have been affected by earlier moves in this
		// pass; re-evaluate before committing.
		gu := b.freshGain(u)
		gv := b.freshGain(v)
		if gu+gv <= 0 {
			continue
		}
		b.moveExact(u)
		b.moveExact(v)
		moved += 2
	}
	// One-sided extras: positive-gain leftovers into the other side's
	// remaining headroom, continuing from where the pairing stopped.
	for s := 0; s < 2; s++ {
		oth := 1 - s
		c := &cur0
		if s == 1 {
			c = &cur1
		}
		for {
			v, g, ok := c.peek()
			if !ok || g <= 0 {
				break
			}
			wv := float64(b.g.DataWeight(v))
			if float64(b.w[oth])+wv > b.capW[oth] {
				break
			}
			c.advance()
			if b.freshGain(v) <= 0 {
				continue
			}
			b.moveExact(v)
			moved++
		}
	}
	b.scanWork += cur0.work + cur1.work
	if b.active != nil {
		if int(moved)*sweepFallbackDiv < b.g.NumData() {
			b.finishPatch(b.lastMoved)
		} else {
			b.discardPatch()
		}
	}
	return moved
}
