package core

import (
	"errors"
	"fmt"
	"sort"

	"shp/internal/hypergraph"
	"shp/internal/partition"
)

// Multi-dimensional balance (Section 5, Discussion item ii).
//
// Data vertices can carry several load dimensions (CPU, memory, disk, ...).
// Requiring strict balance on every dimension during refinement harms
// quality, so the paper's heuristic decouples the two concerns: partition
// into c·k buckets with loose balance on the primary dimension only, then
// merge groups of buckets into the final k, balancing all dimensions during
// the merge.

// MultiDimOptions configures PartitionMultiDim.
type MultiDimOptions struct {
	// K is the final bucket count.
	K int
	// C is the over-partitioning factor: refinement produces C*K buckets
	// before merging (default 4; the paper's "c·k buckets for some c > 1").
	C int
	// Loads holds one slice per dimension, each of length NumData: the
	// per-vertex load in that dimension. At least one dimension required.
	Loads [][]float64
	// Epsilon is the allowed imbalance per dimension after merging
	// (default 0.10; merging k groups from c·k buckets cannot be as tight
	// as single-dimension refinement).
	Epsilon float64
	// Base configures the underlying fanout optimization (K and Epsilon
	// inside it are overridden).
	Base Options
}

// MultiDimResult reports the merged partition and per-dimension loads.
type MultiDimResult struct {
	Assignment partition.Assignment
	K          int
	// BucketLoads[d][b] is the load of bucket b in dimension d.
	BucketLoads [][]float64
	// Imbalance[d] is max bucket load over ideal minus 1, per dimension.
	Imbalance []float64
	// FineResult is the intermediate c·k-bucket partitioning.
	FineResult *Result
}

// PartitionMultiDim partitions g into K buckets balanced across every load
// dimension, while minimizing fanout via the usual SHP refinement.
func PartitionMultiDim(g *hypergraph.Bipartite, opts MultiDimOptions) (*MultiDimResult, error) {
	if opts.K < 1 {
		return nil, errors.New("core: multidim K must be >= 1")
	}
	if opts.C == 0 {
		opts.C = 4
	}
	if opts.C < 1 {
		return nil, errors.New("core: multidim C must be >= 1")
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.10
	}
	if len(opts.Loads) == 0 {
		return nil, errors.New("core: multidim needs at least one load dimension")
	}
	for d, loads := range opts.Loads {
		if len(loads) != g.NumData() {
			return nil, fmt.Errorf("core: dimension %d has %d loads for %d vertices", d, len(loads), g.NumData())
		}
		for v, l := range loads {
			if l < 0 {
				return nil, fmt.Errorf("core: negative load at dimension %d vertex %d", d, v)
			}
		}
	}

	// Step 1: fanout-optimize into C*K buckets with loose balance on the
	// vertex count only.
	base := opts.Base
	base.K = opts.C * opts.K
	if base.Epsilon == 0 {
		base.Epsilon = 0.10
	}
	fine, err := Partition(g, base)
	if err != nil {
		return nil, err
	}

	// Step 2: merge C*K fine buckets into K groups, balancing all
	// dimensions: sort fine buckets by total normalized load descending and
	// greedily place each into the group whose maximum per-dimension
	// relative load after placement is smallest (LPT generalized to vectors).
	nDims := len(opts.Loads)
	fineK := base.K
	fineLoads := make([][]float64, nDims)
	totals := make([]float64, nDims)
	for d := 0; d < nDims; d++ {
		fineLoads[d] = make([]float64, fineK)
		for v, b := range fine.Assignment {
			fineLoads[d][b] += opts.Loads[d][v]
			totals[d] += opts.Loads[d][v]
		}
	}
	ideal := make([]float64, nDims)
	for d := 0; d < nDims; d++ {
		ideal[d] = totals[d] / float64(opts.K)
		if ideal[d] == 0 {
			ideal[d] = 1 // dimension with no load: never constrains
		}
	}
	order := make([]int, fineK)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		var li, lj float64
		for d := 0; d < nDims; d++ {
			li += fineLoads[d][order[i]] / ideal[d]
			lj += fineLoads[d][order[j]] / ideal[d]
		}
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	groupLoads := make([][]float64, nDims)
	for d := range groupLoads {
		groupLoads[d] = make([]float64, opts.K)
	}
	fineToGroup := make([]int32, fineK)
	for _, fb := range order {
		bestGroup := 0
		bestScore := 0.0
		for grp := 0; grp < opts.K; grp++ {
			score := 0.0
			for d := 0; d < nDims; d++ {
				rel := (groupLoads[d][grp] + fineLoads[d][fb]) / ideal[d]
				if rel > score {
					score = rel
				}
			}
			if grp == 0 || score < bestScore {
				bestScore = score
				bestGroup = grp
			}
		}
		fineToGroup[fb] = int32(bestGroup)
		for d := 0; d < nDims; d++ {
			groupLoads[d][bestGroup] += fineLoads[d][fb]
		}
	}

	assignment := make(partition.Assignment, g.NumData())
	for v, b := range fine.Assignment {
		assignment[v] = fineToGroup[b]
	}
	res := &MultiDimResult{
		Assignment:  assignment,
		K:           opts.K,
		BucketLoads: groupLoads,
		Imbalance:   make([]float64, nDims),
		FineResult:  fine,
	}
	for d := 0; d < nDims; d++ {
		maxLoad := 0.0
		for _, l := range groupLoads[d] {
			if l > maxLoad {
				maxLoad = l
			}
		}
		res.Imbalance[d] = maxLoad/ideal[d] - 1
	}
	return res, nil
}
