package core

// Tests of the bisection (SHP-2) port of the shared incremental-gain
// kernel: patched accumulators must bit-equal a from-scratch rebuild under
// random move batches, the safety-net rebuild schedule must be invisible,
// and the hub-heavy churn-proportionality claim is pinned by deterministic
// work counters rather than wall time (the mirror of distshp's
// TestDistDeltaPatchProperty / TestDistDeltaCutsLateSuperstepBytes).

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"shp/internal/gen"
	"shp/internal/rng"
)

// TestBisectionDeltaPatchProperty applies random move batches through the
// real patch path (applyMovePatched + finishPatch + computeGains) and
// checks after every batch that the maintained side counts and the patched
// accumulators/gains of every vertex bit-equal a from-scratch rebuild.
// Asymmetric lookahead (tLeft != tRight) keeps the two sides on different
// gain tables, so table-routing mistakes cannot cancel out. Every few
// rounds the safety-net recount fires too, which must change nothing.
func TestBisectionDeltaPatchProperty(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		g := randomBipartite(t, seed, 60, 120, 700)
		opts := Options{K: 2, P: 0.5, Epsilon: 10}.withDefaults()
		b := newBisection(g, opts, seed, 0, 0, 1, 2, 0.5, 10, 0, nil)
		b.computeGains()
		b.allActive = false
		r := rng.New(seed ^ 0xBEEF)
		for round := 0; round < 25; round++ {
			if round > 0 && round%7 == 0 {
				// NDRebuildEvery-style safety net: recount + full rebuild.
				b.recountNeighborData()
				b.allActive = true
				b.computeGains()
				b.allActive = false
			}
			var movers []int32
			seen := make(map[int32]bool)
			for i := 0; i < 1+r.Intn(8); i++ {
				v := int32(r.Intn(g.NumData()))
				if seen[v] {
					continue // a real batch moves each vertex at most once
				}
				seen[v] = true
				cur := b.side[v]
				b.side[v] = 1 - cur
				wv := int64(g.DataWeight(v))
				b.w[cur] -= wv
				b.w[1-cur] += wv
				b.applyMovePatched(v)
				movers = append(movers, v)
			}
			b.finishPatch(movers)
			b.computeGains()

			ref := newBisection(g, opts, seed, 0, 0, 1, 2, 0.5, 10, 0, nil)
			copy(ref.side, b.side)
			ref.recountWeights()
			ref.recountNeighborData()
			ref.allActive = true
			ref.computeGains()
			for q := 0; q < g.NumQueries(); q++ {
				if b.n[0][q] != ref.n[0][q] || b.n[1][q] != ref.n[1][q] {
					t.Fatalf("seed %d round %d query %d: maintained counts (%d, %d) != rebuilt (%d, %d)",
						seed, round, q, b.n[0][q], b.n[1][q], ref.n[0][q], ref.n[1][q])
				}
			}
			for v := 0; v < g.NumData(); v++ {
				if b.accOwn[v] != ref.accOwn[v] || b.accOth[v] != ref.accOth[v] {
					t.Fatalf("seed %d round %d vertex %d: patched accumulators (%v, %v) != rebuilt (%v, %v)",
						seed, round, v, b.accOwn[v], b.accOth[v], ref.accOwn[v], ref.accOth[v])
				}
				if b.gains[v] != ref.gains[v] {
					t.Fatalf("seed %d round %d vertex %d: patched gain %v != rebuilt %v",
						seed, round, v, b.gains[v], ref.gains[v])
				}
			}
		}
	}
}

// TestBisectionRebuildScheduleInvariant checks the bisection safety net is
// a pure performance knob, across seeds: rebuilding the maintained counts
// every iteration (NDRebuildEvery=1), rarely (3), and never (-1) all
// produce identical assignments and histories.
func TestBisectionRebuildScheduleInvariant(t *testing.T) {
	g := largeRandomBipartite(t, 41, 3000, 6000, 24000)
	for _, seed := range []uint64{5, 11} {
		base, err := Partition(g, Options{K: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, re := range []int{1, 3, -1} {
			res, err := Partition(g, Options{K: 8, Seed: seed, NDRebuildEvery: re})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base.Assignment, res.Assignment) {
				t.Fatalf("seed %d: NDRebuildEvery=%d changed the assignment", seed, re)
			}
			if !reflect.DeepEqual(base.History, res.History) {
				t.Fatalf("seed %d: NDRebuildEvery=%d changed the history", seed, re)
			}
		}
	}
}

// TestBisectionDeltaCutsLateGainWork pins the tentpole claim for SHP-2 with
// deterministic counters: on a hub-heavy graph refined from a lightly
// perturbed warm start, the late iterations (everything after the first,
// which rebuilds all state on both paths) must cost the patched engine at
// least 3x fewer Equation 1 work units than the full recomputation, while
// producing byte-identical sides and histories. Work units — table terms
// summed plus delta records folded — proxy the memory stream, so the floor
// cannot flake on machine load the way a wall-clock ratio would.
func TestBisectionDeltaCutsLateGainWork(t *testing.T) {
	numQ, numD := 1500, 2500
	g, err := gen.HubPowerLawBipartite(numQ, numD, int64(numD)*8, 2.1, 0.004, numD/8, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, P: 0.5, MinMoveFraction: 1e-9}.withDefaults()

	cold := newBisection(g, opts, 11, 0, 0, 1, 1, 0.5, 0.05, 0, nil)
	sides := cold.run()
	home := append([]int8(nil), sides...)
	r := rng.New(7)
	for i := 0; i < numD/100; i++ { // ~1% churn
		v := r.Intn(numD)
		home[v] = 1 - home[v]
	}
	run := func(disable bool) *bisection {
		o := opts
		o.DisableIncremental = disable
		b := newBisection(g, o, 13, 0, 0, 1, 1, 0.5, 0.05, 0, append([]int8(nil), home...))
		b.run()
		return b
	}
	inc := run(false)
	full := run(true)
	if !slices.Equal(inc.side, full.side) {
		t.Fatal("incremental and full warm refinements diverged")
	}
	if !reflect.DeepEqual(inc.history, full.history) {
		t.Fatalf("histories diverged: %+v vs %+v", inc.history, full.history)
	}
	if len(inc.history) < 2 {
		t.Fatal("warm refinement converged in one iteration; nothing late to measure")
	}
	lateInc := inc.workHist[len(inc.workHist)-1] - inc.workHist[0]
	lateFull := full.workHist[len(full.workHist)-1] - full.workHist[0]
	if lateInc <= 0 || lateFull <= 0 {
		t.Fatalf("degenerate work counters: inc %d, full %d", lateInc, lateFull)
	}
	if lateInc*3 > lateFull {
		t.Fatalf("late gain work: incremental %d vs full %d over %d iterations — less than the required 3x reduction",
			lateInc, lateFull, len(inc.history)-1)
	}
	t.Logf("late gain work over %d iterations: incremental %d vs full %d (%.1fx)",
		len(inc.history)-1, lateInc, lateFull, float64(lateFull)/float64(lateInc))
}

// BenchmarkBisectionDelta measures the bisection engine where it matters:
// hub-heavy warm-started refinement at a controlled churn level, with the
// recursion/induction machinery stripped away so the numbers isolate the
// per-iteration gain maintenance. A converged bisection's sides are
// perturbed by a known moved fraction and re-refined with the
// patched-accumulator engine on and off — identical results per
// Options.DisableIncremental equivalence, so edges/s differences are pure
// engine savings. The shp2-delta experiment reports the same ablation
// end-to-end through core.Partition.
func BenchmarkBisectionDelta(b *testing.B) {
	g, err := gen.HubPowerLawBipartite(12000, 20000, 160000, 2.1, 0.001, 2500, 5)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{K: 2, P: 0.5}.withDefaults()
	cold := newBisection(g, opts, 11, 0, 0, 1, 1, 0.5, 0.05, 0, nil)
	sides := cold.run()
	perturb := func(frac float64) []int8 {
		home := append([]int8(nil), sides...)
		r := rng.New(7)
		for i := 0; i < int(frac*float64(len(home))); i++ {
			v := r.Intn(len(home))
			home[v] = 1 - home[v]
		}
		return home
	}
	for _, frac := range []float64{0.01, 0.05, 0.25} {
		home := perturb(frac)
		for _, engine := range []struct {
			name    string
			disable bool
		}{{"incremental", false}, {"full-rebuild", true}} {
			b.Run(fmt.Sprintf("moved%g%%-%s", frac*100, engine.name), func(b *testing.B) {
				o := opts
				o.DisableIncremental = engine.disable
				var iters int
				for i := 0; i < b.N; i++ {
					bis := newBisection(g, o, 13, 0, 0, 1, 1, 0.5, 0.05, 0, home)
					bis.run()
					iters = len(bis.history)
				}
				b.ReportMetric(float64(iters), "iters")
				b.ReportMetric(float64(g.NumEdges())*float64(iters)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			})
		}
	}
}
