package core

import "math"

// Swap pairing: the master-side protocol that converts per-vertex move
// proposals into move probabilities while preserving balance (Sections 3.1
// and 3.4 of the paper).
//
// A proposal is (direction, gain). For each unordered bucket pair the master
// sees two opposing queues and must decide how many proposals from each side
// to accept. Accepting one from each side is a balanced swap; accepting an
// unbalanced surplus is allowed only within the ε headroom.

// histBins is the number of exponential gain bins per sign. Gains spanning
// ~19 orders of magnitude (2^64) fit; anything below histBase is treated as
// (almost) zero gain.
const histBins = 64

// histBase is the lower edge of bin 0.
const histBase = 1e-12

// dampProb caps per-bin move probabilities in the histogram protocol.
// A strictly-below-one cap is required for convergence on symmetric
// instances: with probability exactly 1 in both directions, a batch local
// search can oscillate forever between two mirror states (every vertex
// swaps every iteration). The cap lets the per-vertex coins break the
// symmetry; production graphs are never perfectly symmetric, which is why
// the paper does not need to mention this.
const dampProb = 0.95

// binFor maps |gain| to a bin index; larger gains land in larger bins.
// Bin edges are powers of two above histBase, so floor(log2(x)) is read
// straight out of the float's biased exponent — this sits on the refiners'
// per-proposal hot path (DirHist.Add, ProbTable.ProbFor) where a real log
// call dominates the profile.
func binFor(absGain float64) int {
	if absGain < histBase {
		return 0
	}
	x := absGain / histBase // >= 1, always normal
	b := int(math.Float64bits(x)>>52&0x7FF) - 1023
	if b < 0 {
		b = 0
	}
	if b >= histBins {
		b = histBins - 1
	}
	return b
}

// DirHist is one direction's histogram of proposal gains: positive gains
// (improvements) and non-positive gains (stored by |gain|), with per-bin
// gain sums so matching can use the bin's mean gain instead of its edge.
type DirHist struct {
	posCount [histBins]int64
	posSum   [histBins]float64
	negCount [histBins]int64
	negSum   [histBins]float64
}

// add records one proposal with the given gain.
func (h *DirHist) Add(gain float64) {
	if gain > 0 {
		b := binFor(gain)
		h.posCount[b]++
		h.posSum[b] += gain
	} else {
		b := binFor(-gain)
		h.negCount[b]++
		h.negSum[b] += gain
	}
}

// Remove retracts one previously Added proposal with the given gain — the
// exact inverse of Add (same bin, count down, gain subtracted), which lets a
// caller maintain a histogram across rounds from assert/retract deltas
// instead of resumming every proposal every round. Counts may legitimately
// go negative inside a delta histogram that will be merged into the
// maintained one.
func (h *DirHist) Remove(gain float64) {
	if gain > 0 {
		b := binFor(gain)
		h.posCount[b]--
		h.posSum[b] -= gain
	} else {
		b := binFor(-gain)
		h.negCount[b]--
		h.negSum[b] -= gain
	}
}

// WireSize estimates the histogram's serialized size for aggregator byte
// accounting: 13 bytes (sign+bin byte, count int32, sum float64) per bin
// that carries any information.
func (h *DirHist) WireSize() int {
	n := 0
	for i := 0; i < histBins; i++ {
		if h.posCount[i] != 0 || h.posSum[i] != 0 {
			n++
		}
		if h.negCount[i] != 0 || h.negSum[i] != 0 {
			n++
		}
	}
	return 13 * n
}

// merge folds another histogram into this one (for per-worker partials).
func (h *DirHist) Merge(o *DirHist) {
	for i := 0; i < histBins; i++ {
		h.posCount[i] += o.posCount[i]
		h.posSum[i] += o.posSum[i]
		h.negCount[i] += o.negCount[i]
		h.negSum[i] += o.negSum[i]
	}
}

// total returns the number of proposals recorded.
func (h *DirHist) Total() int64 {
	var t int64
	for i := 0; i < histBins; i++ {
		t += h.posCount[i] + h.negCount[i]
	}
	return t
}

// orderedBin is a histogram bin in matching order (best gain first).
type orderedBin struct {
	positive bool
	idx      int     // bin index within its sign
	count    int64   // proposals in the bin
	meanGain float64 // mean gain of the bin's proposals
}

// orderedBins lists h's non-empty bins best-first: positive bins from
// largest to smallest gain, then negative bins from closest-to-zero down.
func (h *DirHist) orderedBins() []orderedBin {
	out := make([]orderedBin, 0, 8)
	for b := histBins - 1; b >= 0; b-- {
		if h.posCount[b] > 0 {
			out = append(out, orderedBin{
				positive: true, idx: b, count: h.posCount[b],
				meanGain: h.posSum[b] / float64(h.posCount[b]),
			})
		}
	}
	for b := 0; b < histBins; b++ {
		if h.negCount[b] > 0 {
			out = append(out, orderedBin{
				positive: false, idx: b, count: h.negCount[b],
				meanGain: h.negSum[b] / float64(h.negCount[b]),
			})
		}
	}
	return out
}

// ProbTable holds per-bin move probabilities for one direction.
type ProbTable struct {
	pos [histBins]float64
	neg [histBins]float64
}

// probFor returns the move probability for a proposal with the given gain.
func (p *ProbTable) ProbFor(gain float64) float64 {
	if gain > 0 {
		return p.pos[binFor(gain)]
	}
	return p.neg[binFor(-gain)]
}

// MatchHistograms runs Section 3.4's bin matching between two opposing
// directions. extraA and extraB are the additional unbalanced proposals each
// direction may accept beyond the pairing (the ε headroom of the receiving
// side, in vertices). It returns per-bin move probabilities for both
// directions.
//
// Matching walks both bin sequences best-first and pairs min(remaining)
// proposals while the pair's expected summed gain is positive; because both
// sequences are sorted by gain, the first non-positive pair ends matching.
// Fully matched bins get probability 1, the boundary bin a fractional
// probability. Afterwards, remaining positive-gain proposals are granted
// one-sided quota up to the extra allowance.
func MatchHistograms(a, b *DirHist, extraA, extraB int64) (ProbTable, ProbTable) {
	binsA := a.orderedBins()
	binsB := b.orderedBins()
	quotaA := make([]int64, len(binsA))
	quotaB := make([]int64, len(binsB))
	remA := make([]int64, len(binsA))
	remB := make([]int64, len(binsB))
	for i, bin := range binsA {
		remA[i] = bin.count
	}
	for i, bin := range binsB {
		remB[i] = bin.count
	}
	ai, bi := 0, 0
	for ai < len(binsA) && bi < len(binsB) {
		if remA[ai] == 0 {
			ai++
			continue
		}
		if remB[bi] == 0 {
			bi++
			continue
		}
		if binsA[ai].meanGain+binsB[bi].meanGain <= 0 {
			break
		}
		m := remA[ai]
		if remB[bi] < m {
			m = remB[bi]
		}
		quotaA[ai] += m
		quotaB[bi] += m
		remA[ai] -= m
		remB[bi] -= m
	}
	// One-sided extras within the ε headroom: best positive bins first.
	grantExtras(binsA, remA, quotaA, extraA)
	grantExtras(binsB, remB, quotaB, extraB)

	var pa, pb ProbTable
	fillProbs(&pa, binsA, quotaA)
	fillProbs(&pb, binsB, quotaB)
	return pa, pb
}

func grantExtras(bins []orderedBin, rem, quota []int64, extra int64) {
	for i := range bins {
		if extra <= 0 {
			return
		}
		if !bins[i].positive || bins[i].meanGain <= 0 || rem[i] == 0 {
			continue
		}
		e := rem[i]
		if extra < e {
			e = extra
		}
		quota[i] += e
		rem[i] -= e
		extra -= e
	}
}

func fillProbs(p *ProbTable, bins []orderedBin, quota []int64) {
	for i, bin := range bins {
		if quota[i] == 0 {
			continue
		}
		prob := float64(quota[i]) / float64(bin.count)
		if prob > dampProb {
			prob = dampProb
		}
		if bin.positive {
			p.pos[bin.idx] = prob
		} else {
			p.neg[bin.idx] = prob
		}
	}
}

// MatchSimple implements Algorithm 1's protocol: only positive gains
// propose, and the probability for direction A is min(S_A, S_B)/S_A.
// It returns per-direction scalar probabilities expressed as probTables
// (uniform across positive bins, zero for negative bins).
func MatchSimple(a, b *DirHist, extraA, extraB int64) (ProbTable, ProbTable) {
	var sa, sb int64
	for i := 0; i < histBins; i++ {
		sa += a.posCount[i]
		sb += b.posCount[i]
	}
	minS := sa
	if sb < minS {
		minS = sb
	}
	var pa, pb ProbTable
	if sa > 0 {
		p := float64(minS+min64(extraA, sa-minS)) / float64(sa)
		for i := 0; i < histBins; i++ {
			pa.pos[i] = p
		}
	}
	if sb > 0 {
		p := float64(minS+min64(extraB, sb-minS)) / float64(sb)
		for i := 0; i < histBins; i++ {
			pb.pos[i] = p
		}
	}
	return pa, pb
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
