package core

import (
	"math"
	"testing"
)

func TestPFanoutTables(t *testing.T) {
	tb := NewPFanoutTables(0.5, 1, 10)
	if tb.T[0] != 1 {
		t.Fatal("T[0] must be 1")
	}
	for i := 1; i <= 10; i++ {
		want := math.Pow(0.5, float64(i))
		if math.Abs(tb.T[i]-want) > 1e-12 {
			t.Fatalf("T[%d] = %v, want %v", i, tb.T[i], want)
		}
		wantC := 1 - want
		if math.Abs(tb.C[i]-wantC) > 1e-12 {
			t.Fatalf("C[%d] = %v, want %v", i, tb.C[i], wantC)
		}
	}
	if tb.mult != 0.5 {
		t.Fatalf("mult = %v", tb.mult)
	}
}

func TestPFanoutTablesLookahead(t *testing.T) {
	// Section 3.4: with lookahead t the contribution is t·(1−(1−p/t)^r).
	const p, tt = 0.5, 4
	tb := NewPFanoutTables(p, tt, 8)
	for r := 0; r <= 8; r++ {
		want := float64(tt) * (1 - math.Pow(1-p/float64(tt), float64(r)))
		if math.Abs(tb.C[r]-want) > 1e-12 {
			t.Fatalf("C[%d] = %v, want %v", r, tb.C[r], want)
		}
	}
	// t·p' = p: the gain multiplier stays p.
	if tb.mult != p {
		t.Fatalf("mult = %v, want %v", tb.mult, p)
	}
}

func TestFanoutTablesAreP1(t *testing.T) {
	tb := NewPFanoutTables(1, 1, 5)
	if tb.T[0] != 1 {
		t.Fatal("T[0] must be 1")
	}
	for i := 1; i <= 5; i++ {
		if tb.T[i] != 0 {
			t.Fatalf("T[%d] = %v, want 0 for p=1", i, tb.T[i])
		}
		if tb.C[i] != 1 {
			t.Fatalf("C[%d] = %v, want 1 for p=1", i, tb.C[i])
		}
	}
}

func TestCliqueNetTables(t *testing.T) {
	tb := NewCliqueNetTables(6)
	for i := 0; i <= 6; i++ {
		if tb.T[i] != -float64(i) {
			t.Fatalf("T[%d] = %v", i, tb.T[i])
		}
		want := -float64(i) * float64(i-1) / 2
		if tb.C[i] != want {
			t.Fatalf("C[%d] = %v, want %v", i, tb.C[i], want)
		}
	}
}

func TestTablesForDispatch(t *testing.T) {
	opts := Options{K: 2, P: 0.5}.withDefaults()
	tb := tablesFor(opts, 4, 5)
	if math.Abs(tb.T[1]-(1-0.5/4)) > 1e-12 {
		t.Fatal("lookahead not applied")
	}
	opts.DisableLookahead = true
	tb = tablesFor(opts, 4, 5)
	if math.Abs(tb.T[1]-0.5) > 1e-12 {
		t.Fatal("DisableLookahead ignored")
	}
	opts = Options{K: 2, Objective: ObjCliqueNet}.withDefaults()
	tb = tablesFor(opts, 4, 5)
	if tb.T[2] != -2 {
		t.Fatal("clique-net dispatch failed")
	}
	opts = Options{K: 2, Objective: ObjFanout}.withDefaults()
	tb = tablesFor(opts, 4, 5)
	if tb.T[1] != 0 {
		t.Fatal("fanout dispatch failed")
	}
}

func TestObjectiveStrings(t *testing.T) {
	if ObjPFanout.String() != "p-fanout" || ObjFanout.String() != "fanout" || ObjCliqueNet.String() != "clique-net" {
		t.Fatal("objective names wrong")
	}
	if PairHistogram.String() != "histogram" || PairSimple.String() != "simple" || PairExact.String() != "exact" {
		t.Fatal("pairing names wrong")
	}
	if Objective(99).String() == "" || PairingMode(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
