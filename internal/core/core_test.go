package core

import (
	"math"
	"testing"
	"testing/quick"

	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
)

// randomBipartite builds a random test graph.
func randomBipartite(tb testing.TB, seed uint64, numQ, numD, edges int) *hypergraph.Bipartite {
	tb.Helper()
	r := rng.New(seed)
	b := hypergraph.NewBuilder(numQ, numD)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// figure2 builds the paper's Figure 2 instance (0-indexed): V1 = {0,1,2,3},
// V2 = {4,5,6,7}; q1 = {0,1,4,5}, q2 = {2,3,4,5}, q3 = {2,3,6,7}.
// No single data-vertex move improves fanout, but swapping (3,4) or (2,5)
// improves p-fanout for every 0 < p < 1, and applying both swaps yields the
// optimum (fanout of q1 and q3 drops to 1).
func figure2(tb testing.TB) (*hypergraph.Bipartite, []int8) {
	tb.Helper()
	g, err := hypergraph.FromHyperedges(8, [][]int32{
		{0, 1, 4, 5},
		{2, 3, 4, 5},
		{2, 3, 6, 7},
	})
	if err != nil {
		tb.Fatal(err)
	}
	side := []int8{0, 0, 0, 0, 1, 1, 1, 1}
	return g, side
}

func fanoutOfSides(g *hypergraph.Bipartite, side []int8) float64 {
	a := make(partition.Assignment, len(side))
	for i, s := range side {
		a[i] = int32(s)
	}
	return partition.Fanout(g, a, 2)
}

// newTestBisection builds a bisection with explicit initial sides.
func newTestBisection(g *hypergraph.Bipartite, opts Options, side []int8) *bisection {
	opts = opts.withDefaults()
	b := newBisection(g, opts, 42, 0, 0, 1, 1, 0.5, opts.Epsilon, 0, nil)
	copy(b.side, side)
	b.recountWeights()
	b.recountNeighborData()
	return b
}

func TestFigure2FanoutIsLocalMinimum(t *testing.T) {
	g, side := figure2(t)
	b := newTestBisection(g, Options{K: 2, Objective: ObjFanout}, side)
	b.computeGains()
	for v := 0; v < 8; v++ {
		if b.gains[v] > 1e-12 {
			t.Fatalf("fanout objective: vertex %d has positive gain %v; Figure 2 should be a local minimum", v, b.gains[v])
		}
	}
}

func TestFigure2PFanoutEscapes(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		g, side := figure2(t)
		b := newTestBisection(g, Options{K: 2, P: p}, side)
		b.computeGains()
		positive := 0
		for v := 0; v < 8; v++ {
			if b.gains[v] > 1e-12 {
				positive++
			}
		}
		if positive == 0 {
			t.Fatalf("p=%v: no positive p-fanout gains; smoothing failed to open the local minimum", p)
		}
	}
}

func TestFigure2RefinementReachesOptimum(t *testing.T) {
	// From the stuck state, p = 0.5 refinement should reach total fanout 4
	// (average 4/3); direct fanout optimization stays at 6 (average 2).
	for _, mode := range []PairingMode{PairExact, PairHistogram} {
		g, side := figure2(t)
		b := newTestBisection(g, Options{K: 2, P: 0.5, Pairing: mode, MaxIters: 20}, side)
		b.run()
		if f := fanoutOfSides(g, b.side); math.Abs(f-4.0/3.0) > 1e-9 {
			t.Fatalf("pairing %v: p=0.5 fanout = %v, want 4/3", mode, f)
		}
	}
	g, side := figure2(t)
	b := newTestBisection(g, Options{K: 2, Objective: ObjFanout, Pairing: PairExact, MaxIters: 20}, side)
	b.run()
	if f := fanoutOfSides(g, b.side); math.Abs(f-2.0) > 1e-9 {
		t.Fatalf("direct fanout optimization escaped the local minimum: fanout = %v, want 2", f)
	}
}

// TestGainMatchesObjectiveDelta is the central correctness property: the
// Equation 1 gain of a vertex must equal the exact objective change from
// applying the move, for every objective and lookahead setting.
func TestGainMatchesObjectiveDelta(t *testing.T) {
	type config struct {
		opts   Options
		tL, tR int
	}
	configs := []config{
		{Options{K: 2, P: 0.5}, 1, 1},
		{Options{K: 2, P: 0.9}, 1, 1},
		{Options{K: 2, Objective: ObjFanout}, 1, 1},
		{Options{K: 2, Objective: ObjCliqueNet}, 1, 1},
		{Options{K: 8, P: 0.5}, 4, 4},
		{Options{K: 12, P: 0.3}, 7, 5},
	}
	for ci, cfg := range configs {
		cfg.opts = cfg.opts.withDefaults()
		err := quick.Check(func(seed uint64, vRaw uint16) bool {
			g := randomBipartite(t, seed, 12, 16, 70)
			b := newBisection(g, cfg.opts, seed, 0, 0, cfg.tL, cfg.tR, 0.5, 0.05, 0, nil)
			v := int32(vRaw) % 16
			b.computeGains()
			gain := b.gains[v]
			before := b.objective()
			// Apply the move.
			cur := b.side[v]
			oth := 1 - cur
			b.side[v] = oth
			for _, q := range g.DataNeighbors(v) {
				b.n[cur][q]--
				b.n[oth][q]++
			}
			after := b.objective()
			// Gain tables are quantized to the dyadic gain grid (see
			// gainGridBits), which perturbs the gain/objective-delta
			// identity by up to ~2^-32 per incident query; 1e-6 leaves
			// room for weighted high-degree test vertices.
			return math.Abs((before-after)-gain) < 1e-6
		}, &quick.Config{MaxCount: 40})
		if err != nil {
			t.Fatalf("config %d (%+v): %v", ci, cfg.opts.Objective, err)
		}
	}
}

// TestDirectGainMatchesObjectiveDelta checks the same property for the
// sparse k-way gain computation.
func TestDirectGainMatchesObjectiveDelta(t *testing.T) {
	err := quick.Check(func(seed uint64, vRaw uint16) bool {
		g := randomBipartite(t, seed, 12, 16, 70)
		opts := Options{K: 5, P: 0.5, Epsilon: 10}.withDefaults() // huge eps: no full buckets
		st := newDirectState(g, opts, seed, nil, 0)
		st.buildNeighborData()
		st.computeProposals()
		v := int32(vRaw) % 16
		tgt := st.target[v]
		if tgt < 0 {
			return true
		}
		before := st.objectiveFromND()
		st.bucket[v] = tgt
		st.buildNeighborData()
		after := st.objectiveFromND()
		return math.Abs((before-after)-st.gains[v]) < 1e-9
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDirectTargetIsArgmax verifies the chosen target maximizes the gain
// among all non-full buckets.
func TestDirectTargetIsArgmax(t *testing.T) {
	g := randomBipartite(t, 7, 15, 20, 90)
	opts := Options{K: 4, P: 0.5, Epsilon: 10}.withDefaults()
	st := newDirectState(g, opts, 3, nil, 0)
	st.buildNeighborData()
	st.computeProposals()
	for v := int32(0); v < 20; v++ {
		tgt := st.target[v]
		if tgt < 0 {
			continue
		}
		before := st.objectiveFromND()
		cur := st.bucket[v]
		bestDelta := math.Inf(-1)
		for c := int32(0); c < 4; c++ {
			if c == cur {
				continue
			}
			st.bucket[v] = c
			st.buildNeighborData()
			delta := before - st.objectiveFromND()
			if delta > bestDelta+1e-12 {
				bestDelta = delta
			}
			st.bucket[v] = cur
		}
		st.buildNeighborData()
		if math.Abs(bestDelta-st.gains[v]) > 1e-9 {
			t.Fatalf("vertex %d: argmax delta %v but proposal gain %v", v, bestDelta, st.gains[v])
		}
	}
}

func TestPartitionRecursiveValidBalanced(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 16} {
		g := randomBipartite(t, uint64(k), 300, 500, 3000)
		res, err := Partition(g, Options{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.Validate(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := partition.Imbalance(res.Assignment, k); imb > 0.05+0.03 {
			t.Fatalf("k=%d: imbalance %v exceeds ε=0.05 (+stochastic tolerance)", k, imb)
		}
	}
}

func TestPartitionImprovesOverRandom(t *testing.T) {
	// A planted 4-community hypergraph: queries live inside communities,
	// so SHP should get close to fanout 1, far below random's ~3.
	r := rng.New(99)
	const perCommunity, communities = 100, 4
	nd := perCommunity * communities
	b := hypergraph.NewBuilder(400, nd)
	for q := 0; q < 400; q++ {
		c := q % communities
		for e := 0; e < 6; e++ {
			b.AddEdge(int32(q), int32(c*perCommunity+r.Intn(perCommunity)))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	randomF := partition.Fanout(g, partition.Random(nd, communities, 5), communities)
	res, err := Partition(g, Options{K: communities, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	shpF := partition.Fanout(g, res.Assignment, communities)
	if shpF > randomF*0.55 {
		t.Fatalf("SHP fanout %v not far below random %v on planted communities", shpF, randomF)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := randomBipartite(t, 5, 200, 300, 2000)
	for _, branching := range []int{2, 0} {
		a, err := Partition(g, Options{K: 8, Seed: 7, Branching: branching, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(g, Options{K: 8, Seed: 7, Branching: branching, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Assignment {
			if a.Assignment[i] != b.Assignment[i] {
				t.Fatalf("branching=%d: parallelism changed the result at vertex %d", branching, i)
			}
		}
		c, err := Partition(g, Options{K: 8, Seed: 8, Branching: branching})
		if err != nil {
			t.Fatal(err)
		}
		diff := 0
		for i := range a.Assignment {
			if a.Assignment[i] != c.Assignment[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatalf("branching=%d: different seeds produced identical partitions", branching)
		}
	}
}

func TestPartitionDirectValidBalanced(t *testing.T) {
	for _, k := range []int{2, 8, 32} {
		g := randomBipartite(t, uint64(k)+100, 300, 500, 3000)
		res, err := Partition(g, Options{K: k, Direct: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.Validate(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := partition.Imbalance(res.Assignment, k); imb > 0.05+0.05 {
			t.Fatalf("k=%d: direct imbalance %v", k, imb)
		}
	}
}

func TestObjectiveDecreasesOverIterations(t *testing.T) {
	g := randomBipartite(t, 31, 400, 600, 5000)
	res, err := Partition(g, Options{K: 2, Seed: 3, Pairing: PairExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Skip("converged immediately")
	}
	first := res.History[0].Objective
	last := res.History[len(res.History)-1].Objective
	if last > first {
		t.Fatalf("objective rose over refinement: %v -> %v", first, last)
	}
}

func TestPairingModesAllReduceFanout(t *testing.T) {
	g := randomBipartite(t, 77, 500, 800, 6000)
	base := partition.Fanout(g, partition.Random(800, 8, 1), 8)
	for _, mode := range []PairingMode{PairHistogram, PairSimple, PairExact} {
		res, err := Partition(g, Options{K: 8, Seed: 4, Pairing: mode})
		if err != nil {
			t.Fatal(err)
		}
		f := partition.Fanout(g, res.Assignment, 8)
		if f >= base {
			t.Fatalf("pairing %v: fanout %v did not improve over random %v", mode, f, base)
		}
	}
}

func TestCliqueNetObjectiveReducesCut(t *testing.T) {
	g := randomBipartite(t, 13, 300, 400, 2500)
	randomCut := partition.CliqueNetCut(g, partition.Random(400, 4, 9))
	res, err := Partition(g, Options{K: 4, Objective: ObjCliqueNet, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cut := partition.CliqueNetCut(g, res.Assignment)
	if cut >= randomCut {
		t.Fatalf("clique-net cut %v did not improve over random %v", cut, randomCut)
	}
}

func TestWarmStartWithPenaltyLimitsChurn(t *testing.T) {
	g := randomBipartite(t, 17, 400, 600, 4000)
	first, err := Partition(g, Options{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Re-partition warm-started with a prohibitive move penalty: almost
	// nothing should move.
	again, err := Partition(g, Options{K: 4, Seed: 60, Initial: first.Assignment, MoveCostPenalty: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range first.Assignment {
		if first.Assignment[i] != again.Assignment[i] {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(first.Assignment)); frac > 0.02 {
		t.Fatalf("%.1f%% vertices moved despite prohibitive penalty", frac*100)
	}
	// Without the penalty the warm start is free to move more.
	free, err := Partition(g, Options{K: 4, Seed: 60, Initial: first.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	if err := free.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestWarmStartDirectMode(t *testing.T) {
	g := randomBipartite(t, 19, 300, 500, 3000)
	first, err := Partition(g, Options{K: 8, Direct: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Partition(g, Options{K: 8, Direct: true, Seed: 12, Initial: first.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	f1 := partition.Fanout(g, first.Assignment, 8)
	f2 := partition.Fanout(g, again.Assignment, 8)
	if f2 > f1*1.05 {
		t.Fatalf("warm-started run regressed fanout: %v -> %v", f1, f2)
	}
}

func TestTrackFanoutHistory(t *testing.T) {
	g := randomBipartite(t, 23, 300, 500, 3000)
	res, err := Partition(g, Options{K: 8, Direct: true, Seed: 13, TrackFanout: true, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	for i, h := range res.History {
		if h.Fanout <= 0 {
			t.Fatalf("history[%d].Fanout = %v, want > 0", i, h.Fanout)
		}
	}
	// Final tracked fanout should match an independent measurement.
	want := partition.Fanout(g, res.Assignment, 8)
	got := res.History[len(res.History)-1].Fanout
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("tracked fanout %v != measured %v", got, want)
	}
}

func TestK1Trivial(t *testing.T) {
	g := randomBipartite(t, 3, 20, 30, 100)
	res, err := Partition(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Assignment {
		if b != 0 {
			t.Fatal("k=1 must assign everything to bucket 0")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := randomBipartite(t, 3, 10, 10, 30)
	cases := []Options{
		{K: 0},
		{K: 2, Epsilon: -1},
		{K: 2, P: 2},
		{K: 2, Branching: 1},
		{K: 2, Branching: -1},
		{K: 2, Direct: true, Pairing: PairExact},
		{K: 2, Initial: partition.Assignment{0}},
		{K: 2, Initial: partition.Assignment{0, 5, 0, 0, 0, 0, 0, 0, 0, 0}},
		{K: 2, MoveCostPenalty: -1},
	}
	for i, o := range cases {
		if _, err := Partition(g, o); err == nil {
			t.Errorf("case %d (%+v): expected error", i, o)
		}
	}
}

func TestRecursiveBranching4(t *testing.T) {
	g := randomBipartite(t, 41, 300, 512, 3000)
	res, err := Partition(g, Options{K: 16, Branching: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(16); err != nil {
		t.Fatal(err)
	}
	if imb := partition.Imbalance(res.Assignment, 16); imb > 0.15 {
		t.Fatalf("branching-4 imbalance %v", imb)
	}
	f := partition.Fanout(g, res.Assignment, 16)
	base := partition.Fanout(g, partition.Random(512, 16, 3), 16)
	if f >= base {
		t.Fatalf("branching-4 fanout %v >= random %v", f, base)
	}
}

func TestWeightedBalance(t *testing.T) {
	r := rng.New(3)
	b := hypergraph.NewBuilder(200, 300)
	for i := 0; i < 1500; i++ {
		b.AddEdge(int32(r.Intn(200)), int32(r.Intn(300)))
	}
	weights := make([]int32, 300)
	for i := range weights {
		weights[i] = int32(1 + r.Intn(5))
	}
	g, err := b.SetDataWeights(weights).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{K: 4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if imb := partition.WeightedImbalance(g, res.Assignment, 4); imb > 0.05+0.07 {
		t.Fatalf("weighted imbalance %v", imb)
	}
}

func TestLookaheadAblationRuns(t *testing.T) {
	g := randomBipartite(t, 53, 400, 600, 4000)
	with, err := Partition(g, Options{K: 16, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Partition(g, Options{K: 16, Seed: 16, DisableLookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	fWith := partition.Fanout(g, with.Assignment, 16)
	fWithout := partition.Fanout(g, without.Assignment, 16)
	// Both must be sane; lookahead usually helps but is not guaranteed on
	// arbitrary random graphs, so only check both produce real partitions.
	if fWith <= 0 || fWithout <= 0 {
		t.Fatal("lookahead ablation produced degenerate fanout")
	}
}

func TestEvenSpans(t *testing.T) {
	cases := []struct {
		span, r int
		want    []int
	}{
		{8, 2, []int{4, 4}},
		{5, 2, []int{3, 2}},
		{7, 3, []int{3, 2, 2}},
		{3, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := evenSpans(c.span, c.r)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("evenSpans(%d,%d) = %v, want %v", c.span, c.r, got, c.want)
			}
		}
	}
}

func TestLevelsFor(t *testing.T) {
	cases := []struct{ k, r, want int }{
		{2, 2, 1}, {4, 2, 2}, {5, 2, 3}, {8, 2, 3}, {512, 2, 9},
		{9, 3, 2}, {16, 4, 2}, {1, 2, 0},
	}
	for _, c := range cases {
		if got := levelsFor(c.k, c.r); got != c.want {
			t.Fatalf("levelsFor(%d,%d) = %d, want %d", c.k, c.r, got, c.want)
		}
	}
}

func TestHistoryOrdering(t *testing.T) {
	g := randomBipartite(t, 67, 300, 400, 2500)
	res, err := Partition(g, Options{K: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		a, b := res.History[i-1], res.History[i]
		if b.Level < a.Level {
			t.Fatal("history not ordered by level")
		}
		if b.Level == a.Level && b.Task == a.Task && b.Iter != a.Iter+1 {
			t.Fatal("iterations within a task are not consecutive")
		}
	}
	if res.Iterations != len(res.History) {
		t.Fatalf("Iterations = %d but %d history entries", res.Iterations, len(res.History))
	}
}
