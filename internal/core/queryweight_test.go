package core

import (
	"math"
	"testing"
	"testing/quick"

	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
)

// weightedBipartite builds a random graph with random query weights.
func weightedBipartite(tb testing.TB, seed uint64, numQ, numD, edges int) *hypergraph.Bipartite {
	tb.Helper()
	r := rng.New(seed)
	b := hypergraph.NewBuilder(numQ, numD)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	weights := make([]int32, numQ)
	for i := range weights {
		weights[i] = int32(1 + r.Intn(9))
	}
	g, err := b.SetQueryWeights(weights).Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestWeightedGainMatchesObjectiveDelta extends the central gain-delta
// property to query-weighted graphs for the bisection refiner.
func TestWeightedGainMatchesObjectiveDelta(t *testing.T) {
	opts := Options{K: 2, P: 0.5}.withDefaults()
	err := quick.Check(func(seed uint64, vRaw uint16) bool {
		g := weightedBipartite(t, seed, 12, 16, 70)
		b := newBisection(g, opts, seed, 0, 0, 1, 1, 0.5, 0.05, 0, nil)
		v := int32(vRaw) % 16
		b.computeGains()
		gain := b.gains[v]
		before := b.objective()
		cur := b.side[v]
		oth := 1 - cur
		b.side[v] = oth
		for _, q := range g.DataNeighbors(v) {
			b.n[cur][q]--
			b.n[oth][q]++
		}
		after := b.objective()
		return math.Abs((before-after)-gain) < 1e-9
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWeightedDirectGainMatchesObjectiveDelta does the same for SHP-k.
func TestWeightedDirectGainMatchesObjectiveDelta(t *testing.T) {
	err := quick.Check(func(seed uint64, vRaw uint16) bool {
		g := weightedBipartite(t, seed, 12, 16, 70)
		opts := Options{K: 5, P: 0.5, Epsilon: 10, Direct: true}.withDefaults()
		st := newDirectState(g, opts, seed, nil, 0)
		st.buildNeighborData()
		st.computeProposals()
		v := int32(vRaw) % 16
		tgt := st.target[v]
		if tgt < 0 {
			return true
		}
		before := st.objectiveFromND()
		st.bucket[v] = tgt
		st.buildNeighborData()
		after := st.objectiveFromND()
		return math.Abs((before-after)-st.gains[v]) < 1e-9
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHeavyQueryDominates builds an instance where one huge-weight query
// conflicts with several unit queries: the partitioner must favor the heavy
// one.
func TestHeavyQueryDominates(t *testing.T) {
	// Data 0..3. Heavy query {0,1} (weight 100); unit queries {0,2}, {1,3}
	// pull 0 and 1 apart. With k=2 and two vertices per side, the optimum
	// keeps {0,1} together.
	g, err := hypergraph.NewBuilder(3, 4).
		AddHyperedge(0, 0, 1).
		AddHyperedge(1, 0, 2).
		AddHyperedge(2, 1, 3).
		SetQueryWeights([]int32{100, 1, 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{K: 2, Seed: 3, Pairing: PairExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != res.Assignment[1] {
		t.Fatalf("heavy query split: assignment %v", res.Assignment)
	}
}

// TestWeightedFanoutImproves checks end-to-end that optimizing a weighted
// graph reduces the weighted fanout metric.
func TestWeightedFanoutImproves(t *testing.T) {
	g := weightedBipartite(t, 7, 300, 400, 2500)
	base := partition.Fanout(g, partition.Random(400, 8, 1), 8)
	for _, direct := range []bool{false, true} {
		res, err := Partition(g, Options{K: 8, Direct: direct, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if f := partition.Fanout(g, res.Assignment, 8); f >= base {
			t.Fatalf("direct=%v: weighted fanout %v did not beat random %v", direct, f, base)
		}
	}
}
