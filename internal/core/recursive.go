package core

import (
	"sync"

	"shp/internal/hypergraph"
	"shp/internal/par"
	"shp/internal/partition"
	"shp/internal/rng"
)

// Partition runs SHP on g and returns the bucket assignment for the data
// vertices. It dispatches on Options.Direct: direct k-way refinement
// (SHP-k) or recursive partitioning (Branching = 2 is SHP-2, the
// open-sourced variant).
//
// Partition is a thin wrapper over a single-use Session; callers that keep
// the graph alive and re-partition it as it changes should hold on to a
// Session (NewSession) instead.
func Partition(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	s, err := NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// rtask is one recursion node: split the given data vertices (original ids)
// over the bucket range [lo, hi).
type rtask struct {
	data []int32
	lo   int32
	hi   int32
}

// partitionRecursive implements recursive r-way partitioning. Each level
// splits every active task's data vertices into r (nearly) even bucket
// ranges with a bisection (r == 2) or a small direct refinement (r > 2) on
// the induced subproblem, with Section 3.4's lookahead and ε scheduling.
func partitionRecursive(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	nd := g.NumData()
	assignment := make(partition.Assignment, nd)
	res := &Result{K: opts.K}

	if opts.K == 1 {
		res.Assignment = assignment
		return res, nil
	}

	all := make([]int32, nd)
	for i := range all {
		all[i] = int32(i)
	}
	tasks := []rtask{{data: all, lo: 0, hi: int32(opts.K)}}
	totalLevels := levelsFor(opts.K, opts.Branching)
	idealPerBucket := float64(g.TotalDataWeight()) / float64(opts.K)

	for level := 0; len(tasks) > 0; level++ {
		eps := opts.Epsilon
		if !opts.DisableEpsilonScaling && totalLevels > 0 {
			// Section 3.4: grant ε scaled by the share of recursive splits
			// done once this level completes, so early levels stay tight
			// and do not strangle later movement.
			eps = opts.Epsilon * float64(level+1) / float64(totalLevels)
		}

		type taskOut struct {
			children []rtask
			history  []IterStats
			work     []WorkStats
			iters    int
		}
		outs := make([]taskOut, len(tasks))

		runTask := func(ti int, innerWorkers int) {
			t := tasks[ti]
			topts := opts
			topts.Parallelism = innerWorkers
			seed := rng.Mix(opts.Seed, rng.Mix(uint64(level)+1, uint64(t.lo)))
			children, hist, work, iters := splitTask(g, topts, t, seed, level, eps, idealPerBucket, assignment)
			outs[ti] = taskOut{children: children, history: hist, work: work, iters: iters}
		}

		workers := par.Workers(opts.Parallelism)
		if len(tasks) >= workers {
			// Many small tasks: parallelize across tasks.
			var wg sync.WaitGroup
			sem := make(chan struct{}, workers)
			for ti := range tasks {
				wg.Add(1)
				sem <- struct{}{}
				go func(ti int) {
					defer wg.Done()
					defer func() { <-sem }()
					runTask(ti, 1)
				}(ti)
			}
			wg.Wait()
		} else {
			for ti := range tasks {
				runTask(ti, opts.Parallelism)
			}
		}

		var next []rtask
		for ti := range outs {
			res.History = append(res.History, outs[ti].history...)
			res.Work = append(res.Work, outs[ti].work...)
			res.Iterations += outs[ti].iters
			next = append(next, outs[ti].children...)
		}
		tasks = next
	}

	res.Assignment = assignment
	return res, nil
}

// incrementalMinSize is the subproblem size below which recursion nodes fall
// back to full per-iteration recomputation: on tiny induced graphs the
// frontier bookkeeping (active/dirty arrays, proposal caches) costs more
// than the full sweeps it avoids. The switch is free to make per node
// because the incremental and full paths produce byte-identical partitions
// (see TestIncrementalMatchesFull* in incremental_test.go).
const incrementalMinSize = 2048

// splitTask splits one recursion node. Leaf ranges assign directly; binary
// ranges run a bisection; wider ranges with Branching > 2 run an r-way
// direct refinement on the induced subproblem. Children needing further
// splitting are returned.
func splitTask(g *hypergraph.Bipartite, opts Options, t rtask, seed uint64,
	level int, eps, idealPerBucket float64, assignment partition.Assignment) ([]rtask, []IterStats, []WorkStats, int) {

	if !opts.DisableIncremental && len(t.data) < incrementalMinSize {
		opts.DisableIncremental = true
	}
	span := int(t.hi - t.lo)
	if span <= 1 {
		for _, d := range t.data {
			assignment[d] = t.lo
		}
		return nil, nil, nil, 0
	}
	r := opts.Branching
	if r > span {
		r = span
	}
	if len(t.data) == 0 {
		return nil, nil, nil, 0
	}

	sub, _ := g.InducedByData(t.data, 2)

	if r == 2 {
		kLeft := (span + 1) / 2
		kRight := span - kLeft
		propLeft := float64(kLeft) / float64(span)
		home := warmStartSides(opts, t, int32(kLeft))
		b := newBisection(sub, opts, seed, level, int(t.lo), kLeft, kRight, propLeft, eps, idealPerBucket, home)
		side := b.run()

		var left, right []int32
		for i, d := range t.data {
			if side[i] == 0 {
				left = append(left, d)
			} else {
				right = append(right, d)
			}
		}
		mid := t.lo + int32(kLeft)
		children := childTasks(assignment,
			rtask{data: left, lo: t.lo, hi: mid},
			rtask{data: right, lo: mid, hi: t.hi})
		return children, b.history, b.work, len(b.history)
	}

	// r-way split via the direct refiner on the subproblem, with each child
	// bucket lookahead-weighted by its final span.
	spans := evenSpans(span, r)
	dopts := opts
	dopts.K = r
	dopts.Direct = true
	dopts.Initial = nil
	dopts.Epsilon = eps
	st := newDirectState(sub, dopts, seed, spans, idealPerBucket)
	st.run()

	// Group data by child bucket and enqueue.
	childData := make([][]int32, r)
	for i, d := range t.data {
		childData[st.bucket[i]] = append(childData[st.bucket[i]], d)
	}
	var children []rtask
	lo := t.lo
	for c := 0; c < r; c++ {
		hi := lo + int32(spans[c])
		children = append(children, childTasks(assignment, rtask{data: childData[c], lo: lo, hi: hi})...)
		lo = hi
	}
	hist := st.history
	for i := range hist {
		hist[i].Level = level
		hist[i].Task = int(t.lo)
	}
	work := st.work
	for i := range work {
		work[i].Level = level
		work[i].Task = int(t.lo)
	}
	return children, hist, work, len(hist)
}

// childTasks assigns leaf ranges immediately and returns the rest.
func childTasks(assignment partition.Assignment, ts ...rtask) []rtask {
	var out []rtask
	for _, t := range ts {
		if int(t.hi-t.lo) <= 1 {
			for _, d := range t.data {
				assignment[d] = t.lo
			}
			continue
		}
		if len(t.data) == 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// warmStartSides derives per-vertex home sides (0 = left child, 1 = right)
// from Options.Initial for the task's data vertices, or nil without a warm
// start. Vertices whose initial bucket lies outside the task's range get -1.
func warmStartSides(opts Options, t rtask, kLeft int32) []int8 {
	if opts.Initial == nil {
		return nil
	}
	home := make([]int8, len(t.data))
	mid := t.lo + kLeft
	for i, d := range t.data {
		b := opts.Initial[d]
		switch {
		case b < t.lo || b >= t.hi:
			home[i] = -1
		case b < mid:
			home[i] = 0
		default:
			home[i] = 1
		}
	}
	return home
}

// evenSpans distributes span buckets over r children as evenly as possible.
func evenSpans(span, r int) []int {
	spans := make([]int, r)
	base := span / r
	rem := span % r
	for i := range spans {
		spans[i] = base
		if i < rem {
			spans[i]++
		}
	}
	return spans
}

// levelsFor returns the recursion depth: ceil(log_r k).
func levelsFor(k, r int) int {
	if r < 2 {
		return 1
	}
	levels := 0
	for span := 1; span < k; span *= r {
		levels++
	}
	return levels
}
