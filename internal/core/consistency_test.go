package core

import (
	"testing"
	"testing/quick"
)

// TestIncrementalCountsStayConsistent is a regression test for the
// double-undo bug: after any number of refinement iterations, the
// incrementally maintained per-query side counts must equal a from-scratch
// recount, and side weights must match the side array.
func TestIncrementalCountsStayConsistent(t *testing.T) {
	modes := []PairingMode{PairHistogram, PairSimple, PairExact}
	err := quick.Check(func(seed uint64, modeRaw uint8) bool {
		g := randomBipartite(t, seed, 40, 60, 300)
		opts := Options{K: 2, P: 0.5, Pairing: modes[int(modeRaw)%len(modes)], MaxIters: 8}.withDefaults()
		b := newBisection(g, opts, seed, 0, 0, 1, 1, 0.5, 0.01, 0, nil)
		b.run()
		// From-scratch recount.
		for q := 0; q < g.NumQueries(); q++ {
			var c0, c1 int32
			for _, d := range g.QueryNeighbors(int32(q)) {
				if b.side[d] == 0 {
					c0++
				} else {
					c1++
				}
			}
			if b.n[0][q] != c0 || b.n[1][q] != c1 {
				return false
			}
		}
		var w0, w1 int64
		for v := 0; v < g.NumData(); v++ {
			if b.side[v] == 0 {
				w0++
			} else {
				w1++
			}
		}
		return b.w[0] == w0 && b.w[1] == w1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDirectWeightsStayConsistent checks the same invariant for the k-way
// refiner's bucket weights.
func TestDirectWeightsStayConsistent(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomBipartite(t, seed, 40, 60, 300)
		opts := Options{K: 5, P: 0.5, MaxIters: 8, Direct: true}.withDefaults()
		st := newDirectState(g, opts, seed, nil, 0)
		st.run()
		recount := make([]int64, 5)
		for v := 0; v < g.NumData(); v++ {
			recount[st.bucket[v]]++
		}
		for c := 0; c < 5; c++ {
			if st.bucketW[c] != recount[c] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCapsHoldThroughoutRefinement verifies the hard balance guarantee the
// strict clamp provides (within one vertex weight of the cap).
func TestCapsHoldThroughoutRefinement(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomBipartite(t, seed, 60, 100, 500)
		opts := Options{K: 2, P: 0.5, Epsilon: 0.05, MaxIters: 12}.withDefaults()
		b := newBisection(g, opts, seed, 0, 0, 1, 1, 0.5, opts.Epsilon, 0, nil)
		b.run()
		// Allow one max-weight vertex of slack (trim passes stop at first
		// fit and the two caps can be marginally incompatible).
		return float64(b.w[0]) <= b.capW[0]+1 && float64(b.w[1]) <= b.capW[1]+1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
