package core

import (
	"reflect"
	"testing"

	"shp/internal/gen"
	"shp/internal/partition"
)

// The tentpole contract of the parallel plane: Options.Parallelism decides
// only how fast refinement runs, never what it computes. Assignments,
// iteration histories, AND work counters must be byte-identical for every
// worker count — on cold runs and across warm session epochs, for both
// engines. The graphs are sized past the shard thresholds (gainBinShardSize,
// histShardMin) so the multi-shard fold paths are actually exercised, and
// one config uses a non-dyadic P so histogram sums leave the trivially
// exact regime of integer-ish table values.

func comparePar(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(base.Assignment, got.Assignment) {
		diff := 0
		for i := range base.Assignment {
			if base.Assignment[i] != got.Assignment[i] {
				diff++
			}
		}
		t.Fatalf("%s: assignments differ at %d/%d vertices", label, diff, len(base.Assignment))
	}
	if !reflect.DeepEqual(base.History, got.History) {
		t.Fatalf("%s: iteration histories diverge", label)
	}
	if !reflect.DeepEqual(base.Work, got.Work) {
		t.Fatalf("%s: work-counter histories diverge", label)
	}
	if base.Iterations != got.Iterations {
		t.Fatalf("%s: iteration counts diverge: %d vs %d", label, base.Iterations, got.Iterations)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	configs := []struct {
		name string
		nq   int
		nd   int
		e    int
		opts Options
	}{
		// SHP-2 recursive, |D| past gainBinShardSize: multi-shard bin sync,
		// coin phase, and the owner-sharded patch collector.
		{"SHP2", 6000, 20000, 80000, Options{K: 8, Seed: 21}},
		// SHP-k direct, |D| past histShardMin: multi-shard pair histograms.
		{"SHPk", 4000, 12000, 50000, Options{K: 8, Direct: true, Seed: 21}},
		// Non-dyadic P: gain tables off the integer-friendly values, so the
		// histogram folds genuinely depend on their (fixed) boundaries.
		{"SHPkP03", 3000, 9000, 36000, Options{K: 8, Direct: true, Seed: 33, P: 0.3}},
		// Exact pairing keeps its single-shard bins (global cursor order).
		{"SHP2Exact", 800, 2400, 9000, Options{K: 4, Seed: 7, Pairing: PairExact, MaxIters: 6}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			g := randomBipartite(t, 101, tc.nq, tc.nd, tc.e)
			serial := tc.opts
			serial.Parallelism = 1
			base, err := Partition(g, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				o := tc.opts
				o.Parallelism = workers
				got, err := Partition(g, o)
				if err != nil {
					t.Fatal(err)
				}
				comparePar(t, tc.name+"/workers="+string(rune('0'+workers)), base, got)
			}
		})
	}
}

// TestParallelMatchesSerialWarmSession runs the same contract across warm
// session epochs: Apply churn, Repartition, and require every epoch's
// assignment, history, and work counters to match the serial session's,
// for both the direct warm engine and a recursive initial partition.
func TestParallelMatchesSerialWarmSession(t *testing.T) {
	type epochResult struct {
		asgn partition.Assignment
		hist []IterStats
		work []WorkStats
	}
	run := func(t *testing.T, direct bool, workers int) []epochResult {
		t.Helper()
		g := randomBipartite(t, 77, 3500, 11000, 46000)
		opts := Options{K: 8, Direct: direct, Seed: 9, Parallelism: workers}
		s, err := NewSession(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := gen.NewChurn(g, 0.03, 17)
		if err != nil {
			t.Fatal(err)
		}
		var out []epochResult
		for epoch := 0; epoch < 3; epoch++ {
			d, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			r, err := s.Repartition()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, epochResult{
				asgn: append(partition.Assignment(nil), r.Assignment...),
				hist: append([]IterStats(nil), r.History...),
				work: append([]WorkStats(nil), r.Work...),
			})
		}
		return out
	}
	for _, mode := range []struct {
		name   string
		direct bool
	}{{"direct", true}, {"recursiveStart", false}} {
		t.Run(mode.name, func(t *testing.T) {
			base := run(t, mode.direct, 1)
			for _, workers := range []int{2, 3, 8} {
				got := run(t, mode.direct, workers)
				for e := range base {
					if !reflect.DeepEqual(base[e].asgn, got[e].asgn) {
						t.Fatalf("workers=%d epoch %d: assignments diverge from serial", workers, e)
					}
					if !reflect.DeepEqual(base[e].hist, got[e].hist) {
						t.Fatalf("workers=%d epoch %d: histories diverge from serial", workers, e)
					}
					if !reflect.DeepEqual(base[e].work, got[e].work) {
						t.Fatalf("workers=%d epoch %d: work counters diverge from serial", workers, e)
					}
				}
			}
		})
	}
}

// TestParallelPatchRaceHammer drives the owner-sharded parallel collectors
// at high parallelism so the -race CI job interleaves them aggressively:
// a cold SHP-2 run whose mid-phase batches land between parallelPatchMin
// and the sweep-fallback threshold (exercising applyBatchPatched's routed
// owner pass, the sharded bin sync, and the per-shard coin phase), plus a
// churned direct session (the kernel's routed ndApplyMoveBatch and the
// member-patch pass). Correctness of the results themselves is pinned by
// the equivalence tests above; this test exists to give the race detector
// real concurrent traffic over the patch paths.
func TestParallelPatchRaceHammer(t *testing.T) {
	g := randomBipartite(t, 55, 6000, 20000, 80000)
	if _, err := Partition(g, Options{K: 8, Seed: 3, Parallelism: 8}); err != nil {
		t.Fatal(err)
	}

	gs := randomBipartite(t, 56, 3000, 10000, 42000)
	s, err := NewSession(gs, Options{K: 8, Direct: true, Seed: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.NewChurn(gs, 0.05, 29)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		d, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(d); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Repartition(); err != nil {
			t.Fatal(err)
		}
	}
}
