// Package core implements the Social Hash Partitioner: balanced k-way
// hypergraph partitioning that minimizes fanout by local search on the
// probabilistic-fanout objective (Kabiljo et al., VLDB 2017, Section 3).
//
// Two execution strategies are provided, matching the paper's SHP-2 and
// SHP-k: recursive bisection (Branching = 2, arbitrary branching supported)
// and direct k-way refinement (Branching = 0). Both iterate the same scheme:
// compute a move gain for every data vertex (Equation 1), pick the best
// target bucket, and let a master pair opposing move proposals so that
// balance is preserved, using one of three pairing protocols (Section 3.1's
// S-matrix, Section 3.4's gain histograms, or an exact sorted-queue pairing
// that serves as the quality reference).
package core

import (
	"errors"
	"fmt"

	"shp/internal/partition"
)

// Objective selects what the local search optimizes.
type Objective int

const (
	// ObjPFanout minimizes probabilistic fanout with probability Options.P
	// (the paper's default objective; p=0.5 recommended).
	ObjPFanout Objective = iota
	// ObjFanout minimizes plain fanout directly (the p -> 1 limit, Lemma 1).
	ObjFanout
	// ObjCliqueNet minimizes the clique-net weighted edge-cut (the p -> 0
	// limit, Lemma 2), with exact linear gains rather than a tiny p.
	ObjCliqueNet
)

func (o Objective) String() string {
	switch o {
	case ObjPFanout:
		return "p-fanout"
	case ObjFanout:
		return "fanout"
	case ObjCliqueNet:
		return "clique-net"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// PairingMode selects how opposing move proposals are matched while
// preserving balance.
type PairingMode int

const (
	// PairHistogram is the advanced protocol from Section 3.4: per-direction
	// histograms of move gains in exponentially sized bins, matched
	// best-first, with fractional probability on the boundary bin, pairing
	// of positive with negative bins when the summed gain is positive, and
	// extra imbalanced moves within the ε budget.
	PairHistogram PairingMode = iota
	// PairSimple is Algorithm 1's protocol: count positive-gain proposals
	// per direction in matrix S and move with probability
	// min(S_ij, S_ji)/S_ij.
	PairSimple
	// PairExact is the "ideal serial implementation": sort both queues by
	// gain and pair greedily. Deterministic; used as the quality reference
	// in ablations. Only available in recursive (bisection) mode.
	PairExact
)

func (m PairingMode) String() string {
	switch m {
	case PairHistogram:
		return "histogram"
	case PairSimple:
		return "simple"
	case PairExact:
		return "exact"
	default:
		return fmt.Sprintf("PairingMode(%d)", int(m))
	}
}

// Options configures a partitioning run. The zero value plus K is usable:
// all other fields default to the paper's recommended settings.
type Options struct {
	// K is the number of buckets (required, >= 1).
	K int
	// Epsilon is the allowed imbalance: every bucket holds at most
	// (1+Epsilon) * n/k data vertices. Default 0.05 (the paper's setting).
	Epsilon float64
	// P is the fanout probability for ObjPFanout. Default 0.5.
	P float64
	// Objective selects the optimization target. Default ObjPFanout.
	Objective Objective
	// Direct selects direct k-way refinement (the paper's SHP-k) instead of
	// recursive partitioning (SHP-2, the default and the open-sourced
	// variant).
	Direct bool
	// Branching is the recursion arity for recursive mode; 2 is SHP-2.
	// Ignored when Direct is set. Default 2.
	Branching int
	// MaxIters bounds refinement iterations (per bisection level for
	// recursive mode). Defaults: 20 recursive (per level), 60 direct.
	MaxIters int
	// MinMoveFraction stops refinement when the fraction of moved vertices
	// drops below it. Default 0.001.
	MinMoveFraction float64
	// Parallelism is the number of worker goroutines; <= 0 means GOMAXPROCS.
	//
	// Determinism guarantee: the worker count decides only how fast
	// refinement runs, never what it computes. Assignments, iteration
	// histories, and work counters are byte-identical for every Parallelism
	// value (including 0 on any machine), because every parallel phase
	// either writes disjoint state, folds exact dyadic-grid values (order
	// free), or reduces through a decomposition fixed by the problem size
	// alone — gain-bin shards, pair-histogram shards, par.SumFloat64 —
	// with per-shard results merged in ascending shard order.
	Parallelism int
	// Seed makes runs reproducible. Two runs with equal options and seed
	// produce identical partitions regardless of parallelism.
	Seed uint64
	// Pairing selects the swap protocol. Default PairHistogram.
	Pairing PairingMode
	// DisableLookahead turns off Section 3.4's final-p-fanout approximation
	// during recursive partitioning (each split then optimizes the current
	// 2-way objective only). Ablation knob.
	DisableLookahead bool
	// DisableEpsilonScaling turns off Section 3.4's schedule that grants
	// only ε·(level/levels) imbalance at early recursion levels.
	// Ablation knob.
	DisableEpsilonScaling bool
	// TrackFanout records the true average fanout after every iteration in
	// the history (direct mode only; costs one metric evaluation per
	// iteration). Used by the Figure 7 experiment.
	TrackFanout bool
	// Initial warm-starts refinement from an existing assignment
	// (Section 5's incremental updates). Length must equal NumData.
	Initial partition.Assignment
	// MoveCostPenalty discourages moving vertices away from their Initial
	// assignment: each gain is reduced by this amount (in objective units)
	// when a vertex would leave its initial bucket and increased when it
	// would return. Only meaningful with Initial.
	MoveCostPenalty float64
	// MigrationBudget is the serving-plane objective: a hard cap on the
	// number of records a refinement epoch may move away from the assignment
	// it started from. In a serving system every move is a data copy, so the
	// soft MoveCostPenalty is not enough — operators need an exact bound on
	// migration traffic per epoch. Semantics:
	//
	//	 0  no budget (the default): refinement moves freely, byte-identical
	//	    to runs predating the knob;
	//	>0  at most this many records end the epoch on a bucket other than
	//	    the one they started it on. Move selection admits the
	//	    budget-consuming moves highest-gain-first (ties to the lower
	//	    vertex id); moves of already-migrated vertices — including moves
	//	    returning them to their starting bucket — never consume budget.
	//	    A record moved back frees its budget slot for the next
	//	    iteration, not the current one, so the invariant
	//	    "records off their epoch-start bucket <= budget" holds after
	//	    every iteration regardless of how the balance trim edits a
	//	    batch;
	//	<0  (MigrationFrozen) a budget of zero: no record leaves its
	//	    starting bucket, only new vertices are placed.
	//
	// The budget binds the direct k-way refiner — Session.Repartition
	// epochs, and Direct one-shot runs warm-started from Initial (the
	// epoch-start reference is Initial after the deterministic balance
	// repair). Deterministic balance repairs and new-vertex placement are
	// exempt: they run before the epoch reference is snapshotted, since
	// feasibility outranks migration cost. The recursive strategy does not
	// support budgets (validate rejects the combination with Initial).
	MigrationBudget int64
	// DisableIncremental turns off the incremental refinement engine: every
	// iteration rebuilds the per-query neighbor data from scratch and
	// recomputes proposals for all data vertices, instead of maintaining
	// neighbor counts in place and re-evaluating only the frontier of
	// vertices adjacent to a query touched by a move. Both paths produce
	// byte-identical partitions and histories for a fixed seed; this is an
	// ablation/debugging knob, not a quality trade-off.
	DisableIncremental bool
	// NDRebuildEvery is the period, in refinement iterations, of the
	// incremental engine's safety-net full neighbor-data rebuild (the
	// rebuild recomputes exactly the maintained state, so it never changes
	// results — it bounds the blast radius of any future maintenance bug).
	// 0 means the default of 64; negative disables the safety net.
	NDRebuildEvery int
}

// MigrationFrozen is the MigrationBudget value for a budget of exactly zero
// moved records: the assignment is frozen and refinement may only place new
// vertices. (The zero value of MigrationBudget means "no budget", so the
// frozen state needs a distinct sentinel; any negative value behaves the
// same.)
const MigrationFrozen int64 = -1

// withDefaults returns a copy with defaults filled in.
func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.P == 0 {
		o.P = 0.5
	}
	if o.Objective == ObjFanout {
		o.P = 1
	}
	if o.Branching == 0 {
		o.Branching = 2
	}
	if o.MaxIters == 0 {
		if o.Direct {
			o.MaxIters = 60 // the paper's SHP-k default
		} else {
			o.MaxIters = 20 // the paper's per-bisection default
		}
	}
	if o.MinMoveFraction == 0 {
		o.MinMoveFraction = 0.001
	}
	if o.NDRebuildEvery == 0 {
		o.NDRebuildEvery = 64
	}
	return o
}

// validate reports configuration errors.
func (o Options) validate(numData int) error {
	if o.K < 1 {
		return errors.New("core: K must be >= 1")
	}
	if o.Epsilon < 0 {
		return errors.New("core: Epsilon must be >= 0")
	}
	if o.Objective == ObjPFanout && (o.P <= 0 || o.P > 1) {
		return fmt.Errorf("core: P must be in (0, 1], got %v", o.P)
	}
	if o.Branching < 2 {
		return fmt.Errorf("core: Branching must be >= 2, got %d", o.Branching)
	}
	if o.Direct && o.Pairing == PairExact {
		return errors.New("core: PairExact is only available in recursive mode")
	}
	if o.Initial != nil && len(o.Initial) != numData {
		return fmt.Errorf("core: Initial has %d entries for %d data vertices", len(o.Initial), numData)
	}
	if o.Initial != nil {
		if err := o.Initial.Validate(o.K); err != nil {
			return fmt.Errorf("core: bad Initial: %w", err)
		}
	}
	if o.MoveCostPenalty < 0 {
		return errors.New("core: MoveCostPenalty must be >= 0")
	}
	if o.MigrationBudget != 0 && o.Initial != nil && !o.Direct {
		return errors.New("core: MigrationBudget requires Direct mode when Initial is set (the recursive strategy does not enforce budgets)")
	}
	return nil
}
