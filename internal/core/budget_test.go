package core

import (
	"math"
	"reflect"
	"testing"

	"shp/internal/gen"
	"shp/internal/partition"
)

// The migration-budget contract: every Repartition epoch ends with at most
// MigrationBudget records off the assignment the epoch started from — an
// exact invariant, not a soft penalty — with MigrationFrozen pinning the
// assignment outright and a budget of MaxInt64 reproducing the unbudgeted
// engine byte for byte.

// migrationDiff counts vertices (over the common prefix) whose bucket
// differs between two assignments — the serving-plane "records copied"
// metric the budget bounds. Vertices entering the epoch Unassigned are
// skipped: placing a brand-new record is not a migration (nothing is copied),
// matching the engine's documented placement exemption.
func migrationDiff(before, after partition.Assignment) int64 {
	n := len(before)
	if len(after) < n {
		n = len(after)
	}
	var moved int64
	for i := 0; i < n; i++ {
		if before[i] != partition.Unassigned && before[i] != after[i] {
			moved++
		}
	}
	return moved
}

// churnEpochs drives a session through epochs of generated churn, calling
// check with the epoch's starting assignment (including this epoch's new
// vertices as Unassigned) and its result.
func churnEpochs(t *testing.T, s *Session, c *gen.Churn, epochs int, check func(epoch int, before partition.Assignment, res *Result)) {
	t.Helper()
	for epoch := 0; epoch < epochs; epoch++ {
		d, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(d); err != nil {
			t.Fatal(err)
		}
		before := s.Assignment()
		res, err := s.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		check(epoch, before, res)
	}
}

func TestMigrationBudgetExact(t *testing.T) {
	const budget = 25
	g := randomBipartite(t, 71, 900, 3000, 13000)
	s, err := NewSession(g, Options{K: 8, Direct: true, Seed: 3, MigrationBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.NewChurn(g, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	bound := false
	churnEpochs(t, s, c, 6, func(epoch int, before partition.Assignment, res *Result) {
		moved := migrationDiff(before, res.Assignment)
		if moved > budget {
			t.Fatalf("epoch %d: %d records moved, budget is %d", epoch, moved, budget)
		}
		if res.Migrated > budget {
			t.Fatalf("epoch %d: Result.Migrated = %d, budget is %d", epoch, res.Migrated, budget)
		}
		// Migrated charges budget for refining a just-placed new vertex away
		// from its placement spot; the visible diff skips new vertices
		// entirely (no data is copied for a record that was never served).
		// The engine's count is therefore an upper bound on the diff.
		if moved > res.Migrated {
			t.Fatalf("epoch %d: assignment diff %d exceeds Result.Migrated %d", epoch, moved, res.Migrated)
		}
		if res.Migrated == budget {
			bound = true
		}
		if err := res.Assignment.Validate(8); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	})
	// At 5% churn a 25-record budget must actually bind — otherwise this
	// test exercises nothing.
	if !bound {
		t.Fatal("budget never bound: the invariant was not exercised")
	}
}

func TestMigrationBudgetFrozen(t *testing.T) {
	g := randomBipartite(t, 72, 700, 2500, 10000)
	s, err := NewSession(g, Options{K: 6, Direct: true, Seed: 5, MigrationBudget: MigrationFrozen})
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.NewChurn(g, 0.04, 19)
	if err != nil {
		t.Fatal(err)
	}
	churnEpochs(t, s, c, 4, func(epoch int, before partition.Assignment, res *Result) {
		// Every pre-existing, already-placed vertex keeps its bucket; only
		// vertices that entered this epoch Unassigned get one.
		for v := range before {
			if before[v] == partition.Unassigned {
				if res.Assignment[v] < 0 {
					t.Fatalf("epoch %d: new vertex %d left unplaced", epoch, v)
				}
				continue
			}
			if res.Assignment[v] != before[v] {
				t.Fatalf("epoch %d: frozen assignment moved vertex %d (%d -> %d)",
					epoch, v, before[v], res.Assignment[v])
			}
		}
		if res.Migrated != 0 {
			t.Fatalf("epoch %d: frozen epoch reports %d migrated records", epoch, res.Migrated)
		}
	})
}

func TestMigrationBudgetUnlimitedByteIdentical(t *testing.T) {
	// An effectively infinite budget must reproduce the unbudgeted engine
	// byte for byte: assignments AND histories, across warm epochs.
	g1 := randomBipartite(t, 73, 900, 3000, 13000)
	g2 := g1.Clone()
	s1, err := NewSession(g1, Options{K: 8, Direct: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(g2, Options{K: 8, Direct: true, Seed: 7, MigrationBudget: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := gen.NewChurn(g1, 0.03, 23)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := gen.NewChurn(g2, 0.03, 23)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		d1, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Apply(d1); err != nil {
			t.Fatal(err)
		}
		if err := s2.Apply(d2); err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Assignment, r2.Assignment) {
			t.Fatalf("epoch %d: unlimited budget changed the assignment", epoch)
		}
		if !reflect.DeepEqual(r1.History, r2.History) {
			t.Fatalf("epoch %d: unlimited budget changed the history", epoch)
		}
	}
}

func TestSessionIncrementalMatchesFullWithBudget(t *testing.T) {
	// The budget filter runs on the decided list shared by both engine
	// paths, so incremental and DisableIncremental stay byte-identical with
	// a binding budget.
	s1, s2, c1, c2 := sessionPair(t, Options{K: 8, Direct: true, Seed: 13, MigrationBudget: 40}, 0.04)
	runSessionEpochs(t, s1, s2, c1, c2, 4)
}

func TestMigrationBudgetColdWarmStart(t *testing.T) {
	// One-shot Direct run warm-started from an existing assignment: the
	// budget binds relative to Initial. A perfectly balanced round-robin
	// start keeps the pre-snapshot balance repair (budget-exempt by design)
	// out of the picture, so diff(Initial, result) is exactly the budgeted
	// migration count.
	const budget = 50
	g := randomBipartite(t, 74, 800, 2600, 11000)
	initial := make(partition.Assignment, g.NumData())
	for v := range initial {
		initial[v] = int32(v % 8)
	}
	res, err := Partition(g, Options{
		K: 8, Direct: true, Seed: 11, Initial: initial, MigrationBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	moved := migrationDiff(initial, res.Assignment)
	if moved > budget {
		t.Fatalf("cold warm-start moved %d records, budget is %d", moved, budget)
	}
	if res.Migrated != moved {
		t.Fatalf("Result.Migrated = %d, assignment diff = %d", res.Migrated, moved)
	}
	// Sanity: an unbudgeted run moves far more, so the cap actually cut.
	free, err := Partition(g, Options{K: 8, Direct: true, Seed: 11, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	if m := migrationDiff(initial, free.Assignment); m <= budget {
		t.Fatalf("unbudgeted run moved only %d records — instance too easy to exercise the budget", m)
	}
}

func TestMigrationBudgetRejectsRecursiveWithInitial(t *testing.T) {
	g := randomBipartite(t, 75, 100, 400, 1500)
	initial := partition.Random(g.NumData(), 4, 1)
	_, err := Partition(g, Options{K: 4, Seed: 1, Initial: initial, MigrationBudget: 10})
	if err == nil {
		t.Fatal("recursive strategy with Initial and MigrationBudget should be rejected")
	}
}
