package core

import (
	"reflect"
	"testing"

	"shp/internal/gen"
	"shp/internal/hypergraph"
	"shp/internal/partition"
)

// The session contract: Apply + Repartition must behave like one long
// refinement over a changing graph — the incremental engine stays exact
// across epochs (byte-identical to the full-rebuild ablation), new vertices
// get placed, balance holds, and the graph stays Validate-clean.

// sessionPair builds two sessions over clones of the same graph with only
// DisableIncremental flipped, plus matching churn generators.
func sessionPair(t *testing.T, opts Options, churn float64) (*Session, *Session, *gen.Churn, *gen.Churn) {
	t.Helper()
	g1 := randomBipartite(t, 91, 900, 3000, 13000)
	g2 := g1.Clone()
	full := opts
	full.DisableIncremental = true
	s1, err := NewSession(g1, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(g2, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Assignment(), s2.Assignment()) {
		t.Fatal("initial partitions diverge between engines")
	}
	c1, err := gen.NewChurn(g1, churn, 17)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := gen.NewChurn(g2, churn, 17)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2, c1, c2
}

func runSessionEpochs(t *testing.T, s1, s2 *Session, c1, c2 *gen.Churn, epochs int) {
	t.Helper()
	for epoch := 0; epoch < epochs; epoch++ {
		d1, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Apply(d1); err != nil {
			t.Fatal(err)
		}
		if err := s2.Apply(d2); err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Assignment, r2.Assignment) {
			diff := 0
			for i := range r1.Assignment {
				if r1.Assignment[i] != r2.Assignment[i] {
					diff++
				}
			}
			t.Fatalf("epoch %d: incremental and full assignments differ at %d/%d vertices",
				epoch, diff, len(r1.Assignment))
		}
		if !reflect.DeepEqual(r1.History, r2.History) {
			t.Fatalf("epoch %d: histories diverge:\nincremental %+v\nfull        %+v",
				epoch, r1.History, r2.History)
		}
		if err := s1.Graph().Validate(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if err := r1.Assignment.Validate(s1.opts.K); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
}

func TestSessionIncrementalMatchesFullDirect(t *testing.T) {
	s1, s2, c1, c2 := sessionPair(t, Options{K: 8, Direct: true, Seed: 3}, 0.02)
	runSessionEpochs(t, s1, s2, c1, c2, 5)
}

func TestSessionIncrementalMatchesFullRecursiveStart(t *testing.T) {
	// Initial partition via recursive SHP-2, warm epochs via the direct
	// engine: the session handoff must be identical under both engines.
	s1, s2, c1, c2 := sessionPair(t, Options{K: 8, Seed: 11}, 0.03)
	runSessionEpochs(t, s1, s2, c1, c2, 4)
}

func TestSessionIncrementalMatchesFullWithPenalty(t *testing.T) {
	s1, s2, c1, c2 := sessionPair(t, Options{K: 8, Direct: true, Seed: 5, MoveCostPenalty: 0.05}, 0.02)
	runSessionEpochs(t, s1, s2, c1, c2, 4)
}

func TestSessionWeightAndDataDeltas(t *testing.T) {
	// Hand-built deltas exercising every op kind, including weight changes
	// (which flip the graph to weighted mid-session) and vertices that join
	// and immediately appear in new hyperedges.
	g1 := randomBipartite(t, 33, 400, 1500, 6000)
	g2 := g1.Clone()
	opts := Options{K: 6, Direct: true, Seed: 9}
	full := opts
	full.DisableIncremental = true
	s1, err := NewSession(g1, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(g2, full)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		build := func(s *Session) *hypergraph.Delta {
			d := s.NewDelta()
			v := d.AddData(2)
			w := d.AddData(1)
			d.AddHyperedge(v, w, int32(epoch*7), int32(epoch*11+3))
			d.AddHyperedge(v, int32(epoch*5+1))
			d.RemoveHyperedge(int32(epoch * 13))
			d.SetDataWeight(int32(epoch*17+2), int32(2+epoch))
			return d
		}
		if err := s1.Apply(build(s1)); err != nil {
			t.Fatal(err)
		}
		if err := s2.Apply(build(s2)); err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Assignment, r2.Assignment) || !reflect.DeepEqual(r1.History, r2.History) {
			t.Fatalf("epoch %d: engines diverged on mixed deltas", epoch)
		}
		if err := s1.Graph().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionPlacesNewVertices(t *testing.T) {
	g := randomBipartite(t, 41, 300, 1200, 5000)
	s, err := NewSession(g, Options{K: 4, Direct: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := s.NewDelta()
	fresh := make([]int32, 0, 10)
	for i := 0; i < 10; i++ {
		fresh = append(fresh, d.AddData(1))
	}
	for i, v := range fresh {
		d.AddHyperedge(v, int32(i*3), int32(i*3+1))
	}
	if err := s.Apply(d); err != nil {
		t.Fatal(err)
	}
	// Until Repartition the new vertices are unassigned.
	a := s.Assignment()
	for _, v := range fresh {
		if a[v] != partition.Unassigned {
			t.Fatalf("vertex %d assigned before Repartition", v)
		}
	}
	res, err := s.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Balance must hold after placement + refinement.
	if imb := partition.Imbalance(res.Assignment, 4); imb > 0.05+1e-9 {
		t.Fatalf("imbalance %v exceeds epsilon after growth", imb)
	}
}

func TestSessionRepartitionQualityNearCold(t *testing.T) {
	// After churn, a warm Repartition must land within 1% of a cold
	// partition of the mutated graph (the acceptance bar). Run on a
	// community-structured ego-net graph — the paper's workload shape —
	// where both converge to stable quality (unstructured random graphs
	// make cold runs themselves vary by several percent between epochs,
	// which says nothing about the warm path).
	g0, err := gen.SocialEgoNets(8000, 12, 80, 0.85, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := hypergraph.PruneTrivialQueries(g0, 2)
	cold := g.Clone()
	const k = 16
	s, err := NewSession(g, Options{K: k, Direct: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := gen.NewChurn(g, 0.01, 23)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		d, err := churn.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.ApplyDelta(cloneDelta(d)); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(d); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Repartition(); err != nil {
			t.Fatal(err)
		}
		coldRes, err := Partition(cold, Options{K: k, Direct: true, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		warmF := partition.Fanout(s.Graph(), s.Assignment(), k)
		coldF := partition.Fanout(cold, coldRes.Assignment, k)
		if warmF > coldF*1.01 {
			t.Fatalf("epoch %d: warm fanout %.4f more than 1%% above cold %.4f", epoch, warmF, coldF)
		}
	}
}

// cloneDelta deep-copies a delta so it can be applied to a second graph.
func cloneDelta(d *hypergraph.Delta) *hypergraph.Delta {
	cp := hypergraph.NewDelta(d.BaseQueries, d.BaseData)
	for _, op := range d.Ops {
		switch op.Kind {
		case hypergraph.OpAddHyperedge:
			cp.AddWeightedHyperedge(op.Weight, op.Members...)
		case hypergraph.OpRemoveHyperedge:
			cp.RemoveHyperedge(op.Q)
		case hypergraph.OpAddData:
			cp.AddData(op.Weight)
		case hypergraph.OpSetDataWeight:
			cp.SetDataWeight(op.D, op.Weight)
		}
	}
	return cp
}

func TestSessionApplyRejectsBadDeltaAtomically(t *testing.T) {
	g := randomBipartite(t, 61, 100, 400, 1500)
	s, err := NewSession(g, Options{K: 4, Direct: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Assignment()
	for name, build := range map[string]func(*hypergraph.Delta){
		"negative-remove":  func(d *hypergraph.Delta) { d.RemoveHyperedge(-1) },
		"oob-remove":       func(d *hypergraph.Delta) { d.RemoveHyperedge(10000) },
		"oob-member":       func(d *hypergraph.Delta) { d.AddHyperedge(0, 99999) },
		"oob-weight":       func(d *hypergraph.Delta) { d.SetDataWeight(-3, 2) },
		"nonpositive-data": func(d *hypergraph.Delta) { d.AddData(0) },
	} {
		d := s.NewDelta()
		build(d)
		if err := s.Apply(d); err == nil {
			t.Fatalf("%s: Apply accepted an invalid delta", name)
		}
	}
	// Nothing leaked: the graph and session state are untouched and a valid
	// delta still applies and repartitions cleanly.
	if err := s.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, s.Assignment()) {
		t.Fatal("failed Apply changed the assignment")
	}
	d := s.NewDelta()
	d.AddHyperedge(1, 2, 3)
	if err := s.Apply(d); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Repartition(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRepartitionWithoutChanges(t *testing.T) {
	// Repartition with no Apply in between is a no-op refinement from a
	// converged state: quick, and it must not corrupt anything.
	g := randomBipartite(t, 55, 300, 1100, 4500)
	s, err := NewSession(g, Options{K: 4, Direct: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Assignment()
	for i := 0; i < 2; i++ {
		res, err := s.Repartition()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.Validate(4); err != nil {
			t.Fatal(err)
		}
	}
	// A converged assignment should stay essentially put (a handful of
	// probabilistic zero-gain swaps are fine; wholesale movement is not).
	moved := 0
	after := s.Assignment()
	for i := range first {
		if first[i] != after[i] {
			moved++
		}
	}
	if moved > len(first)/10 {
		t.Fatalf("idle repartition moved %d/%d vertices", moved, len(first))
	}
}
