package core

// Tests of the active-frontier machinery: per-iteration cost must track the
// moving frontier, not |D|. The delta tests (refine2_delta_test.go) pin the
// Equation 1 gain work alone; these pin the whole per-iteration loop — gain
// work plus the scan work of the sync/coin/apply/trim phases — because a
// frontier engine that still scans all of |D| to find its frontier would
// pass the former and fail here.

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"shp/internal/gen"
	"shp/internal/rng"
)

// TestRadixSortInt32 pins the counting sort the frontier assemblies rely on
// for canonical ascending order against the standard library, across sizes
// straddling the comparison-sort cutoff and bounds straddling the digit
// width (1, 2, and 3 counting passes).
func TestRadixSortInt32(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{0, 1, 2, frontierRadixMin - 1, frontierRadixMin, 1000, 20000} {
		for _, bound := range []int32{1, 2000, 50000, 5 << 20} {
			a := make([]int32, n)
			for i := range a {
				a[i] = int32(r.Uint64n(uint64(bound)))
			}
			want := append([]int32(nil), a...)
			slices.Sort(want)
			scratch := make([]int32, n)
			radixSortInt32(a, scratch, bound)
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d bound=%d: radix sort diverged from reference", n, bound)
			}
		}
	}
}

// frontierWarmStart returns converged sides with a small deterministic
// fraction flipped — the near-converged regime where idle iterations
// dominate.
func frontierWarmStart(t testing.TB, sides []int8, frac float64) []int8 {
	t.Helper()
	home := append([]int8(nil), sides...)
	r := rng.New(7)
	for i := 0; i < int(frac*float64(len(home))); i++ {
		v := r.Intn(len(home))
		home[v] = 1 - home[v]
	}
	return home
}

// TestBisectionFrontierCutsIdleIterationWork pins the tentpole claim with
// deterministic counters: refining a lightly perturbed warm start, the late
// iterations (everything after the first, which evaluates all state on both
// paths) must cost the frontier engine at least 5x fewer gain-plus-scan work
// units than the full-recomputation path, while producing byte-identical
// sides and histories. GainWork counts Equation 1 table terms and folded
// delta records; ScanWork counts per-vertex visits in the gain, bin-sync,
// coin, apply, and trim phases — together they proxy the whole iteration's
// memory stream, so an O(|D|) scan hiding anywhere in the loop fails the
// floor even if the gain math itself is frontier-sized.
func TestBisectionFrontierCutsIdleIterationWork(t *testing.T) {
	numQ, numD := 1500, 2500
	g, err := gen.HubPowerLawBipartite(numQ, numD, int64(numD)*8, 2.1, 0.004, numD/8, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, P: 0.5, MinMoveFraction: 1e-9}.withDefaults()

	cold := newBisection(g, opts, 11, 0, 0, 1, 1, 0.5, 0.05, 0, nil)
	home := frontierWarmStart(t, cold.run(), 0.003)
	run := func(disable bool) *bisection {
		o := opts
		o.DisableIncremental = disable
		b := newBisection(g, o, 13, 0, 0, 1, 1, 0.5, 0.05, 0, append([]int8(nil), home...))
		b.run()
		return b
	}
	inc := run(false)
	full := run(true)
	if !slices.Equal(inc.side, full.side) {
		t.Fatal("incremental and full warm refinements diverged")
	}
	if !reflect.DeepEqual(inc.history, full.history) {
		t.Fatalf("histories diverged: %+v vs %+v", inc.history, full.history)
	}
	if len(inc.work) != len(inc.history) || len(full.work) != len(full.history) {
		t.Fatalf("work stats not per-iteration: %d/%d vs %d/%d",
			len(inc.work), len(inc.history), len(full.work), len(full.history))
	}
	if len(inc.work) < 2 {
		t.Fatal("warm refinement converged in one iteration; nothing late to measure")
	}
	var lateInc, lateFull int64
	for _, w := range inc.work[1:] {
		lateInc += w.GainWork + w.ScanWork
	}
	for _, w := range full.work[1:] {
		lateFull += w.GainWork + w.ScanWork
	}
	if lateInc <= 0 || lateFull <= 0 {
		t.Fatalf("degenerate work counters: inc %d, full %d", lateInc, lateFull)
	}
	if lateInc*5 > lateFull {
		t.Fatalf("late gain+scan work: frontier %d vs full %d over %d iterations — less than the required 5x reduction",
			lateInc, lateFull, len(inc.work)-1)
	}
	// The frontier itself must shrink below |D| once the engine settles; the
	// full path pins lastFrontier at |D| every iteration.
	last := inc.work[len(inc.work)-1]
	if last.Frontier >= int64(numD) {
		t.Fatalf("final iteration frontier %d did not drop below |D| = %d", last.Frontier, numD)
	}
	if fullLast := full.work[len(full.work)-1]; fullLast.Frontier != int64(numD) {
		t.Fatalf("full path reported frontier %d, want |D| = %d", fullLast.Frontier, numD)
	}
	t.Logf("late gain+scan work over %d iterations: frontier %d vs full %d (%.1fx); final frontier %d of %d",
		len(inc.work)-1, lateInc, lateFull, float64(lateFull)/float64(lateInc), last.Frontier, numD)
}

// BenchmarkConvergedIteration measures the regime the tentpole is about: a
// warm, nearly converged hub-heavy bisection where under 1% of the vertices
// still move. Reported metrics make the sublinearity visible per iteration —
// frontier/iter (vertices the gain pass visited) and work/iter (gain+scan
// units) — so a regression that reintroduces an O(|D|) scan shows up in the
// bench smoke numbers even when wall time hides it behind memory bandwidth.
func BenchmarkConvergedIteration(b *testing.B) {
	g, err := gen.HubPowerLawBipartite(60000, 100000, 800000, 2.1, 0.0002, 400, 5)
	if err != nil {
		b.Fatal(err)
	}
	// Run to true convergence (moved == 0) instead of the default moved-
	// fraction cutoff: the whole point is the cost of the near-idle tail.
	opts := Options{K: 2, P: 0.5, MinMoveFraction: 1e-9}.withDefaults()
	cold := newBisection(g, opts, 11, 0, 0, 1, 1, 0.5, 0.05, 0, nil)
	home := frontierWarmStart(b, cold.run(), 0.001)
	for _, engine := range []struct {
		name    string
		disable bool
	}{{"frontier", false}, {"full-rebuild", true}} {
		b.Run(fmt.Sprintf("moved0.1%%-%s", engine.name), func(b *testing.B) {
			o := opts
			o.DisableIncremental = engine.disable
			var iters, frontier, work int64
			for i := 0; i < b.N; i++ {
				bis := newBisection(g, o, 13, 0, 0, 1, 1, 0.5, 0.05, 0, home)
				bis.run()
				// Per-iteration metrics over the late iterations only:
				// iteration 0 evaluates everything on both paths, and folding
				// it in would hide exactly the sublinearity being measured.
				iters, frontier, work = 0, 0, 0
				for _, w := range bis.work[1:] {
					iters++
					frontier += w.Frontier
					work += w.GainWork + w.ScanWork
				}
			}
			if iters == 0 {
				b.Fatal("warm refinement converged in one iteration; nothing late to measure")
			}
			b.ReportMetric(float64(iters), "late-iters")
			b.ReportMetric(float64(frontier)/float64(iters), "frontier/iter")
			b.ReportMetric(float64(work)/float64(iters), "work/iter")
			b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(iters*int64(b.N)), "ns/iter")
		})
	}
}
