package core

import "slices"

// Maintained gain-bin buckets for the SHP-2 bisection refiner.
//
// The histogram protocol (pairing.go) only ever consumes per-(side, sign,
// dyadic bin) counts and gain sums, and the exact pairing only needs each
// side's vertices in (gain desc, id asc) order. Both views are derivable
// from one structure: a dense vertex list per bin, kept current across
// iterations instead of being rebuilt by an O(|D|) sweep. After an iteration
// that moved m vertices, only the movers and the patched members of their
// dirty queries can have a different (side, gain) — so reconciling the bins
// costs O(frontier), and the per-iteration histogram is read off in O(bins).
//
// Bit-identity discipline: the incremental and the full
// (DisableIncremental) path both maintain the structure through the same
// canonical rule — visit candidate vertices in ascending id order, and for
// each whose (side, gain) differs from its recorded entry, subtract the old
// gain from its old bin's sum and add the new gain to the new bin's sum.
// The full path discovers the changed set with a comparison scan over all
// vertices; the incremental path walks its (sorted) frontier, which
// provably contains every changed vertex. The surviving change sequences
// are identical, so the maintained sums land on the same bits on both
// paths. Bins are never resummed from scratch after the initial fill, which
// keeps the safety-net rebuild schedule (NDRebuildEvery) invisible: a
// rebuild reproduces every gain bit-for-bit, so the change set it induces
// is empty.
//
// List order within a bin is not meaningful (only membership and the sums
// are), which lets removal swap with the last element and lets the exact
// pairing sort bins in place, lazily, on first touch.

// binSlots is the flat slot space: 2 sides x 2 signs x histBins.
const binSlots = 4 * histBins

// gainBins is the maintained bucket structure. Vertices not yet inserted
// (before the first sync) have slot -1.
type gainBins struct {
	list [binSlots][]int32
	sum  [binSlots]float64

	slot []int16   // vertex -> slot index, -1 before first insert
	pos  []int32   // vertex -> position within its slot's list
	rec  []float64 // vertex -> recorded gain (the value folded into sum)
}

func newGainBins(nd int) *gainBins {
	gb := &gainBins{
		slot: make([]int16, nd),
		pos:  make([]int32, nd),
		rec:  make([]float64, nd),
	}
	for i := range gb.slot {
		gb.slot[i] = -1
	}
	return gb
}

// binSlot maps a (side, gain) pair to its slot: positive gains use the
// side's first histBins slots, non-positive gains (keyed by |gain|, like
// DirHist) the second.
func binSlot(side int8, gain float64) int16 {
	s := int(side) * 2 * histBins
	if gain > 0 {
		return int16(s + binFor(gain))
	}
	return int16(s + histBins + binFor(-gain))
}

// update reconciles one vertex with its recorded entry. Unchanged vertices
// return without touching the sums — the filter every caller must share,
// because re-applying an unchanged value (sum -= g; sum += g) would not be
// a float no-op.
func (gb *gainBins) update(v int32, side int8, gain float64) {
	s := binSlot(side, gain)
	old := gb.slot[v]
	if old == s && gb.rec[v] == gain {
		return
	}
	if old >= 0 {
		gb.sum[old] -= gb.rec[v]
		l := gb.list[old]
		last := len(l) - 1
		moved := l[last]
		i := gb.pos[v]
		l[i] = moved
		gb.pos[moved] = i
		gb.list[old] = l[:last]
	}
	gb.sum[s] += gain
	gb.pos[v] = int32(len(gb.list[s]))
	gb.list[s] = append(gb.list[s], v)
	gb.slot[v] = s
	gb.rec[v] = gain
}

// hist assembles one side's DirHist from the maintained bins: counts from
// the list lengths, sums from the maintained per-bin totals.
func (gb *gainBins) hist(side int) DirHist {
	var h DirHist
	base := side * 2 * histBins
	for b := 0; b < histBins; b++ {
		h.posCount[b] = int64(len(gb.list[base+b]))
		h.posSum[b] = gb.sum[base+b]
		h.negCount[b] = int64(len(gb.list[base+histBins+b]))
		h.negSum[b] = gb.sum[base+histBins+b]
	}
	return h
}

// binCursor yields one side's vertices in exact (gain desc, id asc) order
// by walking the side's bins best-first — positive bins from the largest
// down, then non-positive bins from closest-to-zero down — sorting each bin
// in place, lazily, on first touch. Bin value ranges are disjoint and
// ordered, and equal gains always share a bin, so the concatenation of the
// per-bin sorts is exactly the global sort the serial pairing used to
// build; bins the greedy pairing never reaches are never sorted. work
// counts the vertices of every sorted bin, for the scan-work accounting.
type binCursor struct {
	bins  *gainBins
	gains []float64
	base  int // the side's first slot
	seq   int // position in best-first bin order, -1 before the first bin
	idx   int // read position within the current bin
	cur   []int32
	work  int64
}

func newBinCursor(bins *gainBins, gains []float64, side int) binCursor {
	return binCursor{bins: bins, gains: gains, base: side * 2 * histBins, seq: -1}
}

// peek returns the next vertex and its (iteration-start) gain without
// consuming it; ok is false when the side is exhausted.
func (c *binCursor) peek() (int32, float64, bool) {
	for c.idx >= len(c.cur) {
		c.seq++
		if c.seq >= 2*histBins {
			return -1, 0, false
		}
		var slot int
		if c.seq < histBins {
			slot = c.base + histBins - 1 - c.seq
		} else {
			slot = c.base + histBins + (c.seq - histBins)
		}
		l := c.bins.list[slot]
		if len(l) == 0 {
			continue
		}
		slices.SortFunc(l, func(x, y int32) int {
			gx, gy := c.gains[x], c.gains[y]
			if gx > gy {
				return -1
			}
			if gx < gy {
				return 1
			}
			return int(x - y)
		})
		// The in-place sort moved vertices within the bin; their recorded
		// positions must follow or later swap-removes would corrupt it.
		for i, v := range l {
			c.bins.pos[v] = int32(i)
		}
		c.work += int64(len(l))
		c.cur = l
		c.idx = 0
	}
	v := c.cur[c.idx]
	return v, c.gains[v], true
}

// advance consumes the vertex peek returned.
func (c *binCursor) advance() { c.idx++ }
