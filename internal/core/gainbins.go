package core

import "slices"

// Maintained gain-bin buckets for the SHP-2 bisection refiner.
//
// The histogram protocol (pairing.go) only ever consumes per-(side, sign,
// dyadic bin) counts and gain sums, and the exact pairing only needs each
// side's vertices in (gain desc, id asc) order. Both views are derivable
// from one structure: a dense vertex list per bin, kept current across
// iterations instead of being rebuilt by an O(|D|) sweep. After an iteration
// that moved m vertices, only the movers and the patched members of their
// dirty queries can have a different (side, gain) — so reconciling the bins
// costs O(frontier), and the per-iteration histogram is read off in O(bins).
//
// # Sharding
//
// For the histogram protocol the structure is sharded by fixed vertex
// ranges (gainBinShardSize ids per shard): vertex v's bins live in shard
// v >> gainBinShardBits, so the sync and coin phases parallelize over
// shards with no locking — a vertex never leaves its shard. The shard
// boundaries are a function of |D| alone, NEVER of the worker count: the
// per-(shard, slot) sums are maintained independently and folded in
// ascending shard order at histogram-read time, so the float fold order —
// and with it every downstream probability table — is identical for every
// Options.Parallelism. Workers only decide who processes which shards.
//
// The exact pairing (PairExact) instead needs each side's vertices in one
// global (gain desc, id asc) order, so its bisections construct the
// structure unsharded (one shard covering everything); the choice is keyed
// off Options.Pairing, which is worker-count independent.
//
// Bit-identity discipline: the incremental and the full
// (DisableIncremental) path both maintain the structure through the same
// canonical rule — visit candidate vertices in ascending id order within
// each shard, and for each whose (side, gain) differs from its recorded
// entry, subtract the old gain from its old bin's sum and add the new gain
// to the new bin's sum. The full path discovers the changed set with a
// comparison scan over all vertices; the incremental path walks its
// (sorted) frontier, which provably contains every changed vertex. The
// surviving change sequences are identical per shard, so the maintained
// sums land on the same bits on both paths. Bins are never resummed from
// scratch after the initial fill, which keeps the safety-net rebuild
// schedule (NDRebuildEvery) invisible: a rebuild reproduces every gain
// bit-for-bit, so the change set it induces is empty.
//
// List order within a bin is not meaningful (only membership and the sums
// are), which lets removal swap with the last element and lets the exact
// pairing sort bins in place, lazily, on first touch.

// binSlots is the flat per-shard slot space: 2 sides x 2 signs x histBins.
const binSlots = 4 * histBins

// gainBinShardBits/gainBinShardSize fix the vertex-range shard width of the
// histogram-protocol gain bins. The width is a constant (never derived from
// the worker count or GOMAXPROCS), so the shard layout — and the histogram
// fold order it induces — depends only on the vertex count.
const (
	gainBinShardBits = 13
	gainBinShardSize = 1 << gainBinShardBits
)

// gainBins is the maintained bucket structure. Vertices not yet inserted
// (before the first sync) have slot -1.
type gainBins struct {
	// shards is the number of fixed vertex-range shards (1 when unsharded);
	// list and sum are indexed by shard*binSlots + slot.
	shards  int
	sharded bool
	nd      int
	list    [][]int32
	sum     []float64

	slot []int16   // vertex -> slot index within its shard, -1 before first insert
	pos  []int32   // vertex -> position within its slot's list
	rec  []float64 // vertex -> recorded gain (the value folded into sum)
}

// newGainBins sizes the structure for nd vertices. sharded selects the
// fixed vertex-range shard layout (histogram protocol); the exact pairing
// passes false to keep one global shard for its ordered cursors.
func newGainBins(nd int, sharded bool) *gainBins {
	shards := 1
	if sharded && nd > gainBinShardSize {
		shards = (nd + gainBinShardSize - 1) / gainBinShardSize
	}
	gb := &gainBins{
		shards:  shards,
		sharded: sharded && shards > 1,
		nd:      nd,
		list:    make([][]int32, shards*binSlots),
		sum:     make([]float64, shards*binSlots),
		slot:    make([]int16, nd),
		pos:     make([]int32, nd),
		rec:     make([]float64, nd),
	}
	for i := range gb.slot {
		gb.slot[i] = -1
	}
	return gb
}

// shardBase returns the first flat slot index of vertex v's shard.
func (gb *gainBins) shardBase(v int32) int {
	if !gb.sharded {
		return 0
	}
	return int(v>>gainBinShardBits) * binSlots
}

// shardRange returns shard sh's vertex id range [lo, hi).
func (gb *gainBins) shardRange(sh int) (lo, hi int) {
	if !gb.sharded {
		return 0, gb.nd
	}
	lo = sh << gainBinShardBits
	hi = lo + gainBinShardSize
	if hi > gb.nd {
		hi = gb.nd
	}
	return lo, hi
}

// binSlot maps a (side, gain) pair to its slot: positive gains use the
// side's first histBins slots, non-positive gains (keyed by |gain|, like
// DirHist) the second.
func binSlot(side int8, gain float64) int16 {
	s := int(side) * 2 * histBins
	if gain > 0 {
		return int16(s + binFor(gain))
	}
	return int16(s + histBins + binFor(-gain))
}

// update reconciles one vertex with its recorded entry. Unchanged vertices
// return without touching the sums — the filter every caller must share,
// because re-applying an unchanged value (sum -= g; sum += g) would not be
// a float no-op. Callers updating distinct shards may run concurrently: a
// vertex only ever touches its own shard's lists and sums.
func (gb *gainBins) update(v int32, side int8, gain float64) {
	s := binSlot(side, gain)
	old := gb.slot[v]
	if old == s && gb.rec[v] == gain {
		return
	}
	base := gb.shardBase(v)
	if old >= 0 {
		o := base + int(old)
		gb.sum[o] -= gb.rec[v]
		l := gb.list[o]
		last := len(l) - 1
		moved := l[last]
		i := gb.pos[v]
		l[i] = moved
		gb.pos[moved] = i
		gb.list[o] = l[:last]
	}
	fs := base + int(s)
	gb.sum[fs] += gain
	gb.pos[v] = int32(len(gb.list[fs]))
	gb.list[fs] = append(gb.list[fs], v)
	gb.slot[v] = s
	gb.rec[v] = gain
}

// hist assembles one side's DirHist from the maintained bins: counts from
// the list lengths, sums from the maintained per-(shard, bin) totals folded
// in ascending shard order — a fold whose boundaries are fixed by the shard
// layout, so the histogram bits never depend on the worker count.
func (gb *gainBins) hist(side int) DirHist {
	var h DirHist
	base := side * 2 * histBins
	for sh := 0; sh < gb.shards; sh++ {
		o := sh*binSlots + base
		for b := 0; b < histBins; b++ {
			h.posCount[b] += int64(len(gb.list[o+b]))
			h.posSum[b] += gb.sum[o+b]
			h.negCount[b] += int64(len(gb.list[o+histBins+b]))
			h.negSum[b] += gb.sum[o+histBins+b]
		}
	}
	return h
}

// binCursor yields one side's vertices in exact (gain desc, id asc) order
// by walking the side's bins best-first — positive bins from the largest
// down, then non-positive bins from closest-to-zero down — sorting each bin
// in place, lazily, on first touch. Bin value ranges are disjoint and
// ordered, and equal gains always share a bin, so the concatenation of the
// per-bin sorts is exactly the global sort the serial pairing used to
// build; bins the greedy pairing never reaches are never sorted. work
// counts the vertices of every sorted bin, for the scan-work accounting.
//
// Requires the unsharded layout: the per-bin lists must hold each bin's
// whole population for the concatenation to be the global order.
type binCursor struct {
	bins  *gainBins
	gains []float64
	base  int // the side's first slot
	seq   int // position in best-first bin order, -1 before the first bin
	idx   int // read position within the current bin
	cur   []int32
	work  int64
}

func newBinCursor(bins *gainBins, gains []float64, side int) binCursor {
	if bins.sharded {
		//shp:panics(invariant: the exact pairing constructs its bins unsharded; a sharded cursor would silently drop vertices)
		panic("core: binCursor over sharded gain bins")
	}
	return binCursor{bins: bins, gains: gains, base: side * 2 * histBins, seq: -1}
}

// peek returns the next vertex and its (iteration-start) gain without
// consuming it; ok is false when the side is exhausted.
func (c *binCursor) peek() (int32, float64, bool) {
	for c.idx >= len(c.cur) {
		c.seq++
		if c.seq >= 2*histBins {
			return -1, 0, false
		}
		var slot int
		if c.seq < histBins {
			slot = c.base + histBins - 1 - c.seq
		} else {
			slot = c.base + histBins + (c.seq - histBins)
		}
		l := c.bins.list[slot]
		if len(l) == 0 {
			continue
		}
		slices.SortFunc(l, func(x, y int32) int {
			gx, gy := c.gains[x], c.gains[y]
			if gx > gy {
				return -1
			}
			if gx < gy {
				return 1
			}
			return int(x - y)
		})
		// The in-place sort moved vertices within the bin; their recorded
		// positions must follow or later swap-removes would corrupt it.
		for i, v := range l {
			c.bins.pos[v] = int32(i)
		}
		c.work += int64(len(l))
		c.cur = l
		c.idx = 0
	}
	v := c.cur[c.idx]
	return v, c.gains[v], true
}

// advance consumes the vertex peek returned.
func (c *binCursor) advance() { c.idx++ }
