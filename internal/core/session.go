package core

import (
	"fmt"
	"time"

	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
)

// Session is a long-lived partitioning session over a mutable hypergraph —
// the paper's production setting (Section 5, "incremental updates"), where
// the graph churns continuously and each re-partition warm-starts from the
// previous assignment instead of running from scratch.
//
// A Session owns three things:
//
//   - the hypergraph, mutated in place by Apply(delta);
//   - the current Assignment;
//   - the warm refinement state of the direct k-way engine (the neighbor-data
//     CSR, the per-vertex patchable gain accumulators, and the bucket loads),
//     built lazily on the first Repartition and patched — not rebuilt — on
//     every subsequent one.
//
// NewSession computes the initial partition with whatever strategy Options
// selects (recursive SHP-2 by default, SHP-k with Options.Direct).
// Repartition always refines with the direct k-way engine warm-started from
// the current assignment: the engine's dirty-query patch machinery makes its
// cost proportional to the churn since the last call, not to |E|. Vertices
// added since the last Repartition are first seeded by a greedy min-fanout
// placement (each goes to the admissible bucket most of its hyperedges
// already touch), then local refinement absorbs the change.
//
// A Session is not safe for concurrent use.
type Session struct {
	g    *hypergraph.Bipartite
	opts Options // defaults applied

	// assignment is the current bucket of every data vertex; vertices added
	// by Apply hold partition.Unassigned until the next Repartition.
	assignment partition.Assignment
	last       *Result

	st    *directState // warm engine; nil until the first Repartition
	epoch uint64

	// Engine-sync bookkeeping: counts the engine was last synced at, plus
	// everything the deltas touched since.
	engNQ    int
	engND    int
	removedQ []int32 // removed hyperedges (ids >= engNQ are filtered at sync)
	touched  []int32 // data vertices adjacent to any structural change
	dirty    bool
}

// NewSession validates the options, computes the initial partition of g, and
// returns the live session. The graph is owned by the session from here on:
// mutate it only through Apply.
func NewSession(g *hypergraph.Bipartite, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g.NumData()); err != nil {
		return nil, err
	}
	start := time.Now() //shp:nondet(wall timing for Result.Elapsed only; never feeds the assignment)
	var res *Result
	var err error
	if opts.Direct {
		res, err = partitionDirect(g, opts)
	} else {
		res, err = partitionRecursive(g, opts)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start) //shp:nondet(wall timing for Result.Elapsed only; never feeds the assignment)
	return &Session{
		g:          g,
		opts:       opts,
		assignment: res.Assignment.Clone(),
		last:       res,
	}, nil
}

// Graph returns the session's hypergraph. Callers may read it freely but
// must mutate it only through Apply.
func (s *Session) Graph() *hypergraph.Bipartite { return s.g }

// Assignment returns a copy of the current assignment. Vertices added since
// the last Repartition are Unassigned.
func (s *Session) Assignment() partition.Assignment { return s.assignment.Clone() }

// Result returns the result of the most recent partitioning (the initial
// one from NewSession, or the last Repartition).
func (s *Session) Result() *Result { return s.last }

// NewDelta starts an empty delta against the session's current graph.
func (s *Session) NewDelta() *hypergraph.Delta {
	return hypergraph.NewDelta(s.g.NumQueries(), s.g.NumData())
}

// Apply splices the delta into the session's hypergraph and marks everything
// it touched dirty, so the next Repartition re-evaluates exactly the
// affected neighborhood. The call is atomic: on error the graph and session
// are unchanged. The assignment is not updated — new vertices stay
// Unassigned and removed hyperedges keep influencing nothing — until
// Repartition is called.
func (s *Session) Apply(d *hypergraph.Delta) error {
	// Collect bookkeeping into locals first (members of removed hyperedges
	// must be read before the splice erases them), commit only on success.
	var touched []int32
	var removed []int32
	for _, op := range d.Ops {
		switch op.Kind {
		case hypergraph.OpAddHyperedge:
			touched = append(touched, op.Members...)
		case hypergraph.OpRemoveHyperedge:
			// Bounds-checked read only; an out-of-range id (either side)
			// falls through to ApplyDelta's validation, which rejects the
			// whole delta before anything mutates.
			if op.Q >= 0 && int(op.Q) < s.g.NumQueries() {
				touched = append(touched, s.g.QueryNeighbors(op.Q)...)
			}
			// Hyperedges added earlier in this same delta already put their
			// members into touched.
			removed = append(removed, op.Q)
		case hypergraph.OpSetDataWeight:
			touched = append(touched, op.D)
		}
	}
	if err := s.g.ApplyDelta(d); err != nil {
		return err
	}
	s.touched = append(s.touched, touched...)
	s.removedQ = append(s.removedQ, removed...)
	for len(s.assignment) < s.g.NumData() {
		s.assignment = append(s.assignment, partition.Unassigned)
	}
	s.dirty = true
	return nil
}

// seedBase derives the engine seed root; per-epoch seeds are mixed from it
// so refinement coins are fresh each Repartition but fully deterministic.
func (s *Session) seedBase() uint64 {
	return rng.Mix(s.opts.Seed, 0x5E5510A1)
}

// Repartition absorbs every delta applied since the last call: new vertices
// are placed greedily, the warm engine state is patched for the structural
// changes (cost proportional to the churn), and the direct k-way refinement
// runs to convergence from the current assignment. It returns the result of
// this refinement epoch; the session's Assignment reflects it afterwards.
//
// The first call builds the warm engine (one O(|E|) pass); subsequent calls
// only pay for what changed plus the refinement the churn actually causes.
// With Options.MoveCostPenalty set, each epoch penalizes moves away from
// the assignment it started from, keeping churn low (Section 5).
func (s *Session) Repartition() (*Result, error) {
	start := time.Now() //shp:nondet(wall timing for Result.Elapsed only; never feeds the assignment)
	s.epoch++
	epochSeed := rng.Mix(s.seedBase(), s.epoch)
	if s.st == nil {
		s.buildEngine(epochSeed)
	} else {
		s.st.seed = epochSeed
		s.syncEngine()
		// Cached proposals carry the previous epoch's tie-breaking seed;
		// one full selection sweep re-anchors them to this epoch's.
		s.st.forceSelect = true
	}
	st := s.st
	if s.opts.MoveCostPenalty > 0 {
		// Re-snapshot the penalty reference to "where vertices are now":
		// each epoch discourages churn relative to its own starting point.
		st.opts.Initial = append(st.opts.Initial[:0], st.bucket...)
		st.forceSelect = true
	}
	if s.opts.MigrationBudget != 0 {
		// Re-snapshot the migration-budget reference: the budget is charged
		// against this epoch's starting assignment (after new-vertex
		// placement and balance repair, which are feasibility work rather
		// than migrations), and the epoch starts with a full budget.
		st.migRef = append(st.migRef[:0], st.bucket...)
		st.migrated = 0
	}
	st.history = st.history[:0]
	st.work = st.work[:0]
	st.refine()

	if cap(s.assignment) < len(st.bucket) {
		s.assignment = make(partition.Assignment, len(st.bucket))
	}
	s.assignment = s.assignment[:len(st.bucket)]
	copy(s.assignment, st.bucket)
	res := &Result{
		Assignment: s.assignment.Clone(),
		K:          s.opts.K,
		Iterations: len(st.history),
		History:    append([]IterStats(nil), st.history...),
		Work:       append([]WorkStats(nil), st.work...),
		Elapsed:    time.Since(start), //shp:nondet(wall timing for Result.Elapsed only; never feeds the assignment)
		Migrated:   st.migrated,
	}
	s.last = res
	return res, nil
}

// buildEngine constructs the warm direct-engine state from the current
// graph and assignment (the one O(|E|) pass a session ever pays after
// construction).
func (s *Session) buildEngine(seed uint64) {
	g := s.g
	k := s.opts.K
	total := float64(g.TotalDataWeight())
	capW := make([]float64, k)
	bucketW := make([]int64, k)
	for c := 0; c < k; c++ {
		capW[c] = total / float64(k) * (1 + s.opts.Epsilon)
	}
	for v, b := range s.assignment {
		if b >= 0 {
			bucketW[b] += int64(g.DataWeight(int32(v)))
		}
	}
	placeNewVertices(g, s.assignment, bucketW, capW, k)

	dopts := s.opts
	dopts.Direct = true
	if dopts.Pairing == PairExact {
		// The exact sorted-queue pairing exists only for bisections; warm
		// refinement falls back to the default histogram protocol.
		dopts.Pairing = PairHistogram
	}
	// Warm epochs move few vertices by construction, so the fractional
	// stop would fire almost immediately and strand quality behind a cold
	// run's long polish tail. Iterations with little movement cost little
	// under the incremental engine, so run them until movement actually
	// stops (or MaxIters).
	dopts.MinMoveFraction = 0
	dopts.Initial = s.assignment
	st := newDirectState(g, dopts, seed, nil, 0)
	st.opts.Initial = nil // reattached per epoch by Repartition (penalty)
	st.buildNeighborData()
	s.st = st
	s.clearPending()
}

// syncEngine patches the warm engine for everything Apply recorded since
// the last sync: array growth for new vertices/queries, greedy placement,
// balance-target refresh, neighbor-data splices for added and removed
// hyperedges, a deterministic balance repair, and dirty marks so the next
// refinement re-evaluates exactly the touched neighborhood.
func (s *Session) syncEngine() {
	if !s.dirty {
		return
	}
	st := s.st
	g := s.g
	full := st.opts.DisableIncremental
	nq, nd := g.NumQueries(), g.NumData()

	// Per-query growth: fixed-capacity neighbor-data segments for the new
	// hyperedges land at the tail of the nd arena (capacity min(deg, k),
	// the same rule construction uses — a hyperedge's membership is
	// immutable, so the capacity requirement never changes afterwards).
	if nq > s.engNQ {
		for q := s.engNQ; q < nq; q++ {
			c := g.QueryDegree(int32(q))
			if c > st.k {
				c = st.k
			}
			st.nd.appendQuery(int32(c))
		}
		if st.qw != nil {
			for q := s.engNQ; q < nq; q++ {
				st.qw = append(st.qw, float64(g.QueryWeight(int32(q))))
			}
		} else if g.QueryWeighted() {
			// The graph gained query weights (a weighted hyperedge arrived
			// on a previously unweighted graph): materialize the array.
			st.qw = make([]float64, nq)
			for q := range st.qw {
				st.qw[q] = float64(g.QueryWeight(int32(q)))
			}
		}
	}

	// Per-data growth.
	if nd > s.engND {
		grow := nd - s.engND
		st.bucket = append(st.bucket, s.assignment[s.engND:nd]...)
		st.target = append(st.target, make([]int32, grow)...)
		st.gains = append(st.gains, make([]float64, grow)...)
		st.cand = append(st.cand, make([][]proposalCand, grow)...)
		st.propBase = append(st.propBase, make([]float64, grow)...)
		st.wdegArr = append(st.wdegArr, make([]float64, grow)...)
		if st.active != nil {
			st.active = append(st.active, make([]uint8, grow)...)
		}
		st.decided = nil // sized per batch; forces reallocation at new |D|
		// The pair-histogram shard scratch needs no reset here: matchDense
		// re-derives the fixed shard layout from |D| every call and resizes
		// (discarding stale accumulators) when the epoch's growth changed
		// histShardCount — keeping the fold decomposition, and with it the
		// worker-count-independence contract, intact across epochs.
	}

	// Balance targets track the (possibly changed) total weight; bucket
	// loads are recounted outright — O(|D|), trivial next to any refinement.
	total := float64(g.TotalDataWeight())
	for c := 0; c < st.k; c++ {
		st.targetW[c] = total / float64(st.k)
		st.capW[c] = total / float64(st.k) * (1 + st.opts.Epsilon)
	}
	for c := range st.bucketW {
		st.bucketW[c] = 0
	}
	for v := 0; v < nd; v++ {
		if b := st.bucket[v]; b >= 0 {
			st.bucketW[b] += int64(g.DataWeight(int32(v)))
		}
	}

	// Seed the new vertices, then splice the neighbor data: removed
	// hyperedges drop their live entries, added ones get their segment
	// built from the members' buckets.
	placeNewVertices(g, st.bucket, st.bucketW, st.capW, st.k)
	if !full {
		for _, q := range s.removedQ {
			if int(q) >= s.engNQ {
				continue // added and removed within the window: empty segment
			}
			st.nd.entries -= int64(st.nd.len[q])
			st.nd.len[q] = 0
		}
		cnt := make([]int32, st.k)
		for q := s.engNQ; q < nq; q++ {
			pos := st.nd.off[q]
			n := int32(0)
			for _, d := range g.QueryNeighbors(int32(q)) {
				cnt[st.bucket[d]]++
			}
			for b := int32(0); int(b) < st.k; b++ {
				if cnt[b] > 0 {
					st.nd.ent[pos] = NDEntry{B: b, C: cnt[b]}
					cnt[b] = 0
					pos++
					n++
				}
			}
			st.nd.len[q] = n
			st.nd.entries += int64(n)
		}
	}

	// Deterministic balance repair: placement (or a weight change) may have
	// pushed a bucket over cap; move vertices out the way warm starts do,
	// keeping the maintained neighbor data exact for every repair move.
	s.repairOverCap()

	// Dirty marks: every vertex whose Equation 1 inputs changed gets a full
	// rebuild at the next proposal pass. That is exactly the members of
	// added/removed hyperedges, weight-change targets, and the new vertices.
	if st.active != nil {
		for _, v := range s.touched {
			st.active[v] = activeRebuild
		}
		for v := s.engND; v < nd; v++ {
			st.active[int32(v)] = activeRebuild
		}
		// Marks were injected from outside the engine's own move batches
		// (including any repairOverCap rebuild marks above), so the marked
		// set is no longer the last batch's frontier.
		st.frontierValid = false
	}

	// Static per-vertex degrees of everything touched.
	for _, v := range s.touched {
		st.wdegArr[v] = st.computeWdeg(v)
	}
	for v := s.engND; v < nd; v++ {
		st.wdegArr[v] = st.computeWdeg(int32(v))
	}

	// A new hyperedge may exceed every previous size: grow the gain tables.
	// Table values live on the shared dyadic grid and longer tables extend
	// the same prefix, so cached accumulators stay exact.
	if maxN := g.MaxQueryDegree(); maxN+2 > len(st.tables[0].T) {
		tb := tablesFor(st.opts, 1, maxN)
		for c := range st.tables {
			st.tables[c] = tb
		}
		st.uniformT = tb.T
	}

	if full {
		st.buildNeighborData()
	}
	s.clearPending()
}

// repairOverCap runs the engine's deterministic balance repair (the same
// policy warm starts use in newDirectState), keeping the incremental engine
// state exact: each repair move updates the neighbor data of the mover's
// hyperedges and schedules the affected membership for rebuild.
func (s *Session) repairOverCap() {
	st := s.st
	if st.opts.DisableIncremental {
		st.repairBalance(nil)
		return
	}
	st.repairBalance(func(v, from, to int32) {
		// Exact state maintenance: transfer one neighbor-data unit per
		// adjacent hyperedge and rebuild everything that saw the move.
		// Repairs are rare and small, so the hub-conservative rebuild
		// (members instead of patches) costs nothing measurable.
		for _, q := range s.g.DataNeighbors(v) {
			st.nd.entries += st.nd.applyEntryDelta(q, from, to)
			for _, d := range s.g.QueryNeighbors(q) {
				st.active[d] = activeRebuild
			}
		}
		st.active[v] = activeRebuild
	})
}

// computeWdeg returns vertex v's static query-weighted degree.
func (st *directState) computeWdeg(v int32) float64 {
	if st.qw == nil {
		return float64(len(st.g.DataNeighbors(v)))
	}
	wdeg := 0.0
	for _, q := range st.g.DataNeighbors(v) {
		wdeg += st.qw[q]
	}
	return wdeg
}

func (s *Session) clearPending() {
	s.engNQ, s.engND = s.g.NumQueries(), s.g.NumData()
	s.removedQ = s.removedQ[:0]
	s.touched = s.touched[:0]
	s.dirty = false
}

// placeNewVertices greedily assigns every Unassigned vertex, in ascending id
// order, to the admissible bucket that minimizes the marginal fanout: the
// bucket already touched by the largest (query-weighted) number of the
// vertex's hyperedges. Ties prefer the lighter bucket, then the lower id;
// a vertex with no placed neighbors (or no admissible scored bucket) goes
// to the bucket with the most remaining capacity. Deterministic.
func placeNewVertices(g *hypergraph.Bipartite, bucket []int32, bucketW []int64, capW []float64, k int) {
	score := make([]float64, k)
	scoreGen := make([]int64, k)
	seenGen := make([]int64, k)
	var scoreC, seenC int64
	touched := make([]int32, 0, 64)
	for v := range bucket {
		if bucket[v] != partition.Unassigned {
			continue
		}
		scoreC++
		touched = touched[:0]
		for _, q := range g.DataNeighbors(int32(v)) {
			wq := float64(g.QueryWeight(q))
			seenC++
			for _, d := range g.QueryNeighbors(q) {
				b := bucket[d]
				if b < 0 || seenGen[b] == seenC {
					continue
				}
				seenGen[b] = seenC
				if scoreGen[b] != scoreC {
					scoreGen[b] = scoreC
					score[b] = 0
					touched = append(touched, b)
				}
				score[b] += wq
			}
		}
		wv := float64(g.DataWeight(int32(v)))
		best := int32(-1)
		bestScore := 0.0
		for _, b := range touched {
			if float64(bucketW[b])+wv > capW[b] {
				continue
			}
			switch {
			case best < 0 || score[b] > bestScore:
				best = b
				bestScore = score[b]
			case score[b] == bestScore && (bucketW[b] < bucketW[best] || (bucketW[b] == bucketW[best] && b < best)):
				best = b
			}
		}
		if best < 0 {
			// Nothing scored and admissible: most remaining capacity wins
			// (possibly over cap when everything is full; the balance
			// repair cleans that up).
			bestSlack := 0.0
			for b := 0; b < k; b++ {
				if slack := capW[b] - float64(bucketW[b]); best < 0 || slack > bestSlack {
					best = int32(b)
					bestSlack = slack
				}
			}
		}
		bucket[v] = best
		bucketW[best] += int64(wv)
	}
}

// String implements fmt.Stringer for debugging convenience.
func (s *Session) String() string {
	return fmt.Sprintf("Session{k=%d, |Q|=%d, |D|=%d, |E|=%d, epoch=%d, dirty=%v}",
		s.opts.K, s.g.NumQueries(), s.g.NumData(), s.g.NumEdges(), s.epoch, s.dirty)
}
