package sharding

import (
	"math"
	"reflect"
	"testing"

	"shp/internal/core"
	"shp/internal/gen"
	"shp/internal/partition"
	"shp/internal/rng"
)

func TestSampleMeanIsOne(t *testing.T) {
	m := LatencyModel{}
	r := rng.New(1)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += m.Sample(r)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("single-request mean = %v, want ~1 (latencies are in units of t)", mean)
	}
}

func TestSamplePositive(t *testing.T) {
	m := LatencyModel{}
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		if l := m.Sample(r); l <= 0 {
			t.Fatalf("non-positive latency %v", l)
		}
	}
}

func TestMultiGetIsMax(t *testing.T) {
	// With more parallel requests, latency can only grow stochastically.
	m := LatencyModel{}
	r1 := rng.New(3)
	r40 := rng.New(3)
	one := make([]int, 1)
	forty := make([]int, 40)
	for i := range one {
		one[i] = 1
	}
	for i := range forty {
		forty[i] = 1
	}
	var sum1, sum40 float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum1 += m.MultiGet(r1, one)
		sum40 += m.MultiGet(r40, forty)
	}
	if sum40 <= sum1*1.5 {
		t.Fatalf("fanout-40 mean %v should be well above fanout-1 mean %v", sum40/n, sum1/n)
	}
}

func TestSizeCost(t *testing.T) {
	m := LatencyModel{SizeCost: 1.0}
	r := rng.New(4)
	small := m.MultiGet(r, []int{1})
	r = rng.New(4)
	big := m.MultiGet(r, []int{100})
	if big <= small {
		t.Fatalf("size cost had no effect: %v vs %v", small, big)
	}
}

func TestLatencyVsFanoutShape(t *testing.T) {
	rows := LatencyVsFanout(LatencyModel{}, 40, 4000, 5)
	if len(rows) != 40 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if !(row.P50 <= row.P90 && row.P90 <= row.P95 && row.P95 <= row.P99) {
			t.Fatalf("fanout %d: percentiles not ordered: %+v", row.Fanout, row)
		}
	}
	// Figure 4a's headline: halving fanout 40 -> 10 roughly halves latency.
	f40, f10, f1 := rows[39], rows[9], rows[0]
	if f40.Mean <= f10.Mean || f10.Mean <= f1.Mean {
		t.Fatalf("mean latency not increasing in fanout: f1=%v f10=%v f40=%v", f1.Mean, f10.Mean, f40.Mean)
	}
	ratio := f40.Mean / f10.Mean
	if ratio < 1.2 {
		t.Fatalf("fanout 40 vs 10 latency ratio %v too small to reproduce Figure 4's effect", ratio)
	}
	// The p99 curve dominates the median at every fanout.
	if f40.P99 < f40.P50 {
		t.Fatal("p99 below p50")
	}
}

func TestLatencyVsFanoutDeterministic(t *testing.T) {
	a := LatencyVsFanout(LatencyModel{}, 5, 1000, 7)
	b := LatencyVsFanout(LatencyModel{}, 5, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestClusterQueryFanout(t *testing.T) {
	assignment := partition.Assignment{0, 0, 1, 2}
	c, err := NewCluster(3, assignment, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	f, lat := c.Query(r, []int32{0, 1, 2, 3})
	if f != 3 {
		t.Fatalf("fanout = %d, want 3", f)
	}
	if lat <= 0 {
		t.Fatal("non-positive latency")
	}
	f, _ = c.Query(r, []int32{0, 1})
	if f != 1 {
		t.Fatalf("single-server query fanout = %d", f)
	}
}

func TestNewClusterValidates(t *testing.T) {
	if _, err := NewCluster(0, partition.Assignment{}, LatencyModel{}); err == nil {
		t.Fatal("0 servers should error")
	}
	if _, err := NewCluster(2, partition.Assignment{5}, LatencyModel{}); err == nil {
		t.Fatal("out-of-range assignment should error")
	}
}

// TestSocialVsRandomSharding reproduces Figure 4b's conclusion: SHP-based
// sharding cuts both fanout and latency versus random sharding on a
// social workload.
func TestSocialVsRandomSharding(t *testing.T) {
	g, err := gen.SocialEgoNets(2000, 12, 50, 0.85, 9)
	if err != nil {
		t.Fatal(err)
	}
	const servers = 40
	res, err := core.Partition(g, core.Options{K: servers, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	social, err := NewCluster(servers, res.Assignment, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewCluster(servers, partition.Random(g.NumData(), servers, 11), LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	ms := social.ReplayQueries(g, 12, 1)
	mr := random.ReplayQueries(g, 12, 1)
	if ms.AvgFanout >= mr.AvgFanout*0.8 {
		t.Fatalf("social sharding fanout %v not clearly below random %v", ms.AvgFanout, mr.AvgFanout)
	}
	if ms.AvgLat >= mr.AvgLat {
		t.Fatalf("social sharding latency %v not below random %v", ms.AvgLat, mr.AvgLat)
	}
}

// TestReplayQueriesDeterministicWithSizeCost is the regression test for the
// map-ordered request build in Cluster.Query: with SizeCost > 0 the latency
// of a request depends on its size, so pairing sizes with latency draws in
// map iteration order made identical replays disagree. Requests are now
// built in ascending server order.
func TestReplayQueriesDeterministicWithSizeCost(t *testing.T) {
	g, err := gen.SocialEgoNets(800, 10, 40, 0.85, 15)
	if err != nil {
		t.Fatal(err)
	}
	const servers = 16
	c, err := NewCluster(servers, partition.Random(g.NumData(), servers, 16), LatencyModel{SizeCost: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a := c.ReplayQueries(g, 17, 1)
	b := c.ReplayQueries(g, 17, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay with SizeCost > 0 not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestReplayQueriesMinCount(t *testing.T) {
	g, err := gen.PlantedPartition(2, 20, 50, 4, 0.9, 13)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(2, gen.GroundTruth(2, 20), LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	m := c.ReplayQueries(g, 14, 10000)
	if len(m.Rows) != 0 {
		t.Fatal("minCount filter should drop all rows")
	}
	m = c.ReplayQueries(g, 14, 1)
	if len(m.Rows) == 0 {
		t.Fatal("expected rows with minCount 1")
	}
}
