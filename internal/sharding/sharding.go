// Package sharding simulates the storage-sharding experiment of
// Section 4.2.1: a memory-backed key-value store spread over servers, where
// a multi-get query issues one request per distinct server holding its
// records, in parallel, and completes when the slowest request returns.
//
// The per-request latency model is a lognormal body with an exponential
// straggler tail, normalized so a single request has mean latency 1 — all
// reported latencies are therefore in units of t, "the average latency of a
// single call", exactly how Figure 4 is labeled. The tail is what makes
// fanout expensive: the more servers a query touches, the higher the chance
// of hitting a straggler (the "tail at scale" effect the paper cites).
package sharding

import (
	"fmt"
	"math"
	"slices"

	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/rng"
	"shp/internal/stats"
)

// LatencyModel generates per-request latencies in units of the mean.
type LatencyModel struct {
	// Sigma is the lognormal shape of the latency body (default 0.35).
	Sigma float64
	// TailProb is the probability a request hits a straggler (default 0.03).
	TailProb float64
	// TailScale is the mean extra latency multiplier of a straggler, in
	// units of t (default 6).
	TailScale float64
	// SizeCost charges requests for their size: a request for s records
	// costs an extra SizeCost*(s-1) units (default 0 — the paper's
	// Section 5 caveat, off unless studied explicitly).
	SizeCost float64
}

func (m LatencyModel) withDefaults() LatencyModel {
	if m.Sigma == 0 {
		m.Sigma = 0.35
	}
	if m.TailProb == 0 {
		m.TailProb = 0.03
	}
	if m.TailScale == 0 {
		m.TailScale = 6
	}
	return m
}

// Sample draws one request latency (mean 1 over the full distribution).
func (m LatencyModel) Sample(r *rng.RNG) float64 {
	m = m.withDefaults()
	// Lognormal with mean 1: mu = -sigma^2/2.
	lat := math.Exp(-m.Sigma*m.Sigma/2 + m.Sigma*r.NormFloat64())
	if r.Float64() < m.TailProb {
		lat += r.ExpFloat64() * m.TailScale
	}
	// Normalize the tail's mean contribution away.
	return lat / (1 + m.TailProb*m.TailScale)
}

// MultiGet returns the latency of a query that issues the given per-server
// request sizes in parallel: the max over the per-request latencies.
func (m LatencyModel) MultiGet(r *rng.RNG, requestSizes []int) float64 {
	m = m.withDefaults()
	worst := 0.0
	for _, s := range requestSizes {
		lat := m.Sample(r)
		if m.SizeCost > 0 && s > 1 {
			lat += m.SizeCost * float64(s-1)
		}
		if lat > worst {
			worst = lat
		}
	}
	return worst
}

// PercentileRow is one fanout value's latency distribution, in units of t.
type PercentileRow struct {
	Fanout  int
	Queries int
	P50     float64
	P90     float64
	P95     float64
	P99     float64
	Mean    float64
}

// LatencyVsFanout reproduces Figure 4a: for each fanout 1..maxFanout, sample
// `samples` multi-get queries of that fanout (one record per server) and
// report latency percentiles.
func LatencyVsFanout(m LatencyModel, maxFanout, samples int, seed uint64) []PercentileRow {
	rows := make([]PercentileRow, 0, maxFanout)
	for f := 1; f <= maxFanout; f++ {
		r := rng.NewStream(seed, uint64(f))
		sizes := make([]int, f)
		for i := range sizes {
			sizes[i] = 1
		}
		lat := make([]float64, samples)
		for i := range lat {
			lat[i] = m.MultiGet(r, sizes)
		}
		ps := stats.Percentiles(lat, 50, 90, 95, 99)
		rows = append(rows, PercentileRow{
			Fanout: f, Queries: samples,
			P50: ps[0], P90: ps[1], P95: ps[2], P99: ps[3],
			Mean: stats.Mean(lat),
		})
	}
	return rows
}

// Cluster is a sharded store: an assignment of records (data vertices) to
// servers plus a latency model.
type Cluster struct {
	servers    int
	assignment partition.Assignment
	model      LatencyModel
}

// NewCluster validates and wraps an assignment.
func NewCluster(servers int, assignment partition.Assignment, model LatencyModel) (*Cluster, error) {
	if servers < 1 {
		return nil, fmt.Errorf("sharding: need >= 1 server, got %d", servers)
	}
	if err := assignment.Validate(servers); err != nil {
		return nil, err
	}
	return &Cluster{servers: servers, assignment: assignment, model: model.withDefaults()}, nil
}

// Query executes one multi-get for the given records: requests go to every
// distinct server holding one of them, in ascending server order so the
// per-request latency draws pair with request sizes deterministically.
// Returns the fanout and latency.
func (c *Cluster) Query(r *rng.RNG, records []int32) (int, float64) {
	servers := make([]int32, len(records))
	for i, rec := range records {
		servers[i] = c.assignment[rec]
	}
	slices.Sort(servers)
	reqs := make([]int, 0, len(servers))
	for i := 0; i < len(servers); {
		j := i + 1
		for j < len(servers) && servers[j] == servers[i] {
			j++
		}
		reqs = append(reqs, j-i)
		i = j
	}
	return len(reqs), c.model.MultiGet(r, reqs)
}

// Measurement aggregates a replayed workload.
type Measurement struct {
	Rows      []PercentileRow
	AvgFanout float64
	AvgLat    float64
}

// ReplayQueries reproduces Figure 4b: issue every hyperedge of g as a
// multi-get against the cluster, bucket latencies by observed fanout, and
// report percentiles per fanout (dropping fanouts with fewer than minCount
// observations, as the paper does for fanout > 35).
func (c *Cluster) ReplayQueries(g *hypergraph.Bipartite, seed uint64, minCount int) Measurement {
	r := rng.NewStream(seed, 0x4EA1)
	byFanout := map[int][]float64{}
	var fanoutSum, latSum float64
	n := 0
	for q := 0; q < g.NumQueries(); q++ {
		records := g.QueryNeighbors(int32(q))
		if len(records) == 0 {
			continue
		}
		f, lat := c.Query(r, records)
		byFanout[f] = append(byFanout[f], lat)
		fanoutSum += float64(f)
		latSum += lat
		n++
	}
	var rows []PercentileRow
	for f := 1; f <= c.servers; f++ {
		lats := byFanout[f]
		if len(lats) < minCount {
			continue
		}
		ps := stats.Percentiles(lats, 50, 90, 95, 99)
		rows = append(rows, PercentileRow{
			Fanout: f, Queries: len(lats),
			P50: ps[0], P90: ps[1], P95: ps[2], P99: ps[3],
			Mean: stats.Mean(lats),
		})
	}
	m := Measurement{Rows: rows}
	if n > 0 {
		m.AvgFanout = fanoutSum / float64(n)
		m.AvgLat = latSum / float64(n)
	}
	return m
}
