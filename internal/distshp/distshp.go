// Package distshp implements the paper's distributed SHP: recursive
// bisection driven entirely inside the vertex-centric model (Sections 3.2
// and 3.3, Figure 3), running on the pregel engine.
//
// Each refinement iteration is four supersteps with barriers between them:
//
//	superstep 0: data vertices send their (changed) bucket to adjacent
//	             queries, which maintain neighbor data incrementally;
//	superstep 1: queries send each adjacent data vertex what it needs to
//	             bring its sibling-pair gain state up to date (see below);
//	superstep 2: data vertices compute Equation 1 move gains and register
//	             (direction, gain) proposals with the master through an
//	             aggregator — changed proposals only, see below;
//	superstep 3: the master's per-pair histogram matching produces move
//	             probabilities, broadcast via an aggregator; data vertices
//	             flip their coins and move.
//
// # The incremental message plane
//
// By default superstep 1 ships work proportional to churn, not to |E|: the
// same dirty-query delta scheme the in-process engine uses (core/direct.go),
// pushed across superstep message boundaries.
//
//   - Every data vertex carries persistent Equation 1 accumulators: sumCur =
//     Σ_q T[n_cur(q)−1] and sumOth = Σ_q T[n_sib(q)] over its adjacent
//     queries, for its current sibling pair.
//   - After a move round, a dirty query (one that received bucket updates)
//     diffs its per-bucket histogram and emits (query, bucket, cOld, cNew)
//     delta records — only for buckets whose counts changed, and only to the
//     clean members whose pair contains the changed bucket. Receivers patch
//     their accumulators through core.GainTables.DeltaOwn / DeltaAway.
//   - Members that moved (their own frame changed, so patched sums would
//     refer to the wrong pair side) instead receive a full msgGain
//     contribution from every adjacent query — all of which are dirty,
//     because the mover broadcast its new bucket — and resum from scratch.
//   - All gain-table values live on the shared dyadic grid (core's
//     gainGridBits), so patched accumulators land bit-for-bit on the same
//     floats a full resummation produces, in any order: the incremental and
//     full paths yield byte-identical partitions and histories.
//   - The master mirrors the in-process engine's two escape hatches: when an
//     iteration moves more than 1/rebuildFallbackDiv of the vertices, the
//     next superstep 1 is a full rebroadcast (patching would cost more than
//     a sweep), and every Options.RebuildEvery iterations a safety-net full
//     rebroadcast re-derives every accumulator from the histograms.
//
// # The changed-only proposal plane
//
// Superstep 2 applies the same admissibility idea to the aggregator plane. A
// data vertex whose accumulators saw no superstep-1 traffic and whose bucket
// is unchanged is stable: its gain is bit-identical to what it last proposed,
// so it neither recomputes nor ships anything. Everyone else recomputes and,
// only if the (direction, gain) actually changed, retracts the previously
// registered proposal and asserts the new one (plus per-bucket weight deltas
// when the bucket changed). The master folds these assert/retract deltas into
// persistent per-direction histograms and per-bucket weight totals, matches
// over the persistent state each iteration, and resets it at level start —
// where every vertex re-registers from scratch. Late supersteps therefore
// ship proposal traffic proportional to the moving frontier, while
// full-rebroadcast iterations (sweep fallback, RebuildEvery safety net,
// DisableIncremental) recompute every gain — verifying the maintained
// proposal state — but still ship only the changes, so the maintained and
// recomputed regimes stay byte-identical.
//
// Options.DisableIncremental restores the full per-iteration rebroadcast:
// every query re-sends every member's msgGain contribution each iteration.
//
// Recursive levels are scheduled by the master: when a level converges
// (moved fraction below threshold) or exhausts its iterations, every data
// vertex splits its bucket b into 2b or 2b+1 and the next level begins.
// K must be a power of two (the configuration the paper's distributed
// experiments use).
package distshp

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"shp/internal/core"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/pregel"
	"shp/internal/rng"
)

// Options configures a distributed run.
type Options struct {
	// K is the number of buckets; must be a power of two, >= 2.
	K int
	// Epsilon is the allowed imbalance (default 0.05). Distributed SHP
	// preserves balance in expectation, exactly as the paper's protocol.
	Epsilon float64
	// P is the fanout probability (default 0.5).
	P float64
	// ItersPerLevel bounds refinement iterations per bisection level
	// (default 20, the paper's SHP-2 setting).
	ItersPerLevel int
	// MinMoveFraction advances to the next level early when the moved
	// fraction drops below it (default 0.001).
	MinMoveFraction float64
	// Workers is the number of simulated machines (default 4, the paper's
	// cluster size).
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
	// Transport selects the engine's message-plane backend (nil means the
	// in-process transport; pregel.TCPTransport() ships real frames over
	// loopback sockets). Partitions are transport-invariant for a fixed
	// seed.
	Transport pregel.Transport
	// DisableCombining turns off sender-side message combining (ablation:
	// the combined run moves strictly fewer cross-worker envelopes).
	DisableCombining bool
	// DisableLookahead turns off the final-p-fanout approximation.
	DisableLookahead bool
	// DisableDirtyOnly makes data vertices re-send their bucket to queries
	// every iteration instead of only after moves (ablation of the
	// neighbor-data caching optimization from Section 3.3). Every neighbor
	// then counts as freshly updated, so it also implies full per-iteration
	// gain rebroadcasts.
	DisableDirtyOnly bool
	// DisableIncremental turns off the dirty-query delta plane: superstep 1
	// rebroadcasts every member's full gain contribution each iteration
	// instead of patching persistent accumulators with per-bucket count
	// diffs. Both paths produce byte-identical partitions and histories for
	// a fixed seed; this is an ablation/debugging knob, not a quality
	// trade-off.
	DisableIncremental bool
	// RebuildEvery is the period, in refinement iterations within a level,
	// of the incremental plane's safety-net full gain rebroadcast (the
	// rebroadcast re-derives exactly the maintained accumulators, so it
	// never changes results — it bounds the blast radius of any future
	// maintenance bug). 0 means the default of 64 (mirroring the in-process
	// engine's NDRebuildEvery); negative disables the safety net.
	RebuildEvery int
	// Checkpointer stores superstep snapshots for worker-failure recovery
	// (nil means an in-process store, pregel.NewMemoryCheckpointer; use
	// pregel.NewDiskCheckpointer to survive process death). Snapshots cover
	// vertex state — including the persistent dyadic-grid accumulators —
	// pending inboxes, aggregated values, and the master's persistent
	// histograms, so a recovered run resumes the incremental protocol
	// without a rebroadcast and finishes byte-identical to an undisturbed
	// one.
	Checkpointer pregel.Checkpointer
	// CheckpointEvery is the snapshot cadence in supersteps (default 64).
	CheckpointEvery int
	// DisableCheckpointing turns the checkpoint plane off entirely
	// (ablation: any worker failure then aborts the run).
	DisableCheckpointing bool
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.P == 0 {
		o.P = 0.5
	}
	if o.ItersPerLevel == 0 {
		o.ItersPerLevel = 20
	}
	if o.MinMoveFraction == 0 {
		o.MinMoveFraction = 0.001
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.RebuildEvery == 0 {
		o.RebuildEvery = 64
	}
	return o
}

// rebuildFallbackDiv sets the deterministic patch-vs-rebroadcast switch, the
// distributed mirror of core's sweepFallbackDiv: when an iteration moves
// more than NumData/rebuildFallbackDiv vertices, delta traffic to the
// members of dirty queries would exceed one full rebroadcast, so the master
// schedules a full superstep 1 instead. The threshold is tighter than the
// in-process engine's 1/8 because the cost model differs: a full superstep 1
// is heavily sender-side combined (one envelope per worker/destination pair)
// while delta records ship per dirty query, so on the wire the break-even
// sits near 1/32 moved (measured across the planted/random test graphs).
// Both regimes produce identical state, so this is a pure performance knob.
const rebuildFallbackDiv = 32

// IterRecord is one refinement iteration's master-side summary.
type IterRecord struct {
	// Level is the bisection level the iteration ran at.
	Level int
	// Iter is the iteration index within the level.
	Iter int
	// Moved counts the data vertices that moved in this iteration.
	Moved int64
	// Fanout is the average fanout over the current level's buckets of the
	// assignment this iteration's proposals were computed from (i.e. before
	// its moves), maintained by the master from per-query live-entry diffs
	// at zero extra graph passes.
	Fanout float64
}

// Result is a finished distributed partitioning.
type Result struct {
	Assignment partition.Assignment
	K          int
	// Levels actually executed (log2 K).
	Levels int
	// Iterations across all levels.
	Iterations int
	// History records every refinement iteration in order. Iteration j
	// occupies supersteps 4j..4j+3 of Stats.PerSuperstep, so per-iteration
	// traffic can be attributed to protocol phases.
	History []IterRecord
	// Engine statistics: per-superstep message and byte counts.
	Stats *pregel.Stats
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// TotalTime is Elapsed multiplied by the worker count: the paper's
	// "total time" metric (Figure 5).
	TotalTime time.Duration
}

// LateGainBytes sums the gain/delta-superstep traffic of the run's "late"
// iterations — those whose superstep-1 workload was driven by at most
// maxMovedFraction of the data vertices moving — and returns the iteration
// count alongside the bytes. Iteration j's gain superstep (4j+1) ships the
// consequences of iteration j-1's moves, so the filter reads the previous
// iteration's Moved; level-start iterations are excluded because their
// superstep 1 is the O(|E|) registration rebroadcast on every plane. This is
// the one place the late-traffic attribution lives: tests, benchmarks, the
// CLI, and the dist-delta experiment all report through it.
func (r *Result) LateGainBytes(maxMovedFraction float64) (iters int, bytes int64) {
	if r.Stats == nil || len(r.Assignment) == 0 {
		return 0, 0
	}
	budget := maxMovedFraction * float64(len(r.Assignment))
	for j, rec := range r.History {
		if rec.Iter == 0 {
			continue // level start: registration rebroadcast, not churn-driven
		}
		// Iter > 0 implies History[j-1] is the same level's previous
		// iteration, whose moves produced this superstep's traffic.
		if float64(r.History[j-1].Moved) > budget {
			continue
		}
		if s := 4*j + 1; s < len(r.Stats.PerSuperstep) {
			iters++
			bytes += r.Stats.PerSuperstep[s].BytesSent
		}
	}
	return iters, bytes
}

// LateProposalBytes sums the proposal-superstep aggregator traffic (AggBytes
// of supersteps 4j+2) of the run's late iterations, under the same
// late-iteration filter as LateGainBytes: iteration j's proposal superstep
// ships the retract/assert deltas caused by iteration j-1's moves, and
// level-start iterations are excluded because their proposal superstep
// registers every vertex. With the changed-only proposal plane this shrinks
// with the moving frontier instead of staying O(directions x bins).
func (r *Result) LateProposalBytes(maxMovedFraction float64) (iters int, bytes int64) {
	if r.Stats == nil || len(r.Assignment) == 0 {
		return 0, 0
	}
	budget := maxMovedFraction * float64(len(r.Assignment))
	for j, rec := range r.History {
		if rec.Iter == 0 {
			continue // level start: full proposal registration, not churn-driven
		}
		if float64(r.History[j-1].Moved) > budget {
			continue
		}
		if s := 4*j + 2; s < len(r.Stats.PerSuperstep) {
			iters++
			bytes += r.Stats.PerSuperstep[s].AggBytes
		}
	}
	return iters, bytes
}

// message kinds exchanged between vertices.
type (
	// msgBucket: data -> query, "I am now in bucket New". Queries key
	// their incremental neighbor-data maintenance on Data alone (first
	// sight registers, later sights move), so that pair is the entire
	// wire payload.
	msgBucket struct {
		Data int32
		New  int32
	}
	// msgBucketBatch is the sender-side-combined form of msgBucket: all of
	// one worker's bucket updates for one query, shipped as a single
	// envelope (Giraph-style message batching on the count-aggregation
	// superstep).
	msgBucketBatch []msgBucket
	// msgGain: query -> data, the neighbor-data contribution to the
	// receiver's Equation 1 gain, already mapped through the level's gain
	// table. This is the combinable reduction of the paper's r = 2
	// neighbor-data counts (Section 3.3): contributions from different
	// queries simply add, so sender-side combining collapses each worker's
	// per-data traffic to one message. A vertex that receives msgGain
	// resums its persistent accumulators from scratch (every adjacent
	// query is guaranteed to have sent one).
	msgGain struct {
		Cur, Oth float64 // sum of T[n(current bucket)-1] and T[n(sibling)]
	}
	// msgDelta: query -> data, one changed neighbor-data entry of a dirty
	// query: bucket Bucket's adjacent-data count went COld -> CNew (0 =
	// entry absent). Sent only to clean members whose sibling pair contains
	// Bucket; receivers patch their persistent accumulators through the
	// exact dyadic-grid arithmetic of core.GainTables.DeltaOwn/DeltaAway.
	// The record deliberately omits the sending query's id: patch
	// arithmetic is a sum of per-record table-value differences, so the
	// receiver never needs to know which query a record came from, and
	// dropping the id cuts the wire size of every late-iteration gain
	// superstep by a quarter.
	msgDelta struct {
		Bucket int32
		COld   int32
		CNew   int32
	}
	// msgDeltaBatch is the sender-side-combined form of msgDelta: all of
	// one worker's delta records for one data vertex, shipped as a single
	// envelope. Exact patch arithmetic makes the record order irrelevant
	// to the result; combining preserves send order anyway.
	msgDeltaBatch []msgDelta
)

// combine is the engine combiner: msgGain adds; msgBucket and msgDelta
// batch. The engine applies it in the per-destination outbox, so all three
// cut the envelope count that crosses workers. The protocol never mixes
// kinds for one destination in one superstep (a vertex is either a mover —
// gains from every adjacent query — or clean — deltas only), so cross-kind
// merges are a protocol violation and panic.
func combine(a, b pregel.Message) pregel.Message {
	switch x := a.(type) {
	case msgGain:
		y := b.(msgGain)
		return msgGain{Cur: x.Cur + y.Cur, Oth: x.Oth + y.Oth}
	case msgBucket:
		if y, ok := b.(msgBucket); ok {
			return msgBucketBatch{x, y}
		}
		return append(msgBucketBatch{x}, b.(msgBucketBatch)...)
	case msgBucketBatch:
		if y, ok := b.(msgBucket); ok {
			return append(x, y)
		}
		return append(x, b.(msgBucketBatch)...)
	case msgDelta:
		if y, ok := b.(msgDelta); ok {
			return msgDeltaBatch{x, y}
		}
		return append(msgDeltaBatch{x}, b.(msgDeltaBatch)...)
	case msgDeltaBatch:
		if y, ok := b.(msgDelta); ok {
			return append(x, y)
		}
		return append(x, b.(msgDeltaBatch)...)
	}
	//shp:panics(invariant: the combiner is wired next to the codec registry; an unknown kind is a registration bug caught by codec-symmetry)
	panic(fmt.Sprintf("distshp: uncombinable message %T", a))
}

// dataState is the per-data-vertex state.
type dataState struct {
	d      int32
	bucket int32 // bucket id within the current level, in [0, 2^(level+1))
	moved  bool  // moved in the previous iteration (drives dirty-only sends)
	level  int
	// Persistent Equation 1 accumulators for the current sibling pair:
	// sumCur = Σ_q T[n_bucket(q)−1], sumOth = Σ_q T[n_sibling(q)]. Resummed
	// from msgGain after a move (or rebroadcast), patched from msgDelta
	// records otherwise; exact dyadic-grid arithmetic keeps the two
	// maintenance regimes bit-identical.
	sumCur, sumOth float64
	// Gain for moving to the sibling bucket, derived in superstep 2.
	gain float64
	// The proposal currently registered on the master's persistent
	// histograms: direction key, gain, and the level it was asserted at
	// (propLevel != level means nothing is registered at this level yet).
	// Superstep 2 retracts/asserts against these, shipping only changes.
	propKey   uint64
	propGain  float64
	propLevel int
}

// applyDelta folds one dirty-query delta record into the vertex's persistent
// accumulators. Records are routed by the sender to members whose pair
// contains the changed bucket, so anything else is a protocol violation.
func (st *dataState) applyDelta(tb core.GainTables, r msgDelta) {
	switch r.Bucket {
	case st.bucket:
		st.sumCur += tb.DeltaOwn(r.COld, r.CNew)
	case st.bucket ^ 1:
		st.sumOth += tb.DeltaAway(r.COld, r.CNew)
	default:
		//shp:panics(invariant: routing guarantees deltas reach only members of the changed pair; a miss means corrupt accumulators)
		panic(fmt.Sprintf("distshp: delta for bucket %d reached vertex %d in bucket %d",
			r.Bucket, st.d, st.bucket))
	}
}

// queryState is the per-query-vertex state: the paper's "neighbor data",
// held mapless in the shared kernel's canonical sorted-slice layout
// (core.NDEntry) so the gain superstep performs zero hash operations. The
// member registry is an int32 slice aligned with the query's sorted
// adjacency list — member lookups are binary searches, and the per-level
// reset is a linear fill instead of a map rebuild.
type queryState struct {
	q     int32
	level int
	// ent is the live neighbor data, sorted by bucket: the distributed
	// mirror of one in-process CSR segment, maintained through the same
	// kernel slice operations (core.NDInc/NDDec) and diffed with the same
	// core.NDDiff, so delta records match the in-process diff bit for bit.
	ent []core.NDEntry
	// memberBucket[i] is the last known bucket of the i-th member of the
	// query's sorted adjacency list, -1 while unregistered at this level.
	memberBucket []int32
	// prevLen is len(ent) after the previous superstep-1, so the global
	// live-entry total (average fanout) can be maintained by the master from
	// per-query diffs instead of graph passes.
	prevLen int32

	// Per-superstep scratch, reused so the steady state allocates nothing:
	// snap holds the pre-superstep segment (taken on the first tracked
	// update, diffed by deltaRecords), moved/movedIdx flag this superstep's
	// movers by member index, changes/recs are the diff output buffers.
	snap     []core.NDEntry
	snapped  bool
	moved    []bool
	movedIdx []int32
	changes  []core.NDChange
	recs     []msgDelta
}

// register (re)initializes the member registry for a new level.
func (st *queryState) register(level, degree int) {
	st.level = level
	st.ent = st.ent[:0]
	if st.memberBucket == nil {
		st.memberBucket = make([]int32, degree)
		st.moved = make([]bool, degree)
	}
	for i := range st.memberBucket {
		st.memberBucket[i] = -1
	}
}

// applyUpdate folds one bucket update into the neighbor data. members is
// the query's sorted adjacency list. When track is set (the incremental
// plane), the pre-superstep segment is snapshotted on first touch and the
// updating member is flagged as a mover, so deltaRecords can diff the net
// per-bucket changes and the send loop can route full contributions to
// movers only.
func (st *queryState) applyUpdate(members []int32, mb msgBucket, track bool) {
	i, ok := slices.BinarySearch(members, mb.Data)
	if !ok {
		//shp:panics(invariant: only adjacent data vertices may update a query; a stray update corrupts neighbor histograms)
		panic(fmt.Sprintf("distshp: bucket update from non-member %d reached query %d", mb.Data, st.q))
	}
	if track {
		if !st.snapped {
			st.snapped = true
			st.snap = append(st.snap[:0], st.ent...)
		}
		if !st.moved[i] {
			st.moved[i] = true
			st.movedIdx = append(st.movedIdx, int32(i))
		}
	}
	if prev := st.memberBucket[i]; prev >= 0 {
		st.ent = core.NDDec(st.ent, prev)
	}
	st.memberBucket[i] = mb.New
	st.ent = core.NDInc(st.ent, mb.New)
}

// deltaRecords diffs the pre-superstep snapshot against the current counts
// into canonical sorted-by-bucket (bucket, cOld, cNew) records, skipping
// buckets whose net count is unchanged. 0 means "entry absent" on either
// side.
func (st *queryState) deltaRecords() []msgDelta {
	st.changes = core.NDDiff(st.changes[:0], st.snap, st.ent)
	st.recs = st.recs[:0]
	for _, c := range st.changes {
		st.recs = append(st.recs, msgDelta{Bucket: c.B, COld: c.COld, CNew: c.CNew})
	}
	return st.recs
}

// resetSuperstep clears the tracked-superstep scratch in O(#movers).
func (st *queryState) resetSuperstep() {
	for _, i := range st.movedIdx {
		st.moved[i] = false
	}
	st.movedIdx = st.movedIdx[:0]
	st.snapped = false
}

// proposalAgg aggregates per-direction gain histograms for the master.
// Key is direction: bucket*2 + side (side 0 = moving to even sibling).
type proposalAgg struct {
	hists map[uint64]*histPair
}

type histPair struct {
	hist core.DirHist
}

func newProposalAgg() pregel.Aggregator { return &proposalAgg{hists: map[uint64]*histPair{}} }

// Add folds one proposal delta in: an assert records the gain, a retract
// removes a previously asserted one. A worker's accumulated value is a delta
// histogram (counts may be negative) destined for the master's persistent
// per-direction state.
func (a *proposalAgg) Add(v interface{}) {
	p := v.(proposal)
	h, ok := a.hists[p.key]
	if !ok {
		h = &histPair{}
		a.hists[p.key] = h
	}
	if p.retract {
		h.hist.Remove(p.gain)
	} else {
		h.hist.Add(p.gain)
	}
}

// Merge folds another proposalAgg in. Keys are folded in ascending order
// so map iteration order never reaches the merged state: first-seen keys
// adopt the other side's histPair pointer, and the byte-identical
// equivalence suites pin the merged bytes.
func (a *proposalAgg) Merge(o pregel.Aggregator) {
	other := o.(*proposalAgg).hists
	for _, key := range sortedHistKeys(other) {
		h := other[key]
		if mine, ok := a.hists[key]; ok {
			mine.hist.Merge(&h.hist)
		} else {
			a.hists[key] = h
		}
	}
}

// Value returns the histogram map.
func (a *proposalAgg) Value() interface{} { return a.hists }

// WireSize reports what shipping this worker's accumulated proposal deltas
// to the master would cost: an 8-byte direction key plus each delta
// histogram's non-empty bins. Feeds pregel's AggBytes accounting.
func (a *proposalAgg) WireSize() int {
	n := 0
	//shp:ordered(integer sum over disjoint entries; exact and order-free)
	for _, h := range a.hists {
		n += 8 + h.hist.WireSize()
	}
	return n
}

type proposal struct {
	key     uint64
	gain    float64
	retract bool
}

// weightAgg aggregates per-bucket weights (for the master's ε headroom).
type weightAgg struct{ w map[int32]int64 }

func newWeightAgg() pregel.Aggregator { return &weightAgg{w: map[int32]int64{}} }

// Add folds a (bucket, weight) sample in.
func (a *weightAgg) Add(v interface{}) {
	s := v.(bucketWeight)
	a.w[s.bucket] += s.weight
}

// Merge folds another weightAgg in, bucket-ascending so the fold order is
// reproducible (int64 addition is associative, but the discipline is
// uniform: aggregator merges never iterate maps raw).
func (a *weightAgg) Merge(o pregel.Aggregator) {
	ow := o.(*weightAgg).w
	for _, b := range sortedWeightBuckets(ow) {
		a.w[b] += ow[b]
	}
}

// Value returns the weight map.
func (a *weightAgg) Value() interface{} { return a.w }

// WireSize reports the accumulated weight deltas' shipping cost: a 4-byte
// bucket id plus an 8-byte weight per entry.
func (a *weightAgg) WireSize() int { return 12 * len(a.w) }

type bucketWeight struct {
	bucket int32
	weight int64
}

// sortedHistKeys returns m's direction keys in ascending order, so callers
// never fold histogram state in map iteration order.
func sortedHistKeys(m map[uint64]*histPair) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// sortedWeightBuckets returns m's bucket ids in ascending order.
func sortedWeightBuckets(m map[int32]int64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// probsValue is what the master broadcasts: per-direction probability
// tables.
type probsValue map[uint64]*core.ProbTable

// Partition runs distributed SHP-2 on g.
func Partition(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.K < 2 || opts.K&(opts.K-1) != 0 {
		return nil, fmt.Errorf("distshp: K must be a power of two >= 2, got %d", opts.K)
	}
	if g.NumData() == 0 {
		return nil, errors.New("distshp: empty graph")
	}
	start := time.Now() //shp:nondet(wall timing for Result.Elapsed only; never feeds the partition)

	levels := 0
	for 1<<levels < opts.K {
		levels++
	}
	numD := g.NumData()
	numQ := g.NumQueries()
	maxN := g.MaxQueryDegree()

	// Gain tables per level (lookahead t halves as levels deepen).
	tables := make([]core.GainTables, levels)
	for l := 0; l < levels; l++ {
		t := 1
		if !opts.DisableLookahead {
			t = opts.K >> (l + 1)
		}
		tables[l] = core.NewPFanoutTables(opts.P, t, maxN)
	}

	// Master-side schedule state (package-level type so the checkpoint
	// plane can snapshot and restore it; see snapshot.go).
	sched := &schedule{hists: map[uint64]*histPair{}, weights: map[int32]int64{}}
	idealPerBucket := float64(g.TotalDataWeight()) / float64(opts.K)

	vertices := make([]*pregel.Vertex, 0, numD+numQ)
	for d := 0; d < numD; d++ {
		vertices = append(vertices, &pregel.Vertex{
			ID:    pregel.VertexID(d),
			State: &dataState{d: int32(d), bucket: -1, level: -1, propLevel: -1},
		})
	}
	for q := 0; q < numQ; q++ {
		vertices = append(vertices, &pregel.Vertex{
			ID:    pregel.VertexID(numD + q),
			State: &queryState{q: int32(q), level: -1},
		})
	}

	maxSupersteps := levels*opts.ItersPerLevel*4 + 8

	compute := func(ctx *pregel.Context, v *pregel.Vertex, msgs []pregel.Message) {
		switch st := v.State.(type) {
		case *dataState:
			computeData(ctx, g, st, msgs, opts, tables)
		case *queryState:
			computeQuery(ctx, g, st, msgs, opts, tables)
		}
	}

	master := func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
		set := map[string]interface{}{}
		phase := sched.phase
		switch phase {
		case 2:
			// Proposal deltas are in: fold them into the persistent state,
			// then match histograms pair by pair over it. Adopting an
			// aggregator's histPair pointer for a first-seen key is safe
			// because a retract always follows an assert of the same key, so
			// a key absent from the persistent map can only carry asserts.
			if v, ok := agg["proposals"]; ok {
				deltas := v.(map[uint64]*histPair)
				for _, key := range sortedHistKeys(deltas) {
					h := deltas[key]
					if mine, exists := sched.hists[key]; exists {
						mine.hist.Merge(&h.hist)
					} else {
						sched.hists[key] = h
					}
				}
			}
			if v, ok := agg["weights"]; ok {
				w := v.(map[int32]int64)
				for _, b := range sortedWeightBuckets(w) {
					sched.weights[b] += w[b]
				}
			}
			probs := probsValue{}
			eps := opts.Epsilon * float64(sched.level+1) / float64(levels)
			t := opts.K >> (sched.level + 1)
			cap0 := idealPerBucket * float64(t) * (1 + eps)
			var empty histPair
			// Direction-key ascending: within a sibling pair (key, key^1)
			// the lower key always plays the A side of MatchHistograms, so
			// the broadcast probability tables are bit-reproducible.
			for _, key := range sortedHistKeys(sched.hists) {
				h := sched.hists[key]
				if _, done := probs[key]; done {
					continue
				}
				rkey := key ^ 1 // opposite direction of the same pair
				rh := sched.hists[rkey]
				if rh == nil {
					rh = &empty
				}
				// directionKey(b) == b: the direction "from b to its
				// sibling" is identified by b itself, so direction key
				// receives into bucket key^1 and vice versa.
				dstA := int32(uint32(key ^ 1))
				dstB := int32(uint32(key))
				extraA := int64(0)
				extraB := int64(0)
				if head := cap0 - float64(sched.weights[dstA]); head > 0 {
					extraA = int64(head * 0.9)
				}
				if head := cap0 - float64(sched.weights[dstB]); head > 0 {
					extraB = int64(head * 0.9)
				}
				pa, pb := core.MatchHistograms(&h.hist, &rh.hist, extraA, extraB)
				probs[key] = &pa
				if rh != &empty {
					probs[rkey] = &pb
				}
			}
			set["probs"] = probs
			set["level"] = sched.level
			set["iter"] = sched.iter
			sched.phase = 3
			return false, set
		case 3:
			// Moves applied; record the iteration and decide whether to
			// advance level.
			moved := int64(0)
			if v, ok := agg["moved"]; ok {
				moved = v.(int64)
			}
			sched.iterations++
			sched.history = append(sched.history, IterRecord{
				Level: sched.level, Iter: sched.iter, Moved: moved,
				Fanout: float64(sched.ndEntries) / float64(numQ),
			})
			sched.iter++
			frac := float64(moved) / float64(numD)
			// Schedule the incremental plane's escape hatches for the next
			// iteration: a sweep fallback when patching would cost more than
			// a rebroadcast, and a periodic safety-net rebroadcast. Both
			// regimes produce identical bits, so these are pure perf knobs.
			if !opts.DisableIncremental {
				sched.rebuildNext = moved*rebuildFallbackDiv >= int64(numD)
				if opts.RebuildEvery > 0 && sched.iter%opts.RebuildEvery == 0 {
					sched.rebuildNext = true
				}
			}
			if sched.iter >= opts.ItersPerLevel || frac < opts.MinMoveFraction {
				sched.level++
				sched.iter = 0
				// Level start re-registers every vertex, which already forces
				// full gain contributions everywhere. The proposal plane
				// re-registers from scratch too: drop the persistent state.
				sched.rebuildNext = false
				sched.hists = map[uint64]*histPair{}
				sched.weights = map[int32]int64{}
				if sched.level >= levels {
					return true, nil
				}
			}
			sched.phase = 0
			set["level"] = sched.level
			set["iter"] = sched.iter
			return false, set
		default:
			if phase == 0 && sched.rebuildNext {
				// Visible to the queries during the upcoming superstep 1.
				set["rebuild"] = true
				sched.rebuildNext = false
			}
			if phase == 1 {
				if v, ok := agg["fanoutDiff"]; ok {
					sched.ndEntries += v.(int64)
				}
			}
			sched.phase = phase + 1
			set["level"] = sched.level
			set["iter"] = sched.iter
			return false, set
		}
	}

	engOpts := pregel.Options{
		Workers:       opts.Workers,
		Compute:       compute,
		Master:        master,
		MaxSupersteps: maxSupersteps,
		Aggregators: map[string]pregel.AggregatorDef{
			"proposals":  {New: newProposalAgg},
			"weights":    {New: newWeightAgg},
			"moved":      {New: func() pregel.Aggregator { return &pregel.CountAggregator{} }},
			"fanoutDiff": {New: func() pregel.Aggregator { return &pregel.CountAggregator{} }},
		},
		Transport: opts.Transport,
		Codecs:    newRegistry(),
	}
	if !opts.DisableCombining {
		engOpts.Combiner = combine
	}
	if !opts.DisableCheckpointing {
		engOpts.Checkpointer = opts.Checkpointer
		if engOpts.Checkpointer == nil {
			engOpts.Checkpointer = pregel.NewMemoryCheckpointer()
		}
		engOpts.CheckpointEvery = opts.CheckpointEvery
		engOpts.Snapshots = newSnapshotRegistry()
		engOpts.MasterSnapshot = func() []byte { return sched.appendBinary(nil) }
		engOpts.MasterRestore = sched.restoreBinary
	}
	eng, err := pregel.NewEngine(engOpts, vertices)
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}

	assignment := make(partition.Assignment, numD)
	for d := 0; d < numD; d++ {
		st := eng.Vertex(pregel.VertexID(d)).State.(*dataState)
		b := st.bucket
		// The final level's buckets are the result. If the run stopped at
		// level L, bucket ids are already in [0, 2^L) = [0, K).
		assignment[d] = b
	}
	elapsed := time.Since(start) //shp:nondet(wall timing for Result.Elapsed only; never feeds the partition)
	return &Result{
		Assignment: assignment,
		K:          opts.K,
		Levels:     levels,
		Iterations: sched.iterations,
		History:    sched.history,
		Stats:      stats,
		Elapsed:    elapsed,
		TotalTime:  elapsed * time.Duration(opts.Workers),
	}, nil
}

// computeData is the data-vertex program.
func computeData(ctx *pregel.Context, g *hypergraph.Bipartite, st *dataState,
	msgs []pregel.Message, opts Options, tables []core.GainTables) {

	phase := ctx.Superstep() % 4
	level := 0
	if v := ctx.ReadAggregator("level"); v != nil {
		level = v.(int)
	}
	iter := 0
	if v := ctx.ReadAggregator("iter"); v != nil {
		iter = v.(int)
	}
	switch phase {
	case 0:
		if level != st.level {
			// Level start: split my bucket. Level 0: bucket = coin in {0,1};
			// deeper: bucket = 2*old + coin.
			old := st.bucket
			base := int32(0)
			if st.level >= 0 && old >= 0 {
				base = old * 2
			}
			coin := int32(0)
			if rng.CoinAt(opts.Seed^0x51DE, rng.Mix(uint64(level)+1, uint64(st.d))) >= 0.5 {
				coin = 1
			}
			st.bucket = base + coin
			st.level = level
			st.moved = false
			// (Re-)register with all queries.
			for _, q := range g.DataNeighbors(st.d) {
				ctx.Send(pregel.VertexID(g.NumData()+int(q)), msgBucket{Data: st.d, New: st.bucket})
			}
		} else if st.moved || opts.DisableDirtyOnly {
			for _, q := range g.DataNeighbors(st.d) {
				ctx.Send(pregel.VertexID(g.NumData()+int(q)), msgBucket{Data: st.d, New: st.bucket})
			}
			st.moved = false
		}
	case 1:
		// Queries act; data idles.
	case 2:
		// Bring the persistent Equation 1 accumulators up to date and
		// register the gain for moving to the sibling bucket with the master.
		// msgGain means "resum from scratch" (movers and rebroadcast
		// iterations — every adjacent query sent a contribution); msgDelta
		// patches in place. The protocol never mixes the two for one vertex
		// in one superstep.
		//
		// Admissibility gate: no superstep-1 traffic and an unchanged bucket
		// mean the accumulators — and so the gain — are bit-identical to the
		// registered proposal. Stable vertices neither recompute nor ship,
		// so late supersteps cost only the moving frontier on this plane.
		// (The bucket check catches zero-degree movers, whose bucket flips
		// without any message traffic.)
		key := directionKey(st.bucket)
		if len(msgs) == 0 && st.propLevel == level && key == st.propKey {
			return
		}
		tb := tables[level]
		sumCur, sumOth := 0.0, 0.0
		gains, deltas := 0, 0
		for _, m := range msgs {
			switch x := m.(type) {
			case msgGain:
				gains++
				sumCur += x.Cur
				sumOth += x.Oth
			case msgDelta:
				deltas++
				st.applyDelta(tb, x)
			case msgDeltaBatch:
				deltas++
				for _, r := range x {
					st.applyDelta(tb, r)
				}
			}
		}
		if gains > 0 {
			if deltas > 0 {
				//shp:panics(invariant: the superstep schedule never mixes gain and delta planes; a mix means the barrier protocol broke)
				panic(fmt.Sprintf("distshp: vertex %d received %d gain and %d delta messages in one superstep",
					st.d, gains, deltas))
			}
			st.sumCur, st.sumOth = sumCur, sumOth
		}
		st.gain = tb.Mult() * (st.sumCur - st.sumOth)
		if st.propLevel == level {
			if key == st.propKey && st.gain == st.propGain {
				// Recomputed (rebroadcast verification) but unchanged:
				// nothing to ship. Keeps the maintained and full-rebroadcast
				// regimes' aggregate streams identical.
				return
			}
			// Retract the registered proposal; on a bucket change, move the
			// vertex's weight between the buckets' persistent totals.
			ctx.Aggregate("proposals", proposal{key: st.propKey, gain: st.propGain, retract: true})
			if oldB := int32(uint32(st.propKey)); oldB != st.bucket {
				ctx.Aggregate("weights", bucketWeight{bucket: oldB, weight: -int64(g.DataWeight(st.d))})
				ctx.Aggregate("weights", bucketWeight{bucket: st.bucket, weight: int64(g.DataWeight(st.d))})
			}
		} else {
			// First proposal of the level: register the full weight.
			ctx.Aggregate("weights", bucketWeight{bucket: st.bucket, weight: int64(g.DataWeight(st.d))})
		}
		ctx.Aggregate("proposals", proposal{key: key, gain: st.gain})
		st.propKey, st.propGain, st.propLevel = key, st.gain, level
	case 3:
		// Read the master's probabilities and maybe move.
		var probs probsValue
		if v := ctx.ReadAggregator("probs"); v != nil {
			probs = v.(probsValue)
		}
		pt := probs[directionKey(st.bucket)]
		if pt == nil {
			return
		}
		p := pt.ProbFor(st.gain)
		if p <= 0 {
			return
		}
		key := rng.Mix(rng.Mix(uint64(level)+1, uint64(iter)+1), uint64(st.d))
		if p >= 1 || rng.CoinAt(opts.Seed^0x30E5, key) < p {
			st.bucket ^= 1
			st.moved = true
			ctx.Aggregate("moved", int64(1))
		}
	}
}

// directionKey identifies the direction "from bucket b to its sibling".
// Because the pair is (b &^ 1, b | 1), the source bucket id itself is a
// collision-free key, and the opposite direction is key ^ 1.
func directionKey(bucket int32) uint64 {
	return uint64(uint32(bucket))
}

// computeQuery is the query-vertex program: maintain neighbor data
// incrementally (superstep 0's messages, possibly batched by the sender-side
// combiner) and, in superstep 1, bring each member's gain state up to date.
//
// On the incremental plane a dirty query sends a full msgGain contribution
// to each member that moved (it is rebuilding) and canonical (bucket, cOld,
// cNew) delta records to each clean member whose sibling pair contains a
// changed bucket; clean queries send nothing. With the plane disabled — or
// on a master-scheduled rebroadcast iteration — every query sends every
// member its full contribution, exactly the paper's per-iteration r = 2
// neighbor-data reduction.
func computeQuery(ctx *pregel.Context, g *hypergraph.Bipartite, st *queryState,
	msgs []pregel.Message, opts Options, tables []core.GainTables) {

	phase := ctx.Superstep() % 4
	level := 0
	if v := ctx.ReadAggregator("level"); v != nil {
		level = v.(int)
	}
	switch phase {
	case 1:
		full := opts.DisableIncremental
		if v := ctx.ReadAggregator("rebuild"); v != nil && v.(bool) {
			full = true
		}
		members := g.QueryNeighbors(st.q)
		if level != st.level {
			// Level changed: rebuild from the registration messages. Every
			// data vertex re-registers, so every member counts as a mover
			// and receives a full contribution below.
			st.register(level, len(members))
		}
		// Apply the bucket updates. On the incremental path, flag the
		// members that moved and snapshot the pre-superstep segment so the
		// net per-bucket changes can be diffed out afterwards. No map is
		// touched anywhere in this superstep: counts live in the kernel's
		// sorted-slice layout and member lookups are binary searches over
		// the sorted adjacency list.
		track := !full
		for _, m := range msgs {
			switch mb := m.(type) {
			case msgBucket:
				st.applyUpdate(members, mb, track)
			case msgBucketBatch:
				for _, u := range mb {
					st.applyUpdate(members, u, track)
				}
			}
		}
		// Fanout bookkeeping: hand the master the live-entry diff so it can
		// maintain the global average fanout without graph passes. Identical
		// on every path (count maintenance does not depend on the plane).
		if n := int32(len(st.ent)); n != st.prevLen {
			ctx.Aggregate("fanoutDiff", int64(n-st.prevLen))
			st.prevLen = n
		}
		// Send each member its gain-state update. Iterating the adjacency
		// list keeps send order — and with it uncombined floating-point
		// summation order — deterministic; grid-exact sums make the order
		// irrelevant to the result either way.
		tb := tables[level]
		if full {
			for i, d := range members {
				b := st.memberBucket[i]
				if b < 0 {
					continue
				}
				ctx.Send(pregel.VertexID(int(d)), msgGain{Cur: tb.T[core.NDCount(st.ent, b)-1], Oth: tb.T[core.NDCount(st.ent, b^1)]})
			}
			return
		}
		if !st.snapped {
			return // clean query: members' accumulators are already exact
		}
		recs := st.deltaRecords()
		for i, d := range members {
			b := st.memberBucket[i]
			if b < 0 {
				continue
			}
			if st.moved[i] {
				ctx.Send(pregel.VertexID(int(d)), msgGain{Cur: tb.T[core.NDCount(st.ent, b)-1], Oth: tb.T[core.NDCount(st.ent, b^1)]})
				continue
			}
			for _, r := range recs {
				if r.Bucket == b || r.Bucket == b^1 {
					ctx.Send(pregel.VertexID(int(d)), r)
				}
			}
		}
		st.resetSuperstep()
	}
}
