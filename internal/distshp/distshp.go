// Package distshp implements the paper's distributed SHP: recursive
// bisection driven entirely inside the vertex-centric model (Sections 3.2
// and 3.3, Figure 3), running on the pregel engine.
//
// Each refinement iteration is four supersteps with barriers between them:
//
//	superstep 0: data vertices send their (changed) bucket to adjacent
//	             queries, which maintain neighbor data incrementally;
//	superstep 1: queries send each adjacent data vertex the two neighbor-
//	             data entries relevant to its sibling pair (at most r = 2
//	             values, the recursive-partitioning reduction of Sec. 3.3);
//	superstep 2: data vertices compute Equation 1 move gains and propose
//	             (direction, gain) to the master through an aggregator;
//	superstep 3: the master's per-pair histogram matching produces move
//	             probabilities, broadcast via an aggregator; data vertices
//	             flip their coins and move.
//
// Recursive levels are scheduled by the master: when a level converges
// (moved fraction below threshold) or exhausts its iterations, every data
// vertex splits its bucket b into 2b or 2b+1 and the next level begins.
// K must be a power of two (the configuration the paper's distributed
// experiments use).
package distshp

import (
	"errors"
	"fmt"
	"time"

	"shp/internal/core"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/pregel"
	"shp/internal/rng"
)

// Options configures a distributed run.
type Options struct {
	// K is the number of buckets; must be a power of two, >= 2.
	K int
	// Epsilon is the allowed imbalance (default 0.05). Distributed SHP
	// preserves balance in expectation, exactly as the paper's protocol.
	Epsilon float64
	// P is the fanout probability (default 0.5).
	P float64
	// ItersPerLevel bounds refinement iterations per bisection level
	// (default 20, the paper's SHP-2 setting).
	ItersPerLevel int
	// MinMoveFraction advances to the next level early when the moved
	// fraction drops below it (default 0.001).
	MinMoveFraction float64
	// Workers is the number of simulated machines (default 4, the paper's
	// cluster size).
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
	// Transport selects the engine's message-plane backend (nil means the
	// in-process transport; pregel.TCPTransport() ships real frames over
	// loopback sockets). Partitions are transport-invariant for a fixed
	// seed.
	Transport pregel.Transport
	// DisableCombining turns off sender-side message combining (ablation:
	// the combined run moves strictly fewer cross-worker envelopes).
	DisableCombining bool
	// DisableLookahead turns off the final-p-fanout approximation.
	DisableLookahead bool
	// DisableDirtyOnly makes data vertices re-send their bucket to queries
	// every iteration instead of only after moves (ablation of the
	// neighbor-data caching optimization from Section 3.3).
	DisableDirtyOnly bool
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.P == 0 {
		o.P = 0.5
	}
	if o.ItersPerLevel == 0 {
		o.ItersPerLevel = 20
	}
	if o.MinMoveFraction == 0 {
		o.MinMoveFraction = 0.001
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	return o
}

// Result is a finished distributed partitioning.
type Result struct {
	Assignment partition.Assignment
	K          int
	// Levels actually executed (log2 K).
	Levels int
	// Iterations across all levels.
	Iterations int
	// Engine statistics: per-superstep message and byte counts.
	Stats *pregel.Stats
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// TotalTime is Elapsed multiplied by the worker count: the paper's
	// "total time" metric (Figure 5).
	TotalTime time.Duration
}

// message kinds exchanged between vertices.
type (
	// msgBucket: data -> query, "I am now in bucket New". Queries key
	// their incremental neighbor-data maintenance on Data alone (first
	// sight registers, later sights move), so that pair is the entire
	// wire payload.
	msgBucket struct {
		Data int32
		New  int32
	}
	// msgBucketBatch is the sender-side-combined form of msgBucket: all of
	// one worker's bucket updates for one query, shipped as a single
	// envelope (Giraph-style message batching on the count-aggregation
	// superstep).
	msgBucketBatch []msgBucket
	// msgGain: query -> data, the neighbor-data contribution to the
	// receiver's Equation 1 gain, already mapped through the level's gain
	// table. This is the combinable reduction of the paper's r = 2
	// neighbor-data counts (Section 3.3): contributions from different
	// queries simply add, so sender-side combining collapses each worker's
	// per-data traffic to one message.
	msgGain struct {
		Cur, Oth float64 // sum of T[n(current bucket)-1] and T[n(sibling)]
	}
)

// combine is the engine combiner: msgGain adds; msgBucket batches. The
// engine applies it in the per-destination outbox, so both cut the envelope
// count that crosses workers.
func combine(a, b pregel.Message) pregel.Message {
	switch x := a.(type) {
	case msgGain:
		y := b.(msgGain)
		return msgGain{Cur: x.Cur + y.Cur, Oth: x.Oth + y.Oth}
	case msgBucket:
		if y, ok := b.(msgBucket); ok {
			return msgBucketBatch{x, y}
		}
		return append(msgBucketBatch{x}, b.(msgBucketBatch)...)
	case msgBucketBatch:
		if y, ok := b.(msgBucket); ok {
			return append(x, y)
		}
		return append(x, b.(msgBucketBatch)...)
	}
	panic(fmt.Sprintf("distshp: uncombinable message %T", a))
}

// dataState is the per-data-vertex state.
type dataState struct {
	d      int32
	bucket int32 // bucket id within the current level, in [0, 2^(level+1))
	moved  bool  // moved in the previous iteration (drives dirty-only sends)
	level  int
	// Gain for moving to the sibling bucket, computed in superstep 2.
	gain float64
}

// queryState is the per-query-vertex state: the paper's "neighbor data".
type queryState struct {
	q          int32
	level      int
	counts     map[int32]int32 // bucket -> count of adjacent data there
	dataBucket map[int32]int32 // data id -> last known bucket
}

// proposalAgg aggregates per-direction gain histograms for the master.
// Key is direction: bucket*2 + side (side 0 = moving to even sibling).
type proposalAgg struct {
	hists map[uint64]*histPair
}

type histPair struct {
	hist core.DirHist
}

func newProposalAgg() pregel.Aggregator { return &proposalAgg{hists: map[uint64]*histPair{}} }

// Add folds a proposal (key uint64, gain float64) packed in a [2]interface{}.
func (a *proposalAgg) Add(v interface{}) {
	p := v.(proposal)
	h, ok := a.hists[p.key]
	if !ok {
		h = &histPair{}
		a.hists[p.key] = h
	}
	h.hist.Add(p.gain)
}

// Merge folds another proposalAgg in.
func (a *proposalAgg) Merge(o pregel.Aggregator) {
	for key, h := range o.(*proposalAgg).hists {
		if mine, ok := a.hists[key]; ok {
			mine.hist.Merge(&h.hist)
		} else {
			a.hists[key] = h
		}
	}
}

// Value returns the histogram map.
func (a *proposalAgg) Value() interface{} { return a.hists }

type proposal struct {
	key  uint64
	gain float64
}

// weightAgg aggregates per-bucket weights (for the master's ε headroom).
type weightAgg struct{ w map[int32]int64 }

func newWeightAgg() pregel.Aggregator { return &weightAgg{w: map[int32]int64{}} }

// Add folds a (bucket, weight) sample in.
func (a *weightAgg) Add(v interface{}) {
	s := v.(bucketWeight)
	a.w[s.bucket] += s.weight
}

// Merge folds another weightAgg in.
func (a *weightAgg) Merge(o pregel.Aggregator) {
	for b, w := range o.(*weightAgg).w {
		a.w[b] += w
	}
}

// Value returns the weight map.
func (a *weightAgg) Value() interface{} { return a.w }

type bucketWeight struct {
	bucket int32
	weight int64
}

// probsValue is what the master broadcasts: per-direction probability
// tables.
type probsValue map[uint64]*core.ProbTable

// Partition runs distributed SHP-2 on g.
func Partition(g *hypergraph.Bipartite, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.K < 2 || opts.K&(opts.K-1) != 0 {
		return nil, fmt.Errorf("distshp: K must be a power of two >= 2, got %d", opts.K)
	}
	if g.NumData() == 0 {
		return nil, errors.New("distshp: empty graph")
	}
	start := time.Now()

	levels := 0
	for 1<<levels < opts.K {
		levels++
	}
	numD := g.NumData()
	maxN := g.MaxQueryDegree()

	// Gain tables per level (lookahead t halves as levels deepen).
	tables := make([]core.GainTables, levels)
	for l := 0; l < levels; l++ {
		t := 1
		if !opts.DisableLookahead {
			t = opts.K >> (l + 1)
		}
		tables[l] = core.NewPFanoutTables(opts.P, t, maxN)
	}

	// Master-side schedule state.
	type schedule struct {
		level      int
		iter       int
		phase      int // which of the 4 supersteps comes next
		iterations int
	}
	sched := &schedule{}
	idealPerBucket := float64(g.TotalDataWeight()) / float64(opts.K)

	vertices := make([]*pregel.Vertex, 0, numD+g.NumQueries())
	for d := 0; d < numD; d++ {
		vertices = append(vertices, &pregel.Vertex{
			ID:    pregel.VertexID(d),
			State: &dataState{d: int32(d), bucket: -1, level: -1},
		})
	}
	for q := 0; q < g.NumQueries(); q++ {
		vertices = append(vertices, &pregel.Vertex{
			ID: pregel.VertexID(numD + q),
			State: &queryState{
				q:          int32(q),
				level:      -1,
				counts:     map[int32]int32{},
				dataBucket: map[int32]int32{},
			},
		})
	}

	maxSupersteps := levels*opts.ItersPerLevel*4 + 8

	compute := func(ctx *pregel.Context, v *pregel.Vertex, msgs []pregel.Message) {
		switch st := v.State.(type) {
		case *dataState:
			computeData(ctx, g, st, msgs, opts, tables)
		case *queryState:
			computeQuery(ctx, g, st, msgs, tables)
		}
	}

	master := func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
		set := map[string]interface{}{}
		phase := sched.phase
		switch phase {
		case 2:
			// Proposals are in: match histograms pair by pair.
			probs := probsValue{}
			var hists map[uint64]*histPair
			if v, ok := agg["proposals"]; ok {
				hists = v.(map[uint64]*histPair)
			}
			var weights map[int32]int64
			if v, ok := agg["weights"]; ok {
				weights = v.(map[int32]int64)
			}
			eps := opts.Epsilon * float64(sched.level+1) / float64(levels)
			t := opts.K >> (sched.level + 1)
			cap0 := idealPerBucket * float64(t) * (1 + eps)
			var empty histPair
			for key, h := range hists {
				if _, done := probs[key]; done {
					continue
				}
				rkey := key ^ 1 // opposite direction of the same pair
				rh := hists[rkey]
				if rh == nil {
					rh = &empty
				}
				// directionKey(b) == b: the direction "from b to its
				// sibling" is identified by b itself, so direction key
				// receives into bucket key^1 and vice versa.
				dstA := int32(uint32(key ^ 1))
				dstB := int32(uint32(key))
				extraA := int64(0)
				extraB := int64(0)
				if weights != nil {
					if head := cap0 - float64(weights[dstA]); head > 0 {
						extraA = int64(head * 0.9)
					}
					if head := cap0 - float64(weights[dstB]); head > 0 {
						extraB = int64(head * 0.9)
					}
				}
				pa, pb := core.MatchHistograms(&h.hist, &rh.hist, extraA, extraB)
				probs[key] = &pa
				if rh != &empty {
					probs[rkey] = &pb
				}
			}
			set["probs"] = probs
			set["level"] = sched.level
			set["iter"] = sched.iter
			sched.phase = 3
			return false, set
		case 3:
			// Moves applied; decide whether to advance level.
			moved := int64(0)
			if v, ok := agg["moved"]; ok {
				moved = v.(int64)
			}
			sched.iterations++
			sched.iter++
			frac := float64(moved) / float64(numD)
			if sched.iter >= opts.ItersPerLevel || frac < opts.MinMoveFraction {
				sched.level++
				sched.iter = 0
				if sched.level >= levels {
					return true, nil
				}
			}
			sched.phase = 0
			set["level"] = sched.level
			set["iter"] = sched.iter
			return false, set
		default:
			sched.phase = phase + 1
			set["level"] = sched.level
			set["iter"] = sched.iter
			return false, set
		}
	}

	engOpts := pregel.Options{
		Workers:       opts.Workers,
		Compute:       compute,
		Master:        master,
		MaxSupersteps: maxSupersteps,
		Aggregators: map[string]pregel.AggregatorDef{
			"proposals": {New: newProposalAgg},
			"weights":   {New: newWeightAgg},
			"moved":     {New: func() pregel.Aggregator { return &pregel.CountAggregator{} }},
		},
		Transport: opts.Transport,
		Codecs:    newRegistry(),
	}
	if !opts.DisableCombining {
		engOpts.Combiner = combine
	}
	eng, err := pregel.NewEngine(engOpts, vertices)
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}

	assignment := make(partition.Assignment, numD)
	for d := 0; d < numD; d++ {
		st := eng.Vertex(pregel.VertexID(d)).State.(*dataState)
		b := st.bucket
		// The final level's buckets are the result. If the run stopped at
		// level L, bucket ids are already in [0, 2^L) = [0, K).
		assignment[d] = b
	}
	elapsed := time.Since(start)
	return &Result{
		Assignment: assignment,
		K:          opts.K,
		Levels:     levels,
		Iterations: sched.iterations,
		Stats:      stats,
		Elapsed:    elapsed,
		TotalTime:  elapsed * time.Duration(opts.Workers),
	}, nil
}

// computeData is the data-vertex program.
func computeData(ctx *pregel.Context, g *hypergraph.Bipartite, st *dataState,
	msgs []pregel.Message, opts Options, tables []core.GainTables) {

	phase := ctx.Superstep() % 4
	level := 0
	if v := ctx.ReadAggregator("level"); v != nil {
		level = v.(int)
	}
	iter := 0
	if v := ctx.ReadAggregator("iter"); v != nil {
		iter = v.(int)
	}
	switch phase {
	case 0:
		if level != st.level {
			// Level start: split my bucket. Level 0: bucket = coin in {0,1};
			// deeper: bucket = 2*old + coin.
			old := st.bucket
			base := int32(0)
			if st.level >= 0 && old >= 0 {
				base = old * 2
			}
			coin := int32(0)
			if rng.CoinAt(opts.Seed^0x51DE, rng.Mix(uint64(level)+1, uint64(st.d))) >= 0.5 {
				coin = 1
			}
			st.bucket = base + coin
			st.level = level
			st.moved = false
			// (Re-)register with all queries.
			for _, q := range g.DataNeighbors(st.d) {
				ctx.Send(pregel.VertexID(g.NumData()+int(q)), msgBucket{Data: st.d, New: st.bucket})
			}
		} else if st.moved || opts.DisableDirtyOnly {
			for _, q := range g.DataNeighbors(st.d) {
				ctx.Send(pregel.VertexID(g.NumData()+int(q)), msgBucket{Data: st.d, New: st.bucket})
			}
			st.moved = false
		}
	case 1:
		// Queries act; data idles.
	case 2:
		// Receive the (possibly pre-combined) neighbor-data gain
		// contributions and propose the Equation 1 gain for moving to the
		// sibling bucket.
		tb := tables[level]
		sumCur, sumOth := 0.0, 0.0
		for _, m := range msgs {
			gc := m.(msgGain)
			sumCur += gc.Cur
			sumOth += gc.Oth
		}
		st.gain = tb.Mult() * (sumCur - sumOth)
		ctx.Aggregate("proposals", proposal{key: directionKey(st.bucket), gain: st.gain})
		ctx.Aggregate("weights", bucketWeight{bucket: st.bucket, weight: int64(g.DataWeight(st.d))})
	case 3:
		// Read the master's probabilities and maybe move.
		var probs probsValue
		if v := ctx.ReadAggregator("probs"); v != nil {
			probs = v.(probsValue)
		}
		pt := probs[directionKey(st.bucket)]
		if pt == nil {
			return
		}
		p := pt.ProbFor(st.gain)
		if p <= 0 {
			return
		}
		key := rng.Mix(rng.Mix(uint64(level)+1, uint64(iter)+1), uint64(st.d))
		if p >= 1 || rng.CoinAt(opts.Seed^0x30E5, key) < p {
			st.bucket ^= 1
			st.moved = true
			ctx.Aggregate("moved", int64(1))
		}
	}
}

// directionKey identifies the direction "from bucket b to its sibling".
// Because the pair is (b &^ 1, b | 1), the source bucket id itself is a
// collision-free key, and the opposite direction is key ^ 1.
func directionKey(bucket int32) uint64 {
	return uint64(uint32(bucket))
}

// computeQuery is the query-vertex program: maintain neighbor data
// incrementally (superstep 0's messages, possibly batched by the sender-side
// combiner) and distribute each adjacent data vertex's gain contribution —
// its sibling pair's counts mapped through the level's gain table, the
// combinable form of the paper's r = 2 neighbor-data reduction (superstep 1).
func computeQuery(ctx *pregel.Context, g *hypergraph.Bipartite, st *queryState,
	msgs []pregel.Message, tables []core.GainTables) {

	phase := ctx.Superstep() % 4
	level := 0
	if v := ctx.ReadAggregator("level"); v != nil {
		level = v.(int)
	}
	switch phase {
	case 1:
		if level != st.level {
			// Level changed: rebuild from the registration messages.
			st.level = level
			st.counts = map[int32]int32{}
			st.dataBucket = map[int32]int32{}
		}
		apply := func(mb msgBucket) {
			if prev, ok := st.dataBucket[mb.Data]; ok {
				st.counts[prev]--
				if st.counts[prev] == 0 {
					delete(st.counts, prev)
				}
			}
			st.dataBucket[mb.Data] = mb.New
			st.counts[mb.New]++
		}
		for _, m := range msgs {
			switch mb := m.(type) {
			case msgBucket:
				apply(mb)
			case msgBucketBatch:
				for _, u := range mb {
					apply(u)
				}
			}
		}
		// Send each adjacent data vertex its gain contribution. Iterating
		// adjacency (not the dataBucket map) keeps send order — and with it
		// uncombined floating-point summation order — deterministic.
		tb := tables[level]
		for _, d := range g.QueryNeighbors(st.q) {
			b, ok := st.dataBucket[d]
			if !ok {
				continue
			}
			ctx.Send(pregel.VertexID(int(d)), msgGain{Cur: tb.T[st.counts[b]-1], Oth: tb.T[st.counts[b^1]]})
		}
	}
}
