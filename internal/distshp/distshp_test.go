package distshp

import (
	"testing"

	"shp/internal/core"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/pregel"
	"shp/internal/rng"
)

func randomBipartite(tb testing.TB, seed uint64, numQ, numD, edges int) *hypergraph.Bipartite {
	tb.Helper()
	r := rng.New(seed)
	b := hypergraph.NewBuilder(numQ, numD)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(numQ)), int32(r.Intn(numD)))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func plantedGraph(tb testing.TB, communities, perCommunity, queries, qdeg int) *hypergraph.Bipartite {
	tb.Helper()
	r := rng.New(1234)
	nd := communities * perCommunity
	b := hypergraph.NewBuilder(queries, nd)
	for q := 0; q < queries; q++ {
		c := q % communities
		for e := 0; e < qdeg; e++ {
			b.AddEdge(int32(q), int32(c*perCommunity+r.Intn(perCommunity)))
		}
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestPartitionValidAndBalanced(t *testing.T) {
	g := randomBipartite(t, 7, 300, 500, 3000)
	res, err := Partition(g, Options{K: 4, Seed: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Distributed SHP preserves balance in expectation only (like the
	// paper); allow CLT-scale tolerance on this small graph.
	if imb := partition.Imbalance(res.Assignment, 4); imb > 0.30 {
		t.Fatalf("imbalance %v too large even for in-expectation balance", imb)
	}
	if res.Levels != 2 {
		t.Fatalf("Levels = %d, want 2", res.Levels)
	}
	if res.Stats == nil || res.Stats.Supersteps == 0 {
		t.Fatal("missing engine stats")
	}
}

func TestPartitionReducesFanout(t *testing.T) {
	g := plantedGraph(t, 4, 120, 600, 6)
	randomF := partition.Fanout(g, partition.Random(480, 4, 3), 4)
	res, err := Partition(g, Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := partition.Fanout(g, res.Assignment, 4)
	if f >= randomF*0.7 {
		t.Fatalf("distributed SHP fanout %v did not improve enough over random %v on planted communities", f, randomF)
	}
}

func TestMatchesSingleMachineQuality(t *testing.T) {
	// The distributed and single-machine implementations run the same
	// algorithm; their fanout should land in the same ballpark.
	g := plantedGraph(t, 8, 60, 600, 5)
	dres, err := Partition(g, Options{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := core.Partition(g, core.Options{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	df := partition.Fanout(g, dres.Assignment, 8)
	sf := partition.Fanout(g, sres.Assignment, 8)
	if df > sf*1.5+0.5 {
		t.Fatalf("distributed fanout %v much worse than single-machine %v", df, sf)
	}
}

func TestWorkerCountInvariantResult(t *testing.T) {
	g := randomBipartite(t, 11, 200, 300, 1500)
	a, err := Partition(g, Options{K: 4, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{K: 4, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("worker count changed assignment at vertex %d", i)
		}
	}
}

func TestDirtyOnlyReducesMessages(t *testing.T) {
	g := randomBipartite(t, 13, 400, 600, 4000)
	withCaching, err := Partition(g, Options{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	withoutCaching, err := Partition(g, Options{K: 4, Seed: 6, DisableDirtyOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if withCaching.Stats.TotalMessages >= withoutCaching.Stats.TotalMessages {
		t.Fatalf("dirty-only caching did not reduce messages: %d vs %d",
			withCaching.Stats.TotalMessages, withoutCaching.Stats.TotalMessages)
	}
}

func TestCommunicationBoundedByFanoutTimesEdges(t *testing.T) {
	// Section 3.3: superstep 2 sends at most one (pair-sized) ND message
	// per edge per iteration, so total traffic is O(|E|) per iteration.
	g := randomBipartite(t, 17, 300, 400, 2500)
	res, err := Partition(g, Options{K: 2, Seed: 7, ItersPerLevel: 5, DisableDirtyOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	perIter := float64(res.Stats.TotalMessages) / float64(res.Iterations)
	bound := 2.5 * float64(g.NumEdges()) // bucket sends + ND sends + slack
	if perIter > bound {
		t.Fatalf("messages per iteration %v exceed O(|E|) bound %v", perIter, bound)
	}
}

func TestTransportEquivalence(t *testing.T) {
	// The same seed must produce a byte-identical bucket assignment whether
	// messages move in-process or over loopback TCP sockets.
	g := randomBipartite(t, 29, 250, 400, 2000)
	mem, err := Partition(g, Options{K: 4, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Partition(g, Options{K: 4, Seed: 11, Workers: 4, Transport: pregel.TCPTransport()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mem.Assignment {
		if mem.Assignment[i] != tcp.Assignment[i] {
			t.Fatalf("transports disagree at vertex %d: %d vs %d", i, mem.Assignment[i], tcp.Assignment[i])
		}
	}
	if mem.Stats.TotalMessages != tcp.Stats.TotalMessages ||
		mem.Stats.RemoteMessages != tcp.Stats.RemoteMessages {
		t.Fatalf("message accounting differs across transports: %+v vs %+v", mem.Stats, tcp.Stats)
	}
	// TCP bytes come from encoded frames on the wire, not an estimate.
	if tcp.Stats.TotalBytes == 0 {
		t.Fatal("TCP run measured zero wire bytes")
	}
	if tcp.Stats.TotalBytes == mem.Stats.TotalBytes {
		t.Fatal("TCP bytes should be framed wire truth, not the in-process size accounting")
	}
}

func TestCombinerReducesCrossWorkerTraffic(t *testing.T) {
	// Sender-side combining must strictly reduce the envelopes (and bytes)
	// crossing workers while leaving partition quality in the same place:
	// the move protocol is unchanged, only float summation order differs.
	g := plantedGraph(t, 4, 150, 700, 6)
	combined, err := Partition(g, Options{K: 4, Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Partition(g, Options{K: 4, Seed: 13, Workers: 4, DisableCombining: true})
	if err != nil {
		t.Fatal(err)
	}
	if combined.Stats.RemoteMessages >= plain.Stats.RemoteMessages {
		t.Fatalf("combining did not reduce cross-worker messages: %d vs %d",
			combined.Stats.RemoteMessages, plain.Stats.RemoteMessages)
	}
	if combined.Stats.TotalBytes >= plain.Stats.TotalBytes {
		t.Fatalf("combining did not reduce bytes: %d vs %d",
			combined.Stats.TotalBytes, plain.Stats.TotalBytes)
	}
	cf := partition.Fanout(g, combined.Assignment, 4)
	pf := partition.Fanout(g, plain.Assignment, 4)
	if cf > pf*1.05+0.05 {
		t.Fatalf("combined fanout %v much worse than uncombined %v", cf, pf)
	}
	if err := combined.Assignment.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestCombinerInvariantOnSingleWorker(t *testing.T) {
	// With one worker every message is local and sender-side combining
	// collapses each data vertex's gain traffic to a single envelope whose
	// sum order matches the uncombined delivery order exactly, so the
	// partitions must be identical, not merely close.
	g := randomBipartite(t, 31, 200, 300, 1500)
	combined, err := Partition(g, Options{K: 4, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Partition(g, Options{K: 4, Seed: 17, Workers: 1, DisableCombining: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range combined.Assignment {
		if combined.Assignment[i] != plain.Assignment[i] {
			t.Fatalf("combining changed the partition at vertex %d", i)
		}
	}
	if combined.Stats.TotalMessages >= plain.Stats.TotalMessages {
		t.Fatalf("combining did not reduce envelopes: %d vs %d",
			combined.Stats.TotalMessages, plain.Stats.TotalMessages)
	}
}

func TestInvalidOptions(t *testing.T) {
	g := randomBipartite(t, 1, 10, 10, 30)
	for _, k := range []int{0, 1, 3, 6, 100} {
		if _, err := Partition(g, Options{K: k}); err == nil {
			t.Errorf("K=%d should be rejected (not a power of two >= 2)", k)
		}
	}
	empty, _ := hypergraph.FromEdges(0, 0, nil)
	if _, err := Partition(empty, Options{K: 2}); err == nil {
		t.Error("empty graph should be rejected")
	}
}

func TestTotalTimeScalesWithWorkers(t *testing.T) {
	g := randomBipartite(t, 19, 100, 150, 800)
	res, err := Partition(g, Options{K: 2, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != res.Elapsed*4 {
		t.Fatalf("TotalTime %v != Elapsed %v * 4", res.TotalTime, res.Elapsed)
	}
}

func TestLargeK(t *testing.T) {
	g := randomBipartite(t, 23, 500, 1024, 4000)
	res, err := Partition(g, Options{K: 32, Seed: 9, ItersPerLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(32); err != nil {
		t.Fatal(err)
	}
	sizes := partition.BucketSizes(res.Assignment, 32)
	empties := 0
	for _, s := range sizes {
		if s == 0 {
			empties++
		}
	}
	if empties > 3 {
		t.Fatalf("%d of 32 buckets empty", empties)
	}
}
