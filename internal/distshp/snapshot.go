package distshp

// Snapshot codecs for the fault-tolerance plane: everything a distributed
// run holds across a superstep barrier — per-vertex dataState/queryState
// (including the persistent dyadic-grid accumulators), the aggregated
// values the master broadcast (probability tables, level/iter counters),
// and the master's own schedule closure (persistent DirHist histograms,
// bucket weights, iteration history) — encodes through these, so a recovery
// resumes the *incremental* protocol exactly where the checkpoint left it:
// no rebroadcast, no resummation, byte-identical continuation.
//
// Every encoding here is canonical (map keys sorted, struct fields in
// declaration order), so equal states produce byte-identical snapshots —
// the property FuzzCheckpointCodec and the restore-equality tests pin.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"shp/internal/core"
	"shp/internal/pregel"
)

// schedule is the master's cross-superstep state. It lives outside the
// aggregator plane (a closure over Partition's master function), so recovery
// needs its own snapshot/restore: rolling back vertices without rolling back
// the persistent histograms would desynchronize the proposal plane.
type schedule struct {
	level      int
	iter       int
	phase      int // which of the 4 supersteps comes next
	iterations int
	// rebuildNext schedules a full superstep-1 gain rebroadcast for the
	// next iteration (sweep fallback / safety net of the incremental
	// plane).
	rebuildNext bool
	// ndEntries is the global live-entry total of the query histograms,
	// maintained from per-query diffs; /numQ is the average fanout.
	ndEntries int64
	// hists and weights are the persistent proposal-plane state: per-
	// direction gain histograms and per-bucket weight totals, maintained
	// from the vertices' assert/retract deltas each proposal superstep
	// and reset at level start (where every vertex re-registers).
	hists   map[uint64]*histPair
	weights map[int32]int64
	history []IterRecord
}

// appendBinary encodes the schedule canonically onto buf.
func (s *schedule) appendBinary(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(s.level))
	buf = binary.AppendVarint(buf, int64(s.iter))
	buf = binary.AppendVarint(buf, int64(s.phase))
	buf = binary.AppendVarint(buf, int64(s.iterations))
	if s.rebuildNext {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, s.ndEntries)
	buf = appendHistMap(buf, s.hists)
	buf = appendWeightMap(buf, s.weights)
	buf = binary.AppendUvarint(buf, uint64(len(s.history)))
	for _, rec := range s.history {
		buf = binary.AppendVarint(buf, int64(rec.Level))
		buf = binary.AppendVarint(buf, int64(rec.Iter))
		buf = binary.AppendVarint(buf, rec.Moved)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Fanout))
	}
	return buf
}

// restoreBinary replaces the schedule's state with a decoded snapshot. The
// maps are rebuilt fresh — the master adopts histPair pointers out of
// aggregator values, so restored state must never alias a live aggregate.
func (s *schedule) restoreBinary(data []byte) error {
	d := &decoder{data: data}
	s.level = int(d.varint())
	s.iter = int(d.varint())
	s.phase = int(d.varint())
	s.iterations = int(d.varint())
	s.rebuildNext = d.byte() != 0
	s.ndEntries = d.varint()
	s.hists = d.histMap()
	s.weights = d.weightMap()
	n := d.uvarint()
	if n > uint64(len(d.data)) { // each record is >= 11 bytes
		return fmt.Errorf("distshp: schedule snapshot: history count %d exceeds payload", n)
	}
	s.history = make([]IterRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := IterRecord{
			Level: int(d.varint()),
			Iter:  int(d.varint()),
			Moved: d.varint(),
		}
		rec.Fanout = math.Float64frombits(d.u64())
		s.history = append(s.history, rec)
	}
	if d.err != nil {
		return fmt.Errorf("distshp: schedule snapshot: %w", d.err)
	}
	if len(d.data) != 0 {
		return fmt.Errorf("distshp: schedule snapshot: %d trailing bytes", len(d.data))
	}
	return nil
}

// decoder is a cursor over snapshot bytes with sticky error handling, so
// decode paths read linearly instead of threading errors through every call.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.fail("truncated byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

func (d *decoder) histMap() map[uint64]*histPair {
	n := d.uvarint()
	if n > uint64(len(d.data)) { // each entry is >= 2 bytes
		d.fail("histogram map count exceeds payload")
		return nil
	}
	m := make(map[uint64]*histPair, n)
	for i := uint64(0); i < n; i++ {
		key := d.uvarint()
		if d.err != nil {
			return m
		}
		h, used, err := core.DecodeDirHist(d.data)
		if err != nil {
			d.err = err
			return m
		}
		d.data = d.data[used:]
		m[key] = &histPair{hist: h}
	}
	return m
}

func (d *decoder) weightMap() map[int32]int64 {
	n := d.uvarint()
	if n > uint64(len(d.data)) { // each entry is >= 2 bytes
		d.fail("weight map count exceeds payload")
		return nil
	}
	m := make(map[int32]int64, n)
	for i := uint64(0); i < n; i++ {
		b := int32(d.varint())
		m[b] = d.varint()
	}
	return m
}

func appendHistMap(buf []byte, m map[uint64]*histPair) []byte {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, k)
		buf = m[k].hist.AppendBinary(buf)
	}
	return buf
}

func appendWeightMap(buf []byte, m map[int32]int64) []byte {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for _, k := range keys {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, m[k])
	}
	return buf
}

// --- vertex-state codecs ---

type dataStateCodec struct{}

func (dataStateCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	st := m.(*dataState)
	buf = binary.AppendVarint(buf, int64(st.d))
	buf = binary.AppendVarint(buf, int64(st.bucket))
	if st.moved {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(st.level))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.sumCur))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.sumOth))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.gain))
	buf = binary.AppendUvarint(buf, st.propKey)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.propGain))
	buf = binary.AppendVarint(buf, int64(st.propLevel))
	return buf, nil
}

func (dataStateCodec) Decode(data []byte) (pregel.Message, int, error) {
	d := &decoder{data: data}
	st := &dataState{}
	st.d = int32(d.varint())
	st.bucket = int32(d.varint())
	st.moved = d.byte() != 0
	st.level = int(d.varint())
	st.sumCur = math.Float64frombits(d.u64())
	st.sumOth = math.Float64frombits(d.u64())
	st.gain = math.Float64frombits(d.u64())
	st.propKey = d.uvarint()
	st.propGain = math.Float64frombits(d.u64())
	st.propLevel = int(d.varint())
	if d.err != nil {
		return nil, 0, fmt.Errorf("distshp: dataState snapshot: %w", d.err)
	}
	return st, len(data) - len(d.data), nil
}

func (c dataStateCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

type queryStateCodec struct{}

// Append encodes the query's durable state. The per-superstep scratch
// (snapshot segment, mover flags, diff buffers) is logically empty at every
// barrier — resetSuperstep runs before the superstep ends on every path — so
// it is omitted and reallocated on restore.
func (queryStateCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	st := m.(*queryState)
	buf = binary.AppendVarint(buf, int64(st.q))
	buf = binary.AppendVarint(buf, int64(st.level))
	buf = binary.AppendUvarint(buf, uint64(len(st.ent)))
	for _, e := range st.ent {
		buf = binary.AppendVarint(buf, int64(e.B))
		buf = binary.AppendVarint(buf, int64(e.C))
	}
	// memberBucket nil (never registered) and empty (registered, zero
	// degree) differ: register() only allocates when nil.
	if st.memberBucket == nil {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(st.memberBucket))+1)
		for _, b := range st.memberBucket {
			buf = binary.AppendVarint(buf, int64(b))
		}
	}
	buf = binary.AppendVarint(buf, int64(st.prevLen))
	return buf, nil
}

func (queryStateCodec) Decode(data []byte) (pregel.Message, int, error) {
	d := &decoder{data: data}
	st := &queryState{}
	st.q = int32(d.varint())
	st.level = int(d.varint())
	nEnt := d.uvarint()
	if nEnt > uint64(len(d.data)) { // each entry is >= 2 bytes
		d.fail("neighbor-data count exceeds payload")
	}
	if d.err == nil && nEnt > 0 {
		st.ent = make([]core.NDEntry, 0, nEnt)
		for i := uint64(0); i < nEnt; i++ {
			st.ent = append(st.ent, core.NDEntry{B: int32(d.varint()), C: int32(d.varint())})
		}
	}
	nMB := d.uvarint()
	if nMB > uint64(len(d.data))+1 { // each member bucket is >= 1 byte
		d.fail("member registry count exceeds payload")
	}
	if d.err == nil && nMB > 0 {
		degree := int(nMB - 1)
		st.memberBucket = make([]int32, degree)
		for i := 0; i < degree; i++ {
			st.memberBucket[i] = int32(d.varint())
		}
		// applyUpdate indexes moved by member position whenever the
		// registry exists, so it must be re-allocated alongside.
		st.moved = make([]bool, degree)
	}
	st.prevLen = int32(d.varint())
	if d.err != nil {
		return nil, 0, fmt.Errorf("distshp: queryState snapshot: %w", d.err)
	}
	return st, len(data) - len(d.data), nil
}

func (c queryStateCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

// --- aggregated-value codecs ---

type intCodec struct{}

func (intCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	return binary.AppendVarint(buf, int64(m.(int))), nil
}

func (intCodec) Decode(data []byte) (pregel.Message, int, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("distshp: truncated int")
	}
	return int(v), n, nil
}

func (c intCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

type boolCodec struct{}

func (boolCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	if m.(bool) {
		return append(buf, 1), nil
	}
	return append(buf, 0), nil
}

func (boolCodec) Decode(data []byte) (pregel.Message, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("distshp: truncated bool")
	}
	return data[0] != 0, 1, nil
}

func (boolCodec) Size(pregel.Message) int { return 1 }

type probsCodec struct{}

func (probsCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	probs := m.(probsValue)
	keys := make([]uint64, 0, len(probs))
	for k := range probs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, k)
		buf = probs[k].AppendBinary(buf)
	}
	return buf, nil
}

func (probsCodec) Decode(data []byte) (pregel.Message, int, error) {
	d := &decoder{data: data}
	n := d.uvarint()
	if n > uint64(len(d.data)) { // each entry is >= 2 bytes
		return nil, 0, fmt.Errorf("distshp: probs snapshot: count %d exceeds payload", n)
	}
	probs := make(probsValue, n)
	for i := uint64(0); i < n; i++ {
		key := d.uvarint()
		if d.err != nil {
			break
		}
		pt, used, err := core.DecodeProbTable(d.data)
		if err != nil {
			return nil, 0, fmt.Errorf("distshp: probs snapshot: %w", err)
		}
		d.data = d.data[used:]
		probs[key] = &pt
	}
	if d.err != nil {
		return nil, 0, fmt.Errorf("distshp: probs snapshot: %w", d.err)
	}
	return probs, len(data) - len(d.data), nil
}

func (c probsCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

type histMapCodec struct{}

func (histMapCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	return appendHistMap(buf, m.(map[uint64]*histPair)), nil
}

func (histMapCodec) Decode(data []byte) (pregel.Message, int, error) {
	d := &decoder{data: data}
	m := d.histMap()
	if d.err != nil {
		return nil, 0, fmt.Errorf("distshp: histogram snapshot: %w", d.err)
	}
	return m, len(data) - len(d.data), nil
}

func (c histMapCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

type weightMapCodec struct{}

func (weightMapCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	return appendWeightMap(buf, m.(map[int32]int64)), nil
}

func (weightMapCodec) Decode(data []byte) (pregel.Message, int, error) {
	d := &decoder{data: data}
	m := d.weightMap()
	if d.err != nil {
		return nil, 0, fmt.Errorf("distshp: weight snapshot: %w", d.err)
	}
	return m, len(data) - len(d.data), nil
}

func (c weightMapCodec) Size(m pregel.Message) int {
	buf, _ := c.Append(nil, m)
	return len(buf)
}

// newSnapshotRegistry builds the checkpoint codec registry: every vertex
// state and every value that can appear in the engine's aggregated map at a
// barrier (merged aggregator outputs and master-set broadcasts). A type
// missing here fails the checkpoint loudly instead of dropping state.
func newSnapshotRegistry() *pregel.Registry {
	reg := pregel.NewRegistry()
	reg.Register(&dataState{}, dataStateCodec{})
	reg.Register(&queryState{}, queryStateCodec{})
	reg.Register(int(0), intCodec{})                        // "level", "iter"
	reg.Register(false, boolCodec{})                        // "rebuild"
	reg.Register(int64(0), pregel.Int64Codec{})             // "moved", "fanoutDiff"
	reg.Register(probsValue(nil), probsCodec{})             // "probs"
	reg.Register(map[uint64]*histPair(nil), histMapCodec{}) // "proposals"
	reg.Register(map[int32]int64(nil), weightMapCodec{})    // "weights"
	return reg
}
