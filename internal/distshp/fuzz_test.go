package distshp

// Fuzzers for the delta-message wire codecs: whatever bytes arrive, Decode
// must either reject the frame (truncation) or produce a value that
// round-trips stably through Append/Size. `go test` runs the seed corpus,
// so these double as regression tests in CI.

import (
	"bytes"
	"reflect"
	"testing"

	"shp/internal/core"
	"shp/internal/pregel"
)

func FuzzDeltaCodec(f *testing.F) {
	f.Add(appendDelta(nil, msgDelta{Bucket: 2, COld: 3, CNew: 4}))
	f.Add(appendDelta(nil, msgDelta{Bucket: -1, COld: 0, CNew: 1}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := (deltaCodec{}).Decode(data)
		if err != nil {
			if len(data) >= deltaWireSize {
				t.Fatalf("rejected a full-size frame: %v", err)
			}
			return
		}
		if len(data) < deltaWireSize {
			t.Fatalf("accepted a truncated frame of %d bytes", len(data))
		}
		if used != deltaWireSize {
			t.Fatalf("consumed %d bytes, want %d", used, deltaWireSize)
		}
		// The fixed little-endian encoding is canonical: re-encoding the
		// decoded record must reproduce the consumed bytes exactly.
		re, err := (deltaCodec{}).Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, data[:used]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:used])
		}
		if (deltaCodec{}).Size(m) != len(re) {
			t.Fatalf("Size %d != encoded %d", (deltaCodec{}).Size(m), len(re))
		}
	})
}

// FuzzCheckpointCodec drives the checkpoint vertex-state codecs with
// arbitrary bytes: Decode must reject hostile input without panicking or
// over-allocating, and any accepted value must round-trip stably through
// Append/Decode (raw bytes may use overlong varints, so the comparison is
// value-level, like FuzzDeltaBatchCodec).
func FuzzCheckpointCodec(f *testing.F) {
	ds, _ := (dataStateCodec{}).Append(nil, &dataState{
		d: 7, bucket: 3, moved: true, level: 2,
		sumCur: 1.5, sumOth: -0.25, gain: 0.125,
		propKey: 11, propGain: 0.5, propLevel: 2,
	})
	qsReg, _ := (queryStateCodec{}).Append(nil, &queryState{
		q: 4, level: 1,
		ent:          []core.NDEntry{{B: 0, C: 2}, {B: 3, C: 1}},
		memberBucket: []int32{0, 3, 3},
		prevLen:      2,
	})
	qsNil, _ := (queryStateCodec{}).Append(nil, &queryState{q: 9, memberBucket: nil})
	f.Add(true, ds)
	f.Add(false, qsReg)
	f.Add(false, qsNil)
	f.Add(true, []byte{})
	f.Add(false, []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd count
	f.Fuzz(func(t *testing.T, isData bool, data []byte) {
		var codec pregel.Codec
		if isData {
			codec = dataStateCodec{}
		} else {
			codec = queryStateCodec{}
		}
		m, used, err := codec.Decode(data)
		if err != nil {
			return // rejected; nothing to check beyond not panicking
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		re, err := codec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if codec.Size(m) != len(re) {
			t.Fatalf("Size %d != encoded %d", codec.Size(m), len(re))
		}
		m2, used2, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if used2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", used2, len(re))
		}
		// Compare encodings, not values: floats may carry NaN payloads that
		// defeat DeepEqual while round-tripping bit-exactly.
		re2, err := codec.Append(nil, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re2, re) {
			t.Fatalf("unstable canonical encoding: %x vs %x", re2, re)
		}
	})
}

func FuzzDeltaBatchCodec(f *testing.F) {
	one, _ := (deltaBatchCodec{}).Append(nil, msgDeltaBatch{{Bucket: 2, COld: 0, CNew: 1}})
	three, _ := (deltaBatchCodec{}).Append(nil, msgDeltaBatch{
		{Bucket: 2, COld: 3, CNew: 4},
		{Bucket: 3, COld: 1, CNew: 0},
		{Bucket: 0, COld: 0, CNew: 9},
	})
	empty, _ := (deltaBatchCodec{}).Append(nil, msgDeltaBatch{})
	f.Add(one)
	f.Add(three)
	f.Add(empty)
	f.Add(one[:len(one)-1])                                       // truncated last record
	f.Add([]byte{200})                                            // truncated uvarint count
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd count
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := (deltaBatchCodec{}).Decode(data)
		if err != nil {
			return // rejected; nothing to check beyond not panicking
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		batch := m.(msgDeltaBatch)
		// Value round trip: the count uvarint may arrive in a non-canonical
		// overlong form, so compare decoded values, not raw bytes.
		re, err := (deltaBatchCodec{}).Append(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		if (deltaBatchCodec{}).Size(batch) != len(re) {
			t.Fatalf("Size %d != encoded %d", (deltaBatchCodec{}).Size(batch), len(re))
		}
		m2, used2, err := (deltaBatchCodec{}).Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if used2 != len(re) || !reflect.DeepEqual(m2, m) {
			t.Fatalf("unstable round trip: %+v vs %+v", m2, m)
		}
	})
}

func FuzzBucketCodec(f *testing.F) {
	f.Add(appendBucket(nil, msgBucket{Data: 7, New: 3}))
	f.Add(appendBucket(nil, msgBucket{Data: 0, New: -1}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := (bucketCodec{}).Decode(data)
		if err != nil {
			if len(data) >= bucketWireSize {
				t.Fatalf("rejected a full-size frame: %v", err)
			}
			return
		}
		if len(data) < bucketWireSize {
			t.Fatalf("accepted a truncated frame of %d bytes", len(data))
		}
		if used != bucketWireSize {
			t.Fatalf("consumed %d bytes, want %d", used, bucketWireSize)
		}
		re, err := (bucketCodec{}).Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, data[:used]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:used])
		}
		if (bucketCodec{}).Size(m) != len(re) {
			t.Fatalf("Size %d != encoded %d", (bucketCodec{}).Size(m), len(re))
		}
	})
}

func FuzzBucketBatchCodec(f *testing.F) {
	one, _ := (bucketBatchCodec{}).Append(nil, msgBucketBatch{{Data: 2, New: 1}})
	three, _ := (bucketBatchCodec{}).Append(nil, msgBucketBatch{
		{Data: 2, New: 3},
		{Data: 9, New: 0},
		{Data: 0, New: 7},
	})
	empty, _ := (bucketBatchCodec{}).Append(nil, msgBucketBatch{})
	f.Add(one)
	f.Add(three)
	f.Add(empty)
	f.Add(one[:len(one)-1])                                       // truncated last record
	f.Add([]byte{200})                                            // truncated uvarint count
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd count
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := (bucketBatchCodec{}).Decode(data)
		if err != nil {
			return // rejected; nothing to check beyond not panicking
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		batch := m.(msgBucketBatch)
		// Value round trip: the count uvarint may arrive overlong, so
		// compare decoded values, not raw bytes.
		re, err := (bucketBatchCodec{}).Append(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		if (bucketBatchCodec{}).Size(batch) != len(re) {
			t.Fatalf("Size %d != encoded %d", (bucketBatchCodec{}).Size(batch), len(re))
		}
		m2, used2, err := (bucketBatchCodec{}).Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if used2 != len(re) || !reflect.DeepEqual(m2, m) {
			t.Fatalf("unstable round trip: %+v vs %+v", m2, m)
		}
	})
}

func FuzzGainCodec(f *testing.F) {
	full, _ := (gainCodec{}).Append(nil, msgGain{Cur: 1.5, Oth: -0.25})
	f.Add(full)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := (gainCodec{}).Decode(data)
		if err != nil {
			if len(data) >= 16 {
				t.Fatalf("rejected a full-size frame: %v", err)
			}
			return
		}
		if len(data) < 16 {
			t.Fatalf("accepted a truncated frame of %d bytes", len(data))
		}
		if used != 16 {
			t.Fatalf("consumed %d bytes, want 16", used)
		}
		// Raw IEEE bits both ways: even NaN payloads must survive exactly.
		re, err := (gainCodec{}).Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, data[:used]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:used])
		}
	})
}

// FuzzSnapshotValueCodecs drives every aggregated-value codec the checkpoint
// registry (newSnapshotRegistry) carries besides the vertex states: hostile
// bytes must be rejected or produce a value whose canonical encoding is
// stable through a second Decode/Append round.
func FuzzSnapshotValueCodecs(f *testing.F) {
	codecs := []pregel.Codec{
		intCodec{}, boolCodec{}, pregel.Int64Codec{},
		probsCodec{}, histMapCodec{}, weightMapCodec{},
	}
	iv, _ := (intCodec{}).Append(nil, int(-7))
	bv, _ := (boolCodec{}).Append(nil, true)
	lv, _ := (pregel.Int64Codec{}).Append(nil, int64(1<<40))
	pv, _ := (probsCodec{}).Append(nil, probsValue{3: &core.ProbTable{}})
	hp := &histPair{}
	hp.hist.Add(0.5)
	hv, _ := (histMapCodec{}).Append(nil, map[uint64]*histPair{5: hp})
	wv, _ := (weightMapCodec{}).Append(nil, map[int32]int64{1: 42, -2: 7})
	f.Add(0, iv)
	f.Add(1, bv)
	f.Add(2, lv)
	f.Add(3, pv)
	f.Add(4, hv)
	f.Add(5, wv)
	f.Add(3, []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd count
	f.Add(4, []byte{200})                                            // truncated uvarint
	f.Fuzz(func(t *testing.T, which int, data []byte) {
		codec := codecs[((which%len(codecs))+len(codecs))%len(codecs)]
		m, used, err := codec.Decode(data)
		if err != nil {
			return // rejected; nothing to check beyond not panicking
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		re, err := codec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if codec.Size(m) != len(re) {
			t.Fatalf("Size %d != encoded %d", codec.Size(m), len(re))
		}
		m2, used2, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if used2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", used2, len(re))
		}
		re2, err := codec.Append(nil, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re2, re) {
			t.Fatalf("unstable canonical encoding: %x vs %x", re2, re)
		}
	})
}
