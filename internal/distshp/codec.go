package distshp

// Binary codecs for the distshp wire messages. These replace per-message
// interface{} boxing at worker boundaries with flat encodings, so the
// engine's BytesSent is measured from real encoded bytes on every backend
// (and frames on the TCP transport carry exactly these encodings).

import (
	"encoding/binary"
	"fmt"
	"math"

	"shp/internal/pregel"
)

// bucketWireSize is msgBucket's fixed encoding: Data and New as
// little-endian uint32s.
const bucketWireSize = 8

func appendBucket(buf []byte, m msgBucket) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Data))
	return binary.LittleEndian.AppendUint32(buf, uint32(m.New))
}

func decodeBucket(data []byte) (msgBucket, error) {
	if len(data) < bucketWireSize {
		return msgBucket{}, fmt.Errorf("distshp: truncated msgBucket")
	}
	return msgBucket{
		Data: int32(binary.LittleEndian.Uint32(data[0:4])),
		New:  int32(binary.LittleEndian.Uint32(data[4:8])),
	}, nil
}

type bucketCodec struct{}

func (bucketCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	return appendBucket(buf, m.(msgBucket)), nil
}

func (bucketCodec) Decode(data []byte) (pregel.Message, int, error) {
	m, err := decodeBucket(data)
	return m, bucketWireSize, err
}

func (bucketCodec) Size(pregel.Message) int { return bucketWireSize }

type bucketBatchCodec struct{}

func (bucketBatchCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	batch := m.(msgBucketBatch)
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for _, u := range batch {
		buf = appendBucket(buf, u)
	}
	return buf, nil
}

func (bucketBatchCodec) Decode(data []byte) (pregel.Message, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, 0, fmt.Errorf("distshp: truncated msgBucketBatch count")
	}
	if n > uint64(len(data)/bucketWireSize)+1 {
		return nil, 0, fmt.Errorf("distshp: msgBucketBatch count %d exceeds payload", n)
	}
	batch := make(msgBucketBatch, 0, n)
	for i := uint64(0); i < n; i++ {
		u, err := decodeBucket(data[used:])
		if err != nil {
			return nil, 0, err
		}
		used += bucketWireSize
		batch = append(batch, u)
	}
	return batch, used, nil
}

func (bucketBatchCodec) Size(m pregel.Message) int {
	batch := m.(msgBucketBatch)
	n := 1
	for v := uint64(len(batch)); v >= 0x80; v >>= 7 {
		n++
	}
	return n + len(batch)*bucketWireSize
}

// deltaWireSize is msgDelta's fixed encoding: Bucket, COld, and CNew as
// little-endian uint32s. Receivers patch by table-value differences alone,
// so no query id travels with the record — a quarter of every
// late-iteration gain superstep's bytes saved relative to the earlier
// 16-byte encoding.
const deltaWireSize = 12

func appendDelta(buf []byte, m msgDelta) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Bucket))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.COld))
	return binary.LittleEndian.AppendUint32(buf, uint32(m.CNew))
}

func decodeDelta(data []byte) (msgDelta, error) {
	if len(data) < deltaWireSize {
		return msgDelta{}, fmt.Errorf("distshp: truncated msgDelta")
	}
	return msgDelta{
		Bucket: int32(binary.LittleEndian.Uint32(data[0:4])),
		COld:   int32(binary.LittleEndian.Uint32(data[4:8])),
		CNew:   int32(binary.LittleEndian.Uint32(data[8:12])),
	}, nil
}

type deltaCodec struct{}

func (deltaCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	return appendDelta(buf, m.(msgDelta)), nil
}

func (deltaCodec) Decode(data []byte) (pregel.Message, int, error) {
	m, err := decodeDelta(data)
	return m, deltaWireSize, err
}

func (deltaCodec) Size(pregel.Message) int { return deltaWireSize }

type deltaBatchCodec struct{}

func (deltaBatchCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	batch := m.(msgDeltaBatch)
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for _, r := range batch {
		buf = appendDelta(buf, r)
	}
	return buf, nil
}

func (deltaBatchCodec) Decode(data []byte) (pregel.Message, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, 0, fmt.Errorf("distshp: truncated msgDeltaBatch count")
	}
	if n > uint64(len(data)/deltaWireSize)+1 {
		return nil, 0, fmt.Errorf("distshp: msgDeltaBatch count %d exceeds payload", n)
	}
	batch := make(msgDeltaBatch, 0, n)
	for i := uint64(0); i < n; i++ {
		r, err := decodeDelta(data[used:])
		if err != nil {
			return nil, 0, err
		}
		used += deltaWireSize
		batch = append(batch, r)
	}
	return batch, used, nil
}

func (deltaBatchCodec) Size(m pregel.Message) int {
	batch := m.(msgDeltaBatch)
	n := 1
	for v := uint64(len(batch)); v >= 0x80; v >>= 7 {
		n++
	}
	return n + len(batch)*deltaWireSize
}

type gainCodec struct{}

func (gainCodec) Append(buf []byte, m pregel.Message) ([]byte, error) {
	g := m.(msgGain)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.Cur))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.Oth)), nil
}

func (gainCodec) Decode(data []byte) (pregel.Message, int, error) {
	if len(data) < 16 {
		return nil, 0, fmt.Errorf("distshp: truncated msgGain")
	}
	return msgGain{
		Cur: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
		Oth: math.Float64frombits(binary.LittleEndian.Uint64(data[8:16])),
	}, 16, nil
}

func (gainCodec) Size(pregel.Message) int { return 16 }

// newRegistry builds the codec registry every distributed run hands to the
// engine. Registration order fixes wire ids, so this is the single place
// the order is defined.
func newRegistry() *pregel.Registry {
	reg := pregel.NewRegistry()
	reg.Register(msgBucket{}, bucketCodec{})
	reg.Register(msgBucketBatch(nil), bucketBatchCodec{})
	reg.Register(msgGain{}, gainCodec{})
	reg.Register(msgDelta{}, deltaCodec{})
	reg.Register(msgDeltaBatch(nil), deltaBatchCodec{})
	return reg
}
