package distshp

// Tests of the incremental (dirty-query delta) message plane: pinned
// equivalence against the full-rebroadcast path, patched-vs-rebuilt
// accumulator properties through real codec round-trips, and the
// churn-proportional traffic claim itself.

import (
	"reflect"
	"testing"

	"shp/internal/core"
	"shp/internal/pregel"
	"shp/internal/rng"
)

// requireSameResult pins two runs byte-identical: assignments, iteration
// counts, and the full per-iteration history including bitwise fanout.
func requireSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("%s: assignments differ at vertex %d: %d vs %d", label, i, a.Assignment[i], b.Assignment[i])
		}
	}
	if a.Levels != b.Levels || a.Iterations != b.Iterations {
		t.Fatalf("%s: schedule differs: %d levels/%d iters vs %d/%d",
			label, a.Levels, a.Iterations, b.Levels, b.Iterations)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history length %d vs %d", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		// Fanout is compared bitwise: the live-entry accounting must agree
		// exactly, not approximately, between the two planes.
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: history[%d] differs: %+v vs %+v", label, i, a.History[i], b.History[i])
		}
	}
}

// TestDistIncrementalMatchesFull pins the dirty-query delta plane
// byte-identical to the full-rebroadcast path (DisableIncremental) across
// both transports and multiple seeds: same assignments, same per-iteration
// moved counts, bitwise-equal fanout history.
func TestDistIncrementalMatchesFull(t *testing.T) {
	numQ, numD, edges := 300, 450, 2600
	if testing.Short() {
		numQ, numD, edges = 180, 260, 1500
	}
	transports := []struct {
		name string
		make func() pregel.Transport
	}{
		{"memory", func() pregel.Transport { return nil }},
		{"tcp", pregel.TCPTransport},
	}
	for _, seed := range []uint64{31, 32} {
		g := randomBipartite(t, seed, numQ, numD, edges)
		for _, tr := range transports {
			opts := Options{K: 8, Seed: seed, Workers: 4, Transport: tr.make()}
			inc, err := Partition(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Transport = tr.make()
			opts.DisableIncremental = true
			full, err := Partition(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, tr.name, inc, full)
			if err := inc.Assignment.Validate(8); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDistRebuildScheduleInvariant checks the incremental plane's escape
// hatches are pure performance knobs: rebroadcasting every iteration
// (RebuildEvery=1), never (RebuildEvery=-1), and the default safety net all
// produce identical bits, with and without sender-side combining.
func TestDistRebuildScheduleInvariant(t *testing.T) {
	g := randomBipartite(t, 37, 200, 300, 1800)
	base, err := Partition(g, Options{K: 4, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Options{
		{K: 4, Seed: 7, Workers: 3, RebuildEvery: 1},
		{K: 4, Seed: 7, Workers: 3, RebuildEvery: -1},
		{K: 4, Seed: 7, Workers: 3, RebuildEvery: 1, DisableCombining: true},
	} {
		res, err := Partition(g, variant)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "rebuild-schedule", base, res)
	}
}

// TestDistDeltaPatchProperty is the distributed mirror of core's
// patched-vs-rebuilt property tests: random move batches flow through the
// real query-side diff (applyUpdate + deltaRecords on the mapless
// sorted-slice state), the real wire codecs, and the real data-side patch
// (applyDelta); after every batch the patched accumulators of clean
// observer vertices must bit-equal a from-scratch resummation of the query
// histograms.
func TestDistDeltaPatchProperty(t *testing.T) {
	const (
		numData  = 60
		numQuery = 8
		buckets  = 8
		rounds   = 50
	)
	r := rng.New(4242)
	tb := core.NewPFanoutTables(0.5, 2, numData+1)

	bucketOf := make([]int32, numData)
	for d := range bucketOf {
		bucketOf[d] = int32(r.Intn(buckets))
	}

	members := make([][]int32, numQuery)
	isMember := make([]map[int32]bool, numQuery)
	qs := make([]*queryState, numQuery)
	for q := range qs {
		set := map[int32]bool{}
		for i := 0; i < 24; i++ {
			set[int32(r.Intn(numData))] = true
		}
		for d := int32(0); d < numData; d++ {
			if set[d] {
				members[q] = append(members[q], d)
			}
		}
		st := &queryState{q: int32(q), level: -1}
		st.register(0, len(members[q]))
		for _, d := range members[q] {
			// Registration round: every member is a mover, exactly as a
			// level start plays out; scratch is reset before the test's
			// tracked move rounds begin.
			st.applyUpdate(members[q], msgBucket{Data: d, New: bucketOf[d]}, true)
		}
		st.resetSuperstep()
		isMember[q] = set
		qs[q] = st
	}

	// Observers never move; their accumulators are patched only.
	observers := []int32{0, 1, 2, 3, 4, 5}
	isObserver := map[int32]bool{}
	obs := map[int32]*dataState{}
	scratchSums := func(o int32, bucket int32) (float64, float64) {
		var cur, oth float64
		for q := range qs {
			if !isMember[q][o] {
				continue
			}
			cur += tb.T[core.NDCount(qs[q].ent, bucket)-1]
			oth += tb.T[core.NDCount(qs[q].ent, bucket^1)]
		}
		return cur, oth
	}
	for _, o := range observers {
		isObserver[o] = true
		ds := &dataState{d: o, bucket: bucketOf[o]}
		ds.sumCur, ds.sumOth = scratchSums(o, ds.bucket)
		obs[o] = ds
	}

	for round := 0; round < rounds; round++ {
		// Random move batch (observers excluded).
		moves := map[int32]int32{}
		for i := 0; i < 1+r.Intn(6); i++ {
			d := int32(r.Intn(numData))
			if isObserver[d] {
				continue
			}
			moves[d] = int32(r.Intn(buckets))
		}
		// Each dirty query diffs its histogram and routes records to its
		// clean members, exactly as computeQuery does.
		batches := map[int32]msgDeltaBatch{}
		for q, st := range qs {
			dirty := false
			for _, d := range members[q] {
				if nb, ok := moves[d]; ok {
					st.applyUpdate(members[q], msgBucket{Data: d, New: nb}, true)
					dirty = true
				}
			}
			if !dirty {
				continue
			}
			recs := st.deltaRecords()
			for _, rec := range recs {
				// Single-record wire round trip.
				buf, err := (deltaCodec{}).Append(nil, rec)
				if err != nil {
					t.Fatal(err)
				}
				got, used, err := (deltaCodec{}).Decode(buf)
				if err != nil || used != len(buf) || got.(msgDelta) != rec {
					t.Fatalf("round %d: msgDelta round trip: got %+v (used %d, err %v), want %+v",
						round, got, used, err, rec)
				}
			}
			for i, d := range members[q] {
				if st.moved[i] {
					continue
				}
				ds, ok := obs[d]
				if !ok {
					continue
				}
				for _, rec := range recs {
					if rec.Bucket == ds.bucket || rec.Bucket == ds.bucket^1 {
						batches[d] = append(batches[d], rec)
					}
				}
			}
			st.resetSuperstep()
		}
		for d, nb := range moves {
			bucketOf[d] = nb
		}
		// Batched wire round trip (the sender-side-combined form), then
		// patch the observers.
		for _, o := range observers {
			batch := batches[o]
			if len(batch) == 0 {
				continue
			}
			buf, err := (deltaBatchCodec{}).Append(nil, batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != (deltaBatchCodec{}).Size(batch) {
				t.Fatalf("round %d: batch Size %d != encoded %d", round, (deltaBatchCodec{}).Size(batch), len(buf))
			}
			decoded, used, err := (deltaBatchCodec{}).Decode(buf)
			if err != nil || used != len(buf) || !reflect.DeepEqual(decoded, batch) {
				t.Fatalf("round %d: batch round trip failed (used %d, err %v)", round, used, err)
			}
			for _, rec := range decoded.(msgDeltaBatch) {
				obs[o].applyDelta(tb, rec)
			}
		}
		// Patched must bit-equal rebuilt.
		for _, o := range observers {
			ds := obs[o]
			wantCur, wantOth := scratchSums(o, ds.bucket)
			if ds.sumCur != wantCur || ds.sumOth != wantOth {
				t.Fatalf("round %d: observer %d patched sums (%v, %v) != rebuilt (%v, %v)",
					round, o, ds.sumCur, ds.sumOth, wantCur, wantOth)
			}
		}
	}
}

// TestDeltaWireSize pins the slimmed delta encoding: receivers patch by
// table-value differences alone, so no query id travels with a record —
// 12 bytes each (bucket, cOld, cNew), 25% below the previous 16-byte
// frame, and a batch of n small records costs exactly 1 + 12n bytes.
func TestDeltaWireSize(t *testing.T) {
	if deltaWireSize != 12 {
		t.Fatalf("deltaWireSize = %d, want 12 (bucket + cOld + cNew, no query id)", deltaWireSize)
	}
	rec := msgDelta{Bucket: 5, COld: 2, CNew: 3}
	if got := len(appendDelta(nil, rec)); got != 12 {
		t.Fatalf("encoded msgDelta is %d bytes, want 12", got)
	}
	batch := msgDeltaBatch{rec, {Bucket: 4, COld: 0, CNew: 1}, {Bucket: 1, COld: 7, CNew: 0}}
	buf, err := (deltaBatchCodec{}).Append(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 12*len(batch); len(buf) != want {
		t.Fatalf("encoded batch of %d records is %d bytes, want %d", len(batch), len(buf), want)
	}
	if sz := (deltaBatchCodec{}).Size(batch); sz != len(buf) {
		t.Fatalf("Size %d != encoded %d", sz, len(buf))
	}
}

// TestDistDeltaCutsLateSuperstepBytes asserts the tentpole claim: once the
// moved fraction falls to <= 1%, the delta plane's gain-superstep traffic is
// at least 3x smaller than the full rebroadcast's (which stays O(|E|) per
// iteration no matter how little moves).
func TestDistDeltaCutsLateSuperstepBytes(t *testing.T) {
	communities, perCommunity, queries, qdeg := 4, 200, 900, 6
	if testing.Short() {
		communities, perCommunity, queries, qdeg = 4, 150, 700, 4
	}
	g := plantedGraph(t, communities, perCommunity, queries, qdeg)
	opts := Options{K: 8, Seed: 42, Workers: 4, MinMoveFraction: 1e-9}
	inc, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableIncremental = true
	full, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "late-bytes", inc, full)
	if got, want := inc.Stats.Supersteps, 4*len(inc.History); got != want {
		t.Fatalf("supersteps %d != 4 x %d iterations", got, len(inc.History))
	}
	late, incLate := inc.LateGainBytes(0.01)
	fullLateIters, fullLate := full.LateGainBytes(0.01)
	if late != fullLateIters {
		t.Fatalf("late iteration sets differ: %d vs %d (histories are pinned equal)", late, fullLateIters)
	}
	if late == 0 {
		t.Fatal("no late (<=1% moved) iterations; graph or schedule too small to test the claim")
	}
	if incLate*3 > fullLate {
		t.Fatalf("late gain-superstep bytes: incremental %d vs full %d over %d iterations — less than the required 3x reduction",
			incLate, fullLate, late)
	}
	if inc.Stats.TotalBytes >= full.Stats.TotalBytes {
		t.Fatalf("incremental total bytes %d not below full %d", inc.Stats.TotalBytes, full.Stats.TotalBytes)
	}
}

// TestDistChangedOnlyProposalBytes asserts the proposal plane's version of
// the tentpole claim: stable vertices neither recompute nor re-ship their
// proposal, so once the moved fraction falls to <= 1% the proposal
// superstep's per-iteration aggregator traffic is at least 3x below the
// registration superstep's (which ships every vertex's histogram entry).
// The aggregate stream itself is also pinned identical across the
// incremental and full message planes: the retract/assert deltas key on
// gains both paths compute bit-identically, so the same vertices change in
// the same supersteps either way.
func TestDistChangedOnlyProposalBytes(t *testing.T) {
	communities, perCommunity, queries, qdeg := 4, 200, 900, 6
	if testing.Short() {
		communities, perCommunity, queries, qdeg = 4, 150, 700, 4
	}
	g := plantedGraph(t, communities, perCommunity, queries, qdeg)
	opts := Options{K: 8, Seed: 42, Workers: 4, MinMoveFraction: 1e-9}
	inc, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableIncremental = true
	full, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "proposal-bytes", inc, full)
	if inc.Stats.AggBytes == 0 {
		t.Fatal("no aggregator traffic measured")
	}
	if li, lf := len(inc.Stats.PerSuperstep), len(full.Stats.PerSuperstep); li != lf {
		t.Fatalf("superstep counts differ: %d vs %d", li, lf)
	}
	for s := range inc.Stats.PerSuperstep {
		if a, b := inc.Stats.PerSuperstep[s].AggBytes, full.Stats.PerSuperstep[s].AggBytes; a != b {
			t.Fatalf("superstep %d aggregator bytes differ between planes: %d vs %d", s, a, b)
		}
	}
	// Registration supersteps (level starts) assert every vertex's proposal;
	// late supersteps ship only the churn's retract/assert deltas.
	var regIters int
	var regBytes int64
	for j, rec := range inc.History {
		if rec.Iter != 0 {
			continue
		}
		if s := 4*j + 2; s < len(inc.Stats.PerSuperstep) {
			regIters++
			regBytes += inc.Stats.PerSuperstep[s].AggBytes
		}
	}
	lateIters, lateBytes := inc.LateProposalBytes(0.01)
	if regIters == 0 || lateIters == 0 {
		t.Fatalf("degenerate schedule: %d registration, %d late iterations", regIters, lateIters)
	}
	// Compare per-iteration averages; lateBytes may legitimately be zero
	// (a fully stable frontier ships nothing at all).
	if lateBytes*int64(regIters)*3 > regBytes*int64(lateIters) {
		t.Fatalf("late proposal bytes/iter %d not 3x below registration %d",
			lateBytes/int64(lateIters), regBytes/int64(regIters))
	}
	t.Logf("proposal aggregator bytes/iter: registration %d over %d iters, late %d over %d iters",
		regBytes/int64(regIters), regIters, lateBytes/int64(lateIters), lateIters)
}

// TestDistTCPIncrementalMatchesMemory runs the incremental plane over real
// loopback-TCP sockets with concurrent per-pair reader/writer goroutines —
// the configuration the CI race job exercises — and pins it to the
// in-process transport.
func TestDistTCPIncrementalMatchesMemory(t *testing.T) {
	numQ, numD, edges := 300, 500, 3000
	if testing.Short() {
		numQ, numD, edges = 150, 250, 1500
	}
	g := randomBipartite(t, 47, numQ, numD, edges)
	mem, err := Partition(g, Options{K: 8, Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Partition(g, Options{K: 8, Seed: 13, Workers: 4, Transport: pregel.TCPTransport()})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "tcp-vs-memory", mem, tcp)
	if tcp.Stats.TotalBytes == 0 {
		t.Fatal("TCP incremental run measured zero wire bytes")
	}
	if err := tcp.Assignment.Validate(8); err != nil {
		t.Fatal(err)
	}
}
