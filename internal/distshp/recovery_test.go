package distshp

import (
	"fmt"
	"testing"

	"shp/internal/pregel"
)

// TestDistRecoveryMatchesUndisturbed is the headline fault-tolerance
// invariant: kill a worker mid-protocol, recover from the last checkpoint,
// and the finished run must be byte-identical — assignments, levels,
// iteration counts, and the full History stream — to the undisturbed run.
// Exercised across seeds, both transports, and checkpoint cadences (cadence
// 1 rolls back a single superstep; cadence 5 replays a partial protocol
// round, crossing phase boundaries).
func TestDistRecoveryMatchesUndisturbed(t *testing.T) {
	for _, seed := range []uint64{31, 32} {
		g := randomBipartite(t, seed, 300, 600, 2400)
		base, err := Partition(g, Options{K: 8, Seed: seed, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name      string
			transport func() pregel.Transport
		}{
			{"memory", pregel.MemoryTransport},
			{"tcp", pregel.TCPTransport},
		} {
			for _, every := range []int{1, 5} {
				label := fmt.Sprintf("seed=%d/%s/every=%d", seed, tc.name, every)
				t.Run(label, func(t *testing.T) {
					faulty, err := Partition(g, Options{
						K: 8, Seed: seed, Workers: 4,
						Transport: pregel.FaultyTransport(tc.transport(), pregel.FaultPlan{
							KillWorker: 2, KillStep: 9,
						}),
						CheckpointEvery: every,
					})
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, label, base, faulty)
					if faulty.Stats.Recoveries < 1 {
						t.Fatalf("%s: Recoveries = %d, want >= 1", label, faulty.Stats.Recoveries)
					}
					if faulty.Stats.CheckpointBytes <= 0 {
						t.Fatalf("%s: CheckpointBytes = %d, want > 0", label, faulty.Stats.CheckpointBytes)
					}
				})
			}
		}
	}
}

// TestDistRecoveryFromDisk runs the kill/recover cycle against the
// persistent checkpoint store.
func TestDistRecoveryFromDisk(t *testing.T) {
	const seed = 7
	g := plantedGraph(t, 8, 40, 160, 6)
	base, err := Partition(g, Options{K: 8, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pregel.NewDiskCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Partition(g, Options{
		K: 8, Seed: seed, Workers: 4,
		Transport: pregel.FaultyTransport(pregel.MemoryTransport(), pregel.FaultPlan{
			KillWorker: 1, KillStep: 13,
		}),
		Checkpointer:    cp,
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "disk recovery", base, faulty)
	if faulty.Stats.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1", faulty.Stats.Recoveries)
	}
}

// TestDistCheckpointingIsPureObservation pins that checkpointing never
// perturbs the computation it snapshots: a run with checkpointing disabled
// matches the default (checkpointing-on) run bit for bit, and only the
// latter reports checkpoint bytes.
func TestDistCheckpointingIsPureObservation(t *testing.T) {
	const seed = 19
	g := randomBipartite(t, seed, 250, 500, 2000)
	on, err := Partition(g, Options{K: 8, Seed: seed, Workers: 4, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Partition(g, Options{K: 8, Seed: seed, Workers: 4, DisableCheckpointing: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "checkpointing on vs off", on, off)
	if on.Stats.CheckpointBytes <= 0 {
		t.Fatalf("checkpointing on: CheckpointBytes = %d, want > 0", on.Stats.CheckpointBytes)
	}
	if off.Stats.CheckpointBytes != 0 {
		t.Fatalf("checkpointing off: CheckpointBytes = %d, want 0", off.Stats.CheckpointBytes)
	}
}

// TestDistTransientDropsRetry: dropped frames are absorbed by in-place
// retries without triggering rollback, and the result is unchanged.
func TestDistTransientDropsRetry(t *testing.T) {
	const seed = 23
	g := randomBipartite(t, seed, 250, 500, 2000)
	base, err := Partition(g, Options{K: 8, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := Partition(g, Options{
		K: 8, Seed: seed, Workers: 4,
		Transport: pregel.FaultyTransport(pregel.MemoryTransport(), pregel.FaultPlan{
			DropEvery: 7,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "transient drops", base, dropped)
	if dropped.Stats.RetriedFrames == 0 {
		t.Fatal("RetriedFrames = 0, want > 0")
	}
	if dropped.Stats.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0", dropped.Stats.Recoveries)
	}
}
