package distshp

import (
	"reflect"
	"testing"

	"shp/internal/pregel"
)

func roundTrip(t *testing.T, c pregel.Codec, m pregel.Message) {
	t.Helper()
	buf, err := c.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != c.Size(m) {
		t.Fatalf("%T: Size = %d but Append wrote %d bytes", m, c.Size(m), len(buf))
	}
	got, used, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("%T: decode consumed %d of %d bytes", m, used, len(buf))
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("%T round trip: got %+v, want %+v", m, got, m)
	}
}

func TestWireCodecs(t *testing.T) {
	roundTrip(t, bucketCodec{}, msgBucket{Data: 7, New: 3})
	roundTrip(t, bucketCodec{}, msgBucket{Data: 1 << 30, New: 6})
	roundTrip(t, gainCodec{}, msgGain{Cur: 1.5, Oth: -2.25})
	roundTrip(t, gainCodec{}, msgGain{})
	roundTrip(t, bucketBatchCodec{}, msgBucketBatch{
		{Data: 1, New: 0},
		{Data: 2, New: 1},
		{Data: 3, New: 1},
	})
}

func TestCodecTruncation(t *testing.T) {
	if _, _, err := (bucketCodec{}).Decode([]byte{1, 2}); err == nil {
		t.Fatal("truncated msgBucket should fail")
	}
	if _, _, err := (gainCodec{}).Decode(make([]byte, 15)); err == nil {
		t.Fatal("truncated msgGain should fail")
	}
	if _, _, err := (bucketBatchCodec{}).Decode([]byte{200}); err == nil {
		t.Fatal("truncated batch count should fail")
	}
	if _, _, err := (bucketBatchCodec{}).Decode([]byte{3, 0, 0}); err == nil {
		t.Fatal("batch count exceeding payload should fail")
	}
}

func TestCombineSemantics(t *testing.T) {
	g := combine(msgGain{Cur: 1, Oth: 2}, msgGain{Cur: 3, Oth: 4}).(msgGain)
	if g.Cur != 4 || g.Oth != 6 {
		t.Fatalf("msgGain combine = %+v", g)
	}
	a := msgBucket{Data: 1}
	b := msgBucket{Data: 2}
	c := msgBucket{Data: 3}
	batch := combine(combine(a, b), c).(msgBucketBatch)
	if len(batch) != 3 || batch[0].Data != 1 || batch[2].Data != 3 {
		t.Fatalf("bucket batching = %+v", batch)
	}
	merged := combine(combine(a, b), combine(c, msgBucket{Data: 4})).(msgBucketBatch)
	if len(merged) != 4 {
		t.Fatalf("batch-batch combine = %+v", merged)
	}
}
