package distshp

import (
	"reflect"
	"testing"

	"shp/internal/pregel"
)

func roundTrip(t *testing.T, c pregel.Codec, m pregel.Message) {
	t.Helper()
	buf, err := c.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != c.Size(m) {
		t.Fatalf("%T: Size = %d but Append wrote %d bytes", m, c.Size(m), len(buf))
	}
	got, used, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("%T: decode consumed %d of %d bytes", m, used, len(buf))
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("%T round trip: got %+v, want %+v", m, got, m)
	}
}

func TestWireCodecs(t *testing.T) {
	roundTrip(t, bucketCodec{}, msgBucket{Data: 7, New: 3})
	roundTrip(t, bucketCodec{}, msgBucket{Data: 1 << 30, New: 6})
	roundTrip(t, gainCodec{}, msgGain{Cur: 1.5, Oth: -2.25})
	roundTrip(t, gainCodec{}, msgGain{})
	roundTrip(t, bucketBatchCodec{}, msgBucketBatch{
		{Data: 1, New: 0},
		{Data: 2, New: 1},
		{Data: 3, New: 1},
	})
	roundTrip(t, deltaCodec{}, msgDelta{Bucket: 4, COld: 2, CNew: 3})
	roundTrip(t, deltaCodec{}, msgDelta{Bucket: 1 << 29, COld: 0, CNew: 7})
	roundTrip(t, deltaBatchCodec{}, msgDeltaBatch{
		{Bucket: 2, COld: 3, CNew: 4},
		{Bucket: 3, COld: 1, CNew: 0},
		{Bucket: 2, COld: 0, CNew: 1},
	})
	roundTrip(t, deltaBatchCodec{}, msgDeltaBatch{})
}

func TestCodecTruncation(t *testing.T) {
	if _, _, err := (bucketCodec{}).Decode([]byte{1, 2}); err == nil {
		t.Fatal("truncated msgBucket should fail")
	}
	if _, _, err := (gainCodec{}).Decode(make([]byte, 15)); err == nil {
		t.Fatal("truncated msgGain should fail")
	}
	if _, _, err := (bucketBatchCodec{}).Decode([]byte{200}); err == nil {
		t.Fatal("truncated batch count should fail")
	}
	if _, _, err := (bucketBatchCodec{}).Decode([]byte{3, 0, 0}); err == nil {
		t.Fatal("batch count exceeding payload should fail")
	}
	if _, _, err := (deltaCodec{}).Decode(make([]byte, deltaWireSize-1)); err == nil {
		t.Fatal("truncated msgDelta should fail")
	}
	if _, _, err := (deltaBatchCodec{}).Decode(nil); err == nil {
		t.Fatal("empty msgDeltaBatch frame should fail")
	}
	if _, _, err := (deltaBatchCodec{}).Decode([]byte{200}); err == nil {
		t.Fatal("truncated delta batch count should fail")
	}
	if _, _, err := (deltaBatchCodec{}).Decode([]byte{2, 0, 0, 0}); err == nil {
		t.Fatal("delta batch count exceeding payload should fail")
	}
	buf, err := (deltaBatchCodec{}).Append(nil, msgDeltaBatch{{Bucket: 2, COld: 0, CNew: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (deltaBatchCodec{}).Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("delta batch with truncated last record should fail")
	}
}

func TestCombineSemantics(t *testing.T) {
	g := combine(msgGain{Cur: 1, Oth: 2}, msgGain{Cur: 3, Oth: 4}).(msgGain)
	if g.Cur != 4 || g.Oth != 6 {
		t.Fatalf("msgGain combine = %+v", g)
	}
	a := msgBucket{Data: 1}
	b := msgBucket{Data: 2}
	c := msgBucket{Data: 3}
	batch := combine(combine(a, b), c).(msgBucketBatch)
	if len(batch) != 3 || batch[0].Data != 1 || batch[2].Data != 3 {
		t.Fatalf("bucket batching = %+v", batch)
	}
	merged := combine(combine(a, b), combine(c, msgBucket{Data: 4})).(msgBucketBatch)
	if len(merged) != 4 {
		t.Fatalf("batch-batch combine = %+v", merged)
	}
}

// TestCombineDeltaRecords checks combiner behavior on merged delta records:
// any association order over the four record/batch pairings must flatten to
// the same batch with every record exactly once, in send order — merging
// already-merged batches neither drops nor duplicates records.
func TestCombineDeltaRecords(t *testing.T) {
	r := func(i int32) msgDelta { return msgDelta{Bucket: i % 4, COld: i, CNew: i + 1} }
	want := msgDeltaBatch{r(1), r(2), r(3), r(4)}
	cases := []struct {
		name string
		got  pregel.Message
	}{
		{"left-assoc (record+record, batch+record)", combine(combine(combine(r(1), r(2)), r(3)), r(4))},
		{"right-assoc (record+batch)", combine(r(1), combine(r(2), combine(r(3), r(4))))},
		{"balanced (batch+batch)", combine(combine(r(1), r(2)), combine(r(3), r(4)))},
	}
	for _, tc := range cases {
		got := tc.got.(msgDeltaBatch)
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d: %+v", tc.name, len(got), len(want), got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d = %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
	// Re-merging merged batches keeps the flat record multiset intact.
	left := combine(r(1), r(2)).(msgDeltaBatch)
	right := combine(r(3), r(4)).(msgDeltaBatch)
	again := combine(combine(left, right), combine(r(5), r(6))).(msgDeltaBatch)
	if len(again) != 6 {
		t.Fatalf("re-merged batches hold %d records, want 6: %+v", len(again), again)
	}
	for i := range again {
		if again[i] != r(int32(i+1)) {
			t.Fatalf("re-merged record %d = %+v, want %+v", i, again[i], r(int32(i+1)))
		}
	}
}

// TestCombineRejectsMixedKinds pins the protocol invariant the combiner
// enforces: a vertex is either rebuilding (gains only) or clean (deltas
// only) within a superstep, so cross-kind merges must fail loudly.
func TestCombineRejectsMixedKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("combining msgGain with msgDelta should panic")
		}
	}()
	combine(msgGain{Cur: 1}, msgDelta{Bucket: 1})
}
