package pregel

import (
	"testing"
)

func floatRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(float64(0), Float64Codec{})
	return reg
}

// maxPropagationOpts is a message-heavy computation (max flooding on a
// circulant graph) used to compare transports end to end.
func maxPropagationOpts(workers int, transport Transport) (Options, []*Vertex) {
	vs := buildChain(30)
	for i := range vs {
		vs[i].State = float64(i)
	}
	return Options{
		Workers:       workers,
		MaxSupersteps: 10,
		Transport:     transport,
		Codecs:        floatRegistry(),
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			val := v.State.(float64)
			for _, m := range msgs {
				if m.(float64) > val {
					val = m.(float64)
				}
			}
			if val != v.State.(float64) || ctx.Superstep() == 0 {
				v.State = val
				ctx.Send((v.ID+1)%30, val)
				ctx.Send((v.ID+7)%30, val)
			}
			ctx.VoteToHalt()
		},
	}, vs
}

func TestTCPTransportSSSP(t *testing.T) {
	const n = 50
	vs := buildChain(n)
	eng, err := NewEngine(Options{
		Workers:       3,
		MaxSupersteps: n + 2,
		Transport:     TCPTransport(),
		Codecs:        floatRegistry(),
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			dist := v.State.(float64)
			if ctx.Superstep() == 0 && v.ID == 0 {
				dist = 0
			}
			for _, m := range msgs {
				if d := m.(float64); d < dist {
					dist = d
				}
			}
			if dist < v.State.(float64) || (ctx.Superstep() == 0 && v.ID == 0) {
				v.State = dist
				if int(v.ID) < n-1 {
					ctx.Send(v.ID+1, dist+1)
				}
			}
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := eng.Vertex(VertexID(i)).State.(float64); got != float64(i) {
			t.Fatalf("dist[%d] = %v, want %d", i, got, i)
		}
	}
	if stats.TotalBytes == 0 {
		t.Fatal("TCP run shipped messages but measured zero wire bytes")
	}
}

func TestTCPMatchesMemoryTransport(t *testing.T) {
	run := func(transport Transport) ([]float64, *Stats) {
		opts, vs := maxPropagationOpts(4, transport)
		eng, err := NewEngine(opts, vs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 30)
		for i := range out {
			out[i] = eng.Vertex(VertexID(i)).State.(float64)
		}
		return out, stats
	}
	memState, memStats := run(MemoryTransport())
	tcpState, tcpStats := run(TCPTransport())
	for i := range memState {
		if memState[i] != tcpState[i] {
			t.Fatalf("transports disagree at vertex %d: %v vs %v", i, memState[i], tcpState[i])
		}
	}
	if memStats.TotalMessages != tcpStats.TotalMessages {
		t.Fatalf("message counts differ: memory %d, tcp %d", memStats.TotalMessages, tcpStats.TotalMessages)
	}
	if memStats.RemoteMessages != tcpStats.RemoteMessages {
		t.Fatalf("remote counts differ: memory %d, tcp %d", memStats.RemoteMessages, tcpStats.RemoteMessages)
	}
	// TCP measures frames on the wire (remote only, headers included);
	// memory measures encoded sizes of all messages. Both must be nonzero
	// here, but they measure different things.
	if memStats.TotalBytes == 0 || tcpStats.TotalBytes == 0 {
		t.Fatalf("byte accounting missing: memory %d, tcp %d", memStats.TotalBytes, tcpStats.TotalBytes)
	}
}

func TestTCPRequiresCodecs(t *testing.T) {
	opts, vs := maxPropagationOpts(2, TCPTransport())
	opts.Codecs = nil
	eng, err := NewEngine(opts, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("TCP transport without codecs should fail")
	}
}

func TestTCPUnregisteredMessageType(t *testing.T) {
	vs := buildChain(10)
	eng, err := NewEngine(Options{
		Workers:       2,
		MaxSupersteps: 3,
		Transport:     TCPTransport(),
		Codecs:        floatRegistry(),
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			ctx.Send((v.ID+1)%10, "not a float")
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("sending an unregistered message type over TCP should fail")
	}
}

func TestSenderSideCombiningReducesRemoteTraffic(t *testing.T) {
	// Every vertex messages vertex 0. Without a combiner each send crosses
	// the transport; with one, each source worker emits at most one
	// envelope for vertex 0.
	run := func(combine bool) *Stats {
		vs := buildChain(64)
		opts := Options{
			Workers:       4,
			MaxSupersteps: 2,
			Codecs:        floatRegistry(),
			Compute: func(ctx *Context, v *Vertex, msgs []Message) {
				if ctx.Superstep() == 0 {
					ctx.Send(0, 1.0)
				}
				ctx.VoteToHalt()
			},
		}
		if combine {
			opts.Combiner = func(a, b Message) Message { return a.(float64) + b.(float64) }
		}
		eng, err := NewEngine(opts, vs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain := run(false)
	combined := run(true)
	if combined.TotalMessages >= plain.TotalMessages {
		t.Fatalf("combining did not reduce messages: %d vs %d", combined.TotalMessages, plain.TotalMessages)
	}
	if combined.RemoteMessages >= plain.RemoteMessages {
		t.Fatalf("combining did not reduce remote messages: %d vs %d", combined.RemoteMessages, plain.RemoteMessages)
	}
	if combined.TotalBytes >= plain.TotalBytes {
		t.Fatalf("combining did not reduce bytes: %d vs %d", combined.TotalBytes, plain.TotalBytes)
	}
	// At most one combined envelope per worker can target vertex 0.
	if combined.TotalMessages > 4 {
		t.Fatalf("expected <= 4 combined envelopes, got %d", combined.TotalMessages)
	}
}

func TestCombinerEquivalenceOnIntegers(t *testing.T) {
	// Integer sums are exactly associative, so combined and uncombined runs
	// must produce identical states, while the combined run ships fewer
	// envelopes.
	run := func(combine bool) ([]int64, *Stats) {
		vs := make([]*Vertex, 40)
		for i := range vs {
			vs[i] = &Vertex{ID: VertexID(i), State: int64(0)}
		}
		opts := Options{
			Workers:       5,
			MaxSupersteps: 4,
			Compute: func(ctx *Context, v *Vertex, msgs []Message) {
				var sum int64
				for _, m := range msgs {
					sum += m.(int64)
				}
				v.State = v.State.(int64) + sum
				if ctx.Superstep() < 2 {
					for d := 0; d < 5; d++ {
						ctx.Send(VertexID((int(v.ID)+d*7)%40), int64(v.ID)+1)
					}
				}
				ctx.VoteToHalt()
			},
		}
		if combine {
			opts.Combiner = func(a, b Message) Message { return a.(int64) + b.(int64) }
		}
		eng, err := NewEngine(opts, vs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 40)
		for i := range out {
			out[i] = eng.Vertex(VertexID(i)).State.(int64)
		}
		return out, stats
	}
	plainState, plainStats := run(false)
	combState, combStats := run(true)
	for i := range plainState {
		if plainState[i] != combState[i] {
			t.Fatalf("combining changed the result at vertex %d: %d vs %d", i, plainState[i], combState[i])
		}
	}
	if combStats.TotalMessages >= plainStats.TotalMessages {
		t.Fatalf("combined run did not ship fewer envelopes: %d vs %d",
			combStats.TotalMessages, plainStats.TotalMessages)
	}
}
