// Package pregel implements a vertex-centric bulk-synchronous-parallel (BSP)
// computation engine in the style of Pregel/Giraph, the substrate the paper's
// distributed implementation runs on (Section 3.2).
//
// The engine plays the role of a Giraph cluster: vertices are hash-sharded
// across a configurable number of workers (the "machines"), a superstep runs
// every active vertex's compute function against the messages delivered to
// it, outgoing messages are buffered per destination worker and exchanged at
// the synchronization barrier, and aggregators are merged by a master that
// may run its own compute between supersteps.
//
// The message plane is layered:
//
//   - engine.go runs supersteps and delivers sorted message runs to vertices;
//   - codec.go turns typed messages into flat, length-prefixed bytes (and
//     makes byte accounting measured rather than estimated);
//   - transport.go moves batches between workers — in-process by default, or
//     over loopback TCP sockets with real framing and serialization.
//
// Options.Combiner is applied sender-side, in the per-destination outbox, so
// it reduces the message and byte counts that actually cross the transport
// (and a receiver-side pass folds across source workers). Message and byte
// counts are tracked per superstep, distinguishing intra-worker from
// cross-worker traffic, so communication-complexity claims can be measured
// rather than asserted.
package pregel

import (
	"fmt"
	"time"
)

// VertexID identifies a vertex. IDs need not be dense, but dense ids give
// the most even sharding.
type VertexID int64

// Message is the unit of communication between vertices.
type Message interface{}

// VertexState is per-vertex user state.
type VertexState interface{}

// Vertex is one vertex's engine-side record.
type Vertex struct {
	ID     VertexID
	State  VertexState
	halted bool
}

// Context is handed to compute functions to interact with the engine.
type Context struct {
	engine    *Engine
	worker    *worker
	superstep int
	vertex    *Vertex
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the total vertex count.
func (c *Context) NumVertices() int { return len(c.engine.vertexIndex) }

// Send delivers a message to dst at the start of the next superstep. With a
// combiner configured, messages for the same destination vertex are folded
// in the outbox immediately, so at most one envelope per (source worker,
// destination vertex) pair reaches the transport.
func (c *Context) Send(dst VertexID, m Message) {
	w := c.engine.workerOf(dst)
	ob := &c.worker.out[w]
	if comb := c.engine.opts.Combiner; comb != nil {
		if i, ok := ob.idx[dst]; ok {
			ob.env[i].msg = comb(ob.env[i].msg, m)
			return
		}
		ob.idx[dst] = len(ob.env)
	}
	ob.env = append(ob.env, envelope{dst: dst, msg: m})
}

// Aggregate folds a value into the named aggregator; the master sees the
// merged value after the superstep and vertices can read the previous
// superstep's merged value with ReadAggregator.
//
// An unknown aggregator name or a type-mismatched value panics with an
// *AggregatorError; the engine recovers it into a *ComputeError surfaced
// through Run, so a misconfigured computation fails the superstep cleanly
// instead of crashing a worker goroutine.
func (c *Context) Aggregate(name string, value interface{}) {
	agg, ok := c.worker.aggregators[name]
	if !ok {
		def, exists := c.engine.opts.Aggregators[name]
		if !exists {
			panic(&AggregatorError{Name: name, Reason: "unknown aggregator"})
		}
		agg = def.New()
		c.worker.aggregators[name] = agg
	}
	agg.Add(value)
}

// ReadAggregator returns the value the named aggregator held at the end of
// the previous superstep (nil in superstep 0 or if never aggregated).
func (c *Context) ReadAggregator(name string) interface{} {
	return c.engine.aggregated[name]
}

// VoteToHalt deactivates the vertex; a received message reactivates it.
func (c *Context) VoteToHalt() { c.vertex.halted = true }

// Aggregator merges values produced by vertices during a superstep.
type Aggregator interface {
	// Add folds one value in.
	Add(value interface{})
	// Merge folds another aggregator of the same kind in.
	Merge(other Aggregator)
	// Value returns the merged result.
	Value() interface{}
}

// AggregatorDef creates fresh aggregator instances.
type AggregatorDef struct {
	New func() Aggregator
}

// WireSizer is optionally implemented by aggregators to report what their
// accumulated value would cost to ship from a worker to the master. The
// engine sums it over all worker aggregators at each barrier into
// SuperstepStats.AggBytes; aggregators that do not implement it count zero.
// Kept separate from BytesSent (the vertex-message transport plane) so the
// two planes' communication claims stay independently measurable.
type WireSizer interface {
	WireSize() int
}

// ComputeFunc runs one vertex for one superstep.
type ComputeFunc func(ctx *Context, v *Vertex, messages []Message)

// MasterFunc runs between supersteps with the merged aggregators. Returning
// true halts the computation after this superstep. The master may set
// aggregator values for the next superstep by returning them in set.
type MasterFunc func(superstep int, aggregated map[string]interface{}) (halt bool, set map[string]interface{})

// SuperstepStats records one superstep's traffic and load. MessagesSent and
// RemoteMessages count envelopes after sender-side combining — what actually
// crossed (or would cross) the transport. BytesSent is the transport's
// accounting: real frame bytes on the TCP backend, codec-measured (or
// MessageBytes-estimated) sizes on the in-process backend.
type SuperstepStats struct {
	Superstep      int
	ActiveVertices int
	MessagesSent   int64
	RemoteMessages int64
	BytesSent      int64
	// AggBytes is the worker->master aggregator traffic of the superstep, as
	// reported by aggregators implementing WireSizer (0 otherwise). Not
	// included in BytesSent: aggregators are merged in-process at the
	// barrier, not shipped through the transport.
	AggBytes        int64
	MaxWorkerActive int // busiest worker's active vertex count (load balance)
}

// Stats aggregates a run.
type Stats struct {
	Supersteps     int
	TotalMessages  int64
	RemoteMessages int64
	TotalBytes     int64
	AggBytes       int64
	// Recoveries counts checkpoint rollbacks taken after a worker failure.
	Recoveries int
	// RetriedFrames counts transport exchanges re-attempted after a
	// transient error (errors wrapping ErrTransient) before succeeding.
	RetriedFrames int64
	// CheckpointBytes is the total encoded size of all snapshots written,
	// measured on the same codec plane as wire bytes.
	CheckpointBytes int64
	PerSuperstep    []SuperstepStats
}

// PhaseTotals attributes the run's traffic to protocol phases for
// computations whose supersteps cycle through a fixed period (superstep s
// plays phase s % period): entry p sums MessagesSent, RemoteMessages, and
// BytesSent over the supersteps of phase p, with Superstep holding the phase
// index and ActiveVertices/MaxWorkerActive the phase's maxima. distshp's
// 4-superstep refinement loop uses this to report what each protocol role
// (bucket updates, gain/delta plane, proposals, moves) costs on the wire.
func (s *Stats) PhaseTotals(period int) []SuperstepStats {
	if period <= 0 {
		return nil
	}
	totals := make([]SuperstepStats, period)
	for p := range totals {
		totals[p].Superstep = p
	}
	for _, ss := range s.PerSuperstep {
		t := &totals[ss.Superstep%period]
		t.MessagesSent += ss.MessagesSent
		t.RemoteMessages += ss.RemoteMessages
		t.BytesSent += ss.BytesSent
		t.AggBytes += ss.AggBytes
		if ss.ActiveVertices > t.ActiveVertices {
			t.ActiveVertices = ss.ActiveVertices
		}
		if ss.MaxWorkerActive > t.MaxWorkerActive {
			t.MaxWorkerActive = ss.MaxWorkerActive
		}
	}
	return totals
}

// Options configures an Engine.
type Options struct {
	// Workers is the number of simulated machines. <= 0 means 1.
	Workers int
	// Compute is the vertex program (required).
	Compute ComputeFunc
	// Master runs between supersteps (optional).
	Master MasterFunc
	// MaxSupersteps bounds the run (required, > 0).
	MaxSupersteps int
	// Aggregators declares the aggregators vertices may use.
	Aggregators map[string]AggregatorDef
	// Transport selects the message-plane backend (nil means the in-process
	// MemoryTransport). See MemoryTransport and TCPTransport.
	Transport Transport
	// Codecs registers binary encoders per message type. Required by the
	// TCP transport; optional for the in-process one, where it upgrades
	// byte accounting from the MessageBytes estimate to encoded sizes.
	Codecs *Registry
	// MessageBytes estimates a message's wire size for byte accounting on
	// the in-process transport when no codec covers the type (optional).
	MessageBytes func(Message) int
	// Combiner, if set, merges messages destined to the same vertex. It is
	// applied in the sender's outbox (reducing transport traffic) and again
	// at the receiver across source workers. It must be commutative and
	// associative, and it must accept every pair of message kinds the
	// computation can address to one vertex within one superstep (protocols
	// that keep per-destination traffic kind-homogeneous, like distshp's,
	// may legitimately panic on cross-kind pairs to surface violations).
	Combiner func(a, b Message) Message

	// Checkpointer, if set, enables superstep checkpointing: the engine
	// snapshots vertex state, halted flags, pending inboxes, merged
	// aggregator values, and the master blob every CheckpointEvery
	// supersteps, and rolls back to the latest snapshot when an exchange
	// fails with a *WorkerFailure. Nil disables checkpointing (any worker
	// failure aborts the run).
	Checkpointer Checkpointer
	// CheckpointEvery is the snapshot cadence in supersteps. <= 0 means 64.
	// A snapshot is always taken at superstep 0 (before any compute) so
	// recovery is possible from the first barrier onward.
	CheckpointEvery int
	// Snapshots registers codecs for vertex states and aggregator values so
	// snapshots ride the same typed-codec plane as messages. Required when
	// Checkpointer is set and any vertex state or merged aggregator value
	// is non-nil; missing codecs fail the checkpoint loudly rather than
	// dropping state silently.
	Snapshots *Registry
	// MasterSnapshot/MasterRestore serialize master-side closure state that
	// lives outside aggregators (optional). Without them a recovery replays
	// the master function against restored aggregators only, which is wrong
	// for masters that keep private mutable state across supersteps.
	MasterSnapshot func() []byte
	MasterRestore  func(data []byte) error
	// MaxRecoveries bounds checkpoint rollbacks per run. <= 0 means 8.
	MaxRecoveries int
	// ExchangeRetries bounds in-place retries of an exchange that failed
	// with a transient error (wrapping ErrTransient) before the failure is
	// escalated to recovery. <= 0 means 3.
	ExchangeRetries int
	// RetryBackoff is the base delay before the first retry; attempt i
	// waits RetryBackoff << i plus deterministic jitter. <= 0 means 500µs.
	RetryBackoff time.Duration
	// FrameTimeout is the per-frame read/write deadline on the TCP
	// transport. <= 0 means no deadline (a dead peer blocks forever).
	FrameTimeout time.Duration
}

// SumAggregator sums float64 values.
type SumAggregator struct{ sum float64 }

// Add folds one float64 in; any other type panics with an *AggregatorError
// (recovered by the engine into a *ComputeError).
func (a *SumAggregator) Add(v interface{}) {
	f, ok := v.(float64)
	if !ok {
		panic(&AggregatorError{Name: "sum", Reason: fmt.Sprintf("want float64, got %T", v)})
	}
	a.sum += f
}

// Merge folds another SumAggregator in.
func (a *SumAggregator) Merge(o Aggregator) { a.sum += o.(*SumAggregator).sum }

// Value returns the sum.
func (a *SumAggregator) Value() interface{} { return a.sum }

// CountAggregator counts int64 increments.
type CountAggregator struct{ n int64 }

// Add folds one int64 in; any other type panics with an *AggregatorError
// (recovered by the engine into a *ComputeError).
func (a *CountAggregator) Add(v interface{}) {
	d, ok := v.(int64)
	if !ok {
		panic(&AggregatorError{Name: "count", Reason: fmt.Sprintf("want int64, got %T", v)})
	}
	a.n += d
}

// Merge folds another CountAggregator in.
func (a *CountAggregator) Merge(o Aggregator) { a.n += o.(*CountAggregator).n }

// Value returns the count.
func (a *CountAggregator) Value() interface{} { return a.n }
