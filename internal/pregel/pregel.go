// Package pregel implements a vertex-centric bulk-synchronous-parallel (BSP)
// computation engine in the style of Pregel/Giraph, the substrate the paper's
// distributed implementation runs on (Section 3.2).
//
// The engine plays the role of a Giraph cluster: vertices are hash-sharded
// across a configurable number of workers (the "machines"), a superstep runs
// every active vertex's compute function against the messages delivered to
// it, outgoing messages are buffered per destination worker and exchanged at
// the synchronization barrier, and aggregators are merged by a master that
// may run its own compute between supersteps. Message and byte counts are
// tracked per superstep, distinguishing intra-worker from cross-worker
// traffic, so communication-complexity claims can be measured rather than
// asserted.
package pregel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a vertex. IDs need not be dense, but dense ids give
// the most even sharding.
type VertexID int64

// Message is the unit of communication between vertices.
type Message interface{}

// VertexState is per-vertex user state.
type VertexState interface{}

// Vertex is one vertex's engine-side record.
type Vertex struct {
	ID     VertexID
	State  VertexState
	halted bool
}

// Context is handed to compute functions to interact with the engine.
type Context struct {
	engine    *Engine
	worker    *worker
	superstep int
	vertex    *Vertex
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the total vertex count.
func (c *Context) NumVertices() int { return len(c.engine.vertexIndex) }

// Send delivers a message to dst at the start of the next superstep.
func (c *Context) Send(dst VertexID, m Message) {
	w := c.engine.workerOf(dst)
	c.worker.outbox[w] = append(c.worker.outbox[w], envelope{dst: dst, msg: m})
	c.worker.stats.MessagesSent++
	if bytes := c.engine.opts.MessageBytes; bytes != nil {
		c.worker.stats.BytesSent += int64(bytes(m))
	}
	if w != c.worker.id {
		c.worker.stats.RemoteMessages++
	}
}

// Aggregate folds a value into the named aggregator; the master sees the
// merged value after the superstep and vertices can read the previous
// superstep's merged value with ReadAggregator.
func (c *Context) Aggregate(name string, value interface{}) {
	agg, ok := c.worker.aggregators[name]
	if !ok {
		def, exists := c.engine.opts.Aggregators[name]
		if !exists {
			panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
		}
		agg = def.New()
		c.worker.aggregators[name] = agg
	}
	agg.Add(value)
}

// ReadAggregator returns the value the named aggregator held at the end of
// the previous superstep (nil in superstep 0 or if never aggregated).
func (c *Context) ReadAggregator(name string) interface{} {
	return c.engine.aggregated[name]
}

// VoteToHalt deactivates the vertex; a received message reactivates it.
func (c *Context) VoteToHalt() { c.vertex.halted = true }

// Aggregator merges values produced by vertices during a superstep.
type Aggregator interface {
	// Add folds one value in.
	Add(value interface{})
	// Merge folds another aggregator of the same kind in.
	Merge(other Aggregator)
	// Value returns the merged result.
	Value() interface{}
}

// AggregatorDef creates fresh aggregator instances.
type AggregatorDef struct {
	New func() Aggregator
}

// ComputeFunc runs one vertex for one superstep.
type ComputeFunc func(ctx *Context, v *Vertex, messages []Message)

// MasterFunc runs between supersteps with the merged aggregators. Returning
// true halts the computation after this superstep. The master may set
// aggregator values for the next superstep by returning them in set.
type MasterFunc func(superstep int, aggregated map[string]interface{}) (halt bool, set map[string]interface{})

// SuperstepStats records one superstep's traffic and load.
type SuperstepStats struct {
	Superstep       int
	ActiveVertices  int
	MessagesSent    int64
	RemoteMessages  int64
	BytesSent       int64
	MaxWorkerActive int // busiest worker's active vertex count (load balance)
}

// Stats aggregates a run.
type Stats struct {
	Supersteps     int
	TotalMessages  int64
	RemoteMessages int64
	TotalBytes     int64
	PerSuperstep   []SuperstepStats
}

// Options configures an Engine.
type Options struct {
	// Workers is the number of simulated machines. <= 0 means 1.
	Workers int
	// Compute is the vertex program (required).
	Compute ComputeFunc
	// Master runs between supersteps (optional).
	Master MasterFunc
	// MaxSupersteps bounds the run (required, > 0).
	MaxSupersteps int
	// Aggregators declares the aggregators vertices may use.
	Aggregators map[string]AggregatorDef
	// MessageBytes estimates a message's wire size for byte accounting
	// (optional; nil disables byte counting).
	MessageBytes func(Message) int
	// Combiner, if set, merges messages destined to the same vertex at the
	// receiving worker (Giraph's combiner optimization). It must be
	// commutative and associative.
	Combiner func(a, b Message) Message
}

type envelope struct {
	dst VertexID
	msg Message
}

type worker struct {
	id          int
	vertices    []*Vertex
	inbox       []envelope
	outbox      [][]envelope // per destination worker
	aggregators map[string]Aggregator
	stats       struct {
		MessagesSent   int64
		RemoteMessages int64
		BytesSent      int64
	}
}

// Engine is a configured computation over a fixed vertex set.
type Engine struct {
	opts        Options
	workers     []*worker
	vertexIndex map[VertexID]*Vertex
	aggregated  map[string]interface{}
	stats       Stats
}

// NewEngine builds an engine over the given vertices.
func NewEngine(opts Options, vertices []*Vertex) (*Engine, error) {
	if opts.Compute == nil {
		return nil, errors.New("pregel: Compute is required")
	}
	if opts.MaxSupersteps <= 0 {
		return nil, errors.New("pregel: MaxSupersteps must be > 0")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	e := &Engine{
		opts:        opts,
		vertexIndex: make(map[VertexID]*Vertex, len(vertices)),
		aggregated:  map[string]interface{}{},
	}
	e.workers = make([]*worker, opts.Workers)
	for i := range e.workers {
		e.workers[i] = &worker{
			id:          i,
			outbox:      make([][]envelope, opts.Workers),
			aggregators: map[string]Aggregator{},
		}
	}
	for _, v := range vertices {
		if _, dup := e.vertexIndex[v.ID]; dup {
			return nil, fmt.Errorf("pregel: duplicate vertex id %d", v.ID)
		}
		e.vertexIndex[v.ID] = v
		w := e.workerOf(v.ID)
		e.workers[w].vertices = append(e.workers[w].vertices, v)
	}
	return e, nil
}

// workerOf shards a vertex id to a worker (multiplicative hash so dense id
// ranges spread evenly, like Giraph's random vertex placement).
func (e *Engine) workerOf(id VertexID) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(e.workers)))
}

// Run executes supersteps until every vertex halts with no pending messages,
// the master requests a halt, or MaxSupersteps is reached. It returns run
// statistics.
func (e *Engine) Run() (*Stats, error) {
	for step := 0; step < e.opts.MaxSupersteps; step++ {
		active := 0
		maxWorkerActive := 0
		for _, w := range e.workers {
			wa := 0
			for _, v := range w.vertices {
				if !v.halted {
					wa++
				}
			}
			wa += pendingFor(w)
			if wa > maxWorkerActive {
				maxWorkerActive = wa
			}
			active += wa
		}
		if active == 0 {
			break
		}

		var wg sync.WaitGroup
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				e.runWorker(w, step)
			}(w)
		}
		wg.Wait()

		// Barrier: exchange messages, merge aggregators, account traffic.
		ss := SuperstepStats{Superstep: step, ActiveVertices: active, MaxWorkerActive: maxWorkerActive}
		for _, w := range e.workers {
			ss.MessagesSent += w.stats.MessagesSent
			ss.RemoteMessages += w.stats.RemoteMessages
			ss.BytesSent += w.stats.BytesSent
			w.stats.MessagesSent, w.stats.RemoteMessages, w.stats.BytesSent = 0, 0, 0
		}
		for _, src := range e.workers {
			for dst, msgs := range src.outbox {
				if len(msgs) > 0 {
					e.workers[dst].inbox = append(e.workers[dst].inbox, msgs...)
					src.outbox[dst] = src.outbox[dst][:0]
				}
			}
		}
		merged := map[string]Aggregator{}
		for _, w := range e.workers {
			for name, agg := range w.aggregators {
				if m, ok := merged[name]; ok {
					m.Merge(agg)
				} else {
					merged[name] = agg
				}
			}
			w.aggregators = map[string]Aggregator{}
		}
		e.aggregated = map[string]interface{}{}
		for name, agg := range merged {
			e.aggregated[name] = agg.Value()
		}

		e.stats.PerSuperstep = append(e.stats.PerSuperstep, ss)
		e.stats.Supersteps++
		e.stats.TotalMessages += ss.MessagesSent
		e.stats.RemoteMessages += ss.RemoteMessages
		e.stats.TotalBytes += ss.BytesSent

		if e.opts.Master != nil {
			halt, set := e.opts.Master(step, e.aggregated)
			for name, v := range set {
				e.aggregated[name] = v
			}
			if halt {
				break
			}
		}
	}
	return &e.stats, nil
}

func pendingFor(w *worker) int { return len(w.inbox) }

// runWorker executes one worker's vertices for one superstep.
func (e *Engine) runWorker(w *worker, step int) {
	// Group inbound messages by vertex. Sorting by destination keeps the
	// delivery order deterministic regardless of sender scheduling.
	delivery := map[VertexID][]Message{}
	if len(w.inbox) > 0 {
		sort.SliceStable(w.inbox, func(i, j int) bool { return w.inbox[i].dst < w.inbox[j].dst })
		for _, env := range w.inbox {
			if e.opts.Combiner != nil {
				if prev, ok := delivery[env.dst]; ok {
					delivery[env.dst] = []Message{e.opts.Combiner(prev[0], env.msg)}
					continue
				}
			}
			delivery[env.dst] = append(delivery[env.dst], env.msg)
		}
		w.inbox = w.inbox[:0]
	}
	ctx := &Context{engine: e, worker: w, superstep: step}
	for _, v := range w.vertices {
		msgs := delivery[v.ID]
		if v.halted && len(msgs) == 0 {
			continue
		}
		v.halted = false
		ctx.vertex = v
		e.opts.Compute(ctx, v, msgs)
	}
}

// Vertex returns the vertex with the given id (nil if absent). Intended for
// result extraction after Run.
func (e *Engine) Vertex(id VertexID) *Vertex { return e.vertexIndex[id] }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return len(e.workers) }

// SumAggregator sums float64 values.
type SumAggregator struct{ sum float64 }

// Add folds one float64 in.
func (a *SumAggregator) Add(v interface{}) { a.sum += v.(float64) }

// Merge folds another SumAggregator in.
func (a *SumAggregator) Merge(o Aggregator) { a.sum += o.(*SumAggregator).sum }

// Value returns the sum.
func (a *SumAggregator) Value() interface{} { return a.sum }

// CountAggregator counts int64 increments.
type CountAggregator struct{ n int64 }

// Add folds one int64 in.
func (a *CountAggregator) Add(v interface{}) { a.n += v.(int64) }

// Merge folds another CountAggregator in.
func (a *CountAggregator) Merge(o Aggregator) { a.n += o.(*CountAggregator).n }

// Value returns the count.
func (a *CountAggregator) Value() interface{} { return a.n }
