package pregel

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Codec serializes one message type to and from a flat binary form. Encoded
// messages are embedded in batch buffers (see Registry.appendEnvelope), so a
// codec's output must be self-delimiting: Decode reports how many bytes it
// consumed.
//
// Codecs are what make BytesSent measured truth rather than an estimate:
// every byte a transport ships was produced by a codec, and the engine
// charges exactly those bytes.
type Codec interface {
	// Append serializes m onto buf and returns the extended buffer.
	Append(buf []byte, m Message) ([]byte, error)
	// Decode reads one message from the front of data and returns it along
	// with the number of bytes consumed.
	Decode(data []byte) (Message, int, error)
	// Size returns m's exact encoded size in bytes (what Append would add).
	Size(m Message) int
}

// Registry maps concrete message types to codecs and assigns each a stable
// one-byte wire id in registration order. A registry is required by byte-
// measuring transports (TCP) and, when present, also upgrades the in-process
// transport's byte accounting from the MessageBytes estimate to encoded
// sizes.
type Registry struct {
	byType map[reflect.Type]uint8
	byID   []Codec
}

// NewRegistry returns an empty codec registry.
func NewRegistry() *Registry {
	return &Registry{byType: map[reflect.Type]uint8{}}
}

// Register binds the concrete type of sample to c. Registration order fixes
// the wire id, so both ends of a transport must register the same codecs in
// the same order. At most 256 types can be registered.
func (r *Registry) Register(sample Message, c Codec) {
	t := reflect.TypeOf(sample)
	if _, dup := r.byType[t]; dup {
		//shp:panics(invariant: registration happens once at wiring time before any superstep; a duplicate is a programming error)
		panic(fmt.Sprintf("pregel: codec for %v registered twice", t))
	}
	if len(r.byID) == 256 {
		//shp:panics(invariant: the kind byte is 8 bits; overflow at wiring time is a programming error, not runtime input)
		panic("pregel: codec registry full")
	}
	r.byType[t] = uint8(len(r.byID))
	r.byID = append(r.byID, c)
}

// envelopeSize returns the encoded size of one envelope: uvarint destination
// id, one codec-id byte, then the message payload.
func (r *Registry) envelopeSize(env envelope) (int, error) {
	id, ok := r.byType[reflect.TypeOf(env.msg)]
	if !ok {
		return 0, fmt.Errorf("pregel: no codec registered for %T", env.msg)
	}
	return uvarintLen(uint64(env.dst)) + 1 + r.byID[id].Size(env.msg), nil
}

// appendValue encodes one bare value: a codec-id byte, then the payload.
// This is the unit shared by message envelopes and checkpoint snapshots —
// a snapshot is just values encoded through a registry, so the checkpoint
// plane gets the same measured-bytes guarantee as the wire.
func (r *Registry) appendValue(buf []byte, v Message) ([]byte, error) {
	id, ok := r.byType[reflect.TypeOf(v)]
	if !ok {
		return buf, fmt.Errorf("pregel: no codec registered for %T", v)
	}
	buf = append(buf, id)
	return r.byID[id].Append(buf, v)
}

// decodeValue reads one bare value from the front of data.
func (r *Registry) decodeValue(data []byte) (Message, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("pregel: truncated codec id")
	}
	id := data[0]
	if int(id) >= len(r.byID) {
		return nil, 0, fmt.Errorf("pregel: unknown codec id %d", id)
	}
	m, used, err := r.byID[id].Decode(data[1:])
	if err != nil {
		return nil, 0, err
	}
	return m, 1 + used, nil
}

// appendEnvelope encodes one envelope onto buf.
func (r *Registry) appendEnvelope(buf []byte, env envelope) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(env.dst))
	return r.appendValue(buf, env.msg)
}

// decodeEnvelope reads one envelope from the front of data.
func (r *Registry) decodeEnvelope(data []byte) (envelope, int, error) {
	dst, n := binary.Uvarint(data)
	if n <= 0 {
		return envelope{}, 0, fmt.Errorf("pregel: truncated envelope header")
	}
	m, used, err := r.decodeValue(data[n:])
	if err != nil {
		return envelope{}, 0, err
	}
	return envelope{dst: VertexID(dst), msg: m}, n + used, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Float64Codec encodes float64 messages as 8 little-endian bytes.
type Float64Codec struct{}

// Append serializes a float64.
func (Float64Codec) Append(buf []byte, m Message) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.(float64))), nil
}

// Decode reads a float64.
func (Float64Codec) Decode(data []byte) (Message, int, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("pregel: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), 8, nil
}

// Size returns 8.
func (Float64Codec) Size(Message) int { return 8 }

// Int64Codec encodes int64 messages as zig-zag varints.
type Int64Codec struct{}

// Append serializes an int64.
func (Int64Codec) Append(buf []byte, m Message) ([]byte, error) {
	return binary.AppendVarint(buf, m.(int64)), nil
}

// Decode reads an int64.
func (Int64Codec) Decode(data []byte) (Message, int, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("pregel: truncated int64")
	}
	return v, n, nil
}

// Size returns the varint width of m.
func (Int64Codec) Size(m Message) int {
	v := m.(int64)
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}
