package pregel

import (
	"math"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Register(float64(0), Float64Codec{})
	reg.Register(int64(0), Int64Codec{})

	cases := []envelope{
		{dst: 0, msg: float64(0)},
		{dst: 1, msg: 3.14159},
		{dst: 127, msg: math.Inf(-1)},
		{dst: 128, msg: int64(-1)},
		{dst: 1 << 40, msg: int64(math.MaxInt64)},
		{dst: 42, msg: int64(math.MinInt64)},
	}
	var buf []byte
	for _, env := range cases {
		want, err := reg.envelopeSize(env)
		if err != nil {
			t.Fatal(err)
		}
		before := len(buf)
		buf, err = reg.appendEnvelope(buf, env)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(buf) - before; got != want {
			t.Fatalf("envelopeSize(%v) = %d but Append wrote %d bytes", env, want, got)
		}
	}
	for _, want := range cases {
		got, used, err := reg.decodeEnvelope(buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[used:]
		if got.dst != want.dst || got.msg != want.msg {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all envelopes", len(buf))
	}
}

func TestRegistryUnknownType(t *testing.T) {
	reg := NewRegistry()
	reg.Register(float64(0), Float64Codec{})
	if _, err := reg.appendEnvelope(nil, envelope{dst: 1, msg: "nope"}); err == nil {
		t.Fatal("encoding an unregistered type should fail")
	}
	if _, err := reg.envelopeSize(envelope{dst: 1, msg: "nope"}); err == nil {
		t.Fatal("sizing an unregistered type should fail")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(float64(0), Float64Codec{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	reg.Register(float64(1), Float64Codec{})
}

func TestDecodeTruncatedAndUnknownID(t *testing.T) {
	reg := NewRegistry()
	reg.Register(float64(0), Float64Codec{})
	if _, _, err := reg.decodeEnvelope(nil); err == nil {
		t.Fatal("empty buffer should fail")
	}
	if _, _, err := reg.decodeEnvelope([]byte{5}); err == nil {
		t.Fatal("missing codec id should fail")
	}
	if _, _, err := reg.decodeEnvelope([]byte{5, 200, 0}); err == nil {
		t.Fatal("unknown codec id should fail")
	}
	if _, _, err := reg.decodeEnvelope([]byte{5, 0, 1, 2}); err == nil {
		t.Fatal("truncated float64 payload should fail")
	}
}
