package pregel

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"shp/internal/par"
	"shp/internal/rng"
)

// envelope is one message addressed to a destination vertex.
type envelope struct {
	dst VertexID
	msg Message
}

// outbox buffers one worker's messages for one destination worker. When a
// combiner is configured, idx tracks the position of the (single) combined
// message per destination vertex so Send can fold into it — Giraph's
// sender-side combining, which is what actually reduces wire traffic.
type outbox struct {
	env []envelope
	idx map[VertexID]int
}

// inbox holds a worker's received messages as parallel slices: sorting the
// pair by destination groups each vertex's messages into a contiguous run,
// so delivery is a merge-join against the (id-sorted) vertex list with no
// per-vertex map entries or slice allocations.
type inbox struct {
	dst []VertexID
	msg []Message
}

func (in *inbox) push(env envelope) {
	in.dst = append(in.dst, env.dst)
	in.msg = append(in.msg, env.msg)
}

func (in *inbox) len() int { return len(in.dst) }

func (in *inbox) reset() {
	in.dst = in.dst[:0]
	for i := range in.msg {
		in.msg[i] = nil // release references for the collector
	}
	in.msg = in.msg[:0]
}

// inboxSorter stable-sorts the parallel slices by destination vertex.
// Stability preserves (source worker, send order), which transports are
// required to present, keeping delivery deterministic.
type inboxSorter struct{ in *inbox }

func (s inboxSorter) Len() int           { return len(s.in.dst) }
func (s inboxSorter) Less(i, j int) bool { return s.in.dst[i] < s.in.dst[j] }
func (s inboxSorter) Swap(i, j int) {
	s.in.dst[i], s.in.dst[j] = s.in.dst[j], s.in.dst[i]
	s.in.msg[i], s.in.msg[j] = s.in.msg[j], s.in.msg[i]
}

type worker struct {
	id          int
	vertices    []*Vertex // sorted by ID
	in          inbox
	out         []outbox // per destination worker
	aggregators map[string]Aggregator
}

func (w *worker) clearOutboxes() {
	for d := range w.out {
		env := w.out[d].env
		for i := range env {
			env[i].msg = nil // release references for the collector
		}
		w.out[d].env = env[:0]
		if w.out[d].idx != nil {
			clear(w.out[d].idx)
		}
	}
}

// Engine is a configured computation over a fixed vertex set.
type Engine struct {
	opts        Options
	transport   Transport
	workers     []*worker
	vertexIndex map[VertexID]*Vertex
	aggregated  map[string]interface{}
	stats       Stats
}

// NewEngine builds an engine over the given vertices.
func NewEngine(opts Options, vertices []*Vertex) (*Engine, error) {
	if opts.Compute == nil {
		return nil, errors.New("pregel: Compute is required")
	}
	if opts.MaxSupersteps <= 0 {
		return nil, errors.New("pregel: MaxSupersteps must be > 0")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Transport == nil {
		opts.Transport = MemoryTransport()
	}
	e := &Engine{
		opts:        opts,
		transport:   opts.Transport,
		vertexIndex: make(map[VertexID]*Vertex, len(vertices)),
		aggregated:  map[string]interface{}{},
	}
	e.workers = make([]*worker, opts.Workers)
	for i := range e.workers {
		w := &worker{
			id:          i,
			out:         make([]outbox, opts.Workers),
			aggregators: map[string]Aggregator{},
		}
		if opts.Combiner != nil {
			for d := range w.out {
				w.out[d].idx = map[VertexID]int{}
			}
		}
		e.workers[i] = w
	}
	for _, v := range vertices {
		if _, dup := e.vertexIndex[v.ID]; dup {
			return nil, fmt.Errorf("pregel: duplicate vertex id %d", v.ID)
		}
		e.vertexIndex[v.ID] = v
		w := e.workerOf(v.ID)
		e.workers[w].vertices = append(e.workers[w].vertices, v)
	}
	for _, w := range e.workers {
		// Sort by id so superstep execution order and the inbox merge-join
		// are both deterministic regardless of input order.
		sort.Slice(w.vertices, func(i, j int) bool { return w.vertices[i].ID < w.vertices[j].ID })
	}
	return e, nil
}

// workerOf shards a vertex id to a worker (multiplicative hash so dense id
// ranges spread evenly, like Giraph's random vertex placement).
func (e *Engine) workerOf(id VertexID) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(e.workers)))
}

// Run executes supersteps until every vertex halts with no pending messages,
// the master requests a halt, or MaxSupersteps is reached. It returns run
// statistics.
//
// With a Checkpointer configured, the engine snapshots its full barrier
// state (vertex states, halted flags, pending inboxes, merged aggregators,
// master blob) at superstep 0 and every CheckpointEvery supersteps, and a
// *WorkerFailure during an exchange rolls every worker back to the latest
// snapshot and replays. Because compute is deterministic given barrier
// state, the replayed run — and therefore Run's result — is byte-identical
// to an undisturbed one (only Stats.Recoveries/RetriedFrames betray the
// faults). Exchange errors wrapping ErrTransient are retried in place with
// exponential backoff first; anything else escalates to recovery.
func (e *Engine) Run() (*Stats, error) {
	if err := e.transport.start(e); err != nil {
		return nil, err
	}
	defer e.transport.close()

	every := e.opts.CheckpointEvery
	if every <= 0 {
		every = 64
	}
	maxRecoveries := e.opts.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = 8
	}
	if e.opts.Checkpointer != nil {
		if err := e.checkpoint(0); err != nil {
			return nil, err
		}
	}

	for step := 0; step < e.opts.MaxSupersteps; {
		active := 0
		maxWorkerActive := 0
		for _, w := range e.workers {
			wa := 0
			for _, v := range w.vertices {
				if !v.halted {
					wa++
				}
			}
			wa += w.in.len()
			if wa > maxWorkerActive {
				maxWorkerActive = wa
			}
			active += wa
		}
		if active == 0 {
			break
		}

		workerErrs := make([]error, len(e.workers))
		par.Each(len(e.workers), func(i int) {
			workerErrs[i] = e.runWorkerSafe(e.workers[i], step)
		})
		for _, werr := range workerErrs {
			if werr != nil {
				// Compute failures are not recoverable by rollback: replaying
				// deterministic compute hits the same bug.
				return nil, werr
			}
		}

		// Barrier: account outboxes (post sender-side combining, so these
		// are the counts that actually cross the transport), exchange, and
		// merge aggregators.
		ss := SuperstepStats{Superstep: step, ActiveVertices: active, MaxWorkerActive: maxWorkerActive}
		for _, w := range e.workers {
			for d := range w.out {
				n := int64(len(w.out[d].env))
				ss.MessagesSent += n
				if d != w.id {
					ss.RemoteMessages += n
				}
			}
		}
		wireBytes, err := e.exchangeWithRetry(step)
		if err != nil {
			restored, rerr := e.recoverFrom(err, step, maxRecoveries)
			if rerr != nil {
				return nil, rerr
			}
			step = restored
			continue
		}
		ss.BytesSent = wireBytes

		// Merge worker aggregators worker-major, name-ascending: merge order
		// must never depend on Go map layout, because Merge implementations
		// may be order-sensitive (distshp's proposalAgg adopts histogram
		// pointers on first sight).
		merged := map[string]Aggregator{}
		var mergedNames []string
		for _, w := range e.workers {
			names := make([]string, 0, len(w.aggregators))
			for name := range w.aggregators {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				agg := w.aggregators[name]
				// Aggregator wire accounting: what each worker's accumulated
				// value would cost to ship to the master, summed before the
				// in-process merge collapses it.
				if ws, ok := agg.(WireSizer); ok {
					ss.AggBytes += int64(ws.WireSize())
				}
				if m, ok := merged[name]; ok {
					m.Merge(agg)
				} else {
					merged[name] = agg
					mergedNames = append(mergedNames, name)
				}
			}
			w.aggregators = map[string]Aggregator{}
		}
		sort.Strings(mergedNames)
		e.aggregated = map[string]interface{}{}
		for _, name := range mergedNames {
			e.aggregated[name] = merged[name].Value()
		}

		e.stats.PerSuperstep = append(e.stats.PerSuperstep, ss)
		e.stats.Supersteps++
		e.stats.TotalMessages += ss.MessagesSent
		e.stats.RemoteMessages += ss.RemoteMessages
		e.stats.TotalBytes += ss.BytesSent
		e.stats.AggBytes += ss.AggBytes

		halt := false
		if e.opts.Master != nil {
			var set map[string]interface{}
			halt, set = e.opts.Master(step, e.aggregated)
			//shp:ordered(distinct keys written into a map; insertion order is unobservable)
			for name, v := range set {
				e.aggregated[name] = v
			}
		}
		step++
		if halt {
			break
		}
		if e.opts.Checkpointer != nil && step%every == 0 && step < e.opts.MaxSupersteps {
			if err := e.checkpoint(step); err != nil {
				return nil, err
			}
		}
	}
	return &e.stats, nil
}

// runWorkerSafe runs one worker, converting *AggregatorError panics from
// misused aggregators into a typed *ComputeError; any other panic is a
// genuine bug and propagates with its original stack.
func (e *Engine) runWorkerSafe(w *worker, step int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(*AggregatorError); ok {
				err = &ComputeError{Worker: w.id, Superstep: step, Err: ae}
				return
			}
			panic(r)
		}
	}()
	e.runWorker(w, step)
	return nil
}

// exchangeWithRetry runs the transport exchange, retrying in place (with
// exponential backoff plus deterministic jitter) when the failure is marked
// transient — i.e. the transport guarantees the attempt had no side effect.
func (e *Engine) exchangeWithRetry(step int) (int64, error) {
	retries := e.opts.ExchangeRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := e.opts.RetryBackoff
	if backoff <= 0 {
		backoff = 500 * time.Microsecond
	}
	for attempt := 0; ; attempt++ {
		nb, err := e.transport.exchange(e, step)
		if err == nil {
			return nb, nil
		}
		if !errors.Is(err, ErrTransient) || attempt >= retries {
			return 0, err
		}
		e.stats.RetriedFrames++
		delay := backoff << attempt
		jitter := time.Duration(rng.Mix(uint64(step), uint64(attempt)) % uint64(backoff))
		time.Sleep(delay + jitter)
	}
}

// recoverFrom handles a failed exchange at the given superstep: if the error
// is a *WorkerFailure and a checkpoint is available, it tears down the
// transport, restores the latest snapshot on every worker, rewinds the
// superstep statistics, and restarts the transport, returning the superstep
// to resume from. Any other error — or recovery budget exhaustion — is
// returned unchanged.
func (e *Engine) recoverFrom(err error, step, maxRecoveries int) (int, error) {
	var wf *WorkerFailure
	if !errors.As(err, &wf) {
		return 0, err
	}
	if e.opts.Checkpointer == nil || e.stats.Recoveries >= maxRecoveries {
		return 0, err
	}
	snapStep, snapshot, ok, cerr := e.opts.Checkpointer.Latest()
	if cerr != nil || !ok {
		return 0, err
	}
	e.stats.Recoveries++
	e.transport.close()
	if rerr := e.restoreSnapshot(snapshot); rerr != nil {
		return 0, fmt.Errorf("pregel: recovery from %v failed: %w", err, rerr)
	}
	// Rewind run statistics to the checkpoint boundary; the replay will
	// re-append identical per-superstep entries (compute is deterministic),
	// keeping PerSuperstep comparable to an undisturbed run. The resilience
	// counters (Recoveries, RetriedFrames, CheckpointBytes) deliberately
	// survive the rewind: they are the cost of the faults themselves.
	e.stats.PerSuperstep = e.stats.PerSuperstep[:snapStep]
	e.stats.Supersteps = snapStep
	e.stats.TotalMessages, e.stats.RemoteMessages = 0, 0
	e.stats.TotalBytes, e.stats.AggBytes = 0, 0
	for _, ss := range e.stats.PerSuperstep {
		e.stats.TotalMessages += ss.MessagesSent
		e.stats.RemoteMessages += ss.RemoteMessages
		e.stats.TotalBytes += ss.BytesSent
		e.stats.AggBytes += ss.AggBytes
	}
	if serr := e.transport.start(e); serr != nil {
		return 0, fmt.Errorf("pregel: transport restart after recovery: %w", serr)
	}
	return snapStep, nil
}

// runWorker executes one worker's vertices for one superstep. Inbound
// messages are sorted into contiguous per-vertex runs and delivered by a
// merge-join against the id-sorted vertex list.
func (e *Engine) runWorker(w *worker, step int) {
	if w.in.len() > 0 {
		sort.Stable(inboxSorter{&w.in})
		if comb := e.opts.Combiner; comb != nil {
			// Receiver-side pass: sender-side combining already folded each
			// worker's own traffic, this folds across source workers.
			o := 0
			for i := 1; i < w.in.len(); i++ {
				if w.in.dst[i] == w.in.dst[o] {
					w.in.msg[o] = comb(w.in.msg[o], w.in.msg[i])
				} else {
					o++
					w.in.dst[o] = w.in.dst[i]
					w.in.msg[o] = w.in.msg[i]
				}
			}
			for i := o + 1; i < len(w.in.msg); i++ {
				w.in.msg[i] = nil
			}
			w.in.dst = w.in.dst[:o+1]
			w.in.msg = w.in.msg[:o+1]
		}
	}
	ctx := &Context{engine: e, worker: w, superstep: step}
	i, n := 0, w.in.len()
	for _, v := range w.vertices {
		for i < n && w.in.dst[i] < v.ID {
			i++ // message to an absent id: dropped, as before
		}
		j := i
		for j < n && w.in.dst[j] == v.ID {
			j++
		}
		msgs := w.in.msg[i:j:j]
		i = j
		if v.halted && len(msgs) == 0 {
			continue
		}
		v.halted = false
		ctx.vertex = v
		e.opts.Compute(ctx, v, msgs)
	}
	w.in.reset()
}

// Vertex returns the vertex with the given id (nil if absent). Intended for
// result extraction after Run.
func (e *Engine) Vertex(id VertexID) *Vertex { return e.vertexIndex[id] }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return len(e.workers) }
