package pregel

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Checkpointer persists superstep snapshots for failure recovery. Snapshots
// are opaque byte blobs produced by the engine's codec plane; a checkpointer
// only stores and retrieves them. Implementations must be safe for use by
// one engine at a time (the engine never calls them concurrently).
type Checkpointer interface {
	// Save persists the snapshot taken at a superstep boundary, replacing
	// any earlier snapshot for the same superstep.
	Save(superstep int, snapshot []byte) error
	// Latest returns the most recent saved snapshot, or ok=false when
	// nothing has been saved yet.
	Latest() (superstep int, snapshot []byte, ok bool, err error)
}

// MemoryCheckpointer keeps snapshots in process memory. It survives engine
// restarts within a process (useful for tests and the in-process backends)
// but not process death — use NewDiskCheckpointer for that.
type MemoryCheckpointer struct {
	mu     sync.Mutex
	snaps  map[int][]byte
	latest int
	any    bool
}

// NewMemoryCheckpointer returns an empty in-memory checkpoint store.
func NewMemoryCheckpointer() *MemoryCheckpointer {
	return &MemoryCheckpointer{snaps: map[int][]byte{}}
}

// Save stores a copy of the snapshot.
func (c *MemoryCheckpointer) Save(superstep int, snapshot []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[superstep] = append([]byte(nil), snapshot...)
	if !c.any || superstep > c.latest {
		c.latest = superstep
	}
	c.any = true
	return nil
}

// Latest returns the snapshot with the highest superstep.
func (c *MemoryCheckpointer) Latest() (int, []byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.any {
		return 0, nil, false, nil
	}
	return c.latest, c.snaps[c.latest], true, nil
}

// Load returns the snapshot saved at an exact superstep (ok=false if none).
// Not part of the Checkpointer interface; tests use it to replay from
// arbitrary boundaries.
func (c *MemoryCheckpointer) Load(superstep int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[superstep]
	return s, ok
}

// DiskCheckpointer persists snapshots as files in a directory, one file per
// superstep boundary, written atomically (temp file + rename) so a crash
// mid-write can never leave a truncated snapshot as the latest. Older
// snapshots beyond Keep are pruned after each save.
type DiskCheckpointer struct {
	dir string
	// Keep bounds how many snapshots remain on disk (<= 0 means 2: the
	// newest plus one fallback in case the newest write raced a crash).
	Keep int
}

// NewDiskCheckpointer stores snapshots under dir, creating it if needed.
func NewDiskCheckpointer(dir string) (*DiskCheckpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCheckpointer{dir: dir}, nil
}

func (c *DiskCheckpointer) path(superstep int) string {
	return filepath.Join(c.dir, fmt.Sprintf("checkpoint-%09d.snap", superstep))
}

// Save writes the snapshot atomically and prunes old ones.
func (c *DiskCheckpointer) Save(superstep int, snapshot []byte) error {
	tmp := c.path(superstep) + ".tmp"
	if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path(superstep)); err != nil {
		os.Remove(tmp)
		return err
	}
	keep := c.Keep
	if keep <= 0 {
		keep = 2
	}
	steps, err := c.steps()
	if err != nil {
		return nil // pruning is best-effort; the save itself succeeded
	}
	for len(steps) > keep {
		os.Remove(c.path(steps[0]))
		steps = steps[1:]
	}
	return nil
}

// Latest re-scans the directory, so a fresh process (or a fresh engine over
// the same directory) resumes from whatever the previous one left behind.
func (c *DiskCheckpointer) Latest() (int, []byte, bool, error) {
	steps, err := c.steps()
	if err != nil {
		return 0, nil, false, err
	}
	if len(steps) == 0 {
		return 0, nil, false, nil
	}
	step := steps[len(steps)-1]
	data, err := os.ReadFile(c.path(step))
	if err != nil {
		return 0, nil, false, err
	}
	return step, data, true, nil
}

// steps lists the saved superstep numbers in ascending order.
func (c *DiskCheckpointer) steps() ([]int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		s, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".snap"))
		if err != nil {
			continue
		}
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps, nil
}

// Snapshot format (versioned; all integers are uvarints unless noted):
//
//	magic "SHPS" | version byte | superstep | workers | total vertices
//	per vertex, worker-major then id-ascending (the engine's canonical
//	  order): id | flags byte (bit0 halted, bit1 state present) |
//	  [state value]
//	per worker: inbox length | per message: dst | message value
//	aggregated count | per entry, name-ascending: name len | name bytes |
//	  present byte | [value]
//	master blob length | blob bytes
//
// Values ride the typed-codec plane: one codec-id byte plus the codec
// payload, states and aggregated values through Options.Snapshots, inbox
// messages through Options.Codecs. Encoding order is canonical, so equal
// engine states produce byte-identical snapshots.
const (
	snapshotMagic   = "SHPS"
	snapshotVersion = 1
)

// checkpoint snapshots the engine at a superstep boundary and hands it to
// the checkpointer, charging the encoded size to Stats.CheckpointBytes.
func (e *Engine) checkpoint(superstep int) error {
	snap, err := e.encodeSnapshot(superstep)
	if err != nil {
		return fmt.Errorf("pregel: checkpoint at superstep %d: %w", superstep, err)
	}
	if err := e.opts.Checkpointer.Save(superstep, snap); err != nil {
		return fmt.Errorf("pregel: checkpoint at superstep %d: %w", superstep, err)
	}
	e.stats.CheckpointBytes += int64(len(snap))
	return nil
}

// snapValue encodes one vertex state or aggregated value via the snapshot
// registry, failing loudly when no codec covers it: silently dropping state
// would corrupt a later recovery.
func (e *Engine) snapValue(buf []byte, v interface{}) ([]byte, error) {
	if e.opts.Snapshots == nil {
		return buf, fmt.Errorf("Options.Snapshots registry required to encode %T", v)
	}
	return e.opts.Snapshots.appendValue(buf, v)
}

// encodeSnapshot serializes the complete barrier state at a superstep
// boundary: everything the next superstep's compute can observe.
func (e *Engine) encodeSnapshot(superstep int) ([]byte, error) {
	buf := append([]byte(nil), snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(superstep))
	buf = binary.AppendUvarint(buf, uint64(len(e.workers)))
	total := 0
	for _, w := range e.workers {
		total += len(w.vertices)
	}
	buf = binary.AppendUvarint(buf, uint64(total))
	var err error
	for _, w := range e.workers {
		for _, v := range w.vertices {
			buf = binary.AppendUvarint(buf, uint64(v.ID))
			var flags byte
			if v.halted {
				flags |= 1
			}
			if v.State != nil {
				flags |= 2
			}
			buf = append(buf, flags)
			if v.State != nil {
				if buf, err = e.snapValue(buf, v.State); err != nil {
					return nil, fmt.Errorf("vertex %d state: %w", v.ID, err)
				}
			}
		}
	}
	for _, w := range e.workers {
		buf = binary.AppendUvarint(buf, uint64(w.in.len()))
		for i := 0; i < w.in.len(); i++ {
			buf = binary.AppendUvarint(buf, uint64(w.in.dst[i]))
			if e.opts.Codecs == nil {
				return nil, fmt.Errorf("Options.Codecs registry required to snapshot pending messages")
			}
			if buf, err = e.opts.Codecs.appendValue(buf, w.in.msg[i]); err != nil {
				return nil, fmt.Errorf("worker %d inbox: %w", w.id, err)
			}
		}
	}
	names := make([]string, 0, len(e.aggregated))
	for name := range e.aggregated {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		v := e.aggregated[name]
		if v == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		if buf, err = e.snapValue(buf, v); err != nil {
			return nil, fmt.Errorf("aggregated %q: %w", name, err)
		}
	}
	var master []byte
	if e.opts.MasterSnapshot != nil {
		master = e.opts.MasterSnapshot()
	}
	buf = binary.AppendUvarint(buf, uint64(len(master)))
	buf = append(buf, master...)
	return buf, nil
}

// restoreSnapshot rewinds the engine to a snapshot taken by encodeSnapshot:
// vertex states and halted flags, pending inboxes, the merged aggregated
// map, and (via Options.MasterRestore) master closure state. Outboxes and
// in-flight worker aggregators are cleared — they were produced after the
// boundary being restored.
func (e *Engine) restoreSnapshot(data []byte) error {
	if len(data) < len(snapshotMagic)+1 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("bad snapshot magic")
	}
	if v := data[len(snapshotMagic)]; v != snapshotVersion {
		return fmt.Errorf("unsupported snapshot version %d", v)
	}
	data = data[len(snapshotMagic)+1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("truncated snapshot")
		}
		data = data[n:]
		return v, nil
	}
	if _, err := readUvarint(); err != nil { // superstep: carried by the checkpointer
		return err
	}
	workers, err := readUvarint()
	if err != nil {
		return err
	}
	if int(workers) != len(e.workers) {
		return fmt.Errorf("snapshot for %d workers, engine has %d", workers, len(e.workers))
	}
	total, err := readUvarint()
	if err != nil {
		return err
	}
	wantTotal := 0
	for _, w := range e.workers {
		wantTotal += len(w.vertices)
	}
	if int(total) != wantTotal {
		return fmt.Errorf("snapshot has %d vertices, engine has %d", total, wantTotal)
	}
	for _, w := range e.workers {
		for _, v := range w.vertices {
			id, err := readUvarint()
			if err != nil {
				return err
			}
			if VertexID(id) != v.ID {
				return fmt.Errorf("snapshot vertex %d where engine expects %d", id, v.ID)
			}
			if len(data) == 0 {
				return fmt.Errorf("truncated snapshot")
			}
			flags := data[0]
			data = data[1:]
			v.halted = flags&1 != 0
			if flags&2 != 0 {
				if e.opts.Snapshots == nil {
					return fmt.Errorf("Options.Snapshots registry required to restore vertex states")
				}
				state, used, err := e.opts.Snapshots.decodeValue(data)
				if err != nil {
					return fmt.Errorf("vertex %d state: %w", id, err)
				}
				data = data[used:]
				v.State = state
			} else {
				v.State = nil
			}
		}
	}
	for _, w := range e.workers {
		w.in.reset()
		n, err := readUvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			dst, err := readUvarint()
			if err != nil {
				return err
			}
			msg, used, err := e.opts.Codecs.decodeValue(data)
			if err != nil {
				return fmt.Errorf("worker %d inbox: %w", w.id, err)
			}
			data = data[used:]
			w.in.push(envelope{dst: VertexID(dst), msg: msg})
		}
		w.clearOutboxes()
		w.aggregators = map[string]Aggregator{}
	}
	nAgg, err := readUvarint()
	if err != nil {
		return err
	}
	e.aggregated = map[string]interface{}{}
	for i := uint64(0); i < nAgg; i++ {
		nameLen, err := readUvarint()
		if err != nil {
			return err
		}
		if nameLen >= uint64(len(data)) { // need the name plus its presence byte
			return fmt.Errorf("truncated snapshot")
		}
		name := string(data[:nameLen])
		present := data[nameLen]
		data = data[nameLen+1:]
		if present == 0 {
			e.aggregated[name] = nil
			continue
		}
		if e.opts.Snapshots == nil {
			return fmt.Errorf("Options.Snapshots registry required to restore aggregated values")
		}
		v, used, err := e.opts.Snapshots.decodeValue(data)
		if err != nil {
			return fmt.Errorf("aggregated %q: %w", name, err)
		}
		data = data[used:]
		e.aggregated[name] = v
	}
	blobLen, err := readUvarint()
	if err != nil {
		return err
	}
	if uint64(len(data)) < blobLen {
		return fmt.Errorf("truncated snapshot")
	}
	blob := data[:blobLen]
	data = data[blobLen:]
	if len(data) != 0 {
		return fmt.Errorf("%d trailing bytes in snapshot", len(data))
	}
	if e.opts.MasterRestore != nil {
		if err := e.opts.MasterRestore(blob); err != nil {
			return fmt.Errorf("master restore: %w", err)
		}
	}
	return nil
}
