package pregel

import (
	"errors"
	"fmt"
	"time"
)

// ErrTransient marks a transport error as retryable in place: the exchange
// failed before any side effect (no partial frame written, no inbox
// mutated), so simply calling exchange again is safe. Transports and
// wrappers must wrap this sentinel ONLY for such side-effect-free failures;
// anything else must surface as a *WorkerFailure so the engine rolls back
// to a checkpoint instead of desynchronizing the frame stream.
var ErrTransient = errors.New("pregel: transient transport error")

// WorkerFailure reports that a worker became unreachable (or its connection
// was poisoned by a partial frame) during the exchange at a superstep. It is
// the trigger for checkpoint recovery: with a Checkpointer configured the
// engine rolls back and replays; without one, Run returns it.
type WorkerFailure struct {
	Worker    int
	Superstep int
	Err       error
}

func (f *WorkerFailure) Error() string {
	return fmt.Sprintf("pregel: worker %d failed at superstep %d: %v", f.Worker, f.Superstep, f.Err)
}

func (f *WorkerFailure) Unwrap() error { return f.Err }

// AggregatorError reports an aggregator misuse: an unknown name, or a value
// of the wrong type fed to Add. Aggregator implementations panic with it;
// the engine recovers the panic into a *ComputeError so Run fails cleanly.
type AggregatorError struct {
	Name   string
	Reason string
}

func (e *AggregatorError) Error() string {
	return fmt.Sprintf("pregel: aggregator %q: %s", e.Name, e.Reason)
}

// ComputeError reports a vertex-program failure on one worker. It is not
// recoverable by checkpoint rollback — replaying deterministic compute
// would hit the same bug — so Run returns it immediately.
type ComputeError struct {
	Worker    int
	Superstep int
	Err       error
}

func (e *ComputeError) Error() string {
	return fmt.Sprintf("pregel: worker %d superstep %d: %v", e.Worker, e.Superstep, e.Err)
}

func (e *ComputeError) Unwrap() error { return e.Err }

// FaultPlan schedules deterministic faults for a FaultyTransport. The zero
// value injects nothing.
type FaultPlan struct {
	// KillWorker/KillStep: at the exchange of superstep KillStep, fail
	// permanently with a *WorkerFailure blaming KillWorker. Enabled iff
	// KillStep > 0 (superstep 0's exchange cannot be killed; the initial
	// checkpoint is taken at step 0, so a kill there has nothing to roll
	// back past). The kill fires once per transport instance: after the
	// engine recovers and replays, the same step passes.
	KillWorker int
	KillStep   int
	// DropEvery > 0 drops the first attempt of every DropEvery-th exchange
	// (supersteps where step % DropEvery == DropEvery-1) with a transient
	// error, exercising the in-place retry path. The drop happens before
	// the inner transport runs, so it is side-effect-free by construction.
	DropEvery int
	// DelayEvery > 0 sleeps Delay before every DelayEvery-th exchange.
	DelayEvery int
	Delay      time.Duration
}

// faultyTransport wraps an inner Transport and injects the faults scheduled
// by its plan. Faults are a deterministic function of (superstep, attempt),
// so a recovered replay sees the same world minus the one-shot kill.
type faultyTransport struct {
	inner   Transport
	plan    FaultPlan
	killed  bool
	dropped map[int]bool // superstep -> already dropped once
}

// FaultyTransport wraps inner with deterministic fault injection. Pass the
// result as Options.Transport to test recovery paths; see FaultPlan.
func FaultyTransport(inner Transport, plan FaultPlan) Transport {
	return &faultyTransport{inner: inner, plan: plan, dropped: map[int]bool{}}
}

func (t *faultyTransport) start(e *Engine) error { return t.inner.start(e) }

func (t *faultyTransport) exchange(e *Engine, superstep int) (int64, error) {
	if t.plan.DelayEvery > 0 && superstep%t.plan.DelayEvery == t.plan.DelayEvery-1 {
		time.Sleep(t.plan.Delay)
	}
	if !t.killed && t.plan.KillStep > 0 && superstep == t.plan.KillStep {
		t.killed = true
		// A real worker death poisons its connections; mirror that by
		// closing the inner transport. The engine's recovery closes and
		// restarts the transport anyway, so this only asserts that restart
		// works from a torn-down state, not just a drained one.
		_ = t.inner.close()
		return 0, &WorkerFailure{
			Worker:    t.plan.KillWorker,
			Superstep: superstep,
			Err:       errors.New("injected worker kill"),
		}
	}
	if t.plan.DropEvery > 0 && superstep%t.plan.DropEvery == t.plan.DropEvery-1 && !t.dropped[superstep] {
		t.dropped[superstep] = true
		return 0, fmt.Errorf("injected frame drop at superstep %d: %w", superstep, ErrTransient)
	}
	return t.inner.exchange(e, superstep)
}

func (t *faultyTransport) close() error { return t.inner.close() }
