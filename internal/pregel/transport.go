package pregel

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shp/internal/par"
)

// Transport moves message envelopes between workers at the superstep
// barrier. Implementations must deliver every (src, dst) batch exactly once
// per superstep and preserve per-pair send order; the engine appends
// arrivals in source-worker order, so delivery is deterministic regardless
// of transport timing.
//
// The interface is closed over this package's implementations (its methods
// take engine internals); select a backend with MemoryTransport or
// TCPTransport.
type Transport interface {
	// start prepares endpoints for the engine's workers before superstep 0.
	start(e *Engine) error
	// exchange ships every worker's per-destination outbox into the
	// destination inboxes and returns the byte count to charge to
	// SuperstepStats.BytesSent. The in-process backend reports the encoded
	// (or estimated) size of all traffic; the TCP backend reports the bytes
	// that actually crossed sockets, frame headers included.
	exchange(e *Engine, step int) (int64, error)
	// close releases sockets and buffers after the run.
	close() error
}

// MemoryTransport returns the in-process backend: envelopes move between
// workers as Go values, with no serialization. Bytes are accounted from
// registered codec sizes when the engine has a codec Registry, falling back
// to the Options.MessageBytes estimate per message otherwise.
func MemoryTransport() Transport { return &memoryTransport{} }

type memoryTransport struct{}

func (memoryTransport) start(*Engine) error { return nil }
func (memoryTransport) close() error        { return nil }

func (memoryTransport) exchange(e *Engine, step int) (int64, error) {
	var bytes int64
	for _, src := range e.workers {
		for dst := range src.out {
			ob := &src.out[dst]
			for _, env := range ob.env {
				bytes += e.sizeOf(env)
			}
		}
	}
	// Deliver in source-worker order so each inbox sees batches from worker
	// 0 first, then 1, ... — the order every transport must present.
	par.Each(len(e.workers), func(dst int) {
		w := e.workers[dst]
		for src := range e.workers {
			ob := &e.workers[src].out[dst]
			for _, env := range ob.env {
				w.in.push(env)
			}
		}
	})
	for _, src := range e.workers {
		src.clearOutboxes()
	}
	return bytes, nil
}

// sizeOf returns the wire size to charge for one envelope: the codec-encoded
// size when a codec is registered for the message type, else the
// MessageBytes estimate, else 0.
func (e *Engine) sizeOf(env envelope) int64 {
	if reg := e.opts.Codecs; reg != nil {
		if n, err := reg.envelopeSize(env); err == nil {
			return int64(n)
		}
	}
	if est := e.opts.MessageBytes; est != nil {
		return int64(est(env.msg))
	}
	return 0
}

// frameHeaderSize is the fixed per-batch framing overhead on the TCP wire:
// payload length, superstep (desync check), and envelope count.
const frameHeaderSize = 12

// TCPTransport returns a loopback TCP backend: each worker listens on a
// 127.0.0.1 port, the mesh is dialed at start, and every superstep each
// worker ships one length-prefixed frame of codec-encoded envelopes to every
// peer (empty frames act as barrier acks). Same-worker messages never touch
// a socket, mirroring how a Giraph worker short-circuits local traffic.
//
// The engine must be configured with a codec Registry covering every message
// type, or exchange fails.
func TCPTransport() Transport { return &tcpTransport{} }

type tcpTransport struct {
	listeners []net.Listener
	send      [][]net.Conn // [src][dst], nil on the diagonal
	recv      [][]net.Conn // [dst][src], nil on the diagonal
	encBuf    [][][]byte   // [src][dst] reusable frame buffers
	staging   [][][]envelope
}

func (t *tcpTransport) start(e *Engine) error {
	if e.opts.Codecs == nil {
		return fmt.Errorf("pregel: TCP transport requires Options.Codecs")
	}
	n := len(e.workers)
	t.listeners = make([]net.Listener, n)
	t.send = make([][]net.Conn, n)
	t.recv = make([][]net.Conn, n)
	t.encBuf = make([][][]byte, n)
	t.staging = make([][][]envelope, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return err
		}
		t.listeners[i] = ln
		t.send[i] = make([]net.Conn, n)
		t.recv[i] = make([]net.Conn, n)
		t.encBuf[i] = make([][]byte, n)
		t.staging[i] = make([][]envelope, n)
	}

	// Accept and dial concurrently: every worker dials every peer's
	// listener and identifies itself with a 4-byte hello.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		first := firstErr == nil
		if first {
			firstErr = err
		}
		mu.Unlock()
		if first {
			// A failed dial leaves the destination's accept loop waiting for
			// a hello that will never come; closing the listeners makes every
			// blocked Accept return so wg.Wait cannot deadlock.
			for _, ln := range t.listeners {
				ln.Close()
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			for i := 0; i < n-1; i++ {
				conn, err := t.listeners[dst].Accept()
				if err != nil {
					fail(err)
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					fail(err)
					return
				}
				src := int(binary.LittleEndian.Uint32(hello[:]))
				if src < 0 || src >= n || src == dst {
					fail(fmt.Errorf("pregel: bad transport hello from worker %d", src))
					return
				}
				mu.Lock()
				t.recv[dst][src] = conn
				mu.Unlock()
			}
		}(dst)
	}
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < n; dst++ {
				if dst == src {
					continue
				}
				conn, err := net.Dial("tcp", t.listeners[dst].Addr().String())
				if err != nil {
					fail(err)
					return
				}
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(src))
				if _, err := conn.Write(hello[:]); err != nil {
					fail(err)
					return
				}
				t.send[src][dst] = conn
			}
		}(src)
	}
	wg.Wait()
	if firstErr != nil {
		t.close()
		return firstErr
	}
	return nil
}

func (t *tcpTransport) exchange(e *Engine, step int) (int64, error) {
	n := len(e.workers)
	var wire atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// One writer and one reader goroutine per (src, dst) pair: with every
	// endpoint draining independently, a full socket buffer can never
	// deadlock the barrier.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				// Local traffic short-circuits the wire.
				t.staging[src][src] = append(t.staging[src][src][:0], e.workers[src].out[src].env...)
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				nb, err := t.writeFrame(e, src, dst, step)
				if err != nil {
					// The write may have landed partially, poisoning the
					// frame stream to dst: blame dst and let the engine roll
					// back to a checkpoint rather than retry in place.
					fail(&WorkerFailure{Worker: dst, Superstep: step,
						Err: fmt.Errorf("worker %d -> %d: %w", src, dst, err)})
					// Unblock the peer's reader: no frame is coming.
					t.send[src][dst].Close()
					return
				}
				wire.Add(nb)
			}(src, dst)
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				if err := t.readFrame(e, src, dst, step); err != nil {
					fail(&WorkerFailure{Worker: src, Superstep: step,
						Err: fmt.Errorf("worker %d <- %d: %w", dst, src, err)})
					// Unblock a writer mid-frame on the dead connection.
					t.recv[dst][src].Close()
				}
			}(src, dst)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	par.Each(n, func(dst int) {
		w := e.workers[dst]
		for src := 0; src < n; src++ {
			for _, env := range t.staging[dst][src] {
				w.in.push(env)
			}
			t.staging[dst][src] = t.staging[dst][src][:0]
		}
	})
	for _, src := range e.workers {
		src.clearOutboxes()
	}
	return wire.Load(), nil
}

// writeFrame encodes worker src's outbox for dst and ships it, returning the
// bytes written (header included).
func (t *tcpTransport) writeFrame(e *Engine, src, dst, step int) (int64, error) {
	ob := &e.workers[src].out[dst]
	buf := t.encBuf[src][dst]
	if cap(buf) < frameHeaderSize {
		buf = make([]byte, frameHeaderSize, 256)
	}
	buf = buf[:frameHeaderSize]
	var err error
	for _, env := range ob.env {
		if buf, err = e.opts.Codecs.appendEnvelope(buf, env); err != nil {
			return 0, err
		}
	}
	if len(buf)-frameHeaderSize > 1<<30 {
		// Refuse to emit what readFrame would reject: a wrapped uint32
		// length header would desync the whole barrier.
		return 0, fmt.Errorf("frame payload too large (%d bytes)", len(buf)-frameHeaderSize)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-frameHeaderSize))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(step))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(ob.env)))
	t.encBuf[src][dst] = buf
	conn := t.send[src][dst]
	if d := e.opts.FrameTimeout; d > 0 {
		//shp:nondet(I/O deadline: wall time bounds a syscall, never feeds computation)
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := conn.Write(buf); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// readFrame receives one frame from src on dst's endpoint and decodes it
// into the staging area.
func (t *tcpTransport) readFrame(e *Engine, src, dst, step int) error {
	conn := t.recv[dst][src]
	if d := e.opts.FrameTimeout; d > 0 {
		// One deadline covers the whole frame: a peer that stalls mid-frame
		// is as dead as one that never sends the header.
		//shp:nondet(I/O deadline: wall time bounds a syscall, never feeds computation)
		conn.SetReadDeadline(time.Now().Add(d))
	}
	var header [frameHeaderSize]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		return err
	}
	payloadLen := binary.LittleEndian.Uint32(header[0:4])
	gotStep := binary.LittleEndian.Uint32(header[4:8])
	count := binary.LittleEndian.Uint32(header[8:12])
	if int(gotStep) != step {
		return fmt.Errorf("superstep desync: frame for step %d during step %d", gotStep, step)
	}
	if payloadLen > 1<<30 {
		return fmt.Errorf("oversized frame (%d bytes)", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return err
	}
	envs := t.staging[dst][src][:0]
	for i := uint32(0); i < count; i++ {
		env, used, err := e.opts.Codecs.decodeEnvelope(payload)
		if err != nil {
			return err
		}
		payload = payload[used:]
		envs = append(envs, env)
	}
	if len(payload) != 0 {
		return fmt.Errorf("%d trailing bytes after %d envelopes", len(payload), count)
	}
	t.staging[dst][src] = envs
	return nil
}

func (t *tcpTransport) close() error {
	for _, row := range t.send {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, row := range t.recv {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	t.send, t.recv, t.listeners = nil, nil, nil
	return nil
}
