package pregel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"testing"
	"time"
)

// ringRun is a deterministic, never-halting computation that exercises every
// plane a checkpoint must cover: float64 vertex states that evolve each
// superstep, ring messages pending at every barrier, a merged aggregator,
// and master closure state outside the aggregator plane.
type ringRun struct {
	masterSum float64
	opts      Options
	vertices  []*Vertex
}

func newRingRun(n, workers, steps int, transport Transport, cp Checkpointer, every int) *ringRun {
	r := &ringRun{}
	r.vertices = make([]*Vertex, n)
	for i := range r.vertices {
		r.vertices[i] = &Vertex{ID: VertexID(i), State: float64(i + 1)}
	}
	r.opts = Options{
		Workers:         workers,
		MaxSupersteps:   steps,
		Transport:       transport,
		Codecs:          floatRegistry(),
		Snapshots:       floatRegistry(),
		Checkpointer:    cp,
		CheckpointEvery: every,
		Aggregators: map[string]AggregatorDef{
			"total": {New: func() Aggregator { return &SumAggregator{} }},
		},
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			val := v.State.(float64)
			for _, m := range msgs {
				val += m.(float64)
			}
			val *= 0.75 // keep magnitudes bounded
			v.State = val
			ctx.Aggregate("total", val)
			ctx.Send(VertexID((int(v.ID)+1)%n), val*0.5)
		},
		Master: func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
			if v, ok := agg["total"]; ok {
				r.masterSum += v.(float64) * float64(step+1)
			}
			return false, nil
		},
		MasterSnapshot: func() []byte {
			return binary.LittleEndian.AppendUint64(nil, math.Float64bits(r.masterSum))
		},
		MasterRestore: func(data []byte) error {
			if len(data) != 8 {
				return fmt.Errorf("bad master blob length %d", len(data))
			}
			r.masterSum = math.Float64frombits(binary.LittleEndian.Uint64(data))
			return nil
		},
	}
	return r
}

// run executes the computation, failing the test on error.
func (r *ringRun) run(t *testing.T) *Stats {
	t.Helper()
	eng, err := NewEngine(r.opts, r.vertices)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// requireSameRun asserts bit-identical final states, master closures, and
// per-superstep statistics between two finished ringRuns.
func requireSameRun(t *testing.T, label string, a, b *ringRun, sa, sb *Stats) {
	t.Helper()
	for i := range a.vertices {
		av := a.vertices[i].State.(float64)
		bv := b.vertices[i].State.(float64)
		if math.Float64bits(av) != math.Float64bits(bv) {
			t.Fatalf("%s: state[%d] differs: %v vs %v", label, i, av, bv)
		}
	}
	if math.Float64bits(a.masterSum) != math.Float64bits(b.masterSum) {
		t.Fatalf("%s: master state differs: %v vs %v", label, a.masterSum, b.masterSum)
	}
	if len(sa.PerSuperstep) != len(sb.PerSuperstep) {
		t.Fatalf("%s: %d vs %d supersteps", label, len(sa.PerSuperstep), len(sb.PerSuperstep))
	}
	for i := range sa.PerSuperstep {
		if sa.PerSuperstep[i] != sb.PerSuperstep[i] {
			t.Fatalf("%s: superstep %d stats differ:\n%+v\n%+v", label, i, sa.PerSuperstep[i], sb.PerSuperstep[i])
		}
	}
}

// TestRecoveryAtEverySuperstep is the engine-level property test: with a
// checkpoint at every superstep, a worker kill injected at each possible
// exchange recovers and finishes bit-for-bit identical to the undisturbed
// run — states, master closure, and the full per-superstep stats stream.
func TestRecoveryAtEverySuperstep(t *testing.T) {
	const n, workers, steps = 24, 3, 12
	base := newRingRun(n, workers, steps, nil, nil, 0)
	baseStats := base.run(t)

	for kill := 1; kill < steps; kill++ {
		r := newRingRun(n, workers, steps, FaultyTransport(MemoryTransport(), FaultPlan{
			KillWorker: 1, KillStep: kill,
		}), NewMemoryCheckpointer(), 1)
		stats := r.run(t)
		requireSameRun(t, fmt.Sprintf("kill@%d", kill), base, r, baseStats, stats)
		if stats.Recoveries != 1 {
			t.Fatalf("kill@%d: Recoveries = %d, want 1", kill, stats.Recoveries)
		}
		if stats.CheckpointBytes <= 0 {
			t.Fatalf("kill@%d: CheckpointBytes = %d, want > 0", kill, stats.CheckpointBytes)
		}
	}
}

// TestRecoveryAcrossCadences kills at a fixed superstep under several
// checkpoint cadences: rolling back 1, several, or all supersteps must all
// converge to the same bits.
func TestRecoveryAcrossCadences(t *testing.T) {
	const n, workers, steps, kill = 24, 3, 12, 9
	base := newRingRun(n, workers, steps, nil, nil, 0)
	baseStats := base.run(t)

	for _, every := range []int{1, 3, 5, 64} {
		r := newRingRun(n, workers, steps, FaultyTransport(MemoryTransport(), FaultPlan{
			KillWorker: 2, KillStep: kill,
		}), NewMemoryCheckpointer(), every)
		stats := r.run(t)
		requireSameRun(t, fmt.Sprintf("every=%d", every), base, r, baseStats, stats)
		if stats.Recoveries != 1 {
			t.Fatalf("every=%d: Recoveries = %d, want 1", every, stats.Recoveries)
		}
	}
}

// TestTransientDropsRetryInPlace injects side-effect-free frame drops: the
// engine must absorb them with in-place retries — no recovery, no
// checkpointer needed — and still produce the undisturbed bits.
func TestTransientDropsRetryInPlace(t *testing.T) {
	const n, workers, steps = 24, 3, 12
	base := newRingRun(n, workers, steps, nil, nil, 0)
	baseStats := base.run(t)

	r := newRingRun(n, workers, steps, FaultyTransport(MemoryTransport(), FaultPlan{
		DropEvery: 3,
	}), nil, 0)
	stats := r.run(t)
	requireSameRun(t, "drops", base, r, baseStats, stats)
	if stats.RetriedFrames == 0 {
		t.Fatal("RetriedFrames = 0, want > 0")
	}
	if stats.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0 (drops are transient)", stats.Recoveries)
	}
}

// TestWorkerFailureWithoutCheckpointer: no checkpointer means a kill is
// fatal, surfaced as the typed *WorkerFailure.
func TestWorkerFailureWithoutCheckpointer(t *testing.T) {
	r := newRingRun(24, 3, 12, FaultyTransport(MemoryTransport(), FaultPlan{
		KillWorker: 1, KillStep: 4,
	}), nil, 0)
	eng, err := NewEngine(r.opts, r.vertices)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var wf *WorkerFailure
	if !errors.As(err, &wf) {
		t.Fatalf("Run returned %v, want a *WorkerFailure", err)
	}
	if wf.Worker != 1 || wf.Superstep != 4 {
		t.Fatalf("WorkerFailure{Worker: %d, Superstep: %d}, want {1, 4}", wf.Worker, wf.Superstep)
	}
}

// TestRecoveryOverTCP runs the kill/recover cycle on the real socket
// transport: recovery must tear the mesh down and rebuild it.
func TestRecoveryOverTCP(t *testing.T) {
	const n, workers, steps = 24, 3, 10
	base := newRingRun(n, workers, steps, nil, nil, 0)
	baseStats := base.run(t)

	r := newRingRun(n, workers, steps, FaultyTransport(TCPTransport(), FaultPlan{
		KillWorker: 1, KillStep: 5,
	}), NewMemoryCheckpointer(), 2)
	stats := r.run(t)
	// BytesSent differs between transports (frames vs codec sizes), so
	// compare states and master closure only.
	for i := range base.vertices {
		av := base.vertices[i].State.(float64)
		bv := r.vertices[i].State.(float64)
		if math.Float64bits(av) != math.Float64bits(bv) {
			t.Fatalf("state[%d] differs: %v vs %v", i, av, bv)
		}
	}
	if math.Float64bits(base.masterSum) != math.Float64bits(r.masterSum) {
		t.Fatalf("master state differs: %v vs %v", base.masterSum, r.masterSum)
	}
	if len(baseStats.PerSuperstep) != len(stats.PerSuperstep) {
		t.Fatalf("%d vs %d supersteps", len(baseStats.PerSuperstep), len(stats.PerSuperstep))
	}
	if stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", stats.Recoveries)
	}
}

// TestPeerCloseMidRunSurfacesTypedError closes a live TCP connection behind
// the engine's back; the next exchange must fail with a *WorkerFailure
// instead of hanging the barrier. The whole run is guarded by a timeout.
func TestPeerCloseMidRunSurfacesTypedError(t *testing.T) {
	tr := TCPTransport().(*tcpTransport)
	r := newRingRun(24, 3, 12, tr, nil, 0)
	inner := r.opts.Master
	r.opts.Master = func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
		if step == 1 {
			// Sever worker 1's inbound link from worker 0 between barriers:
			// from the engine's view, a peer died mid-run.
			tr.recv[1][0].Close()
		}
		return inner(step, agg)
	}
	eng, err := NewEngine(r.opts, r.vertices)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run()
		done <- err
	}()
	select {
	case err := <-done:
		var wf *WorkerFailure
		if !errors.As(err, &wf) {
			t.Fatalf("Run returned %v, want a *WorkerFailure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine hung after peer connection closed mid-run")
	}
}

// TestReadFrameTimeout wires a tcpTransport to a silent peer: with
// FrameTimeout set, readFrame must give up with a timeout error instead of
// blocking forever.
func TestReadFrameTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	tr := &tcpTransport{
		recv:    [][]net.Conn{{nil, client}, {nil, nil}},
		staging: [][][]envelope{make([][]envelope, 2), make([][]envelope, 2)},
	}
	e := &Engine{opts: Options{FrameTimeout: 50 * time.Millisecond, Codecs: floatRegistry()}}
	start := time.Now()
	err = tr.readFrame(e, 1, 0, 0) // worker 0 reading from silent worker 1
	if err == nil {
		t.Fatal("readFrame succeeded against a silent peer")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("readFrame error %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline was 50ms", elapsed)
	}
}

// TestAggregatorErrorsSurfaceThroughRun: aggregator misuse (wrong value
// type, unknown name) must fail the run with a typed *ComputeError instead
// of crashing the worker goroutine.
func TestAggregatorErrorsSurfaceThroughRun(t *testing.T) {
	cases := []struct {
		name    string
		compute ComputeFunc
	}{
		{"type mismatch", func(ctx *Context, v *Vertex, msgs []Message) {
			ctx.Aggregate("total", int64(1)) // SumAggregator wants float64
		}},
		{"unknown name", func(ctx *Context, v *Vertex, msgs []Message) {
			ctx.Aggregate("no-such-aggregator", 1.0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(Options{
				Workers:       3,
				MaxSupersteps: 4,
				Aggregators:   map[string]AggregatorDef{"total": {New: func() Aggregator { return &SumAggregator{} }}},
				Compute:       tc.compute,
			}, buildChain(20))
			if err != nil {
				t.Fatal(err)
			}
			_, err = eng.Run()
			var ce *ComputeError
			if !errors.As(err, &ce) {
				t.Fatalf("Run returned %v, want a *ComputeError", err)
			}
			var ae *AggregatorError
			if !errors.As(err, &ae) {
				t.Fatalf("ComputeError %v does not wrap an *AggregatorError", err)
			}
		})
	}
}

// TestDiskCheckpointer covers the persistent store: atomic saves, re-scan by
// a fresh instance (process-restart shape), and pruning.
func TestDiskCheckpointer(t *testing.T) {
	dir := t.TempDir()
	cp, err := NewDiskCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cp.Latest(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v, want none", ok, err)
	}
	for step := 0; step <= 8; step += 4 {
		if err := cp.Save(step, []byte(fmt.Sprintf("snap-%d", step))); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh instance over the same directory sees the latest snapshot.
	cp2, err := NewDiskCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	step, snap, ok, err := cp2.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if step != 8 || string(snap) != "snap-8" {
		t.Fatalf("Latest = (%d, %q), want (8, snap-8)", step, snap)
	}
	// Default pruning keeps the newest two snapshots.
	steps, err := cp2.steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 4 || steps[1] != 8 {
		t.Fatalf("kept steps %v, want [4 8]", steps)
	}
}

// TestDiskCheckpointerDrivesRecovery runs the full kill/recover cycle with
// snapshots on disk instead of in memory.
func TestDiskCheckpointerDrivesRecovery(t *testing.T) {
	const n, workers, steps = 24, 3, 12
	base := newRingRun(n, workers, steps, nil, nil, 0)
	base.run(t)

	cp, err := NewDiskCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := newRingRun(n, workers, steps, FaultyTransport(MemoryTransport(), FaultPlan{
		KillWorker: 0, KillStep: 7,
	}), cp, 3)
	stats := r.run(t)
	for i := range base.vertices {
		av := base.vertices[i].State.(float64)
		bv := r.vertices[i].State.(float64)
		if math.Float64bits(av) != math.Float64bits(bv) {
			t.Fatalf("state[%d] differs: %v vs %v", i, av, bv)
		}
	}
	if stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", stats.Recoveries)
	}
}
