package pregel

import (
	"math"
	"testing"
)

// buildChain returns vertices 0..n-1; state holds a float64 distance.
func buildChain(n int) []*Vertex {
	vs := make([]*Vertex, n)
	for i := range vs {
		vs[i] = &Vertex{ID: VertexID(i), State: math.Inf(1)}
	}
	return vs
}

// TestSSSPChain runs single-source shortest paths on a path graph: the
// canonical Pregel example exercises messaging, halting, and reactivation.
func TestSSSPChain(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 3, 8} {
		vs := buildChain(n)
		eng, err := NewEngine(Options{
			Workers:       workers,
			MaxSupersteps: n + 2,
			Compute: func(ctx *Context, v *Vertex, msgs []Message) {
				dist := v.State.(float64)
				if ctx.Superstep() == 0 && v.ID == 0 {
					dist = 0
				}
				for _, m := range msgs {
					if d := m.(float64); d < dist {
						dist = d
					}
				}
				if dist < v.State.(float64) || (ctx.Superstep() == 0 && v.ID == 0) {
					v.State = dist
					if int(v.ID) < n-1 {
						ctx.Send(v.ID+1, dist+1)
					}
				}
				ctx.VoteToHalt()
			},
		}, vs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := eng.Vertex(VertexID(i)).State.(float64); got != float64(i) {
				t.Fatalf("workers=%d: dist[%d] = %v, want %d", workers, i, got, i)
			}
		}
		if stats.Supersteps < n {
			t.Fatalf("workers=%d: finished in %d supersteps, chain needs >= %d", workers, stats.Supersteps, n)
		}
	}
}

func TestHaltsWhenAllInactive(t *testing.T) {
	vs := buildChain(10)
	eng, err := NewEngine(Options{
		MaxSupersteps: 100,
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 {
		t.Fatalf("expected 1 superstep, got %d", stats.Supersteps)
	}
}

func TestMasterHalt(t *testing.T) {
	vs := buildChain(4)
	eng, err := NewEngine(Options{
		MaxSupersteps: 100,
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			// Keep everyone busy forever.
			ctx.Send(v.ID, 1.0)
		},
		Master: func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
			return step == 4, nil
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 5 {
		t.Fatalf("master halt at step 4 should give 5 supersteps, got %d", stats.Supersteps)
	}
}

func TestAggregatorSumAcrossWorkers(t *testing.T) {
	vs := buildChain(100)
	eng, err := NewEngine(Options{
		Workers:       7,
		MaxSupersteps: 2,
		Aggregators:   map[string]AggregatorDef{"total": {New: func() Aggregator { return &SumAggregator{} }}},
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			if ctx.Superstep() == 0 {
				ctx.Aggregate("total", float64(v.ID))
				return // stay active to observe the value next superstep
			}
			v.State = ctx.ReadAggregator("total")
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(99 * 100 / 2)
	for i := 0; i < 100; i++ {
		if got := eng.Vertex(VertexID(i)).State.(float64); got != want {
			t.Fatalf("vertex %d read aggregator %v, want %v", i, got, want)
		}
	}
}

func TestMasterSetsAggregator(t *testing.T) {
	vs := buildChain(3)
	eng, err := NewEngine(Options{
		MaxSupersteps: 3,
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			if ctx.Superstep() == 1 {
				v.State = ctx.ReadAggregator("broadcast")
				ctx.VoteToHalt()
			}
		},
		Master: func(step int, agg map[string]interface{}) (bool, map[string]interface{}) {
			if step == 0 {
				return false, map[string]interface{}{"broadcast": 42.0}
			}
			return false, nil
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := eng.Vertex(VertexID(i)).State; got != 42.0 {
			t.Fatalf("vertex %d got broadcast %v", i, got)
		}
	}
}

func TestCombinerReducesDelivery(t *testing.T) {
	// 20 vertices all message vertex 0 with 1.0; a sum combiner should
	// deliver a single combined message.
	vs := buildChain(20)
	var deliveredCount int
	var deliveredSum float64
	eng, err := NewEngine(Options{
		Workers:       4,
		MaxSupersteps: 2,
		Combiner:      func(a, b Message) Message { return a.(float64) + b.(float64) },
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			if ctx.Superstep() == 0 {
				ctx.Send(0, 1.0)
				ctx.VoteToHalt()
				return
			}
			if v.ID == 0 {
				deliveredCount = len(msgs)
				for _, m := range msgs {
					deliveredSum += m.(float64)
				}
			}
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredSum != 20 {
		t.Fatalf("combined sum = %v, want 20", deliveredSum)
	}
	if deliveredCount != 1 {
		t.Fatalf("combiner delivered %d messages, want 1", deliveredCount)
	}
}

func TestMessageAccounting(t *testing.T) {
	vs := buildChain(10)
	eng, err := NewEngine(Options{
		Workers:       2,
		MaxSupersteps: 2,
		MessageBytes:  func(Message) int { return 8 },
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			if ctx.Superstep() == 0 {
				ctx.Send((v.ID+1)%10, 1.0)
			}
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMessages != 10 {
		t.Fatalf("TotalMessages = %d, want 10", stats.TotalMessages)
	}
	if stats.TotalBytes != 80 {
		t.Fatalf("TotalBytes = %d, want 80", stats.TotalBytes)
	}
	if stats.RemoteMessages == 0 || stats.RemoteMessages > 10 {
		t.Fatalf("RemoteMessages = %d, want within (0, 10]", stats.RemoteMessages)
	}
	if len(stats.PerSuperstep) != stats.Supersteps {
		t.Fatal("per-superstep stats length mismatch")
	}
}

func TestSingleWorkerNoRemoteTraffic(t *testing.T) {
	vs := buildChain(10)
	eng, err := NewEngine(Options{
		Workers:       1,
		MaxSupersteps: 2,
		Compute: func(ctx *Context, v *Vertex, msgs []Message) {
			if ctx.Superstep() == 0 {
				ctx.Send((v.ID+1)%10, 1.0)
			}
			ctx.VoteToHalt()
		},
	}, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteMessages != 0 {
		t.Fatalf("single worker should have no remote messages, got %d", stats.RemoteMessages)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewEngine(Options{MaxSupersteps: 1}, nil); err == nil {
		t.Fatal("missing Compute should error")
	}
	if _, err := NewEngine(Options{Compute: func(*Context, *Vertex, []Message) {}}, nil); err == nil {
		t.Fatal("missing MaxSupersteps should error")
	}
	dup := []*Vertex{{ID: 1}, {ID: 1}}
	if _, err := NewEngine(Options{Compute: func(*Context, *Vertex, []Message) {}, MaxSupersteps: 1}, dup); err == nil {
		t.Fatal("duplicate ids should error")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// A computation whose result depends on received message order would be
	// nondeterministic; engine delivery is sorted by destination and the
	// compute below is order-insensitive (max), so results must agree.
	run := func(workers int) []float64 {
		vs := buildChain(30)
		for i := range vs {
			vs[i].State = float64(i)
		}
		eng, err := NewEngine(Options{
			Workers:       workers,
			MaxSupersteps: 10,
			Compute: func(ctx *Context, v *Vertex, msgs []Message) {
				val := v.State.(float64)
				for _, m := range msgs {
					if m.(float64) > val {
						val = m.(float64)
					}
				}
				if val != v.State.(float64) || ctx.Superstep() == 0 {
					v.State = val
					ctx.Send((v.ID+1)%30, val)
					ctx.Send((v.ID+7)%30, val)
				}
				ctx.VoteToHalt()
			},
		}, vs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 30)
		for i := range out {
			out[i] = eng.Vertex(VertexID(i)).State.(float64)
		}
		return out
	}
	a, b := run(1), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed result at vertex %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCountAggregator(t *testing.T) {
	var a CountAggregator
	a.Add(int64(3))
	var b CountAggregator
	b.Add(int64(4))
	a.Merge(&b)
	if a.Value().(int64) != 7 {
		t.Fatalf("CountAggregator = %v", a.Value())
	}
}
