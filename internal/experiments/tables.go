package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"shp/internal/core"
	"shp/internal/distshp"
	"shp/internal/multilevel"
	"shp/internal/partition"
	"shp/internal/stats"
)

// RunTable2 reproduces Table 2: fanout of each partitioner across
// hypergraphs and bucket counts k ∈ {2, 8, 32, 128, 512}, raw values plus
// the relative-to-best view. The multilevel baseline plays the role of the
// strong single-machine tools (Mondriaan/Zoltan in the paper's results).
func RunTable2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	ks := []int{2, 8, 32, 128, 512}
	if cfg.Quick {
		ks = []int{2, 8, 32}
	}
	algos := []string{"SHP-k", "SHP-2", "Multilevel"}
	fmt.Fprintf(w, "Table 2: fanout by partitioner and bucket count (lower is better)\n")
	fmt.Fprintf(w, "baselines: Multilevel = clique-net multilevel partitioner (Mondriaan/Zoltan stand-in)\n\n")

	for _, name := range smallDatasets(cfg.Quick) {
		ds, _ := DatasetByName(name)
		g, err := ds.Build(cfg.Scale, cfg.Seed+2)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (|Q|=%d |D|=%d |E|=%d)\n", ds.Name, g.NumQueries(), g.NumData(), g.NumEdges())
		tb := stats.NewTable(append([]string{"algorithm"}, ksHeaders(ks)...)...)
		values := map[string][]float64{}
		for _, algo := range algos {
			row := make([]float64, len(ks))
			for i, k := range ks {
				if k > g.NumData()/2 {
					row[i] = math.NaN()
					continue
				}
				f, err := runQualityCell(algo, g, k, cfg)
				if err != nil {
					row[i] = math.NaN()
					continue
				}
				row[i] = f
			}
			values[algo] = row
		}
		for _, algo := range algos {
			cells := make([]any, 0, len(ks)+1)
			cells = append(cells, algo)
			for _, v := range values[algo] {
				cells = append(cells, v)
			}
			tb.AddRow(cells...)
		}
		// Relative-to-best view (the paper's left-hand plot).
		for _, algo := range algos {
			cells := make([]any, 0, len(ks)+1)
			cells = append(cells, algo+" (+% over best)")
			for i := range ks {
				best := math.Inf(1)
				for _, other := range algos {
					if v := values[other][i]; !math.IsNaN(v) && v < best {
						best = v
					}
				}
				v := values[algo][i]
				if math.IsNaN(v) || math.IsInf(best, 1) {
					cells = append(cells, math.NaN())
				} else {
					cells = append(cells, 100*(v/best-1))
				}
			}
			tb.AddRow(cells...)
		}
		if _, err := io.WriteString(w, tb.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func runQualityCell(algo string, g graphRef, k int, cfg Config) (float64, error) {
	switch algo {
	case "SHP-2":
		return shp2Fanout(g, k, core.Options{K: k, Seed: cfg.Seed, Parallelism: cfg.Workers})
	case "SHP-k":
		return shp2Fanout(g, k, core.Options{K: k, Direct: true, Seed: cfg.Seed, Parallelism: cfg.Workers})
	case "Multilevel":
		a, err := multilevel.Partition(g, multilevel.Config{K: k, Seed: cfg.Seed})
		if err != nil {
			return 0, err
		}
		return partition.Fanout(g, a, k), nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func ksHeaders(ks []int) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("k=%d", k)
	}
	return out
}

// RunTable3 reproduces Table 3: run-time of the distributed partitioners on
// the large hypergraphs for k ∈ {32, 512, 8192}, with failures marked. The
// multilevel baseline gets a per-machine memory budget sized so that (like
// Parkway/Zoltan) it can handle the soc-* scale but OOMs on the FB-*
// stand-ins, reproducing the survival pattern. SHP-2 runs through the
// vertex-centric engine on cfg.Workers simulated machines; SHP-k runs the
// direct refiner.
func RunTable3(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	names := []string{"soc-Pokec", "soc-LJ", "FB-50M", "FB-2B", "FB-5B", "FB-10B"}
	ks := []int{32, 512, 8192}
	if cfg.Quick {
		names = []string{"soc-Pokec", "FB-2B"}
		ks = []int{32}
	}
	graphs := map[string]graphRef{}
	charge := map[string]float64{}
	for _, name := range names {
		ds, _ := DatasetByName(name)
		g, err := ds.Build(cfg.Scale, cfg.Seed+3)
		if err != nil {
			return err
		}
		graphs[name] = g
		// Memory charge factor: the stand-in represents a graph
		// paper-|E| / built-|E| times larger; the memory model charges the
		// simulated machine for the full-scale input.
		charge[name] = float64(ds.E) / float64(g.NumEdges())
	}
	// Budget per simulated machine: the paper's Zoltan handles up to soc-LJ
	// and FB-50M but dies on FB-2B+; anchor the budget 1.5x above the
	// largest full-scale-charged footprint it should survive, so the
	// survival pattern reproduces at any stand-in scale.
	var budget int64
	for _, anchor := range []string{"soc-Pokec", "soc-LJ", "FB-50M"} {
		if g, ok := graphs[anchor]; ok {
			need := multilevel.EstimateBytes(g, multilevel.Config{K: 2, MemoryChargeFactor: charge[anchor]})
			if need*3/2 > budget {
				budget = need * 3 / 2
			}
		}
	}

	fmt.Fprintf(w, "Table 3: distributed partitioning time (%d machines), '-' = failed/OOM/over limit\n", cfg.Workers)
	fmt.Fprintf(w, "multilevel per-machine memory budget: %d MB (simulated)\n\n", budget>>20)
	tb := stats.NewTable("hypergraph", "algorithm", "k=32", "k=512", "k=8192")
	for _, name := range names {
		g := graphs[name]
		for _, algo := range []string{"SHP-2", "SHP-k", "Multilevel(dist)"} {
			cells := []any{name, algo}
			for _, k := range ks {
				cell := runScalabilityCell(algo, g, k, cfg, budget, charge[name])
				cells = append(cells, cell)
			}
			for len(cells) < 5 {
				cells = append(cells, "")
			}
			tb.AddRow(cells...)
		}
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

func runScalabilityCell(algo string, g graphRef, k int, cfg Config, budget int64, chargeFactor float64) string {
	if k >= g.NumData() {
		return "-"
	}
	start := time.Now()
	var err error
	switch algo {
	case "SHP-2":
		// Distributed run through the vertex-centric engine.
		kk := k
		if kk&(kk-1) != 0 { // round up to a power of two
			p := 1
			for p < kk {
				p <<= 1
			}
			kk = p
		}
		_, err = distshp.Partition(g, distshp.Options{
			K: kk, Seed: cfg.Seed, Workers: cfg.Workers, ItersPerLevel: 10,
		})
	case "SHP-k":
		_, err = core.Partition(g, core.Options{
			K: k, Direct: true, Seed: cfg.Seed, Parallelism: cfg.Workers,
		})
	case "Multilevel(dist)":
		_, err = multilevel.Partition(g, multilevel.Config{
			K: k, Seed: cfg.Seed, MemoryBudget: budget, MemoryChargeFactor: chargeFactor,
		})
	}
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, multilevel.ErrOutOfMemory) {
			return "- (OOM)"
		}
		return "- (" + err.Error() + ")"
	}
	if elapsed > cfg.TimeLimit {
		return "- (time)"
	}
	return formatDuration(elapsed)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
}
