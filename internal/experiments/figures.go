package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"shp/internal/core"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/sharding"
	"shp/internal/stats"
)

// Figure2Instance returns the paper's Figure 2 example (0-indexed) and the
// stuck initial sides: V1 = {0..3}, V2 = {4..7}.
func Figure2Instance() (*hypergraph.Bipartite, partition.Assignment) {
	g, err := hypergraph.FromHyperedges(8, [][]int32{
		{0, 1, 4, 5},
		{2, 3, 4, 5},
		{2, 3, 6, 7},
	})
	if err != nil {
		panic(err) // static instance, cannot fail
	}
	return g, partition.Assignment{0, 0, 0, 0, 1, 1, 1, 1}
}

// RunFig2 demonstrates Figure 2: the stuck state is a local minimum for
// direct fanout optimization but not for p-fanout.
func RunFig2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	g, initial := Figure2Instance()
	fmt.Fprintf(w, "Figure 2: 3 queries over 8 data vertices, V1={1..4}, V2={5..8} (paper numbering)\n")
	fmt.Fprintf(w, "initial fanout: %.4f (total %d)\n\n",
		partition.Fanout(g, initial, 2), int(partition.Fanout(g, initial, 2)*3))
	for _, p := range []float64{1.0, 0.5} {
		opts := core.Options{K: 2, P: p, Seed: cfg.Seed, Initial: initial, Pairing: core.PairExact}
		if p == 1 {
			opts.Objective = core.ObjFanout
		}
		res, err := core.Partition(g, opts)
		if err != nil {
			return err
		}
		f := partition.Fanout(g, res.Assignment, 2)
		fmt.Fprintf(w, "optimize with p=%.1f: final fanout %.4f\n", p, f)
	}
	fmt.Fprintf(w, "\np=1.0 stays at the local minimum (fanout 2.0); p=0.5 escapes to the optimum (4/3).\n")
	return nil
}

// RunFig4a reproduces Figure 4a: latency percentiles (in units of t) of
// synthetic multi-get queries vs fanout 1..40.
func RunFig4a(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	samples := 20000
	if cfg.Quick {
		samples = 2000
	}
	rows := sharding.LatencyVsFanout(sharding.LatencyModel{}, 40, samples, cfg.Seed+4)
	fmt.Fprintf(w, "Figure 4a: multi-get latency vs fanout, units of single-request mean t (%d samples/fanout)\n\n", samples)
	tb := stats.NewTable("fanout", "p50", "p90", "p95", "p99")
	for _, r := range rows {
		if r.Fanout%5 == 0 || r.Fanout == 1 {
			tb.AddRow(r.Fanout, r.P50, r.P90, r.P95, r.P99)
		}
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	f40, f10 := rows[39], rows[9]
	fmt.Fprintf(w, "\nreducing fanout 40 -> 10 cuts mean latency %.2ft -> %.2ft (%.1fx)\n",
		f40.Mean, f10.Mean, f40.Mean/f10.Mean)
	return nil
}

// RunFig4b reproduces Figure 4b: replay ego-net queries over a 40-server
// cluster sharded by SHP vs randomly.
func RunFig4b(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	ds, _ := DatasetByName("FB-10M")
	g, err := ds.Build(cfg.Scale, cfg.Seed+5)
	if err != nil {
		return err
	}
	const servers = 40
	res, err := core.Partition(g, core.Options{K: servers, Seed: cfg.Seed, Parallelism: cfg.Workers})
	if err != nil {
		return err
	}
	social, err := sharding.NewCluster(servers, res.Assignment, sharding.LatencyModel{})
	if err != nil {
		return err
	}
	random, err := sharding.NewCluster(servers, partition.Random(g.NumData(), servers, cfg.Seed+6), sharding.LatencyModel{})
	if err != nil {
		return err
	}
	ms := social.ReplayQueries(g, cfg.Seed+7, 20)
	mr := random.ReplayQueries(g, cfg.Seed+7, 20)
	fmt.Fprintf(w, "Figure 4b: replaying %d ego-net queries on 40 servers (FB-10M stand-in)\n\n", g.NumQueries())
	tb := stats.NewTable("fanout", "queries", "p50", "p90", "p95", "p99")
	for _, r := range ms.Rows {
		if r.Fanout%5 == 0 || r.Fanout == 1 || r.Fanout == 2 {
			tb.AddRow(r.Fanout, r.Queries, r.P50, r.P90, r.P95, r.P99)
		}
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSHP sharding:    avg fanout %.1f, avg latency %.2ft\n", ms.AvgFanout, ms.AvgLat)
	fmt.Fprintf(w, "random sharding: avg fanout %.1f, avg latency %.2ft\n", mr.AvgFanout, mr.AvgLat)
	fmt.Fprintf(w, "latency ratio: %.2fx (paper: ~2x from fanout 40 -> ~10)\n", mr.AvgLat/ms.AvgLat)
	return nil
}

// RunFig5a reproduces Figure 5a: SHP-2 total time (run time x machines) as
// a function of |E| across the FB-* family, for several bucket counts —
// verifying the O(log k * |E|) complexity.
func RunFig5a(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	names := []string{"FB-50M", "FB-2B", "FB-5B", "FB-10B"}
	ks := []int{2, 32, 512, 8192}
	if cfg.Quick {
		names = names[:2]
		ks = []int{2, 32}
	}
	fmt.Fprintf(w, "Figure 5a: SHP-2 total time (run time x %d workers) vs |E|\n\n", cfg.Workers)
	tb := stats.NewTable(append([]string{"hypergraph", "|E|"}, ksHeaders(ks)...)...)
	for _, name := range names {
		ds, _ := DatasetByName(name)
		g, err := ds.Build(cfg.Scale, cfg.Seed+8)
		if err != nil {
			return err
		}
		cells := []any{name, g.NumEdges()}
		for _, k := range ks {
			if k > g.NumData()/4 {
				cells = append(cells, "-")
				continue
			}
			start := time.Now()
			if _, err := core.Partition(g, core.Options{K: k, Seed: cfg.Seed, Parallelism: cfg.Workers}); err != nil {
				return err
			}
			total := time.Since(start) * time.Duration(cfg.Workers)
			cells = append(cells, formatDuration(total))
		}
		tb.AddRow(cells...)
	}
	_, err := io.WriteString(w, tb.String())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntotal time should grow linearly in |E| and logarithmically in k (Section 3.3)\n")
	return nil
}

// RunFig5b reproduces Figure 5b: run-time and total time of SHP-2 on the
// largest stand-in with 4, 8, and 16 machines.
func RunFig5b(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	name := "FB-10B"
	if cfg.Quick {
		name = "FB-2B"
	}
	ds, _ := DatasetByName(name)
	g, err := ds.Build(cfg.Scale, cfg.Seed+9)
	if err != nil {
		return err
	}
	const k = 32
	fmt.Fprintf(w, "Figure 5b: SHP-2 on %s stand-in (|E|=%d), k=%d\n\n", name, g.NumEdges(), k)
	tb := stats.NewTable("machines", "run-time", "total time", "speedup vs 4")
	var base time.Duration
	for _, machines := range []int{4, 8, 16} {
		start := time.Now()
		if _, err := core.Partition(g, core.Options{K: k, Seed: cfg.Seed, Parallelism: machines}); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if machines == 4 {
			base = elapsed
		}
		speedup := float64(base) / float64(elapsed)
		tb.AddRow(machines, formatDuration(elapsed), formatDuration(elapsed*time.Duration(machines)),
			fmt.Sprintf("%.2fx", speedup))
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nspeedup is sublinear (communication overhead grows with machines), as in the paper\n")
	return nil
}

// RunFig6 reproduces Figure 6: fanout reduction (%) relative to random
// partitioning as a function of the fanout probability p, on the soc-Pokec
// stand-in, for several bucket counts.
func RunFig6(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	ds, _ := DatasetByName("soc-Pokec")
	g, err := ds.Build(cfg.Scale, cfg.Seed+10)
	if err != nil {
		return err
	}
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	ks := []int{2, 8, 32, 128, 512}
	if cfg.Quick {
		ps = []float64{0.1, 0.5, 1.0}
		ks = []int{2, 32}
	}
	fmt.Fprintf(w, "Figure 6: SHP-2 fanout reduction vs random partitioning on soc-Pokec stand-in\n")
	fmt.Fprintf(w, "(more negative = better; p=1.0 is direct fanout optimization)\n\n")
	header := []string{"p"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	tb := stats.NewTable(header...)
	randF := map[int]float64{}
	for _, k := range ks {
		randF[k] = partition.Fanout(g, partition.Random(g.NumData(), k, cfg.Seed+11), k)
	}
	for _, p := range ps {
		cells := []any{fmt.Sprintf("%.1f", p)}
		for _, k := range ks {
			opts := core.Options{K: k, P: p, Seed: cfg.Seed, Parallelism: cfg.Workers}
			if p == 1.0 {
				opts.Objective = core.ObjFanout
			}
			f, err := shp2Fanout(g, k, opts)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*(f/randF[k]-1)))
		}
		tb.AddRow(cells...)
	}
	_, err = io.WriteString(w, tb.String())
	return err
}

// RunFig7 reproduces Figure 7: per-iteration average fanout and moved
// vertices for SHP-k with p = 0.5 vs p = 1.0 on the soc-LJ stand-in, k = 8.
func RunFig7(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	ds, _ := DatasetByName("soc-LJ")
	g, err := ds.Build(cfg.Scale, cfg.Seed+12)
	if err != nil {
		return err
	}
	iters := 50
	if cfg.Quick {
		iters = 10
	}
	fmt.Fprintf(w, "Figure 7: SHP-k convergence on soc-LJ stand-in, k=8 (%d iterations)\n\n", iters)
	type series struct {
		fanout []float64
		moved  []float64
	}
	runs := map[string]*series{}
	for _, p := range []float64{0.5, 1.0} {
		opts := core.Options{
			K: 8, Direct: true, P: p, Seed: cfg.Seed, Parallelism: cfg.Workers,
			MaxIters: iters, TrackFanout: true, MinMoveFraction: 1e-9,
		}
		if p == 1.0 {
			opts.Objective = core.ObjFanout
		}
		res, err := core.Partition(g, opts)
		if err != nil {
			return err
		}
		s := &series{}
		for _, h := range res.History {
			s.fanout = append(s.fanout, h.Fanout)
			s.moved = append(s.moved, 100*h.MovedFraction)
		}
		runs[fmt.Sprintf("p=%.1f", p)] = s
	}
	tb := stats.NewTable("iteration", "fanout p=0.5", "fanout p=1.0", "moved% p=0.5", "moved% p=1.0")
	a, b := runs["p=0.5"], runs["p=1.0"]
	for i := 0; i < len(a.fanout) || i < len(b.fanout); i++ {
		get := func(xs []float64) any {
			if i < len(xs) {
				return xs[i]
			}
			return ""
		}
		if i%2 == 0 || i < 10 {
			tb.AddRow(i+1, get(a.fanout), get(b.fanout), get(a.moved), get(b.moved))
		}
	}
	_, err = io.WriteString(w, tb.String())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\np=0.5 keeps moving vertices (escaping local minima) and reaches lower fanout;\n")
	fmt.Fprintf(w, "p=1.0 freezes early at a worse solution, as in the paper.\n")
	return nil
}

// RunFig8 reproduces Figure 8: fanout increase (%) of (a) direct fanout
// optimization and (b) clique-net optimization over p = 0.5, on six
// hypergraphs for k ∈ {2, 8, 32}.
func RunFig8(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	names := []string{"email-Enron", "soc-Epinions", "web-Stanford", "web-BerkStan", "soc-Pokec", "soc-LJ"}
	ks := []int{2, 8, 32}
	if cfg.Quick {
		names = names[:2]
		ks = []int{2, 8}
	}
	fmt.Fprintf(w, "Figure 8: fanout increase over p=0.5 optimization (positive = p=0.5 wins)\n\n")
	tbA := stats.NewTable(append([]string{"(a) p=1.0 vs p=0.5"}, ksHeaders(ks)...)...)
	tbB := stats.NewTable(append([]string{"(b) clique-net vs p=0.5"}, ksHeaders(ks)...)...)
	sumA, sumB, cells := 0.0, 0.0, 0.0
	for _, name := range names {
		ds, _ := DatasetByName(name)
		g, err := ds.Build(cfg.Scale, cfg.Seed+13)
		if err != nil {
			return err
		}
		rowA := []any{name}
		rowB := []any{name}
		for _, k := range ks {
			base, err := shp2Fanout(g, k, core.Options{K: k, P: 0.5, Seed: cfg.Seed, Parallelism: cfg.Workers})
			if err != nil {
				return err
			}
			direct, err := shp2Fanout(g, k, core.Options{K: k, Objective: core.ObjFanout, Seed: cfg.Seed, Parallelism: cfg.Workers})
			if err != nil {
				return err
			}
			clique, err := shp2Fanout(g, k, core.Options{K: k, Objective: core.ObjCliqueNet, Seed: cfg.Seed, Parallelism: cfg.Workers})
			if err != nil {
				return err
			}
			incA := 100 * (direct/base - 1)
			incB := 100 * (clique/base - 1)
			rowA = append(rowA, fmt.Sprintf("%+.1f%%", incA))
			rowB = append(rowB, fmt.Sprintf("%+.1f%%", incB))
			sumA += incA
			sumB += incB
			cells++
		}
		tbA.AddRow(rowA...)
		tbB.AddRow(rowB...)
	}
	if _, err := io.WriteString(w, tbA.String()+"\n"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, tbB.String()+"\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "mean increase: direct fanout %+.1f%%, clique-net %+.1f%% (paper: ~45%% and small positive)\n",
		sumA/cells, sumB/cells)
	if math.IsNaN(sumA) {
		return fmt.Errorf("fig8: NaN in results")
	}
	return nil
}
