package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config {
	cfg := Config{Quick: true, Scale: 0.08, Seed: 1, Workers: 2}
	if testing.Short() {
		// Keep the tier-1 `go test -short ./...` loop fast: the same code
		// paths run, just on smaller problem instances.
		cfg.Scale = 0.02
	}
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig4a", "fig4b", "table2", "table3",
		"fig5a", "fig5b", "fig6", "fig7", "fig8", "ablate-inc", "dist-delta", "shp2-delta"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if Registry[i].Description == "" || Registry[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("table2"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestDatasetsBuildAll(t *testing.T) {
	for _, ds := range Datasets {
		g, err := ds.Build(0.05, 1)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if g.NumQueries() == 0 || g.NumData() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: degenerate graph", ds.Name)
		}
		// Pruning holds: no degree-<2 queries.
		for q := 0; q < g.NumQueries(); q++ {
			if g.QueryDegree(int32(q)) < 2 {
				t.Fatalf("%s: query %d has degree %d after pruning", ds.Name, q, g.QueryDegree(int32(q)))
			}
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, ok := DatasetByName("soc-LJ"); !ok {
		t.Fatal("soc-LJ missing")
	}
	if _, ok := DatasetByName("no-such"); ok {
		t.Fatal("found nonexistent dataset")
	}
}

func TestDatasetScaleMonotone(t *testing.T) {
	ds, _ := DatasetByName("email-Enron")
	small, err := ds.Build(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ds.Build(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumEdges() >= big.NumEdges() {
		t.Fatalf("scale not monotone: %d vs %d edges", small.NumEdges(), big.NumEdges())
	}
}

// runExperiment runs one registry entry in quick mode and returns output.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, quickCfg()); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 50 {
		t.Fatalf("%s: suspiciously short output:\n%s", id, out)
	}
	return out
}

func TestTable1Quick(t *testing.T) {
	out := runExperiment(t, "table1")
	if !strings.Contains(out, "email-Enron") {
		t.Fatalf("missing dataset row:\n%s", out)
	}
}

func TestFig2Quick(t *testing.T) {
	out := runExperiment(t, "fig2")
	if !strings.Contains(out, "p=0.5") || !strings.Contains(out, "p=1.0") {
		t.Fatalf("fig2 output incomplete:\n%s", out)
	}
	// The headline numbers must appear: stuck at 2, optimum 4/3 = 1.3333.
	if !strings.Contains(out, "2.0000") || !strings.Contains(out, "1.3333") {
		t.Fatalf("fig2 numbers wrong:\n%s", out)
	}
}

func TestFig4aQuick(t *testing.T) {
	out := runExperiment(t, "fig4a")
	if !strings.Contains(out, "p99") || !strings.Contains(out, "fanout 40 -> 10") {
		t.Fatalf("fig4a output incomplete:\n%s", out)
	}
}

func TestFig4bQuick(t *testing.T) {
	out := runExperiment(t, "fig4b")
	if !strings.Contains(out, "SHP sharding") || !strings.Contains(out, "random sharding") {
		t.Fatalf("fig4b output incomplete:\n%s", out)
	}
}

func TestTable2Quick(t *testing.T) {
	out := runExperiment(t, "table2")
	for _, want := range []string{"SHP-2", "SHP-k", "Multilevel", "k=32", "+% over best"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	out := runExperiment(t, "table3")
	for _, want := range []string{"SHP-2", "SHP-k", "Multilevel(dist)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5aQuick(t *testing.T) {
	out := runExperiment(t, "fig5a")
	if !strings.Contains(out, "total time") {
		t.Fatalf("fig5a output incomplete:\n%s", out)
	}
}

func TestFig5bQuick(t *testing.T) {
	out := runExperiment(t, "fig5b")
	for _, want := range []string{"machines", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5b missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	out := runExperiment(t, "fig6")
	if !strings.Contains(out, "p") || !strings.Contains(out, "%") {
		t.Fatalf("fig6 output incomplete:\n%s", out)
	}
}

func TestFig7Quick(t *testing.T) {
	out := runExperiment(t, "fig7")
	for _, want := range []string{"fanout p=0.5", "moved% p=1.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	out := runExperiment(t, "fig8")
	for _, want := range []string{"(a) p=1.0 vs p=0.5", "(b) clique-net vs p=0.5", "mean increase"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestAblateIncQuick(t *testing.T) {
	out := runExperiment(t, "ablate-inc")
	for _, want := range []string{"SHP-2", "SHP-k", "speedup", "fanout"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablate-inc missing %q:\n%s", want, out)
		}
	}
}

func TestDistDeltaQuick(t *testing.T) {
	out := runExperiment(t, "dist-delta")
	for _, want := range []string{"delta", "full", "late KB/superstep", "reduced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dist-delta missing %q:\n%s", want, out)
		}
	}
}

func TestSHP2DeltaQuick(t *testing.T) {
	out := runExperiment(t, "shp2-delta")
	for _, want := range []string{"hub-heavy", "speedup", "fanout", "churn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shp2-delta missing %q:\n%s", want, out)
		}
	}
}
