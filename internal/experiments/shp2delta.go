package experiments

import (
	"fmt"
	"io"
	"time"

	"shp/internal/core"
	"shp/internal/gen"
	"shp/internal/partition"
	"shp/internal/rng"
	"shp/internal/stats"
)

// RunSHP2Delta ablates the bisection refiner's patched-accumulator engine
// (the SHP-2 port of the shared incremental-gain kernel) on the workload it
// was built for: hub-heavy graphs refined from a warm start. A converged
// partition is perturbed by a known churn fraction and re-refined with the
// engine on and off. The two paths are byte-identical for a fixed seed —
// the fanout columns are checked to agree exactly, a live equivalence test
// on real workloads — so the table is a pure run-time comparison: with
// patching, a hub hyperedge whose member moves costs one delta record per
// member instead of every member re-walking its whole (hub-sized)
// membership.
func RunSHP2Delta(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "SHP-2 delta engine: exact patched gain accumulators (dirty-query side-count\n")
	fmt.Fprintf(w, "diffs) vs active-set membership re-walks, hub-heavy warm-start refinement.\n\n")
	tb := stats.NewTable("hypergraph", "churn", "incremental", "full rebuild", "speedup", "fanout")

	type shape struct {
		name string
		hubs int // pinned count of max-degree hub hyperedges
	}
	shapes := []shape{{"hub-light", 4}, {"hub-heavy", 12}}
	if cfg.Quick {
		shapes = shapes[1:]
	}
	const k = 16
	numD := int(20000 * cfg.Scale)
	if numD < 400 {
		numD = 400
	}
	numQ := numD * 3 / 5
	// Hubs span numD/8 vertices each, so even the heavy shape leaves most
	// of the incidence budget to the power-law tail.
	edges := int64(numD) * 8
	churns := []float64{0.01, 0.05}
	if cfg.Quick {
		churns = churns[:1]
	}
	for _, sh := range shapes {
		g, err := gen.HubPowerLawBipartite(numQ, numD, edges, 2.1, float64(sh.hubs)/float64(numQ), numD/8, cfg.Seed+7)
		if err != nil {
			return err
		}
		base, err := core.Partition(g, core.Options{K: k, Seed: cfg.Seed + 1, Parallelism: cfg.Workers})
		if err != nil {
			return err
		}
		for _, frac := range churns {
			warm := append(partition.Assignment(nil), base.Assignment...)
			r := rng.New(cfg.Seed + 3)
			for i := 0; i < int(frac*float64(len(warm))); i++ {
				warm[r.Intn(len(warm))] = int32(r.Intn(k))
			}
			run := func(disable bool) (time.Duration, float64, error) {
				res, err := core.Partition(g, core.Options{
					K: k, Seed: cfg.Seed + 2, Parallelism: cfg.Workers,
					Initial: warm, DisableIncremental: disable,
				})
				if err != nil {
					return 0, 0, err
				}
				return res.Elapsed, partition.Fanout(g, res.Assignment, k), nil
			}
			incT, incF, err := run(false)
			if err != nil {
				return err
			}
			fullT, fullF, err := run(true)
			if err != nil {
				return err
			}
			if incF != fullF {
				return fmt.Errorf("experiments: %s incremental fanout %v != full %v (equivalence broken)",
					sh.name, incF, fullF)
			}
			tb.AddRow(sh.name, fmt.Sprintf("%g%%", frac*100),
				formatDuration(incT), formatDuration(fullT),
				fmt.Sprintf("%.2fx", fullT.Seconds()/incT.Seconds()),
				fmt.Sprintf("%.4f", incF))
		}
	}
	_, err := io.WriteString(w, tb.String())
	return err
}
