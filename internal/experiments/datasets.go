// Package experiments regenerates every table and figure from the paper's
// evaluation (Section 4). Each experiment prints the same rows/series the
// paper reports; DESIGN.md carries the per-experiment index and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"shp/internal/gen"
	"shp/internal/hypergraph"
)

// Dataset describes one Table 1 stand-in. Sizes are the paper's; Build
// scales them down so experiments finish on one machine (see DESIGN.md's
// substitution notes — shapes, not absolute sizes, drive the results).
type Dataset struct {
	Name string
	// Paper sizes (Table 1).
	Q, D int
	E    int64
	// Kind selects the generator: "powerlaw" (web/soc graphs) or "social"
	// (the Darwini-like FB-* family, ego-net hyperedges).
	Kind string
	// Exponent for the power-law generator.
	Exponent float64
	// CommunitySize for the social generator.
	CommunitySize int
	// DefaultScale keeps the default harness runs laptop-sized; the
	// --scale flag multiplies it.
	DefaultScale float64
}

// Datasets mirrors Table 1.
var Datasets = []Dataset{
	{Name: "email-Enron", Q: 25481, D: 36692, E: 356451, Kind: "powerlaw", Exponent: 2.0, DefaultScale: 1},
	{Name: "soc-Epinions", Q: 31149, D: 75879, E: 479645, Kind: "powerlaw", Exponent: 2.1, DefaultScale: 1},
	{Name: "web-Stanford", Q: 253097, D: 281903, E: 2283863, Kind: "powerlaw", Exponent: 2.3, DefaultScale: 0.4},
	{Name: "web-BerkStan", Q: 609527, D: 685230, E: 7529636, Kind: "powerlaw", Exponent: 2.3, DefaultScale: 0.15},
	{Name: "soc-Pokec", Q: 1277002, D: 1632803, E: 30466873, Kind: "powerlaw", Exponent: 2.1, DefaultScale: 0.04},
	{Name: "soc-LJ", Q: 3392317, D: 4847571, E: 68077638, Kind: "powerlaw", Exponent: 2.1, DefaultScale: 0.015},
	{Name: "FB-10M", Q: 32296, D: 32770, E: 10099740, Kind: "social", CommunitySize: 60, DefaultScale: 0.3},
	{Name: "FB-50M", Q: 152263, D: 154551, E: 49998426, Kind: "social", CommunitySize: 80, DefaultScale: 0.06},
	{Name: "FB-2B", Q: 6063442, D: 6153846, E: 2e9, Kind: "social", CommunitySize: 100, DefaultScale: 0.0015},
	{Name: "FB-5B", Q: 15150402, D: 15376099, E: 5e9, Kind: "social", CommunitySize: 100, DefaultScale: 0.0006},
	{Name: "FB-10B", Q: 30302615, D: 40361708, E: 10e9, Kind: "social", CommunitySize: 100, DefaultScale: 0.0003},
}

// DatasetByName looks a dataset up.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Build generates the stand-in at DefaultScale * scaleMult, prunes
// degree-<2 queries (Section 4.1), and returns it.
func (ds Dataset) Build(scaleMult float64, seed uint64) (*hypergraph.Bipartite, error) {
	scale := ds.DefaultScale * scaleMult
	if scale <= 0 {
		return nil, fmt.Errorf("experiments: non-positive scale for %s", ds.Name)
	}
	if scale > 1 {
		scale = 1
	}
	q := scaleInt(ds.Q, scale, 500)
	d := scaleInt(ds.D, scale, 500)
	e := int64(float64(ds.E) * scale)
	var g *hypergraph.Bipartite
	var err error
	switch ds.Kind {
	case "powerlaw":
		g, err = gen.PowerLawBipartite(q, d, e, ds.Exponent, seed)
	case "social":
		avgDeg := int(e) / max(q, 1)
		// Keep the scaled graph sparse enough to be partitionable: ego-net
		// size cannot exceed a fraction of the population.
		if avgDeg > d/8 {
			avgDeg = d / 8
		}
		if avgDeg < 4 {
			avgDeg = 4
		}
		g, err = gen.SocialEgoNets(d, avgDeg, ds.CommunitySize, 0.85, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %q", ds.Kind)
	}
	if err != nil {
		return nil, err
	}
	return hypergraph.PruneTrivialQueries(g, 2), nil
}

func scaleInt(v int, scale float64, floor int) int {
	s := int(float64(v) * scale)
	if s < floor {
		s = floor
	}
	if s > v {
		s = v
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
