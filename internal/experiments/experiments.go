package experiments

import (
	"fmt"
	"io"
	"time"

	"shp/internal/core"
	"shp/internal/hypergraph"
	"shp/internal/partition"
	"shp/internal/stats"
)

// graphRef is shorthand for the shared bipartite graph type.
type graphRef = *hypergraph.Bipartite

// Config tunes a harness run.
type Config struct {
	// Scale multiplies every dataset's DefaultScale (default 1). Larger
	// values approach the paper's sizes at the cost of run time.
	Scale float64
	// Quick shrinks dataset lists and sweeps for smoke tests and benches.
	Quick bool
	// Seed drives all generators and partitioners.
	Seed uint64
	// Workers is the parallelism / simulated machine count (default 4,
	// the paper's cluster).
	Workers int
	// TimeLimit aborts individual cells that would run too long
	// (default 10 minutes; the paper used 10 hours).
	TimeLimit time.Duration
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = 10 * time.Minute
	}
	return c
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         func(w io.Writer, cfg Config) error
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table1", "Table 1: dataset inventory (synthetic stand-ins)", RunTable1},
	{"fig2", "Figure 2: fanout local minimum that p-fanout escapes", RunFig2},
	{"fig4a", "Figure 4a: multi-get latency percentiles vs fanout (synthetic)", RunFig4a},
	{"fig4b", "Figure 4b: latency vs fanout replaying social queries on 40 servers", RunFig4b},
	{"table2", "Table 2: fanout quality of SHP-2 / SHP-k / multilevel baseline", RunTable2},
	{"table3", "Table 3: distributed run-time and survival on large hypergraphs", RunTable3},
	{"fig5a", "Figure 5a: total time vs |E| for several bucket counts", RunFig5a},
	{"fig5b", "Figure 5b: run-time and total time vs machine count", RunFig5b},
	{"fig6", "Figure 6: fanout reduction vs fanout probability p", RunFig6},
	{"fig7", "Figure 7: convergence of p=0.5 vs p=1.0 (fanout, moved vertices)", RunFig7},
	{"fig8", "Figure 8: p=0.5 vs direct fanout (a) and clique-net (b) objectives", RunFig8},
	{"ablate-inc", "Ablation: incremental refinement engine vs full per-iteration rebuilds", RunAblateIncremental},
	{"dist-delta", "Distributed delta plane: churn-proportional superstep traffic vs full rebroadcast", RunDistDelta},
	{"shp2-delta", "SHP-2 delta engine: patched gain accumulators vs membership re-walks on hub-heavy warm starts", RunSHP2Delta},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunTable1 prints the dataset inventory at the configured scale.
func RunTable1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Table 1: hypergraph stand-ins (scale multiplier %.3g)\n", cfg.Scale)
	fmt.Fprintf(w, "paper sizes -> generated sizes after pruning degree<2 queries\n\n")
	tb := stats.NewTable("hypergraph", "|Q| paper", "|D| paper", "|E| paper", "|Q| built", "|D| built", "|E| built")
	list := Datasets
	if cfg.Quick {
		list = list[:4]
	}
	for _, ds := range list {
		g, err := ds.Build(cfg.Scale, cfg.Seed+1)
		if err != nil {
			return err
		}
		tb.AddRow(ds.Name, ds.Q, ds.D, ds.E, g.NumQueries(), g.NumData(), g.NumEdges())
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

// smallDatasets returns the Table 2 style dataset list (the paper's
// single-machine comparison set).
func smallDatasets(quick bool) []string {
	if quick {
		return []string{"email-Enron", "soc-Epinions"}
	}
	return []string{
		"email-Enron", "soc-Epinions", "web-Stanford", "web-BerkStan",
		"soc-Pokec", "soc-LJ", "FB-10M", "FB-50M",
	}
}

// shp2Fanout runs SHP-2 and measures fanout (helper shared by runners).
func shp2Fanout(g graphRef, k int, opts core.Options) (float64, error) {
	res, err := core.Partition(g, opts)
	if err != nil {
		return 0, err
	}
	return partition.Fanout(g, res.Assignment, k), nil
}
