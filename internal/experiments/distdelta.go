package experiments

import (
	"fmt"
	"io"

	"shp/internal/distshp"
	"shp/internal/partition"
	"shp/internal/stats"
)

// RunDistDelta ablates the distributed dirty-query delta plane
// (distshp's incremental gain superstep) against the full per-iteration
// rebroadcast. The two paths are byte-identical for a fixed seed — the
// assignments and fanout histories are checked to agree exactly, a live
// equivalence test on real workloads — so the table is a pure wire-traffic
// comparison: per-superstep attribution of the gain/delta phase, and the
// late-iteration (moved <= 1%) regime where churn-proportional traffic pays
// off.
func RunDistDelta(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Distributed delta plane: dirty-query (bucket, cOld, cNew) diffs patched into\n")
	fmt.Fprintf(w, "persistent data-vertex accumulators vs full per-iteration gain rebroadcasts.\n\n")
	tb := stats.NewTable("hypergraph", "mode", "iters", "total MB", "gain MB", "late iters", "late KB/superstep", "fanout")

	names := []string{"email-Enron", "soc-Epinions"}
	if cfg.Quick {
		names = names[:1]
	}
	const k = 8
	var reductions []string
	for _, name := range names {
		ds, ok := DatasetByName(name)
		if !ok {
			return fmt.Errorf("experiments: unknown dataset %s", name)
		}
		g, err := ds.Build(cfg.Scale, cfg.Seed+13)
		if err != nil {
			return err
		}
		run := func(disable bool) (*distshp.Result, error) {
			return distshp.Partition(g, distshp.Options{
				K: k, Seed: cfg.Seed + 5, Workers: cfg.Workers,
				MinMoveFraction: 1e-9, DisableIncremental: disable,
			})
		}
		inc, err := run(false)
		if err != nil {
			return err
		}
		full, err := run(true)
		if err != nil {
			return err
		}
		for i := range inc.Assignment {
			if inc.Assignment[i] != full.Assignment[i] {
				return fmt.Errorf("experiments: %s delta and full assignments differ at vertex %d (equivalence broken)", name, i)
			}
		}
		for i := range inc.History {
			if inc.History[i] != full.History[i] {
				return fmt.Errorf("experiments: %s delta and full histories differ at iteration %d (equivalence broken)", name, i)
			}
		}
		addRow := func(mode string, res *distshp.Result) float64 {
			late, lateBytes := res.LateGainBytes(0.01)
			latePer := 0.0
			if late > 0 {
				latePer = float64(lateBytes) / float64(late)
			}
			tb.AddRow(name, mode, res.Iterations,
				fmt.Sprintf("%.2f", float64(res.Stats.TotalBytes)/(1<<20)),
				fmt.Sprintf("%.2f", float64(res.Stats.PhaseTotals(4)[1].BytesSent)/(1<<20)),
				late,
				fmt.Sprintf("%.1f", latePer/(1<<10)),
				fmt.Sprintf("%.4f", partition.Fanout(g, res.Assignment, k)))
			return latePer
		}
		incLate := addRow("delta", inc)
		fullLate := addRow("full", full)
		if incLate > 0 && fullLate > 0 {
			reductions = append(reductions, fmt.Sprintf(
				"%s: late (<=1%% moved) gain-superstep bytes reduced %.1fx by the delta plane",
				name, fullLate/incLate))
		}
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	for _, line := range reductions {
		fmt.Fprintf(w, "\n%s", line)
	}
	fmt.Fprintln(w)
	return nil
}
