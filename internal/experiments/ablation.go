package experiments

import (
	"fmt"
	"io"
	"time"

	"shp/internal/core"
	"shp/internal/partition"
	"shp/internal/stats"
)

// RunAblateIncremental ablates the incremental refinement engine: SHP-2 and
// SHP-k run with the engine on and off (Options.DisableIncremental) on the
// single-machine comparison datasets. The two paths are byte-identical for
// a fixed seed, so the fanout columns must agree exactly — the table is a
// pure run-time/throughput comparison, plus a live check of the
// equivalence contract on real workloads.
func RunAblateIncremental(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Ablation: incremental refinement engine (delta-maintained neighbor data,\n")
	fmt.Fprintf(w, "exact patched gains, mover-only rebuilds) vs full per-iteration rebuilds.\n\n")
	tb := stats.NewTable("hypergraph", "algo", "k", "incremental", "full rebuild", "speedup", "edges/s (inc)", "fanout")

	names := smallDatasets(cfg.Quick)
	const k = 16
	for _, name := range names {
		ds, ok := DatasetByName(name)
		if !ok {
			return fmt.Errorf("experiments: unknown dataset %s", name)
		}
		g, err := ds.Build(cfg.Scale, cfg.Seed+11)
		if err != nil {
			return err
		}
		for _, algo := range []string{"SHP-2", "SHP-k"} {
			opts := core.Options{K: k, Seed: cfg.Seed + 1, Parallelism: cfg.Workers, Direct: algo == "SHP-k"}

			run := func(disable bool) (time.Duration, float64, error) {
				o := opts
				o.DisableIncremental = disable
				res, err := core.Partition(g, o)
				if err != nil {
					return 0, 0, err
				}
				return res.Elapsed, partition.Fanout(g, res.Assignment, k), nil
			}
			incT, incF, err := run(false)
			if err != nil {
				return err
			}
			fullT, fullF, err := run(true)
			if err != nil {
				return err
			}
			if incF != fullF {
				return fmt.Errorf("experiments: %s/%s incremental fanout %v != full %v (equivalence broken)",
					name, algo, incF, fullF)
			}
			tb.AddRow(name, algo, k,
				formatDuration(incT), formatDuration(fullT),
				fmt.Sprintf("%.2fx", fullT.Seconds()/incT.Seconds()),
				fmt.Sprintf("%.3g", float64(g.NumEdges())/incT.Seconds()),
				fmt.Sprintf("%.4f", incF))
		}
	}
	_, err := io.WriteString(w, tb.String())
	return err
}
