package lint

// panic-policy: library packages surface typed errors, not bare panics.
// PR 7 converted the engine's aggregator-misuse panics into typed
// *AggregatorError values recovered at the worker boundary and returned as
// *ComputeError; this analyzer keeps the rest of the tree on that standard.
// Allowed without annotation:
//
//   - panicking with a value that implements error (the typed-panic
//     protocol: a recover boundary converts it into a returned error);
//   - re-panics inside a function that calls recover (propagating a foreign
//     panic after filtering the typed ones);
//   - main packages, where a panic is a crash either way.
//
// Genuine invariant assertions — "this state is corrupt, continuing would
// corrupt data" — stay as panics with //shp:panics(reason) stating the
// invariant.

import (
	"fmt"
	"go/ast"
	"go/types"
)

var panicPolicyAnalyzer = &Analyzer{
	Name:     "panic-policy",
	Doc:      "library packages return typed errors instead of panicking",
	Suppress: "panics",
	Run:      runPanicPolicy,
}

func runPanicPolicy(pkg *Package) []Diagnostic {
	if pkg.Name == "main" {
		return nil
	}
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		// funcStack tracks the innermost function literal/declaration so a
		// panic can be matched against its own recover, not an outer one's.
		var funcStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if b := body(n); b != nil {
					funcStack = append(funcStack, n)
					ast.Inspect(b, func(m ast.Node) bool { return walk(m) })
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" || len(n.Args) != 1 {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if tv, ok := pkg.Info.Types[n.Args[0]]; ok && types.Implements(tv.Type, errorType) {
					return true // typed-panic protocol: recovered and returned
				}
				if len(funcStack) > 0 && callsRecover(pkg, body(funcStack[len(funcStack)-1])) {
					return true // re-panic on the recovery path
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(n.Pos()),
					Analyzer: "panic-policy",
					Message: fmt.Sprintf("panic in library package %s: surface a typed error (see pregel.ComputeError) or annotate //shp:panics(reason) for an invariant assertion",
						pkg.Name),
				})
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return diags
}

func body(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func callsRecover(pkg *Package, b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
			}
		}
		return true
	})
	return found
}
