// Package lint is shplint: a repo-specific static-analysis suite that
// machine-checks the determinism contract the runtime equivalence tests
// sample. The repo's signature guarantee — incremental == DisableIncremental,
// patched == rebuilt, recovered == undisturbed, all byte-identical — is easy
// to break silently: one `range` over a map in a merge loop, one wall-clock
// read in a hot path, one raw float64 += on a dyadic-grid accumulator. Each
// analyzer here encodes one of those hazard classes so `go test ./...` (via
// TestLintClean) and CI fail before a flaky equivalence test ever would.
//
// The suite is stdlib-only (go/ast, go/parser, go/types); packages are
// loaded through `go list -deps -export -json`, so dependencies resolve from
// compiler export data with no external module.
//
// # Annotations
//
// Findings are suppressed with //shp: line comments carrying a mandatory
// justification, placed on the offending line or the line directly above:
//
//	//shp:ordered(reason)  — maprange: iteration order provably immaterial
//	//shp:nondet(reason)   — nondet-sources: timing/stats only, not results
//	//shp:rawfloat(reason) — float-discipline: operand already a table delta
//	//shp:nocodec(reason)  — codec-symmetry: registration exempt from a check
//	//shp:panics(reason)   — panic-policy: invariant assertion, not an API
//
// A sixth directive, //shp:gainacc(reason), is a designation rather than a
// suppression: it marks a struct field as a patched gain accumulator so the
// float-discipline analyzer protects it. Empty justifications, unknown
// directives, and suppressions that no longer suppress anything are
// themselves diagnostics — annotations cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// deterministicPackages names the packages whose code must be reproducible
// bit-for-bit given a seed: the refinement kernel, both execution planes,
// the graph structure they mutate, the RNG they draw from, the parallel
// executor (its shard decompositions are part of the bit-identity contract),
// the sharding simulator (replays must be comparable across runs), and the
// serving plane (epoch contents are pinned by seed; only wall-clock
// telemetry may vary, behind //shp:nondet annotations). Matching is by
// package name so the golden testdata packages can opt in by name alone.
var deterministicPackages = map[string]bool{
	"core":       true,
	"distshp":    true,
	"pregel":     true,
	"hypergraph": true,
	"rng":        true,
	"par":        true,
	"sharding":   true,
	"serve":      true,
}

// Package is one loaded, type-checked package presented to analyzers.
type Package struct {
	Path string // import path ("" for ad-hoc directory loads)
	Name string
	Fset *token.FileSet
	// Files are the type-checked non-test files.
	Files []*ast.File
	// TestFiles are the package's in-package _test.go files, parsed but not
	// type-checked (the codec-symmetry analyzer scans them for fuzz targets).
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// Deterministic reports whether this package is under the byte-identical
	// reproducibility contract (see deterministicPackages).
	Deterministic bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one hazard class.
type Analyzer struct {
	Name string
	// Doc is a one-line description (shown by cmd/shplint).
	Doc string
	// Suppress is the //shp: directive that silences this analyzer's
	// findings ("" if the analyzer cannot be suppressed).
	Suppress string
	Run      func(*Package) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		mapRangeAnalyzer,
		nondetAnalyzer,
		floatDisciplineAnalyzer,
		codecSymmetryAnalyzer,
		panicPolicyAnalyzer,
	}
}

// annotationAnalyzer names the pseudo-analyzer that reports malformed,
// unknown, empty, or unused //shp: annotations. It cannot be suppressed.
const annotationAnalyzer = "shp-annotation"

// directives maps each //shp: directive to the analyzer it suppresses.
// gainacc maps to "" — it designates a field, it does not suppress.
var directives = map[string]string{
	"ordered":  "maprange",
	"nondet":   "nondet-sources",
	"rawfloat": "float-discipline",
	"nocodec":  "codec-symmetry",
	"panics":   "panic-policy",
	"gainacc":  "",
}

// annotation is one parsed //shp: comment.
type annotation struct {
	directive string
	reason    string
	pos       token.Position
	// lines this annotation covers: its own line and the next (so a
	// trailing comment covers its statement and a standalone comment covers
	// the line below it).
	lines [2]int
	used  bool
}

// parseAnnotations extracts every //shp: comment from a file, reporting
// malformed ones as diagnostics.
func parseAnnotations(fset *token.FileSet, f *ast.File) ([]*annotation, []Diagnostic) {
	var anns []*annotation
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//shp:") {
				continue
			}
			pos := fset.Position(c.Pos())
			body := strings.TrimPrefix(text, "//shp:")
			open := strings.IndexByte(body, '(')
			close := strings.LastIndexByte(body, ')')
			if open < 0 || close < open || strings.TrimSpace(body[close+1:]) != "" {
				diags = append(diags, Diagnostic{pos, annotationAnalyzer,
					fmt.Sprintf("malformed annotation %q: want //shp:directive(justification)", text)})
				continue
			}
			dir := body[:open]
			if _, known := directives[dir]; !known {
				diags = append(diags, Diagnostic{pos, annotationAnalyzer,
					fmt.Sprintf("unknown shp directive %q (known: %s)", dir, knownDirectives())})
				continue
			}
			reason := strings.TrimSpace(body[open+1 : close])
			if reason == "" {
				diags = append(diags, Diagnostic{pos, annotationAnalyzer,
					fmt.Sprintf("//shp:%s needs a non-empty justification", dir)})
				continue
			}
			anns = append(anns, &annotation{
				directive: dir,
				reason:    reason,
				pos:       pos,
				lines:     [2]int{pos.Line, pos.Line + 1},
			})
		}
	}
	return anns, diags
}

func knownDirectives() string {
	names := make([]string, 0, len(directives))
	for d := range directives {
		names = append(names, d)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Check runs the given analyzers over the packages, applies //shp:
// suppressions, and appends annotation-hygiene diagnostics. The result is
// sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		// Per-file suppression tables, keyed by analyzer then line.
		type suppKey struct {
			file string
			line int
		}
		supp := map[string]map[suppKey]*annotation{}
		var anns []*annotation
		allFiles := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, f := range allFiles {
			fa, diags := parseAnnotations(pkg.Fset, f)
			out = append(out, diags...)
			for _, a := range fa {
				target := directives[a.directive]
				if target == "" {
					a.used = true // designation, not suppression
					continue
				}
				m := supp[target]
				if m == nil {
					m = map[suppKey]*annotation{}
					supp[target] = m
				}
				for _, line := range a.lines {
					m[suppKey{a.pos.Filename, line}] = a
				}
			}
			anns = append(anns, fa...)
		}
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if m := supp[a.Name]; m != nil {
					if ann := m[suppKey{d.Pos.Filename, d.Pos.Line}]; ann != nil {
						ann.used = true
						continue
					}
				}
				out = append(out, d)
			}
		}
		// Only report staleness for analyzers that actually ran: a partial
		// run (golden tests exercise one analyzer at a time) must not call
		// another analyzer's suppressions unused.
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, ann := range anns {
			target := directives[ann.directive]
			if !ann.used && ran[target] {
				out = append(out, Diagnostic{ann.pos, annotationAnalyzer,
					fmt.Sprintf("stale //shp:%s suppression: no %s finding on this or the next line", ann.directive, target)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// funcObj resolves a call expression's callee to its *types.Func, or nil for
// builtins, conversions, and indirect calls.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
