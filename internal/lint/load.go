package lint

// Package loading without golang.org/x/tools: `go list -deps -export -json`
// enumerates the target packages plus every dependency and materializes
// compiler export data for each (the build cache makes this cheap after any
// build). Module packages are then parsed and type-checked from source with
// an importer that reads that export data, so the whole module loads with
// nothing beyond the standard library.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	Export      string
	Standard    bool
	GoFiles     []string
	TestGoFiles []string
	Module      *struct{ Path string }
	Error       *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for the given patterns.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,GoFiles,TestGoFiles,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer from a map of import path →
// export-data file produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load enumerates, parses, and type-checks the module packages matching
// patterns, resolved relative to dir. Dependencies (standard library
// included) come from export data; only module packages are analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil {
			continue
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// typecheck parses and type-checks one listed package. In-package test files
// are parsed (for the fuzz-target scan) but kept out of the type-checked set
// so test-only dependencies need no export data.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	files, err := parseAll(fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parseAll(fset, lp.Dir, lp.TestGoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:          lp.ImportPath,
		Name:          lp.Name,
		Fset:          fset,
		Files:         files,
		TestFiles:     testFiles,
		Types:         tpkg,
		Info:          info,
		Deterministic: deterministicPackages[lp.Name],
	}, nil
}

// LoadDir parses and type-checks a single directory of Go files outside the
// module build (the golden testdata packages). Imports resolve through `go
// list -export` run from moduleDir, so testdata may import the standard
// library or module packages.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles, testGoFiles []string
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".go" {
			continue
		}
		if len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go" {
			testGoFiles = append(testGoFiles, name)
		} else {
			goFiles = append(goFiles, name)
		}
	}
	sort.Strings(goFiles)
	sort.Strings(testGoFiles)
	fset := token.NewFileSet()
	files, err := parseAll(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parseAll(fset, dir, testGoFiles)
	if err != nil {
		return nil, err
	}
	// Resolve the testdata package's imports through the real toolchain.
	importSet := map[string]bool{}
	for _, f := range append(append([]*ast.File{}, files...), testFiles...) {
		for _, spec := range f.Imports {
			path := spec.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	name := "testdata"
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", dir, err)
	}
	return &Package{
		Path:          name,
		Name:          name,
		Fset:          fset,
		Files:         files,
		TestFiles:     testFiles,
		Types:         tpkg,
		Info:          info,
		Deterministic: deterministicPackages[name],
	}, nil
}

func parseAll(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
