package lint

// float-discipline: raw float64 accumulation on patched gain accumulators.
// The incremental engine's headline guarantee — a patched accumulator is
// bit-identical to a from-scratch rebuild — holds only because every value
// folded into an accumulator is a dyadic-grid table delta produced by
// GainTables.DeltaOwn/DeltaAway (exact float64 arithmetic, associative and
// commutative on the grid). A raw `+=` of anything else (a product, a
// division, an unquantized constant) reintroduces rounding, and the
// patched-vs-rebuilt property tests only catch it if the round-off happens
// to surface on sampled inputs.
//
// Protected fields are float64 (or []float64) struct fields that either
// carry the builtin accumulator names (accOwn/accOth/sumCur/sumOth) or are
// designated with //shp:gainacc(reason). On those, `x += e`, `x -= e`, and
// `x = x ± e` are flagged unless e is a direct DeltaOwn/DeltaAway call.
// Plain assignment (`x = e`) is a rebuild and always allowed.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var floatDisciplineAnalyzer = &Analyzer{
	Name:     "float-discipline",
	Doc:      "gain accumulators must be patched through GainTables.DeltaOwn/DeltaAway",
	Suppress: "rawfloat",
	Run:      runFloatDiscipline,
}

// builtinAccumulatorNames are the known patched Equation-1 accumulator
// fields; //shp:gainacc designates additional ones.
var builtinAccumulatorNames = map[string]bool{
	"accOwn": true, "accOth": true, "sumCur": true, "sumOth": true,
}

func runFloatDiscipline(pkg *Package) []Diagnostic {
	if !pkg.Deterministic {
		return nil
	}
	protected := protectedFields(pkg)
	if len(protected) == 0 {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, name string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "float-discipline",
			Message: fmt.Sprintf("raw float accumulation on gain accumulator %s: patch through GainTables.DeltaOwn/DeltaAway so patched stays bit-identical to rebuilt, or annotate //shp:rawfloat(reason)",
				name),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			obj := accumulatorTarget(pkg, as.Lhs[0], protected)
			if obj == nil {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if !isTableDelta(pkg, as.Rhs[0]) {
					report(as.Pos(), obj.Name())
				}
			case token.ASSIGN:
				// x = x ± e is accumulation in disguise.
				be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
				if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
					return true
				}
				if sameAccumulatorRef(pkg, as.Lhs[0], be.X, protected) && !isTableDelta(pkg, be.Y) {
					report(as.Pos(), obj.Name())
				}
			}
			return true
		})
	}
	return diags
}

// protectedFields collects the struct-field objects under float discipline:
// float64 or []float64 fields with a builtin accumulator name or a
// //shp:gainacc designation on the field declaration.
func protectedFields(pkg *Package) map[types.Object]bool {
	protected := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pkg.Info.Types[field.Type]
				if !ok || !isFloatOrFloatSlice(tv.Type) {
					continue
				}
				designated := hasGainAccComment(field.Doc) || hasGainAccComment(field.Comment)
				for _, name := range field.Names {
					if designated || builtinAccumulatorNames[name.Name] {
						if obj := pkg.Info.Defs[name]; obj != nil {
							protected[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return protected
}

func hasGainAccComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, "//shp:gainacc(") {
			return true
		}
	}
	return false
}

func isFloatOrFloatSlice(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// accumulatorTarget resolves an assignment LHS (field selector, or index
// into a slice-valued field) to a protected field object.
func accumulatorTarget(pkg *Package, lhs ast.Expr, protected map[types.Object]bool) types.Object {
	e := ast.Unparen(lhs)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj != nil && protected[obj] {
		return obj
	}
	return nil
}

// sameAccumulatorRef reports whether a and b refer to the same protected
// accumulator element (same field object, syntactically equal base/index).
func sameAccumulatorRef(pkg *Package, a, b ast.Expr, protected map[types.Object]bool) bool {
	oa := accumulatorTarget(pkg, a, protected)
	ob := accumulatorTarget(pkg, b, protected)
	return oa != nil && oa == ob && exprEqual(pkg, a, b)
}

// exprEqual structurally compares ident/selector/index chains, resolving
// idents through the type info so shadowing cannot fake a match.
func exprEqual(pkg *Package, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		oa := pkg.Info.Uses[ea]
		ob := pkg.Info.Uses[eb]
		return oa != nil && oa == ob
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		return ok && pkg.Info.Uses[ea.Sel] == pkg.Info.Uses[eb.Sel] &&
			pkg.Info.Uses[ea.Sel] != nil && exprEqual(pkg, ea.X, eb.X)
	case *ast.IndexExpr:
		eb, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(pkg, ea.X, eb.X) && exprEqual(pkg, ea.Index, eb.Index)
	}
	return false
}

// isTableDelta reports whether e is a direct call to a DeltaOwn/DeltaAway
// method — the sanctioned patch arithmetic.
func isTableDelta(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return false
	}
	return fn.Name() == "DeltaOwn" || fn.Name() == "DeltaAway"
}
