package lint

// Annotation hygiene: malformed, unknown, empty, and stale //shp: comments
// are diagnostics in their own right (analyzer "shp-annotation") and cannot
// be suppressed. These cases live in an in-memory source string rather than
// golden files because a hygiene diagnostic lands on the comment's own line,
// where a trailing want comment cannot follow it.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const hygieneSrc = `package core

//shp:ordered missing parens
var a = 1

//shp:frobnicate(no such directive)
var b = 2

//shp:panics()
var c = 3

//shp:ordered(nothing on this line or the next needs suppressing)
var d = 4
`

func hygienePackage(t *testing.T) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "hygiene.go", hygieneSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	tpkg, err := (&types.Config{}).Check("core", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Path: "core", Name: "core", Fset: fset,
		Files: []*ast.File{f}, Types: tpkg, Info: info,
		Deterministic: true,
	}
}

func TestAnnotationHygiene(t *testing.T) {
	diags := Check([]*Package{hygienePackage(t)}, Analyzers())
	wantSubstrings := []string{
		`malformed annotation`,
		`unknown shp directive "frobnicate"`,
		`//shp:panics needs a non-empty justification`,
		`stale //shp:ordered suppression`,
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for i, sub := range wantSubstrings {
		if diags[i].Analyzer != annotationAnalyzer {
			t.Errorf("diag %d: analyzer %q, want %q", i, diags[i].Analyzer, annotationAnalyzer)
		}
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("diag %d: %q does not contain %q", i, diags[i].Message, sub)
		}
	}
}

// TestStaleScopedToRanAnalyzers pins the partial-run behavior the golden
// tests rely on: a suppression for an analyzer that did not run is never
// reported stale.
func TestStaleScopedToRanAnalyzers(t *testing.T) {
	diags := Check([]*Package{hygienePackage(t)}, []*Analyzer{panicPolicyAnalyzer})
	for _, d := range diags {
		if strings.Contains(d.Message, "stale //shp:ordered") {
			t.Errorf("stale report for an analyzer that did not run: %s", d)
		}
	}
}
