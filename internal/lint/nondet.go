package lint

// nondet-sources: reads of nondeterministic sources in deterministic
// packages. Four classes:
//
//   - the global math/rand source (rand.Intn, rand.Float64, ...): shared
//     state seeded from runtime entropy. Seeded generators — rand.New over
//     an explicit source, or this repo's internal/rng streams — are fine.
//   - wall-clock reads (time.Now/Since/Until): legitimate for timing stats
//     and I/O deadlines, never for anything that feeds an assignment;
//     annotate //shp:nondet(reason) at such sites.
//   - select over two or more channels: when several cases are ready the
//     runtime picks uniformly at random, so multi-channel selects order
//     events nondeterministically.
//   - runtime.GOMAXPROCS reads outside par.Workers: the worker count varies
//     by machine, and any decomposition derived from it directly would make
//     results machine-dependent. par.Workers is the single sanctioned read —
//     it only resolves Parallelism <= 0, and every consumer downstream is
//     held to the worker-count-independence discipline.

import (
	"fmt"
	"go/ast"
)

var nondetAnalyzer = &Analyzer{
	Name:     "nondet-sources",
	Doc:      "flag global math/rand, wall-clock reads, and multi-channel selects in deterministic packages",
	Suppress: "nondet",
	Run:      runNondet,
}

// seededRandConstructors are the math/rand(/v2) functions that build
// explicitly seeded generators rather than reading the global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallClockFuncs are the time package's wall-clock reads.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNondet(pkg *Package) []Diagnostic {
	if !pkg.Deterministic {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "nondet-sources",
			Message:  fmt.Sprintf(format, args...) + "; annotate //shp:nondet(reason) if this never feeds results",
		})
	}
	for _, f := range pkg.Files {
		// par.Workers is the one sanctioned runtime.GOMAXPROCS read; record
		// its extent so calls inside it are exempt. Keyed by package name so
		// the golden testdata can opt in, like the deterministic gate itself.
		var workersDecls []*ast.FuncDecl
		if pkg.Name == "par" {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Workers" {
					workersDecls = append(workersDecls, fd)
				}
			}
		}
		insideWorkers := func(n ast.Node) bool {
			for _, fd := range workersDecls {
				if n.Pos() >= fd.Pos() && n.End() <= fd.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := funcObj(pkg.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					if !seededRandConstructors[fn.Name()] {
						report(n, "call to the global math/rand source (%s.%s): draws differ across runs", fn.Pkg().Name(), fn.Name())
					}
				case "time":
					if wallClockFuncs[fn.Name()] {
						report(n, "wall-clock read (time.%s) in a deterministic package", fn.Name())
					}
				case "runtime":
					if fn.Name() == "GOMAXPROCS" && !insideWorkers(n) {
						report(n, "runtime.GOMAXPROCS read outside par.Workers: resolve worker counts through par.Workers so decompositions stay machine-independent")
					}
				}
			case *ast.SelectStmt:
				comms := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					report(n, "select over %d channels: the runtime picks a ready case at random", comms)
				}
			}
			return true
		})
	}
	return diags
}
