package lint

// TestLintClean runs the full shplint suite over the whole module, so a
// plain `go test ./...` enforces the determinism contract without anyone
// remembering to invoke cmd/shplint. One t.Errorf per finding keeps the
// failure output identical to the CLI's.

import (
	"path/filepath"
	"testing"
)

func TestLintClean(t *testing.T) {
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(moduleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate with a justified //shp: comment; see the package doc")
	}
}
