package lint

// maprange: `range` over a map in a deterministic package. Go randomizes map
// iteration order per run, so any map range whose body's effect depends on
// visit order (merging aggregators, emitting wire bytes, pairing histogram
// directions) silently breaks the byte-identical contract. Two shapes are
// provably safe and pass without annotation:
//
//   - `for range m { ... }` with no iteration variables: the body cannot
//     observe order, only cardinality.
//   - the collect-then-sort idiom: a body consisting solely of appends to
//     local slices, where each slice's next use is a canonical sort
//     (sort.Strings/Ints/Slice/..., slices.Sort/SortFunc/...).
//
// Everything else needs //shp:ordered(reason) stating why order is
// immaterial at that site.

import (
	"fmt"
	"go/ast"
	"go/types"
)

var mapRangeAnalyzer = &Analyzer{
	Name:     "maprange",
	Doc:      "flag nondeterministic map iteration in deterministic packages",
	Suppress: "ordered",
	Run:      runMapRange,
}

func runMapRange(pkg *Package) []Diagnostic {
	if !pkg.Deterministic {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		parents := stmtLists(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if blankOrNil(rs.Key) && blankOrNil(rs.Value) {
				return true // order unobservable: body sees neither key nor value
			}
			if followedByCanonicalSort(pkg, parents, rs) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(rs.For),
				Analyzer: "maprange",
				Message: fmt.Sprintf("iteration over map %s: order is randomized per run; iterate a sorted key slice or annotate //shp:ordered(reason)",
					types.TypeString(tv.Type, types.RelativeTo(pkg.Types))),
			})
			return true
		})
	}
	return diags
}

func blankOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// stmtList locates a statement within its enclosing statement list.
type stmtList struct {
	list []ast.Stmt
	idx  int
}

// stmtLists indexes every statement in the file by its enclosing list, so an
// analyzer can look at what follows a given statement.
func stmtLists(f *ast.File) map[ast.Stmt]stmtList {
	m := map[ast.Stmt]stmtList{}
	record := func(list []ast.Stmt) {
		for i, s := range list {
			m[s] = stmtList{list, i}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return m
}

// followedByCanonicalSort reports whether rs is the collect-then-sort idiom:
// every body statement appends to a slice variable, and each such slice's
// first subsequent use in the enclosing list is as the argument of a
// recognized canonical sort.
func followedByCanonicalSort(pkg *Package, parents map[ast.Stmt]stmtList, rs *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
		obj := pkg.Info.Uses[lhs]
		if obj == nil {
			obj = pkg.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	loc, ok := parents[ast.Stmt(rs)]
	if !ok {
		return false
	}
	for obj := range targets {
		if !nextUseIsSort(pkg, loc.list[loc.idx+1:], obj) {
			return false
		}
	}
	return true
}

// nextUseIsSort scans the statements after the range in order; the first one
// mentioning obj must contain a canonical sort call with obj as its first
// argument.
func nextUseIsSort(pkg *Package, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		mentioned := false
		sorted := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				mentioned = true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isCanonicalSort(pkg, call) {
				return true
			}
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pkg.Info.Uses[arg] == obj {
				sorted = true
			}
			return true
		})
		if mentioned {
			return sorted
		}
	}
	return false
}

// canonicalSortFuncs are the package-level functions accepted as canonical
// sorts of a collected key/value slice.
var canonicalSortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func isCanonicalSort(pkg *Package, call *ast.CallExpr) bool {
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := canonicalSortFuncs[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}
