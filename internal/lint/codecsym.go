package lint

// codec-symmetry: cross-file contract checks for the pregel typed-codec
// plane. Every `Register(sample, codec)` call on a codec Registry is a
// promise with three parts that no single file shows:
//
//   - the codec must actually decode what it encodes (an Append/Decode
//     pair, not an encode-only stub);
//   - hostile bytes must be covered: some Fuzz* target in the package's
//     tests must exercise the codec (by naming its type) or the whole
//     registry (by naming the constructor the registration lives in);
//   - when the registry is wired as Options.Codecs alongside a Combiner,
//     the combiner must have an arm for the registered message type —
//     distshp's combiner panics on unknown kinds, so a registered-but-
//     unhandled type is a latent crash the first time two of its messages
//     share a destination.
//
// Suppress a registration's findings with //shp:nocodec(reason).

import (
	"fmt"
	"go/ast"
	"go/types"
)

var codecSymmetryAnalyzer = &Analyzer{
	Name:     "codec-symmetry",
	Doc:      "registered codecs need decode symmetry, fuzz coverage, and combiner arms",
	Suppress: "nocodec",
	Run:      runCodecSymmetry,
}

// registration is one Register(sample, codec) call.
type registration struct {
	call      *ast.CallExpr
	msgType   types.Type
	codecType types.Type
	// enclosing is the function object the call appears in (nil at package
	// scope).
	enclosing *types.Func
}

func runCodecSymmetry(pkg *Package) []Diagnostic {
	regs, funcDecls := collectRegistrations(pkg)
	if len(regs) == 0 {
		return nil
	}
	fuzzRefs := fuzzIdentSets(pkg)
	wireConstructors, combinerBodies := optionsLinks(pkg, funcDecls)
	armTypes := combinerArmTypes(pkg, combinerBodies)

	var diags []Diagnostic
	report := func(call *ast.CallExpr, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(call.Pos()),
			Analyzer: "codec-symmetry",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	qual := types.RelativeTo(pkg.Types)
	for _, reg := range regs {
		msgName := types.TypeString(reg.msgType, qual)
		codecName := types.TypeString(reg.codecType, qual)

		// Decode symmetry: the codec's method set must carry both halves.
		if named := namedOf(reg.codecType); named != nil {
			missing := ""
			for _, m := range []string{"Append", "Decode"} {
				if !hasMethod(reg.codecType, m) {
					missing += " " + m
				}
			}
			if missing != "" {
				report(reg.call, "codec %s registered for %s is missing%s: every codec needs an encode/decode pair", codecName, msgName, missing)
			}
		}

		// Fuzz coverage: the codec type or its registry constructor must be
		// named by some fuzz target.
		covered := false
		for _, refs := range fuzzRefs {
			if named := namedOf(reg.codecType); named != nil && refs[named.Obj().Name()] {
				covered = true
				break
			}
			if reg.enclosing != nil && refs[reg.enclosing.Name()] {
				covered = true
				break
			}
		}
		if !covered {
			report(reg.call, "codec %s registered for %s has no fuzz target: no Fuzz* function references the codec or its registry constructor", codecName, msgName)
		}

		// Combiner arm: only for registrations inside a constructor whose
		// registry is wired as Options.Codecs next to a Combiner.
		if reg.enclosing != nil && wireConstructors[reg.enclosing] && len(combinerBodies) > 0 {
			arm := false
			for _, at := range armTypes {
				if types.Identical(at, reg.msgType) {
					arm = true
					break
				}
			}
			if !arm {
				report(reg.call, "message type %s rides a combined wire but the combiner has no arm for it", msgName)
			}
		}
	}
	return diags
}

// collectRegistrations finds Register method calls on *Registry receivers
// and indexes the package's function declarations by object.
func collectRegistrations(pkg *Package) ([]registration, map[*types.Func]*ast.FuncDecl) {
	var regs []registration
	funcDecls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var enclosing *types.Func
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				enclosing = obj
				funcDecls[obj] = fd
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Register" {
					return true
				}
				recv, ok := pkg.Info.Types[sel.X]
				if !ok || namedNameOf(recv.Type) != "Registry" {
					return true
				}
				msgTV, ok1 := pkg.Info.Types[call.Args[0]]
				codecTV, ok2 := pkg.Info.Types[call.Args[1]]
				if !ok1 || !ok2 {
					return true
				}
				regs = append(regs, registration{
					call:      call,
					msgType:   msgTV.Type,
					codecType: codecTV.Type,
					enclosing: enclosing,
				})
				return true
			})
		}
	}
	return regs, funcDecls
}

// fuzzIdentSets collects, for each Fuzz* function in the package's test
// files, the set of identifier names its body mentions.
func fuzzIdentSets(pkg *Package) []map[string]bool {
	var sets []map[string]bool
	for _, f := range pkg.TestFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Name.Name) < 5 || fd.Name.Name[:4] != "Fuzz" {
				continue
			}
			refs := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					refs[id.Name] = true
				}
				return true
			})
			sets = append(sets, refs)
		}
	}
	return sets
}

// optionsLinks scans for Options wiring: constructors whose registries are
// installed as Options.Codecs, and the combiner function bodies installed
// as Options.Combiner (either in the composite literal or by a later field
// assignment).
func optionsLinks(pkg *Package, funcDecls map[*types.Func]*ast.FuncDecl) (map[*types.Func]bool, []*ast.BlockStmt) {
	wire := map[*types.Func]bool{}
	var combiners []*ast.BlockStmt
	addCodecs := func(value ast.Expr) {
		call, ok := ast.Unparen(value).(*ast.CallExpr)
		if !ok {
			return
		}
		if fn := funcObj(pkg.Info, call); fn != nil {
			wire[fn] = true
		}
	}
	addCombiner := func(value ast.Expr) {
		switch v := ast.Unparen(value).(type) {
		case *ast.FuncLit:
			combiners = append(combiners, v.Body)
		default:
			call := &ast.CallExpr{Fun: v} // reuse the callee resolver
			if fn := funcObj(pkg.Info, call); fn != nil {
				if fd := funcDecls[fn]; fd != nil && fd.Body != nil {
					combiners = append(combiners, fd.Body)
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if namedNameOf(pkg.Info.Types[n].Type) != "Options" {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Codecs":
						addCodecs(kv.Value)
					case "Combiner":
						addCombiner(kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ok := pkg.Info.Types[sel.X]
					if !ok || namedNameOf(base.Type) != "Options" {
						continue
					}
					switch sel.Sel.Name {
					case "Codecs":
						addCodecs(n.Rhs[i])
					case "Combiner":
						addCombiner(n.Rhs[i])
					}
				}
			}
			return true
		})
	}
	return wire, combiners
}

// combinerArmTypes collects the concrete types a combiner body can handle:
// type-switch case types and type-assertion targets.
func combinerArmTypes(pkg *Package, bodies []*ast.BlockStmt) []types.Type {
	var arms []types.Type
	for _, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if tv, ok := pkg.Info.Types[expr]; ok && tv.IsType() {
							arms = append(arms, tv.Type)
						}
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil {
					if tv, ok := pkg.Info.Types[n.Type]; ok {
						arms = append(arms, tv.Type)
					}
				}
			}
			return true
		})
	}
	return arms
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func namedNameOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

func hasMethod(t types.Type, name string) bool {
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true // interface values promise the full Codec contract
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}
