// Golden input for the float-discipline analyzer. The package is named core
// so the deterministic-package gate applies by name.
package core

// tables stands in for core.GainTables: DeltaOwn/DeltaAway are the
// sanctioned patch arithmetic.
type tables struct{}

func (tables) DeltaOwn(old, new int) float64  { return 0 }
func (tables) DeltaAway(old, new int) float64 { return 0 }

type state struct {
	// accOwn carries a builtin accumulator name: protected automatically.
	accOwn []float64
	// total is designated a gain accumulator by annotation.
	total float64 //shp:gainacc(golden: designated Equation-1 accumulator)
	// scratch is an ordinary float: unprotected.
	scratch float64
}

func patch(st *state, t tables, v, old, new int) {
	st.accOwn[v] += 0.1 // want "raw float accumulation"

	// Direct table deltas are the sanctioned arithmetic: allowed.
	st.accOwn[v] += t.DeltaOwn(old, new)
	st.accOwn[v] -= t.DeltaAway(old, new)

	// x = x + e is accumulation in disguise: flagged on designated fields.
	st.total = st.total + 0.5 // want "raw float accumulation"

	// Unprotected fields accumulate freely.
	st.scratch += 0.5

	// Plain assignment is a rebuild, not a patch: allowed.
	st.total = 0

	st.accOwn[v] -= 0.25 //shp:rawfloat(golden: operand is a hoisted table value on the same grid)
}
