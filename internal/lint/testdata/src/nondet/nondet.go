// Golden input for the nondet-sources analyzer. The package is named pregel
// so the deterministic-package gate applies by name.
package pregel

import (
	"math/rand"
	"runtime"
	"time"
)

// shuffle reads the global math/rand source: flagged.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// seeded builds an explicitly seeded generator: allowed.
func seeded(xs []int) {
	r := rand.New(rand.NewSource(42))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// stamp reads the wall clock into a result: flagged.
func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read"
}

// elapsed is wall-clock timing for stats only, so it is annotated.
func elapsed(f func()) time.Duration {
	start := time.Now() //shp:nondet(golden: timing stats only, never feeds results)
	f()
	return time.Since(start) //shp:nondet(golden: timing stats only, never feeds results)
}

// width sizes a decomposition straight off the machine's core count
// outside par.Workers: flagged.
func width(n int) int {
	w := runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS read outside par.Workers"
	return (n + w - 1) / w
}

// pick races two channels: the runtime chooses a ready case at random.
func pick(a, b chan int) int {
	select { // want "select over 2 channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// drain selects over a single channel plus default: not a race, allowed.
func drain(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}
