// Golden input for the codec-symmetry analyzer. The package is named
// distshp so the deterministic-package gate applies by name; the Registry,
// Options, and Codec shapes mirror the pregel typed-codec plane.
package distshp

type Message interface{}

type Codec interface {
	Append(buf []byte, m Message) ([]byte, error)
	Decode(data []byte) (Message, int, error)
}

type Registry struct{ codecs []Codec }

func (r *Registry) Register(sample Message, c interface{}) {}

type Options struct {
	Codecs   *Registry
	Combiner func(a, b Message) Message
}

type msgPing struct{ N int }
type msgPong struct{ N int }
type msgLoud struct{ N int }
type msgQuiet struct{ N int }

// pingCodec is a full encode/decode pair with fuzz coverage and a combiner
// arm: clean.
type pingCodec struct{}

func (pingCodec) Append(buf []byte, m Message) ([]byte, error) { return buf, nil }
func (pingCodec) Decode(data []byte) (Message, int, error)     { return msgPing{}, 0, nil }

// pongCodec is a full pair, but the combiner below has no msgPong arm.
type pongCodec struct{}

func (pongCodec) Append(buf []byte, m Message) ([]byte, error) { return buf, nil }
func (pongCodec) Decode(data []byte) (Message, int, error)     { return msgPong{}, 0, nil }

// halfCodec encodes but cannot decode.
type halfCodec struct{}

func (halfCodec) Append(buf []byte, m Message) ([]byte, error) { return buf, nil }

// quietCodec is a full pair, but nothing fuzzes it and no fuzz target
// references its registry constructor.
type quietCodec struct{}

func (quietCodec) Append(buf []byte, m Message) ([]byte, error) { return buf, nil }
func (quietCodec) Decode(data []byte) (Message, int, error)     { return msgQuiet{}, 0, nil }

// newReg is the wire registry: FuzzPingCodec references it, so every
// registration here has fuzz coverage.
func newReg() *Registry {
	r := &Registry{}
	r.Register(msgPing{}, pingCodec{})
	r.Register(msgPong{}, pongCodec{}) // want "combiner has no arm"
	r.Register(msgLoud{}, halfCodec{}) // want "missing Decode"
	return r
}

// newQuietReg is never wired as Options.Codecs (no combiner check) and
// never referenced by a fuzz target.
func newQuietReg() *Registry {
	r := &Registry{}
	r.Register(msgQuiet{}, quietCodec{}) // want "no fuzz target"
	r.Register(msgQuiet{}, quietCodec{}) //shp:nocodec(golden: test-only scaffolding, never sees hostile bytes)
	return r
}

// combine handles msgPing and msgLoud but not msgPong.
func combine(a, b Message) Message {
	switch a.(type) {
	case msgPing:
		return a
	case msgLoud:
		return b
	}
	return nil
}

// wire installs newReg's registry next to the combiner, arming the
// combiner-coverage check for newReg's registrations.
func wire() Options {
	return Options{Codecs: newReg(), Combiner: combine}
}
