package distshp

import "testing"

// FuzzPingCodec references the wire-registry constructor, covering every
// codec registered inside it.
func FuzzPingCodec(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := newReg()
		_ = reg
	})
}
