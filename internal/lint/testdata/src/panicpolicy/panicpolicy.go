// Golden input for the panic-policy analyzer. Any library package name
// works; panic-policy is not gated on the deterministic set.
package core

import "errors"

var errCorrupt = errors.New("corrupt")

// explode panics with a bare string: flagged.
func explode() {
	panic("state corrupt") // want "panic in library package"
}

// assertInvariant is a justified invariant assertion.
func assertInvariant(ok bool) {
	if !ok {
		//shp:panics(golden: continuing would corrupt shared state)
		panic("invariant violated")
	}
}

// typed panics with an error value: the typed-panic protocol, where a
// recover boundary converts it into a returned error. Allowed.
func typed() {
	panic(errCorrupt)
}

// guarded re-panics on its recovery path after filtering typed panics:
// allowed.
func guarded(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}
