// Golden input for the nondet-sources analyzer's GOMAXPROCS rule. The
// package is named par so the Workers exemption applies by name, exactly as
// it does to the real internal/par.
package par

import "runtime"

// Workers mirrors the real par.Workers: the single sanctioned GOMAXPROCS
// read. Not flagged.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// shardWidth reads the core count outside Workers — even in package par
// itself, only Workers may resolve the machine width: flagged.
func shardWidth(n int) int {
	w := runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS read outside par.Workers"
	return (n + w - 1) / w
}
