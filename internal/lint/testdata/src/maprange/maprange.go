// Golden input for the maprange analyzer. The package is named core so the
// deterministic-package gate applies by name.
package core

import "sort"

// merge iterates a map with observable order: flagged.
func merge(dst, src map[string]int) {
	for k, v := range src { // want "iteration over map"
		dst[k] += v
	}
}

// mergeJustified carries a suppression on the line above the range.
func mergeJustified(dst, src map[string]int) {
	//shp:ordered(golden: writes to distinct keys commute)
	for k, v := range src {
		dst[k] += v
	}
}

// keys is the collect-then-sort idiom: every body statement appends to a
// local slice whose next use is a canonical sort. No finding.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count ranges with no iteration variables: order unobservable. No finding.
func count(m map[string]struct{}) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// collectUnsorted looks like collect-then-sort but never sorts: flagged.
func collectUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "iteration over map"
		out = append(out, k)
	}
	return out
}
