package lint

// Golden-file tests: each analyzer runs alone over its directory under
// testdata/src/, and the diagnostics must match the `// want "substring"`
// comments exactly — every finding needs a want on its line, every want
// needs a finding. Suppressed cases sit next to the positives in the same
// files, so the //shp: machinery is exercised on every run.

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

func TestGolden(t *testing.T) {
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"maprange", mapRangeAnalyzer},
		{"nondet", nondetAnalyzer},
		{"nondetpar", nondetAnalyzer},
		{"floatdisc", floatDisciplineAnalyzer},
		{"codecsym", codecSymmetryAnalyzer},
		{"panicpolicy", panicPolicyAnalyzer},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(moduleDir, filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(pkg)
			for _, d := range Check([]*Package{pkg}, []*Analyzer{tc.analyzer}) {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				if !takeWant(wants, key, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, subs := range wants {
				for _, sub := range subs {
					t.Errorf("%s: want a finding containing %q, got none", key, sub)
				}
			}
		})
	}
}

// collectWants extracts `want "substring"` fragments from every comment,
// keyed by "file:line" of the comment (a trailing want shares its
// statement's line).
func collectWants(pkg *Package) map[string][]string {
	wants := map[string][]string{}
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				text := c.Text
				for {
					i := strings.Index(text, `want "`)
					if i < 0 {
						break
					}
					rest := text[i+len(`want "`):]
					j := strings.IndexByte(rest, '"')
					if j < 0 {
						break
					}
					wants[key] = append(wants[key], rest[:j])
					text = rest[j+1:]
				}
			}
		}
	}
	return wants
}

// takeWant consumes the first want at key whose substring occurs in msg.
func takeWant(wants map[string][]string, key, msg string) bool {
	for i, sub := range wants[key] {
		if strings.Contains(msg, sub) {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			if len(wants[key]) == 0 {
				delete(wants, key)
			}
			return true
		}
	}
	return false
}
