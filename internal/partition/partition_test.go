package partition

import (
	"math"
	"testing"
	"testing/quick"

	"shp/internal/hypergraph"
	"shp/internal/rng"
)

// figure1 builds the paper's Figure 1 example (0-indexed).
func figure1(t testing.TB) *hypergraph.Bipartite {
	t.Helper()
	g, err := hypergraph.FromHyperedges(6, [][]int32{
		{0, 1, 5},
		{0, 1, 2, 3},
		{3, 4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure1Fanout(t *testing.T) {
	g := figure1(t)
	// V1 = {1,2,3} -> {0,1,2}, V2 = {4,5,6} -> {3,4,5}. Paper: fanouts 2,2,1.
	a := Assignment{0, 0, 0, 1, 1, 1}
	if f := QueryFanout(g, a, 2, 0); f != 2 {
		t.Fatalf("fanout(q0) = %d, want 2", f)
	}
	if f := QueryFanout(g, a, 2, 1); f != 2 {
		t.Fatalf("fanout(q1) = %d, want 2", f)
	}
	if f := QueryFanout(g, a, 2, 2); f != 1 {
		t.Fatalf("fanout(q2) = %d, want 1", f)
	}
	if f := Fanout(g, a, 2); math.Abs(f-5.0/3.0) > 1e-12 {
		t.Fatalf("avg fanout = %v, want 5/3", f)
	}
}

func TestPFanoutLimits(t *testing.T) {
	g := figure1(t)
	a := Assignment{0, 0, 0, 1, 1, 1}
	// Lemma 1: p -> 1 gives plain fanout.
	if got, want := PFanout(g, a, 1-1e-12), Fanout(g, a, 2); math.Abs(got-want) > 1e-6 {
		t.Fatalf("p->1 limit: p-fanout %v, fanout %v", got, want)
	}
	// p-fanout(q) <= fanout(q) for all p.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		for q := int32(0); q < 3; q++ {
			pf := PFanoutQuery(g, a, p, q)
			f := float64(QueryFanout(g, a, 2, q))
			if pf > f+1e-12 {
				t.Fatalf("p=%v q=%d: p-fanout %v > fanout %v", p, q, pf, f)
			}
		}
	}
}

func TestPFanoutMonotoneInP(t *testing.T) {
	g := figure1(t)
	a := Assignment{0, 1, 0, 1, 0, 1}
	prev := 0.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cur := PFanout(g, a, p)
		if cur < prev-1e-12 {
			t.Fatalf("p-fanout not monotone in p at p=%v: %v < %v", p, cur, prev)
		}
		prev = cur
	}
}

// TestLemma2TaylorExpansion verifies the expansion behind Lemma 2: around
// p = 0, Σ_q p-fanout(q) = |E|·p − p²·(within-bucket pair weight) + O(p³),
// so minimizing p-fanout as p → 0 maximizes within-bucket clique-net weight,
// i.e. minimizes the clique-net weighted edge-cut.
func TestLemma2TaylorExpansion(t *testing.T) {
	g := figure1(t)
	// Total pair weight Σ_q C(deg(q), 2) is partition independent.
	totalPairs := 0.0
	for q := 0; q < g.NumQueries(); q++ {
		n := float64(g.QueryDegree(int32(q)))
		totalPairs += n * (n - 1) / 2
	}
	const p = 1e-4
	for _, a := range []Assignment{
		{0, 0, 0, 1, 1, 1},
		{0, 1, 0, 1, 0, 1},
		{1, 1, 0, 0, 1, 0},
	} {
		within := totalPairs - CliqueNetCut(g, a)
		pf := 0.0
		for q := 0; q < g.NumQueries(); q++ {
			pf += PFanoutQuery(g, a, p, int32(q))
		}
		// Σ_q Σ_i (1-(1-p)^{n_i}) = Σ (n_i p - C(n_i,2) p² + O(p³)).
		secondOrder := float64(g.NumEdges())*p - p*p*within
		if math.Abs(pf-secondOrder) > 1e-9 {
			t.Fatalf("Taylor mismatch: p-fanout=%v expansion=%v (diff %v)", pf, secondOrder, pf-secondOrder)
		}
	}
}

func TestCliqueNetCutMatchesExplicitGraph(t *testing.T) {
	// Build the clique-net explicitly on a small random hypergraph and
	// compare with the closed form.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		b := hypergraph.NewBuilder(8, 10)
		for i := 0; i < 40; i++ {
			b.AddEdge(int32(r.Intn(8)), int32(r.Intn(10)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		a := make(Assignment, 10)
		for i := range a {
			a[i] = int32(r.Intn(3))
		}
		// Explicit: w(u,v) = #common queries; cut = Σ w(u,v) over pairs in
		// different buckets.
		explicit := 0.0
		for u := int32(0); u < 10; u++ {
			for v := u + 1; v < 10; v++ {
				if a[u] == a[v] {
					continue
				}
				w := 0
				for _, qu := range g.DataNeighbors(u) {
					for _, qv := range g.DataNeighbors(v) {
						if qu == qv {
							w++
						}
					}
				}
				explicit += float64(w)
			}
		}
		return math.Abs(explicit-CliqueNetCut(g, a)) < 1e-9
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSOEDFootnote(t *testing.T) {
	// Footnote 2: SOED = communication volume + hyperedge cut, where
	// communication volume = Σ_q (fanout(q) - 1).
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		b := hypergraph.NewBuilder(10, 12)
		for i := 0; i < 50; i++ {
			b.AddEdge(int32(r.Intn(10)), int32(r.Intn(12)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		const k = 4
		a := make(Assignment, 12)
		for i := range a {
			a[i] = int32(r.Intn(k))
		}
		var commVolume int64
		for q := 0; q < g.NumQueries(); q++ {
			f := QueryFanout(g, a, k, int32(q))
			if f > 0 {
				commVolume += int64(f - 1)
			}
		}
		return SOED(g, a, k) == float64(commVolume+HyperedgeCut(g, a, k))
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutBounds(t *testing.T) {
	// 1 <= fanout(q) <= min(k, deg(q)) for non-empty queries.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		b := hypergraph.NewBuilder(10, 20)
		for i := 0; i < 60; i++ {
			b.AddEdge(int32(r.Intn(10)), int32(r.Intn(20)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		const k = 5
		a := make(Assignment, 20)
		for i := range a {
			a[i] = int32(r.Intn(k))
		}
		for q := 0; q < g.NumQueries(); q++ {
			f := QueryFanout(g, a, k, int32(q))
			deg := g.QueryDegree(int32(q))
			if deg == 0 {
				if f != 0 {
					return false
				}
				continue
			}
			bound := k
			if deg < bound {
				bound = deg
			}
			if f < 1 || f > bound {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomAssignmentBalanced(t *testing.T) {
	const n, k = 100000, 8
	a := Random(n, k, 42)
	if err := a.Validate(k); err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(a, k); imb > 0.05 {
		t.Fatalf("random assignment imbalance %v too high", imb)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(1000, 4, 7)
	b := Random(1000, 4, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic")
		}
	}
	c := Random(1000, 4, 8)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical assignment")
	}
}

func TestImbalance(t *testing.T) {
	// 6 vertices, k=2, sizes 4 and 2: imbalance = 4/3 - 1 = 1/3.
	a := Assignment{0, 0, 0, 0, 1, 1}
	if imb := Imbalance(a, 2); math.Abs(imb-1.0/3.0) > 1e-12 {
		t.Fatalf("imbalance = %v, want 1/3", imb)
	}
	// Perfect balance.
	if imb := Imbalance(Assignment{0, 1, 0, 1}, 2); imb != 0 {
		t.Fatalf("perfect balance imbalance = %v", imb)
	}
}

func TestWeightedImbalance(t *testing.T) {
	g, err := hypergraph.NewBuilder(1, 4).AddHyperedge(0, 0, 1, 2, 3).
		SetDataWeights([]int32{3, 1, 1, 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Buckets {0} weight 3, {1,2,3} weight 3: perfectly balanced by weight.
	a := Assignment{0, 1, 1, 1}
	if imb := WeightedImbalance(g, a, 2); math.Abs(imb) > 1e-12 {
		t.Fatalf("weighted imbalance = %v, want 0", imb)
	}
}

func TestValidate(t *testing.T) {
	if err := (Assignment{0, 1}).Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := (Assignment{0, 2}).Validate(2); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := (Assignment{Unassigned}).Validate(2); err == nil {
		t.Fatal("expected unassigned error")
	}
	if err := (Assignment{}).Validate(0); err == nil {
		t.Fatal("expected k>=1 error")
	}
}

func TestFanoutHistogram(t *testing.T) {
	g := figure1(t)
	a := Assignment{0, 0, 0, 1, 1, 1}
	hist := FanoutHistogram(g, a, 2)
	if hist[1] != 1 || hist[2] != 2 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestMeasure(t *testing.T) {
	g := figure1(t)
	a := Assignment{0, 0, 0, 1, 1, 1}
	m := Measure(g, a, 2, 0.5)
	if m.Fanout != Fanout(g, a, 2) || m.HyperedgeCut != 2 {
		t.Fatalf("Measure = %+v", m)
	}
	if m.Imbalance != 0 {
		t.Fatalf("imbalance = %v", m.Imbalance)
	}
}

func TestQueryFanoutLargeK(t *testing.T) {
	// More buckets than the stack buffer (64) exercises the append path.
	const n = 200
	hyperedge := make([]int32, n)
	for i := range hyperedge {
		hyperedge[i] = int32(i)
	}
	g, err := hypergraph.FromHyperedges(n, [][]int32{hyperedge})
	if err != nil {
		t.Fatal(err)
	}
	a := make(Assignment, n)
	for i := range a {
		a[i] = int32(i) // every vertex its own bucket
	}
	if f := QueryFanout(g, a, n, 0); f != n {
		t.Fatalf("fanout = %d, want %d", f, n)
	}
	if pf := PFanoutQuery(g, a, 0.5, 0); math.Abs(pf-float64(n)*0.5) > 1e-9 {
		t.Fatalf("p-fanout = %v, want %v", pf, float64(n)*0.5)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Assignment{1, 2, 3}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func BenchmarkFanout(b *testing.B) {
	r := rng.New(1)
	hb := hypergraph.NewBuilder(20000, 40000)
	for i := 0; i < 200000; i++ {
		hb.AddEdge(int32(r.Intn(20000)), int32(r.Intn(40000)))
	}
	g, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	a := Random(40000, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fanout(g, a, 16)
	}
}

func BenchmarkPFanout(b *testing.B) {
	r := rng.New(1)
	hb := hypergraph.NewBuilder(20000, 40000)
	for i := 0; i < 200000; i++ {
		hb.AddEdge(int32(r.Intn(20000)), int32(r.Intn(40000)))
	}
	g, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	a := Random(40000, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PFanout(g, a, 0.5)
	}
}
