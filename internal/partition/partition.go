// Package partition defines partition assignments and the hypergraph
// objectives from the paper: fanout, probabilistic fanout (p-fanout),
// the clique-net weighted edge-cut (Lemma 2), the sum of external degrees
// (SOED), and balance/imbalance measures.
package partition

import (
	"errors"
	"fmt"
	"math"

	"shp/internal/hypergraph"
	"shp/internal/par"
	"shp/internal/rng"
)

// Assignment maps each data vertex to a bucket in [0, k). The value
// Unassigned marks vertices outside the partition (used only transiently).
type Assignment []int32

// Unassigned marks a data vertex with no bucket.
const Unassigned int32 = -1

// Random assigns each of n vertices to a uniform random bucket in [0, k).
// For large graphs this gives an essentially perfectly balanced start,
// which is how Algorithm 1 initializes.
func Random(n, k int, seed uint64) Assignment {
	a := make(Assignment, n)
	par.For(n, 0, func(start, end int) {
		for i := start; i < end; i++ {
			// Per-vertex deterministic stream: identical result for any
			// parallelism level.
			a[i] = int32(rng.Mix(seed, uint64(i)) % uint64(k))
		}
	})
	return a
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	cp := make(Assignment, len(a))
	copy(cp, a)
	return cp
}

// Validate checks that every vertex is assigned a bucket in [0, k).
func (a Assignment) Validate(k int) error {
	if k < 1 {
		return errors.New("partition: k must be >= 1")
	}
	for i, b := range a {
		if b < 0 || int(b) >= k {
			return fmt.Errorf("partition: vertex %d has bucket %d outside [0,%d)", i, b, k)
		}
	}
	return nil
}

// BucketSizes returns the number of data vertices per bucket.
func BucketSizes(a Assignment, k int) []int64 {
	sizes := make([]int64, k)
	for _, b := range a {
		if b >= 0 {
			sizes[b]++
		}
	}
	return sizes
}

// BucketWeights returns the total data-vertex weight per bucket.
func BucketWeights(g *hypergraph.Bipartite, a Assignment, k int) []int64 {
	weights := make([]int64, k)
	for d, b := range a {
		if b >= 0 {
			weights[b] += int64(g.DataWeight(int32(d)))
		}
	}
	return weights
}

// Imbalance returns max_i size_i / (n/k) - 1: the paper's ε such that
// |V_i| <= (1+ε) n/k holds with equality for the largest bucket.
// Returns 0 for an empty assignment.
func Imbalance(a Assignment, k int) float64 {
	n := 0
	for _, b := range a {
		if b >= 0 {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	sizes := BucketSizes(a, k)
	var maxSize int64
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	ideal := float64(n) / float64(k)
	return float64(maxSize)/ideal - 1
}

// WeightedImbalance is Imbalance over vertex weights.
func WeightedImbalance(g *hypergraph.Bipartite, a Assignment, k int) float64 {
	weights := BucketWeights(g, a, k)
	var total, maxW int64
	for _, w := range weights {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if total == 0 {
		return 0
	}
	ideal := float64(total) / float64(k)
	return float64(maxW)/ideal - 1
}

// QueryFanout returns the number of distinct buckets containing a data
// vertex of hyperedge q. Unassigned neighbors are ignored.
func QueryFanout(g *hypergraph.Bipartite, a Assignment, k int, q int32) int {
	// Hyperedges are small on average; a bitmap over k would cost O(k) to
	// reset. Use a small sort-free distinct count over the neighbor buckets.
	ns := g.QueryNeighbors(q)
	switch len(ns) {
	case 0:
		return 0
	case 1:
		if a[ns[0]] >= 0 {
			return 1
		}
		return 0
	}
	var seenBuf [64]int32
	seen := seenBuf[:0]
	for _, d := range ns {
		b := a[d]
		if b < 0 {
			continue
		}
		found := false
		for _, s := range seen {
			if s == b {
				found = true
				break
			}
		}
		if !found {
			seen = append(seen, b)
			if len(seen) == k { // cannot grow further
				return k
			}
		}
	}
	return len(seen)
}

// Fanout returns the average query fanout over all hyperedges:
// fanout(P) = (1/|Q|) Σ_q fanout(P, q). This is the paper's headline metric
// (communication volume / (k-1)-cut, up to constants). When the graph
// carries query weights, the average is weighted.
func Fanout(g *hypergraph.Bipartite, a Assignment, k int) float64 {
	nq := g.NumQueries()
	if nq == 0 {
		return 0
	}
	total := par.SumInt64(nq, 0, func(start, end int) int64 {
		var sum int64
		for q := start; q < end; q++ {
			sum += int64(g.QueryWeight(int32(q))) * int64(QueryFanout(g, a, k, int32(q)))
		}
		return sum
	})
	return float64(total) / float64(g.TotalQueryWeight())
}

// PFanoutQuery returns the probabilistic fanout of hyperedge q:
// Σ_i (1 - (1-p)^{n_i(q)}), counting only assigned neighbors.
func PFanoutQuery(g *hypergraph.Bipartite, a Assignment, p float64, q int32) float64 {
	ns := g.QueryNeighbors(q)
	var bucketBuf [64]int32
	var countBuf [64]int32
	buckets := bucketBuf[:0]
	counts := countBuf[:0]
	for _, d := range ns {
		b := a[d]
		if b < 0 {
			continue
		}
		found := false
		for i, s := range buckets {
			if s == b {
				counts[i]++
				found = true
				break
			}
		}
		if !found {
			buckets = append(buckets, b)
			counts = append(counts, 1)
		}
	}
	total := 0.0
	for _, c := range counts {
		total += 1 - math.Pow(1-p, float64(c))
	}
	return total
}

// PFanout returns the average probabilistic fanout, the optimization
// objective from Section 3.1:
//
//	(1/|Q|) Σ_q Σ_i (1 - (1-p)^{n_i(q)})
func PFanout(g *hypergraph.Bipartite, a Assignment, p float64) float64 {
	nq := g.NumQueries()
	if nq == 0 {
		return 0
	}
	total := par.SumFloat64(nq, 0, func(start, end int) float64 {
		sum := 0.0
		for q := start; q < end; q++ {
			sum += float64(g.QueryWeight(int32(q))) * PFanoutQuery(g, a, p, int32(q))
		}
		return sum
	})
	return float64(total) / float64(g.TotalQueryWeight())
}

// CliqueNetCut returns the weighted edge-cut of the clique-net graph
// (Lemma 2) without materializing it: edge weight w(u,v) is the number of
// common queries, and the cut equals
//
//	Σ_q ( C(n(q), 2) - Σ_i C(n_i(q), 2) )
//
// where n(q) counts assigned neighbors of q and n_i(q) those in bucket i.
func CliqueNetCut(g *hypergraph.Bipartite, a Assignment) float64 {
	nq := g.NumQueries()
	total := par.SumFloat64(nq, 0, func(start, end int) float64 {
		sum := 0.0
		var bucketBuf [64]int32
		var countBuf [64]int64
		for q := start; q < end; q++ {
			buckets := bucketBuf[:0]
			counts := countBuf[:0]
			var n int64
			for _, d := range g.QueryNeighbors(int32(q)) {
				b := a[d]
				if b < 0 {
					continue
				}
				n++
				found := false
				for i, s := range buckets {
					if s == b {
						counts[i]++
						found = true
						break
					}
				}
				if !found {
					buckets = append(buckets, b)
					counts = append(counts, 1)
				}
			}
			cross := n * (n - 1) / 2
			for _, c := range counts {
				cross -= c * (c - 1) / 2
			}
			sum += float64(cross)
		}
		return sum
	})
	return total
}

// SOED returns the sum of external degrees: Σ over hyperedges with
// fanout > 1 of their fanout. Per the paper's footnote, SOED equals the
// communication volume plus the hyperedge cut.
func SOED(g *hypergraph.Bipartite, a Assignment, k int) float64 {
	nq := g.NumQueries()
	total := par.SumInt64(nq, 0, func(start, end int) int64 {
		var sum int64
		for q := start; q < end; q++ {
			if f := QueryFanout(g, a, k, int32(q)); f > 1 {
				sum += int64(f)
			}
		}
		return sum
	})
	return float64(total)
}

// HyperedgeCut returns the number of hyperedges spanning more than one
// bucket.
func HyperedgeCut(g *hypergraph.Bipartite, a Assignment, k int) int64 {
	nq := g.NumQueries()
	return par.SumInt64(nq, 0, func(start, end int) int64 {
		var sum int64
		for q := start; q < end; q++ {
			if QueryFanout(g, a, k, int32(q)) > 1 {
				sum++
			}
		}
		return sum
	})
}

// FanoutHistogram returns counts of queries by fanout value (index f holds
// the number of queries with fanout exactly f; index 0 counts empty queries).
func FanoutHistogram(g *hypergraph.Bipartite, a Assignment, k int) []int64 {
	hist := make([]int64, k+1)
	for q := 0; q < g.NumQueries(); q++ {
		hist[QueryFanout(g, a, k, int32(q))]++
	}
	return hist
}

// Metrics bundles every objective for reporting.
type Metrics struct {
	K            int
	Fanout       float64
	PFanout      float64
	P            float64
	CliqueNetCut float64
	SOED         float64
	HyperedgeCut int64
	Imbalance    float64
}

// Measure computes all metrics in one call.
func Measure(g *hypergraph.Bipartite, a Assignment, k int, p float64) Metrics {
	return Metrics{
		K:            k,
		Fanout:       Fanout(g, a, k),
		PFanout:      PFanout(g, a, p),
		P:            p,
		CliqueNetCut: CliqueNetCut(g, a),
		SOED:         SOED(g, a, k),
		HyperedgeCut: HyperedgeCut(g, a, k),
		Imbalance:    Imbalance(a, k),
	}
}
