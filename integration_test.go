package shp_test

import (
	"bytes"
	"math"
	"testing"

	"shp"
)

// Integration tests exercising multi-module flows through the public API:
// generate -> serialize -> parse -> partition -> measure -> shard -> replay,
// and cross-implementation agreement between the three partitioning paths.

func TestEndToEndPipelineHMetis(t *testing.T) {
	// Generate a social workload, write it to the hMetis format, read it
	// back, partition, persist the assignment, reload, and verify metrics.
	g, err := shp.GenerateSocialEgoNets(3000, 10, 60, 0.85, 1)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := shp.WriteHMetis(&file, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := shp.ReadHMetis(&file)
	if err != nil {
		t.Fatal(err)
	}
	loaded = shp.PruneTrivialQueries(loaded, 2)

	const k = 16
	res, err := shp.Partition(loaded, shp.Options{K: k, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var asgFile bytes.Buffer
	if err := shp.WriteAssignment(&asgFile, res.Assignment); err != nil {
		t.Fatal(err)
	}
	reloaded, err := shp.ReadAssignment(&asgFile)
	if err != nil {
		t.Fatal(err)
	}
	f1 := shp.Fanout(loaded, res.Assignment, k)
	f2 := shp.Fanout(loaded, shp.Assignment(reloaded), k)
	if f1 != f2 {
		t.Fatalf("assignment persistence changed fanout: %v vs %v", f1, f2)
	}
	if imb := shp.Imbalance(res.Assignment, k); imb > 0.12 {
		t.Fatalf("pipeline imbalance %v", imb)
	}

	// Shard onto k servers and verify the latency win over random.
	cluster, err := shp.NewCluster(k, res.Assignment, shp.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	randomCluster, err := shp.NewCluster(k, shp.RandomAssignment(loaded.NumData(), k, 3), shp.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	ms := cluster.ReplayQueries(loaded, 4, 1)
	mr := randomCluster.ReplayQueries(loaded, 4, 1)
	if ms.AvgFanout >= mr.AvgFanout {
		t.Fatalf("sharded fanout %v not below random %v", ms.AvgFanout, mr.AvgFanout)
	}
	if ms.AvgLat >= mr.AvgLat {
		t.Fatalf("sharded latency %v not below random %v", ms.AvgLat, mr.AvgLat)
	}
}

// TestThreePartitionersAgreeOnStructure runs SHP-2, SHP-k, the distributed
// implementation, and the multilevel baseline on a planted-community graph:
// all four must find structure far below random fanout.
func TestThreePartitionersAgreeOnStructure(t *testing.T) {
	g, err := shp.GeneratePlantedPartition(8, 80, 1500, 6, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	random := shp.Fanout(g, shp.RandomAssignment(g.NumData(), k, 6), k)
	// 0.7: every implementation must clearly exploit the planted structure
	// (they differ in quality — the paper's Table 2 shows the same spread).
	threshold := random * 0.7

	check := func(name string, a shp.Assignment) {
		t.Helper()
		if err := a.Validate(k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f := shp.Fanout(g, a, k); f > threshold {
			t.Fatalf("%s fanout %v above threshold %v (random %v)", name, f, threshold, random)
		}
	}
	r1, err := shp.Partition(g, shp.Options{K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	check("SHP-2", r1.Assignment)
	r2, err := shp.Partition(g, shp.Options{K: k, Direct: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	check("SHP-k", r2.Assignment)
	r3, err := shp.PartitionDistributed(g, shp.DistributedOptions{K: k, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	check("distributed", r3.Assignment)
	a4, err := shp.PartitionMultilevel(g, shp.MultilevelConfig{K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	check("multilevel", a4)
}

// TestIncrementalPipeline checks the Section 5 incremental-update flow:
// warm starts move almost nothing, fresh runs move almost everything.
func TestIncrementalPipeline(t *testing.T) {
	g, err := shp.GenerateSocialEgoNets(4000, 10, 80, 0.85, 8)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	base, err := shp.Partition(g, shp.Options{K: k, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	churn := func(a, b shp.Assignment) float64 {
		moved := 0
		for i := range a {
			if a[i] != b[i] {
				moved++
			}
		}
		return float64(moved) / float64(len(a))
	}
	warm, err := shp.Partition(g, shp.Options{K: k, Seed: 10, Initial: base.Assignment, MoveCostPenalty: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := shp.Partition(g, shp.Options{K: k, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	warmChurn := churn(base.Assignment, warm.Assignment)
	freshChurn := churn(base.Assignment, fresh.Assignment)
	if warmChurn > 0.10 {
		t.Fatalf("warm-start churn %.1f%% too high", warmChurn*100)
	}
	if freshChurn < 0.5 {
		t.Fatalf("fresh churn %.1f%% suspiciously low; warm-start comparison meaningless", freshChurn*100)
	}
}

// TestWeightedQueriesEndToEnd loads an edge-weighted hMetis file through the
// facade and verifies weighted optimization.
func TestWeightedQueriesEndToEnd(t *testing.T) {
	g, err := shp.GeneratePowerLawBipartite(400, 600, 3000, 2.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Attach weights by round-tripping through a weighted builder.
	weights := make([]int32, g.NumQueries())
	for q := range weights {
		weights[q] = int32(1 + q%7)
	}
	b := shp.NewBuilder(g.NumQueries(), g.NumData())
	for q := 0; q < g.NumQueries(); q++ {
		b.AddHyperedge(int32(q), g.QueryNeighbors(int32(q))...)
	}
	wg, err := b.SetQueryWeights(weights).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := shp.Partition(wg, shp.Options{K: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	f := shp.Fanout(wg, res.Assignment, 8)
	random := shp.Fanout(wg, shp.RandomAssignment(wg.NumData(), 8, 13), 8)
	if f >= random {
		t.Fatalf("weighted fanout %v >= random %v", f, random)
	}
}

// TestMetricsIdentities cross-checks metric identities through the facade.
func TestMetricsIdentities(t *testing.T) {
	g, err := shp.GeneratePowerLawBipartite(300, 400, 2500, 2.1, 14)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	a := shp.RandomAssignment(g.NumData(), k, 15)
	m := shp.Measure(g, a, k, 0.5)
	// p-fanout <= fanout always; both >= 1 for graphs without empty queries.
	if m.PFanout > m.Fanout+1e-9 {
		t.Fatalf("p-fanout %v exceeds fanout %v", m.PFanout, m.Fanout)
	}
	// p -> 1 limit (Lemma 1).
	if lim := shp.PFanout(g, a, 1-1e-12); math.Abs(lim-m.Fanout) > 1e-6 {
		t.Fatalf("p->1 p-fanout %v != fanout %v", lim, m.Fanout)
	}
	// SOED >= communication volume identity holds through the facade.
	if m.SOED < (m.Fanout-1)*float64(g.NumQueries()) {
		t.Fatalf("SOED %v below communication volume", m.SOED)
	}
}

// TestSessionDeltaEquivalence is the dynamic-graph acceptance check through
// the public API: a graph evolved via Partitioner.Apply must be
// Validate-clean and edge-identical to one rebuilt from scratch, and the
// warm Repartition must stay within 1% of a cold Partition of the mutated
// graph.
func TestSessionDeltaEquivalence(t *testing.T) {
	g, err := shp.GenerateSocialEgoNets(6000, 10, 80, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	g = shp.PruneTrivialQueries(g, 2)
	cold := g.Clone()

	const k = 16
	p, err := shp.NewPartitioner(g, shp.Options{K: k, Direct: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := shp.NewChurn(g, 0.01, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the batches through the trace codec on the way to the cold
	// graph: stream replay and in-process application must agree.
	var traceBuf bytes.Buffer
	for epoch := 0; epoch < 4; epoch++ {
		d, err := churn.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := shp.WriteDeltaTrace(&traceBuf, []*shp.Delta{d}); err != nil {
			t.Fatal(err)
		}
		if err := p.Apply(d); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Repartition(); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := shp.ReadDeltaTrace(&traceBuf, cold.NumQueries(), cold.NumData())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range replayed {
		if err := cold.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}

	// Structural equivalence: session graph == trace-replayed graph ==
	// scratch rebuild, all Validate-clean.
	if err := p.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cold.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Graph().NumEdges() != cold.NumEdges() || p.Graph().NumQueries() != cold.NumQueries() ||
		p.Graph().NumData() != cold.NumData() {
		t.Fatal("session graph and trace-replayed graph disagree")
	}
	scratch := shp.NewBuilder(cold.NumQueries(), cold.NumData())
	for q := 0; q < cold.NumQueries(); q++ {
		scratch.AddHyperedge(int32(q), cold.QueryNeighbors(int32(q))...)
	}
	rebuilt, err := scratch.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumEdges() != p.Graph().NumEdges() {
		t.Fatal("scratch rebuild disagrees with delta-built graph")
	}
	for q := 0; q < cold.NumQueries(); q++ {
		a, b := p.Graph().QueryNeighbors(int32(q)), rebuilt.QueryNeighbors(int32(q))
		if len(a) != len(b) {
			t.Fatalf("query %d degree differs from scratch rebuild", q)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d member %d differs from scratch rebuild", q, i)
			}
		}
	}

	// Quality: warm session within 1% of a cold partition of the same
	// mutated graph.
	coldRes, err := shp.Partition(cold, shp.Options{K: k, Direct: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	warmF := shp.Fanout(p.Graph(), p.Assignment(), k)
	coldF := shp.Fanout(cold, coldRes.Assignment, k)
	if warmF > coldF*1.01 {
		t.Fatalf("warm fanout %.4f more than 1%% above cold %.4f", warmF, coldF)
	}
	if imb := shp.Imbalance(p.Assignment(), k); imb > 0.05+1e-9 {
		t.Fatalf("imbalance %.4f exceeds epsilon after churn", imb)
	}
}
