// Benchmarks regenerating every table and figure from the paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md.
//
// Table/figure benches exercise the same code paths as
// `cmd/experiments -run <id>` at a bench-friendly scale; quality benches
// attach the achieved fanout via b.ReportMetric so `go test -bench` output
// doubles as a quality regression record.
package shp_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"shp"
	"shp/internal/experiments"
)

// benchCfg is the experiment harness configuration used by table/figure
// benchmarks: quick lists at a small scale.
func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Scale: 0.04, Seed: 1, Workers: 4}
}

// graph cache so repeated benchmarks do not regenerate inputs.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*shp.Hypergraph{}
)

func benchGraph(b *testing.B, name string) *shp.Hypergraph {
	b.Helper()
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g
	}
	var g *shp.Hypergraph
	var err error
	switch name {
	case "social-small":
		g, err = shp.GenerateSocialEgoNets(8000, 12, 80, 0.85, 1)
	case "social-medium":
		g, err = shp.GenerateSocialEgoNets(30000, 14, 100, 0.85, 2)
	case "powerlaw-small":
		g, err = shp.GeneratePowerLawBipartite(10000, 16000, 90000, 2.1, 3)
	case "powerlaw-medium":
		g, err = shp.GeneratePowerLawBipartite(40000, 64000, 380000, 2.1, 4)
	default:
		b.Fatalf("unknown bench graph %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	g = shp.PruneTrivialQueries(g, 2)
	graphCache[name] = g
	return g
}

func runExperimentBench(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s missing", id)
	}
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per paper table/figure ----

func BenchmarkTable1Datasets(b *testing.B)      { runExperimentBench(b, "table1") }
func BenchmarkFig2LocalMinimum(b *testing.B)    { runExperimentBench(b, "fig2") }
func BenchmarkFig4aLatencySim(b *testing.B)     { runExperimentBench(b, "fig4a") }
func BenchmarkFig4bLatencyReplay(b *testing.B)  { runExperimentBench(b, "fig4b") }
func BenchmarkTable2Quality(b *testing.B)       { runExperimentBench(b, "table2") }
func BenchmarkTable3Scalability(b *testing.B)   { runExperimentBench(b, "table3") }
func BenchmarkFig5aEdgeScaling(b *testing.B)    { runExperimentBench(b, "fig5a") }
func BenchmarkFig5bMachineScaling(b *testing.B) { runExperimentBench(b, "fig5b") }
func BenchmarkFig6PSweep(b *testing.B)          { runExperimentBench(b, "fig6") }
func BenchmarkFig7Convergence(b *testing.B)     { runExperimentBench(b, "fig7") }
func BenchmarkFig8Objectives(b *testing.B)      { runExperimentBench(b, "fig8") }

// ---- Core partitioner benches (throughput on fixed workloads) ----

func BenchmarkPartitionSHP2(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	b.ResetTimer()
	var fanout float64
	for i := 0; i < b.N; i++ {
		res, err := shp.Partition(g, shp.Options{K: 16, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		fanout = shp.Fanout(g, res.Assignment, 16)
	}
	b.ReportMetric(fanout, "fanout")
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkPartitionSHPk(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	b.ResetTimer()
	var fanout float64
	for i := 0; i < b.N; i++ {
		res, err := shp.Partition(g, shp.Options{K: 16, Direct: true, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		fanout = shp.Fanout(g, res.Assignment, 16)
	}
	b.ReportMetric(fanout, "fanout")
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkRefineDelta measures the incremental engine where it matters:
// warm-started refinement at a controlled churn level. A converged
// assignment is perturbed by a known moved fraction and re-refined for a
// fixed number of iterations, with the incremental engine on and off
// (identical work per Options.DisableIncremental equivalence, so edges/s
// differences are pure engine overhead/savings).
func BenchmarkRefineDelta(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	const k = 16
	base, err := shp.Partition(g, shp.Options{K: k, Direct: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	perturb := func(frac float64) shp.Assignment {
		warm := make(shp.Assignment, len(base.Assignment))
		copy(warm, base.Assignment)
		r := rand.New(rand.NewSource(7))
		n := int(frac * float64(len(warm)))
		for i := 0; i < n; i++ {
			v := r.Intn(len(warm))
			warm[v] = int32(r.Intn(k))
		}
		return warm
	}
	for _, frac := range []float64{0.01, 0.05, 0.25} {
		warm := perturb(frac)
		for _, engine := range []struct {
			name    string
			disable bool
		}{{"incremental", false}, {"full-rebuild", true}} {
			b.Run(fmt.Sprintf("moved%g%%-%s", frac*100, engine.name), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					res, err := shp.Partition(g, shp.Options{
						K: k, Direct: true, Seed: 2, MaxIters: 6,
						Initial: warm, DisableIncremental: engine.disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					iters = res.Iterations
				}
				b.ReportMetric(float64(iters), "iters")
				b.ReportMetric(float64(g.NumEdges())*float64(iters)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			})
		}
	}
}

// BenchmarkRepartitionDelta measures the session API where it matters: a
// live Partitioner absorbing delta batches at a controlled churn level,
// against re-partitioning the mutated graph from scratch each time. The
// session and cold variants replay identical delta sequences (same churn
// seed over clones of the same graph), so edges/s differences are pure
// engine savings and the fanout metrics are directly comparable — the
// session is expected to run several times faster at small churn while
// staying within 1% of the cold fanout.
func BenchmarkRepartitionDelta(b *testing.B) {
	base := benchGraph(b, "social-small")
	const k = 16
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("churn%g%%/session", frac*100), func(b *testing.B) {
			g := base.Clone()
			p, err := shp.NewPartitioner(g, shp.Options{K: k, Direct: true, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			churn, err := shp.NewChurn(g, frac, 9)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Repartition(); err != nil { // build the warm engine
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := churn.Next()
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Apply(d); err != nil {
					b.Fatal(err)
				}
				if _, err := p.Repartition(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(shp.Fanout(p.Graph(), p.Assignment(), k), "fanout")
			b.ReportMetric(float64(p.Graph().NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
		b.Run(fmt.Sprintf("churn%g%%/cold", frac*100), func(b *testing.B) {
			g := base.Clone()
			churn, err := shp.NewChurn(g, frac, 9)
			if err != nil {
				b.Fatal(err)
			}
			var res *shp.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := churn.Next()
				if err != nil {
					b.Fatal(err)
				}
				if err := g.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				if res, err = shp.Partition(g, shp.Options{K: k, Direct: true, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(shp.Fanout(g, res.Assignment, k), "fanout")
			b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

func BenchmarkPartitionMultilevelBaseline(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	b.ResetTimer()
	var fanout float64
	for i := 0; i < b.N; i++ {
		a, err := shp.PartitionMultilevel(g, shp.MultilevelConfig{K: 16, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		fanout = shp.Fanout(g, a, 16)
	}
	b.ReportMetric(fanout, "fanout")
}

func BenchmarkPartitionDistributed(b *testing.B) {
	g := benchGraph(b, "social-small")
	b.ResetTimer()
	var remote float64
	for i := 0; i < b.N; i++ {
		res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
			K: 16, Seed: uint64(i) + 1, Workers: 4, ItersPerLevel: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		remote = float64(res.Stats.RemoteMessages)
	}
	b.ReportMetric(remote, "remote-msgs")
}

// ---- Message-plane benchmarks ----
//
// These record the distributed engine's communication volume per backend so
// future PRs have a perf trajectory to beat: remote envelope counts are
// post-sender-side-combining, and bytes are measured rather than callback
// estimates. The two backends measure different populations — the in-process
// plane charges the codec size of every message (local included), the TCP
// plane charges the frames that actually crossed sockets (remote only,
// headers included) — so compare msg-bytes within a backend, not across.

func BenchmarkMessagePlane(b *testing.B) {
	g := benchGraph(b, "social-small")
	cases := []struct {
		name      string
		transport func() shp.Transport
		noCombine bool
	}{
		{"memory", shp.MemoryTransport, false},
		{"memory-nocombine", shp.MemoryTransport, true},
		{"tcp", shp.TCPTransport, false},
		{"tcp-nocombine", shp.TCPTransport, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var remoteMsgs, bytes, bytesPerSuperstep float64
			for i := 0; i < b.N; i++ {
				res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
					K: 16, Seed: 1, Workers: 4, ItersPerLevel: 5,
					Transport: tc.transport(), DisableCombining: tc.noCombine,
				})
				if err != nil {
					b.Fatal(err)
				}
				remoteMsgs = float64(res.Stats.RemoteMessages)
				bytes = float64(res.Stats.TotalBytes)
				bytesPerSuperstep = bytes / float64(res.Stats.Supersteps)
			}
			b.ReportMetric(remoteMsgs, "remote-msgs")
			b.ReportMetric(bytes, "msg-bytes")
			b.ReportMetric(bytesPerSuperstep, "bytes/superstep")
		})
	}
}

// BenchmarkDistDelta quantifies the dirty-query delta plane: the
// "incremental" and "full" runs are byte-identical in quality (pinned by
// TestDistIncrementalMatchesFull), so the interesting metrics are the
// gain-superstep bytes of late iterations (moved fraction <= 1%), where the
// delta plane ships churn-proportional traffic while the full rebroadcast
// stays O(|E|). Compare late-bytes/superstep between the two sub-benchmarks;
// the reduction should be well above 3x.
func BenchmarkDistDelta(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"incremental", false},
		{"full", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var lateBytes, lateIters, totalBytes float64
			for i := 0; i < b.N; i++ {
				res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
					K: 16, Seed: 1, Workers: 4, MinMoveFraction: 1e-9,
					DisableIncremental: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				n, lb := res.LateGainBytes(0.01)
				lateBytes = float64(lb)
				lateIters = float64(n)
				totalBytes = float64(res.Stats.TotalBytes)
			}
			if lateIters > 0 {
				b.ReportMetric(lateBytes/lateIters, "late-bytes/superstep")
			}
			b.ReportMetric(totalBytes, "msg-bytes")
		})
	}
}

// BenchmarkCheckpoint prices the fault-tolerance plane: the "on" run
// checkpoints at the default cadence (every 64 supersteps) while "off"
// ablates checkpointing entirely. The two are byte-identical in quality
// (pinned by TestDistCheckpointingIsPureObservation), so the interesting
// numbers are ckpt-bytes and the wall-clock delta — the snapshot plane is
// sparse varint encoding over already-materialized state, and at cadence 64
// its overhead stays under a few percent of the partition time.
func BenchmarkCheckpoint(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var ckptBytes float64
			for i := 0; i < b.N; i++ {
				res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
					K: 16, Seed: 1, Workers: 4,
					DisableCheckpointing: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				ckptBytes = float64(res.Stats.CheckpointBytes)
			}
			b.ReportMetric(ckptBytes, "ckpt-bytes")
		})
	}
}

func BenchmarkMetricsFanout(b *testing.B) {
	g := benchGraph(b, "powerlaw-medium")
	a := shp.RandomAssignment(g.NumData(), 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shp.Fanout(g, a, 32)
	}
}

// ---- Ablations of DESIGN.md's called-out design choices ----

// BenchmarkAblationPairing compares the three swap protocols: quality
// (fanout metric) and speed on the same workload.
func BenchmarkAblationPairing(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, mode := range []shp.PairingMode{shp.PairHistogram, shp.PairSimple, shp.PairExact} {
		b.Run(mode.String(), func(b *testing.B) {
			var fanout float64
			for i := 0; i < b.N; i++ {
				res, err := shp.Partition(g, shp.Options{K: 16, Seed: 1, Pairing: mode})
				if err != nil {
					b.Fatal(err)
				}
				fanout = shp.Fanout(g, res.Assignment, 16)
			}
			b.ReportMetric(fanout, "fanout")
		})
	}
}

// BenchmarkAblationLookahead measures Section 3.4's final-p-fanout
// approximation during recursive splits.
func BenchmarkAblationLookahead(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, disable := range []bool{false, true} {
		name := "lookahead-on"
		if disable {
			name = "lookahead-off"
		}
		b.Run(name, func(b *testing.B) {
			var fanout float64
			for i := 0; i < b.N; i++ {
				res, err := shp.Partition(g, shp.Options{K: 32, Seed: 1, DisableLookahead: disable})
				if err != nil {
					b.Fatal(err)
				}
				fanout = shp.Fanout(g, res.Assignment, 32)
			}
			b.ReportMetric(fanout, "fanout")
		})
	}
}

// BenchmarkAblationEpsilonScaling measures Section 3.4's ε schedule.
func BenchmarkAblationEpsilonScaling(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, disable := range []bool{false, true} {
		name := "eps-scaled"
		if disable {
			name = "eps-flat"
		}
		b.Run(name, func(b *testing.B) {
			var fanout float64
			for i := 0; i < b.N; i++ {
				res, err := shp.Partition(g, shp.Options{K: 32, Seed: 1, DisableEpsilonScaling: disable})
				if err != nil {
					b.Fatal(err)
				}
				fanout = shp.Fanout(g, res.Assignment, 32)
			}
			b.ReportMetric(fanout, "fanout")
		})
	}
}

// BenchmarkAblationDirtyOnly measures the neighbor-data caching
// optimization in the distributed implementation (Section 3.3): messages
// saved by only re-sending buckets after moves.
func BenchmarkAblationDirtyOnly(b *testing.B) {
	g := benchGraph(b, "social-small")
	for _, disable := range []bool{false, true} {
		name := "dirty-only"
		if disable {
			name = "always-send"
		}
		b.Run(name, func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
					K: 8, Seed: 1, Workers: 4, ItersPerLevel: 5, DisableDirtyOnly: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = float64(res.Stats.TotalMessages)
			}
			b.ReportMetric(msgs, "messages")
		})
	}
}

// BenchmarkAblationObjective compares the three objectives' achieved fanout
// (Figure 8 in miniature).
func BenchmarkAblationObjective(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	for _, obj := range []shp.Objective{shp.ObjPFanout, shp.ObjFanout, shp.ObjCliqueNet} {
		b.Run(obj.String(), func(b *testing.B) {
			var fanout float64
			for i := 0; i < b.N; i++ {
				res, err := shp.Partition(g, shp.Options{K: 8, Seed: 1, Objective: obj})
				if err != nil {
					b.Fatal(err)
				}
				fanout = shp.Fanout(g, res.Assignment, 8)
			}
			b.ReportMetric(fanout, "fanout")
		})
	}
}

// BenchmarkScalingWorkers measures parallel speedup of SHP-2 (the Figure 5b
// story at bench scale).
func BenchmarkScalingWorkers(b *testing.B) {
	g := benchGraph(b, "powerlaw-medium")
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(map[int]string{1: "w1", 4: "w4", 8: "w8", 16: "w16"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shp.Partition(g, shp.Options{K: 32, Seed: 1, Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelRefine is the shared-memory parallel plane's cores
// sweep: cold SHP-2 partitions at 1/2/4/8 workers on the same graph and
// seed, reporting edges/s plus speedup against the serial sub-benchmark
// (w1 runs first and pins the baseline). Every point in the sweep computes
// the byte-identical assignment — the Parallelism determinism contract —
// so the curve measures pure execution speed, never quality drift.
func BenchmarkParallelRefine(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	var serialSecPerOp float64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shp.Partition(g, shp.Options{K: 16, Seed: 1, Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
			secPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(g.NumEdges())/secPerOp, "edges/s")
			if workers == 1 {
				serialSecPerOp = secPerOp
			} else if serialSecPerOp > 0 {
				b.ReportMetric(serialSecPerOp/secPerOp, "speedup")
			}
		})
	}
}

// BenchmarkScalingK measures run time vs bucket count: SHP-2 should be
// logarithmic in k, SHP-k linear (the Table 3 contrast).
func BenchmarkScalingK(b *testing.B) {
	g := benchGraph(b, "powerlaw-small")
	for _, k := range []int{8, 64, 512} {
		b.Run(map[int]string{8: "SHP2-k8", 64: "SHP2-k64", 512: "SHP2-k512"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shp.Partition(g, shp.Options{K: k, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, k := range []int{8, 64, 512} {
		b.Run(map[int]string{8: "SHPk-k8", 64: "SHPk-k64", 512: "SHPk-k512"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shp.Partition(g, shp.Options{K: k, Direct: true, Seed: 1, MaxIters: 20}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Serving plane ----

// servingService builds an AssignService over a private clone of a bench
// graph (the service's churn mutates its graph; the cache must stay clean).
func servingService(b *testing.B, budget int64) *shp.AssignService {
	b.Helper()
	g := benchGraph(b, "social-small").Clone()
	svc, err := shp.NewAssignService(g, shp.AssignServiceOptions{
		Core: shp.Options{K: 16, Direct: true, Seed: 5, MigrationBudget: budget},
	})
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkAssignLookup measures raw lookup throughput against a static
// epoch — the serving plane's hot path: one atomic pointer load plus one
// slice index per call.
func BenchmarkAssignLookup(b *testing.B) {
	svc := servingService(b, 0)
	n := int32(len(svc.Current().Assignment))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink int32
		v := int32(0)
		for pb.Next() {
			bk, _, err := svc.Assign(v)
			if err != nil {
				b.Error(err)
				return
			}
			sink ^= bk
			v += 7
			if v >= n {
				v -= n
			}
		}
		_ = sink
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkEpochSwap measures the serve-while-repartitioning cycle: each
// op is one full churn epoch (generate delta, apply, refine under a
// migration budget, swap) while background goroutines hammer lookups the
// whole time. The reported p99 is the sampled lookup latency *including*
// swap interference — the number a serving fleet cares about.
func BenchmarkEpochSwap(b *testing.B) {
	svc := servingService(b, 500)
	churn, err := svc.NewChurn(0.02, 6)
	if err != nil {
		b.Fatal(err)
	}
	n := int32(len(svc.Current().Assignment))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var sink int32
			v := int32(worker)
			for {
				select {
				case <-stop:
					_ = sink
					return
				default:
				}
				bk, _, err := svc.Assign(v)
				if err == nil {
					sink ^= bk
				}
				v += 11
				if v >= n {
					v -= n
				}
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.ChurnEpoch(churn); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	st := svc.Stats()
	b.ReportMetric(float64(st.P99), "lookup-p99-ns")
	b.ReportMetric(float64(st.Lookups)/b.Elapsed().Seconds(), "lookups/s")
}
