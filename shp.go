// Package shp is the public API of the Social Hash Partitioner: scalable
// balanced k-way hypergraph partitioning that minimizes fanout by local
// search on the probabilistic-fanout objective (Kabiljo et al., "Social
// Hash Partitioner: A Scalable Distributed Hypergraph Partitioner",
// VLDB 2017).
//
// A hypergraph is represented as a bipartite graph between queries
// (hyperedges) and data vertices. Partitioning splits the data vertices
// into K balanced buckets so that the average number of buckets a query
// touches — its fanout — is minimized. In storage sharding, buckets are
// servers and low fanout means fewer, faster multi-get requests.
//
// Quickstart:
//
//	g, _ := shp.FromHyperedges(6, [][]int32{{0, 1, 5}, {0, 1, 2, 3}, {3, 4, 5}})
//	p, _ := shp.NewPartitioner(g, shp.Options{K: 2, Seed: 42})
//	fmt.Println(shp.Fanout(g, p.Assignment(), 2))
//
// The central type is the Partitioner session: it owns a mutable
// hypergraph, the current assignment, and the warm refinement state, so a
// living graph can evolve through Apply(delta) and be re-partitioned
// cheaply with Repartition — the paper's production mode, where shardings
// are updated continuously instead of recomputed (Section 5). One-shot
// helpers (Partition, PartitionMultiDim, PartitionDistributed) remain as
// conveniences over a single-use session.
//
// The two execution strategies from the paper are both available:
// recursive bisection (SHP-2, the default and the open-sourced variant) and
// direct k-way refinement (SHP-k, Options.Direct). PartitionDistributed
// runs the same algorithm through a vertex-centric BSP engine that
// simulates a Giraph cluster, including message accounting.
package shp

import (
	"io"

	"shp/internal/core"
	"shp/internal/distshp"
	"shp/internal/gen"
	"shp/internal/hgio"
	"shp/internal/hypergraph"
	"shp/internal/multilevel"
	"shp/internal/partition"
	"shp/internal/pregel"
	"shp/internal/serve"
	"shp/internal/sharding"
)

// Hypergraph is the bipartite query–data representation of a hypergraph:
// every query vertex corresponds to one hyperedge spanning the data
// vertices adjacent to it.
type Hypergraph = hypergraph.Bipartite

// Builder incrementally assembles a Hypergraph.
type Builder = hypergraph.Builder

// Edge is one (query, data) incidence.
type Edge = hypergraph.Edge

// NewBuilder creates a builder for a graph with numQueries hyperedges and
// numData data vertices.
func NewBuilder(numQueries, numData int) *Builder {
	return hypergraph.NewBuilder(numQueries, numData)
}

// FromEdges builds a hypergraph from an incidence list.
func FromEdges(numQueries, numData int, edges []Edge) (*Hypergraph, error) {
	return hypergraph.FromEdges(numQueries, numData, edges)
}

// FromHyperedges builds a hypergraph from explicit hyperedge vertex lists.
func FromHyperedges(numData int, hyperedges [][]int32) (*Hypergraph, error) {
	return hypergraph.FromHyperedges(numData, hyperedges)
}

// PruneTrivialQueries removes hyperedges smaller than minDegree; the paper
// prunes isolated and degree-one queries, whose fanout is fixed at one.
func PruneTrivialQueries(g *Hypergraph, minDegree int) *Hypergraph {
	return hypergraph.PruneTrivialQueries(g, minDegree)
}

// ReadHMetis parses the hMetis/PaToH ".hgr" hypergraph format.
func ReadHMetis(r io.Reader) (*Hypergraph, error) { return hgio.ReadHMetis(r) }

// WriteHMetis writes the hMetis format.
func WriteHMetis(w io.Writer, g *Hypergraph) error { return hgio.WriteHMetis(w, g) }

// ReadEdgeList parses a "q d" bipartite edge list.
func ReadEdgeList(r io.Reader) (*Hypergraph, error) { return hgio.ReadEdgeList(r) }

// WriteEdgeList writes the bipartite edge-list format.
func WriteEdgeList(w io.Writer, g *Hypergraph) error { return hgio.WriteEdgeList(w, g) }

// ReadAssignment reads one bucket id per line.
func ReadAssignment(r io.Reader) ([]int32, error) { return hgio.ReadAssignment(r) }

// ReadDeltaTrace parses chained delta batches in the line-oriented trace
// format (addq/rmq/addd/setw/commit) written against a graph with the given
// vertex counts.
func ReadDeltaTrace(r io.Reader, baseQueries, baseData int) ([]*Delta, error) {
	return hgio.ReadDeltaTrace(r, baseQueries, baseData)
}

// WriteDeltaTrace writes delta batches in the trace format.
func WriteDeltaTrace(w io.Writer, deltas []*Delta) error {
	return hgio.WriteDeltaTrace(w, deltas)
}

// WriteAssignment writes one bucket id per line.
func WriteAssignment(w io.Writer, a []int32) error { return hgio.WriteAssignment(w, a) }

// Assignment maps each data vertex to its bucket.
type Assignment = partition.Assignment

// Options configures Partition; the zero value plus K uses the paper's
// recommended defaults (p = 0.5, ε = 0.05, recursive bisection with
// histogram pairing and final-p-fanout lookahead). Refinement is
// incremental by default — per-iteration cost tracks churn, not |E| —
// with DisableIncremental and NDRebuildEvery as ablation/safety knobs;
// both engine paths produce identical partitions for a fixed seed.
type Options = core.Options

// Result is a finished partitioning with per-iteration history.
type Result = core.Result

// IterStats records one refinement iteration.
type IterStats = core.IterStats

// WorkStats records one refinement iteration's work counters: the frontier
// the gain pass visited and the gain/scan work units spent. Unlike History,
// Work is not pinned across the incremental and DisableIncremental paths —
// sublinear frontier work on the incremental engine is the whole point.
type WorkStats = core.WorkStats

// Objective selects the optimization target.
type Objective = core.Objective

// Objectives: probabilistic fanout (default), plain fanout (p -> 1), and
// the clique-net weighted edge-cut (p -> 0, Lemma 2).
const (
	ObjPFanout   = core.ObjPFanout
	ObjFanout    = core.ObjFanout
	ObjCliqueNet = core.ObjCliqueNet
)

// PairingMode selects the swap protocol used to preserve balance.
type PairingMode = core.PairingMode

// Pairing modes: Section 3.4's gain histograms (default), Algorithm 1's
// S-matrix, and the exact sorted-queue reference.
const (
	PairHistogram = core.PairHistogram
	PairSimple    = core.PairSimple
	PairExact     = core.PairExact
)

// Partitioner is a long-lived partitioning session over a mutable
// hypergraph: it owns the graph, the current Assignment, and the warm
// refinement state (neighbor-data CSR, patchable gain accumulators, bucket
// loads). Build one with NewPartitioner, evolve the graph with Apply, and
// call Repartition to absorb the changes at a cost proportional to the
// churn rather than to |E|.
type Partitioner struct {
	s *core.Session
}

// NewPartitioner computes the initial partition of g (recursive SHP-2 by
// default, SHP-k with Options.Direct) and returns the live session. The
// session owns g from here on: mutate it only through Apply.
func NewPartitioner(g *Hypergraph, opts Options) (*Partitioner, error) {
	s, err := core.NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	return &Partitioner{s: s}, nil
}

// Delta is an ordered batch of structural changes to a hypergraph:
// AddHyperedge, RemoveHyperedge, AddData, and SetDataWeight ops, built
// against known vertex counts and applied atomically.
type Delta = hypergraph.Delta

// NewDelta starts an empty delta against a graph with the given vertex
// counts. Prefer Partitioner.NewDelta, which fills the counts in.
func NewDelta(numQueries, numData int) *Delta {
	return hypergraph.NewDelta(numQueries, numData)
}

// NewDelta starts an empty delta against the session's current graph.
func (p *Partitioner) NewDelta() *Delta { return p.s.NewDelta() }

// Apply splices the delta into the session's hypergraph — CSR splice with
// spare capacity, reverse-adjacency patch, cache invalidation — and marks
// the touched neighborhood dirty for the next Repartition. Atomic: on
// error nothing changes. The assignment is not updated until Repartition
// (new vertices read as Unassigned).
func (p *Partitioner) Apply(d *Delta) error { return p.s.Apply(d) }

// Repartition absorbs every delta applied since the last call: new
// vertices are seeded by a greedy min-fanout placement, the warm engine
// state is patched for the structural changes, and direct k-way refinement
// runs from the current assignment, re-evaluating only what the churn
// touched. With Options.MoveCostPenalty, each epoch additionally penalizes
// moves away from its starting assignment to keep churn low.
func (p *Partitioner) Repartition() (*Result, error) { return p.s.Repartition() }

// Graph returns the session's hypergraph (read-only outside Apply).
func (p *Partitioner) Graph() *Hypergraph { return p.s.Graph() }

// Assignment returns a copy of the current assignment.
func (p *Partitioner) Assignment() Assignment { return p.s.Assignment() }

// Result returns the most recent partitioning result (the initial one, or
// the last Repartition).
func (p *Partitioner) Result() *Result { return p.s.Result() }

// Partition runs SHP on g: recursive bisection by default, direct k-way
// with Options.Direct. It is a thin wrapper over a single-use Partitioner
// session.
//
// Deprecated: new code should hold a Partitioner (NewPartitioner), which
// subsumes this entry point and additionally supports dynamic graphs via
// Apply/Repartition. Partition remains as a one-shot convenience.
func Partition(g *Hypergraph, opts Options) (*Result, error) {
	return core.Partition(g, opts)
}

// MultiDimOptions configures multi-dimensionally balanced partitioning.
type MultiDimOptions = core.MultiDimOptions

// MultiDimResult reports the merged partition and per-dimension loads.
type MultiDimResult = core.MultiDimResult

// PartitionMultiDim implements Section 5's heuristic for balance across
// several load dimensions: over-partition into C*K buckets, then merge to K
// while balancing every dimension. The fine partition inside it runs
// through a single-use Partitioner session.
//
// Deprecated: for graphs that keep evolving, partition through a
// Partitioner session (NewPartitioner) and apply the merge step on top;
// PartitionMultiDim remains as a one-shot convenience.
func PartitionMultiDim(g *Hypergraph, opts MultiDimOptions) (*MultiDimResult, error) {
	return core.PartitionMultiDim(g, opts)
}

// DistributedOptions configures PartitionDistributed.
type DistributedOptions = distshp.Options

// DistributedResult is a finished distributed partitioning with engine
// statistics (per-superstep message and byte counts).
type DistributedResult = distshp.Result

// DistributedIterRecord is one refinement iteration's entry in a
// DistributedResult's History: level, moved count, and the fanout the
// master maintained from per-query live-entry diffs. Iteration j occupies
// supersteps 4j..4j+3 of Stats.PerSuperstep.
type DistributedIterRecord = distshp.IterRecord

// PartitionDistributed runs SHP-2 through the vertex-centric BSP engine
// (the paper's Giraph implementation, Figure 3): four supersteps per
// refinement iteration, master-side histogram pairing, and incremental
// neighbor-data maintenance. K must be a power of two.
//
// Deprecated: for in-process dynamic workloads use a Partitioner session
// (NewPartitioner), which keeps warm state between repartitions; the BSP
// engine remains the one-shot reference for the paper's distributed mode
// and has no session equivalent yet.
func PartitionDistributed(g *Hypergraph, opts DistributedOptions) (*DistributedResult, error) {
	return distshp.Partition(g, opts)
}

// Transport is a message-plane backend for the distributed engine; see
// MemoryTransport and TCPTransport.
type Transport = pregel.Transport

// MemoryTransport returns the in-process message backend (the default):
// messages move between workers as Go values, bytes are accounted from
// registered codec sizes.
func MemoryTransport() Transport { return pregel.MemoryTransport() }

// TCPTransport returns the loopback TCP backend: each engine worker gets a
// socket endpoint and message batches are framed, serialized, and shipped
// over real connections, so byte counts are measured on the wire. Partitions
// are identical to the in-process backend for the same seed.
func TCPTransport() Transport { return pregel.TCPTransport() }

// Checkpointer persists superstep snapshots for the distributed engine's
// worker-failure recovery; see DistributedOptions.Checkpointer.
type Checkpointer = pregel.Checkpointer

// NewMemoryCheckpointer returns an in-process checkpoint store (the default
// for distributed runs): snapshots survive engine restarts within the
// process but not process death.
func NewMemoryCheckpointer() Checkpointer { return pregel.NewMemoryCheckpointer() }

// NewDiskCheckpointer returns a checkpoint store persisting snapshots as
// atomically-written files under dir, so a rerun over the same directory
// can resume after process death.
func NewDiskCheckpointer(dir string) (Checkpointer, error) {
	return pregel.NewDiskCheckpointer(dir)
}

// FaultPlan schedules deterministic fault injection for FaultyTransport:
// a one-shot worker kill at a chosen superstep, periodic transient frame
// drops, and exchange delays.
type FaultPlan = pregel.FaultPlan

// FaultyTransport wraps a transport with deterministic fault injection, for
// exercising the checkpoint/recovery plane: an injected worker kill rolls
// the run back to the latest snapshot and replays, and the recovered result
// is byte-identical to an undisturbed run.
func FaultyTransport(inner Transport, plan FaultPlan) Transport {
	return pregel.FaultyTransport(inner, plan)
}

// WorkerFailure is the typed error a distributed run surfaces when a worker
// becomes unreachable and recovery is disabled or exhausted.
type WorkerFailure = pregel.WorkerFailure

// MultilevelConfig configures the baseline multilevel partitioner.
type MultilevelConfig = multilevel.Config

// ErrOutOfMemory is returned by PartitionMultilevel when the configured
// memory budget is exceeded (the Section 2 failure mode of the multilevel
// tools).
var ErrOutOfMemory = multilevel.ErrOutOfMemory

// PartitionMultilevel runs the clique-net multilevel baseline
// (coarsen / FM-refine / recurse), the stand-in for hMetis, PaToH,
// Mondriaan, Parkway, and Zoltan in comparisons.
func PartitionMultilevel(g *Hypergraph, cfg MultilevelConfig) (Assignment, error) {
	return multilevel.Partition(g, cfg)
}

// Fanout returns the average query fanout, the paper's headline metric.
func Fanout(g *Hypergraph, a Assignment, k int) float64 {
	return partition.Fanout(g, a, k)
}

// PFanout returns the average probabilistic fanout with probability p.
func PFanout(g *Hypergraph, a Assignment, p float64) float64 {
	return partition.PFanout(g, a, p)
}

// CliqueNetCut returns the weighted edge-cut of the clique-net graph
// (Lemma 2) without materializing it.
func CliqueNetCut(g *Hypergraph, a Assignment) float64 {
	return partition.CliqueNetCut(g, a)
}

// SOED returns the sum of external degrees.
func SOED(g *Hypergraph, a Assignment, k int) float64 {
	return partition.SOED(g, a, k)
}

// Imbalance returns max bucket size over the ideal n/k, minus one.
func Imbalance(a Assignment, k int) float64 {
	return partition.Imbalance(a, k)
}

// Metrics bundles every objective for reporting.
type Metrics = partition.Metrics

// Measure computes all metrics in one call.
func Measure(g *Hypergraph, a Assignment, k int, p float64) Metrics {
	return partition.Measure(g, a, k, p)
}

// RandomAssignment assigns each of n vertices a uniform random bucket, the
// paper's initialization and the natural baseline.
func RandomAssignment(n, k int, seed uint64) Assignment {
	return partition.Random(n, k, seed)
}

// GeneratePowerLawBipartite synthesizes a bipartite hypergraph with
// power-law degrees (web/social graph shape).
func GeneratePowerLawBipartite(numQ, numD int, numEdges int64, exponent float64, seed uint64) (*Hypergraph, error) {
	return gen.PowerLawBipartite(numQ, numD, numEdges, exponent, seed)
}

// GenerateHubPowerLawBipartite synthesizes a power-law bipartite hypergraph
// with a pinned fraction of maximum-degree hub queries (each spanning
// exactly hubDegree distinct data vertices; hubDegree <= 0 defaults to
// numD/4) — the shape on which hub-frontier refinement costs show up.
func GenerateHubPowerLawBipartite(numQ, numD int, numEdges int64, exponent, hubFraction float64, hubDegree int, seed uint64) (*Hypergraph, error) {
	return gen.HubPowerLawBipartite(numQ, numD, numEdges, exponent, hubFraction, hubDegree, seed)
}

// GenerateSocialEgoNets synthesizes a community-structured friendship graph
// and returns its ego-net hypergraph (the storage-sharding workload).
func GenerateSocialEgoNets(n, avgDeg, communitySize int, intraProb float64, seed uint64) (*Hypergraph, error) {
	return gen.SocialEgoNets(n, avgDeg, communitySize, intraProb, seed)
}

// GeneratePlantedPartition synthesizes a hypergraph with k planted
// communities of perGroup vertices each.
func GeneratePlantedPartition(k, perGroup, numQ, qdeg int, purity float64, seed uint64) (*Hypergraph, error) {
	return gen.PlantedPartition(k, perGroup, numQ, qdeg, purity, seed)
}

// ChurnGenerator produces an endless stream of chained Delta batches over a
// living hypergraph: each batch replaces a churn-fraction of the live
// hyperedges with perturbed successors and occasionally introduces new data
// vertices — the dynamic-graph workload of the paper's production setting.
type ChurnGenerator = gen.Churn

// NewChurn prepares a churn generator over g with the given per-batch churn
// fraction. Call Next for each batch and apply it (Partitioner.Apply or
// Hypergraph.ApplyDelta) before requesting the following one.
func NewChurn(g *Hypergraph, churnFraction float64, seed uint64) (*ChurnGenerator, error) {
	return gen.NewChurn(g, churnFraction, seed)
}

// LatencyModel generates per-request latencies for the sharding simulator
// (lognormal body, straggler tail, mean 1).
type LatencyModel = sharding.LatencyModel

// Cluster is a sharded key-value store simulation.
type Cluster = sharding.Cluster

// ShardingMeasurement aggregates a replayed multi-get workload.
type ShardingMeasurement = sharding.Measurement

// NewCluster wraps an assignment of records to servers together with a
// latency model.
func NewCluster(servers int, a Assignment, m LatencyModel) (*Cluster, error) {
	return sharding.NewCluster(servers, a, m)
}

// LatencyVsFanout samples multi-get latency percentiles per fanout
// (Figure 4a's experiment).
func LatencyVsFanout(m LatencyModel, maxFanout, samples int, seed uint64) []sharding.PercentileRow {
	return sharding.LatencyVsFanout(m, maxFanout, samples, seed)
}

// MigrationFrozen is the MigrationBudget value that freezes the assignment
// outright: a repartition epoch may place new vertices but moves no
// existing record.
const MigrationFrozen = core.MigrationFrozen

// AssignService is the assignment serving plane: a Partitioner embedded in
// a service that answers assign(vertex) lookups lock-free from an immutable
// epoch snapshot while the graph churns behind it. Repartitions build the
// next epoch off to the side and publish it with one atomic pointer swap,
// so lookups never block and never see a torn assignment. See
// internal/serve for the full API (epoch metadata, churn driving, HTTP
// handlers) and Options.MigrationBudget for bounding the per-epoch record
// moves a swap may cause.
type AssignService = serve.Service

// AssignServiceOptions configures an AssignService.
type AssignServiceOptions = serve.Options

// AssignEpoch is one immutable routing-table generation of an
// AssignService.
type AssignEpoch = serve.Epoch

// AssignStats is a snapshot of AssignService counters: lookup volume,
// sampled p50/p99 latency, swap and migration totals.
type AssignStats = serve.Stats

// NewAssignService builds a serving plane over g and publishes its first
// epoch before returning, so Assign is immediately answerable.
func NewAssignService(g *Hypergraph, opts AssignServiceOptions) (*AssignService, error) {
	return serve.New(g, opts)
}
