// Quickstart: build the paper's Figure 1 hypergraph, partition it into two
// buckets, and inspect the objectives.
package main

import (
	"fmt"
	"log"

	"shp"
)

func main() {
	// Figure 1: three queries over six data records. Query {0,1,5} needs
	// records 0, 1, 5; and so on. Partitioning the records across two
	// servers determines every query's fanout.
	g, err := shp.FromHyperedges(6, [][]int32{
		{0, 1, 5},
		{0, 1, 2, 3},
		{3, 4, 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypergraph: %d queries, %d data vertices, %d incidences\n",
		g.NumQueries(), g.NumData(), g.NumEdges())

	res, err := shp.Partition(g, shp.Options{K: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment: %v\n", res.Assignment)

	m := shp.Measure(g, res.Assignment, 2, 0.5)
	fmt.Printf("average fanout:   %.4f (paper's hand partition: 1.6667)\n", m.Fanout)
	fmt.Printf("p-fanout (p=0.5): %.4f\n", m.PFanout)
	fmt.Printf("imbalance:        %.4f\n", m.Imbalance)

	// Compare with a random sharding.
	random := shp.RandomAssignment(g.NumData(), 2, 7)
	fmt.Printf("random sharding fanout: %.4f\n", shp.Fanout(g, random, 2))
}
