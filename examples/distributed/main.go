// Distributed partitioning: run SHP-2 through the vertex-centric BSP engine
// (the paper's Giraph implementation, Figure 3) and inspect the engine's
// message accounting — the communication-complexity story of Section 3.3.
package main

import (
	"fmt"
	"log"

	"shp"
)

func main() {
	g, err := shp.GeneratePowerLawBipartite(8000, 14000, 80000, 2.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	g = shp.PruneTrivialQueries(g, 2)
	fmt.Printf("hypergraph: |Q|=%d |D|=%d |E|=%d\n", g.NumQueries(), g.NumData(), g.NumEdges())

	for _, workers := range []int{1, 4} {
		res, err := shp.PartitionDistributed(g, shp.DistributedOptions{
			K:       16,
			Workers: workers,
			Seed:    2,
		})
		if err != nil {
			log.Fatal(err)
		}
		f := shp.Fanout(g, res.Assignment, 16)
		fmt.Printf("\n%d machine(s): fanout %.3f, %d supersteps, %v wall, %v total\n",
			workers, f, res.Stats.Supersteps, res.Elapsed.Round(1e6), res.TotalTime.Round(1e6))
		fmt.Printf("  messages: %d total, %d crossed machines (%.0f%%), %.1f MB\n",
			res.Stats.TotalMessages, res.Stats.RemoteMessages,
			100*float64(res.Stats.RemoteMessages)/float64(res.Stats.TotalMessages+1),
			float64(res.Stats.TotalBytes)/(1<<20))
		perIter := float64(res.Stats.TotalMessages) / float64(res.Iterations+1)
		fmt.Printf("  per refinement iteration: %.0f messages (|E| = %d — O(|E|) as Section 3.3 predicts)\n",
			perIter, g.NumEdges())
	}
}
