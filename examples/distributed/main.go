// Distributed partitioning: run SHP-2 through the vertex-centric BSP engine
// (the paper's Giraph implementation, Figure 3) and inspect the engine's
// message accounting — the communication-complexity story of Section 3.3.
//
// The run is repeated on both message-plane backends: the in-process
// exchange and the loopback TCP transport, where batches are framed and
// serialized through typed codecs so the byte counts are measured on real
// sockets rather than estimated. An ablation disables sender-side combining
// to show how much cross-worker traffic the combiner removes, and a final
// run kills a worker mid-protocol to demonstrate checkpoint/rollback
// recovery landing on the exact same partition.
package main

import (
	"fmt"
	"log"

	"shp"
)

func main() {
	g, err := shp.GeneratePowerLawBipartite(8000, 14000, 80000, 2.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	g = shp.PruneTrivialQueries(g, 2)
	fmt.Printf("hypergraph: |Q|=%d |D|=%d |E|=%d\n", g.NumQueries(), g.NumData(), g.NumEdges())

	run := func(label string, opts shp.DistributedOptions) *shp.DistributedResult {
		res, err := shp.PartitionDistributed(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		f := shp.Fanout(g, res.Assignment, opts.K)
		fmt.Printf("\n%s: fanout %.3f, %d supersteps, %v wall, %v total\n",
			label, f, res.Stats.Supersteps, res.Elapsed.Round(1e6), res.TotalTime.Round(1e6))
		fmt.Printf("  messages: %d total, %d crossed machines (%.0f%%), %.2f MB\n",
			res.Stats.TotalMessages, res.Stats.RemoteMessages,
			100*float64(res.Stats.RemoteMessages)/float64(res.Stats.TotalMessages+1),
			float64(res.Stats.TotalBytes)/(1<<20))
		perIter := float64(res.Stats.TotalMessages) / float64(res.Iterations+1)
		fmt.Printf("  per refinement iteration: %.0f messages (|E| = %d — O(|E|) as Section 3.3 predicts)\n",
			perIter, g.NumEdges())
		return res
	}

	for _, workers := range []int{1, 4} {
		run(fmt.Sprintf("%d machine(s), in-process plane", workers),
			shp.DistributedOptions{K: 16, Workers: workers, Seed: 2})
	}

	// Same seed over real sockets: identical partition, measured wire bytes.
	mem := run("4 machines, in-process plane", shp.DistributedOptions{K: 16, Workers: 4, Seed: 7})
	tcp := run("4 machines, TCP loopback plane", shp.DistributedOptions{
		K: 16, Workers: 4, Seed: 7, Transport: shp.TCPTransport(),
	})
	same := len(mem.Assignment) == len(tcp.Assignment)
	for i := range mem.Assignment {
		same = same && mem.Assignment[i] == tcp.Assignment[i]
	}
	fmt.Printf("\ntransport equivalence: identical partitions on both planes = %v\n", same)
	fmt.Printf("  TCP bytes are measured from encoded frames that crossed sockets (local\n")
	fmt.Printf("  traffic ships for free); the in-process number is the codec-computed\n")
	fmt.Printf("  size of all traffic, local messages included.\n")

	// Ablation: sender-side combining is what keeps the cross-worker
	// message count down.
	uncombined := run("4 machines, combining disabled", shp.DistributedOptions{
		K: 16, Workers: 4, Seed: 7, DisableCombining: true,
	})
	saved := uncombined.Stats.RemoteMessages - tcp.Stats.RemoteMessages
	fmt.Printf("\nsender-side combining saved %d cross-worker messages (%.0f%% of the uncombined plane)\n",
		saved, 100*float64(saved)/float64(uncombined.Stats.RemoteMessages+1))

	// Fault tolerance: kill a worker mid-protocol and let the engine roll
	// back to the last superstep checkpoint and replay. The deterministic
	// protocol makes the recovered run land on the exact same partition.
	recovered := run("4 machines, worker 2 killed at superstep 9", shp.DistributedOptions{
		K: 16, Workers: 4, Seed: 7,
		Transport: shp.FaultyTransport(shp.MemoryTransport(), shp.FaultPlan{
			KillWorker: 2, KillStep: 9,
		}),
		CheckpointEvery: 8,
	})
	same = len(mem.Assignment) == len(recovered.Assignment)
	for i := range mem.Assignment {
		same = same && mem.Assignment[i] == recovered.Assignment[i]
	}
	fmt.Printf("\nfault tolerance: %d recovery (rolled back and replayed), %.1f KB of checkpoints,\n",
		recovered.Stats.Recoveries, float64(recovered.Stats.CheckpointBytes)/(1<<10))
	fmt.Printf("  partition identical to the undisturbed run = %v\n", same)
}
