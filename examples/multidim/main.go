// Multi-dimensional balance (Section 5, Discussion item ii): servers must
// balance CPU, memory, and storage simultaneously. Strictly balancing every
// dimension during refinement harms quality, so SHP over-partitions into
// c·k loosely balanced buckets and merges them into k, balancing all
// dimensions in the merge.
package main

import (
	"fmt"
	"log"

	"shp"
	"shp/internal/rng"
)

func main() {
	g, err := shp.GenerateSocialEgoNets(15000, 12, 100, 0.85, 1)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumData()

	// Three anti-correlated per-record load dimensions: records that are
	// CPU-hot tend to be memory-light and vice versa — the hard case for
	// naive balancing.
	r := rng.New(7)
	cpu := make([]float64, n)
	mem := make([]float64, n)
	disk := make([]float64, n)
	for v := 0; v < n; v++ {
		c := 1 + 9*r.Float64()
		cpu[v] = c
		mem[v] = 11 - c + r.Float64()
		disk[v] = 1 + r.ExpFloat64()
	}

	const k = 8
	res, err := shp.PartitionMultiDim(g, shp.MultiDimOptions{
		K:     k,
		C:     4, // over-partition into 32 buckets, merge to 8
		Loads: [][]float64{cpu, mem, disk},
		Base:  shp.Options{Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partitioned %d records into %d buckets via %d fine buckets\n\n",
		n, k, res.FineResult.K)
	names := []string{"cpu", "mem", "disk"}
	for d, name := range names {
		fmt.Printf("%-5s imbalance %.3f   per-bucket loads:", name, res.Imbalance[d])
		for _, l := range res.BucketLoads[d] {
			fmt.Printf(" %7.0f", l)
		}
		fmt.Println()
	}
	fmt.Printf("\nfanout: %.3f (random sharding: %.3f)\n",
		shp.Fanout(g, res.Assignment, k),
		shp.Fanout(g, shp.RandomAssignment(n, k, 3), k))
}
