// Incremental updates (Section 5, Discussion item i): production shardings
// must evolve without mass data movement. SHP warm-starts from the previous
// assignment and a move-cost penalty keeps churn low while still absorbing
// graph changes.
package main

import (
	"fmt"
	"log"

	"shp"
)

func main() {
	const users = 20000
	g, err := shp.GenerateSocialEgoNets(users, 12, 100, 0.85, 1)
	if err != nil {
		log.Fatal(err)
	}
	const k = 16
	base, err := shp.Partition(g, shp.Options{K: k, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0: fanout %.3f\n", shp.Fanout(g, base.Assignment, k))

	// The graph evolves: a new cohort of users joins and some friendships
	// change (regenerate with a different seed — ~keeps communities, moves
	// individual edges).
	g2, err := shp.GenerateSocialEgoNets(users, 12, 100, 0.85, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: graph changed; fanout of day-0 sharding on new graph: %.3f\n",
		shp.Fanout(g2, base.Assignment, k))

	churn := func(a, b shp.Assignment) float64 {
		moved := 0
		for i := range a {
			if a[i] != b[i] {
				moved++
			}
		}
		return 100 * float64(moved) / float64(len(a))
	}

	// From-scratch repartitioning finds a good sharding but moves almost
	// every record — unacceptable churn in production.
	scratch, err := shp.Partition(g2, shp.Options{K: k, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-partition from scratch:   fanout %.3f, %5.1f%% of records moved\n",
		shp.Fanout(g2, scratch.Assignment, k), churn(base.Assignment, scratch.Assignment))

	for _, penalty := range []float64{0, 0.05, 0.5} {
		res, err := shp.Partition(g2, shp.Options{
			K: k, Seed: 3,
			Initial:         base.Assignment,
			MoveCostPenalty: penalty,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm start, penalty %.2f:     fanout %.3f, %5.1f%% of records moved\n",
			penalty, shp.Fanout(g2, res.Assignment, k), churn(base.Assignment, res.Assignment))
	}
	fmt.Println("\nwarm starts absorb graph changes with a fraction of the data movement;")
	fmt.Println("the penalty further trades residual fanout for even lower churn.")
}
