// The assignment serving plane: a partitioner embedded in a service that
// answers assign(vertex) lookups at full speed while the graph churns and
// refreshed epochs swap in atomically behind the lookups.
//
// This is the deployment shape the paper's Section 5 implies but leaves
// offline: in production the sharding is consumed by a serving fleet, every
// record move is a data copy, and updates must land without a lookup ever
// blocking or seeing a half-written table. Here a MigrationBudget caps the
// per-epoch copy traffic exactly, and reader goroutines hammer Assign
// throughout the swaps to demonstrate that lookups stay consistent (the
// bucket always comes from exactly one epoch) and uninterrupted.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"shp"
)

func main() {
	const users = 20000
	const k = 16
	const budget = 400

	g, err := shp.GenerateSocialEgoNets(users, 12, 100, 0.85, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The serving plane: epoch 0 is published before New returns.
	svc, err := shp.NewAssignService(g, shp.AssignServiceOptions{
		Core: shp.Options{K: k, Direct: true, Seed: 2, MigrationBudget: budget},
	})
	if err != nil {
		log.Fatal(err)
	}
	ep := svc.Current()
	fmt.Printf("epoch 0: %d records over %d shards, fanout %.3f\n",
		len(ep.Assignment), k, ep.Fanout)

	// Lookup traffic: hammer Assign from goroutines for the whole run.
	// Lookups are lock-free reads of the current epoch snapshot; the churn
	// epochs below never block them.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			v := int32(worker)
			for !stop.Load() {
				b, _, err := svc.Assign(v % int32(users))
				if err != nil || b < 0 || b >= k {
					log.Fatalf("lookup broke during swap: bucket %d, err %v", b, err)
				}
				v += 7
			}
		}(w)
	}

	// Churn epochs: each cycle generates a delta batch, absorbs it, refines
	// under the migration budget, and swaps the new epoch in atomically.
	churn, err := svc.NewChurn(0.02, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ep, err := svc.ChurnEpoch(churn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d records, moved %d (budget %d), fanout %.3f\n",
			ep.ID, len(ep.Assignment), ep.Moved, budget, ep.Fanout)
		if ep.Migrated > budget {
			log.Fatalf("budget violated: %d > %d", ep.Migrated, budget)
		}
	}

	stop.Store(true)
	wg.Wait()
	st := svc.Stats()
	fmt.Printf("served %d lookups across %d epoch swaps, %d records migrated total\n",
		st.Lookups, st.Swaps, st.MovedTotal)
}
