// Storage sharding: the paper's motivating application (Sections 1 and
// 4.2.1). A social network's user records are spread across 40 servers;
// rendering a profile page multi-gets a user's friends. SHP-based sharding
// collocates friends, cutting both fanout and tail latency versus random
// sharding.
package main

import (
	"fmt"
	"log"

	"shp"
)

func main() {
	// A 20k-user friendship graph with community structure; each user's
	// hyperedge spans its ego-net (self + friends).
	g, err := shp.GenerateSocialEgoNets(20000, 15, 120, 0.85, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social workload: %d users, %d incidences\n", g.NumData(), g.NumEdges())

	const servers = 40
	res, err := shp.Partition(g, shp.Options{K: servers, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned onto %d servers in %v\n\n", servers, res.Elapsed)

	model := shp.LatencyModel{} // lognormal body + straggler tail, mean 1t
	for _, cfg := range []struct {
		name       string
		assignment shp.Assignment
	}{
		{"random sharding", shp.RandomAssignment(g.NumData(), servers, 3)},
		{"social (SHP) sharding", res.Assignment},
	} {
		cluster, err := shp.NewCluster(servers, cfg.assignment, model)
		if err != nil {
			log.Fatal(err)
		}
		m := cluster.ReplayQueries(g, 4, 1)
		fmt.Printf("%-22s avg fanout %5.1f   avg latency %.2ft\n",
			cfg.name, m.AvgFanout, m.AvgLat)
	}
	fmt.Println("\nlatency is the max over parallel per-server requests (units of the")
	fmt.Println("mean single-request latency t) — fewer servers, fewer stragglers.")
}
