// Dynamic hypergraphs through the Partitioner session API: the paper's
// production setting re-runs SHP continuously as the social graph churns,
// warm-starting from the previous assignment (Section 5). A session owns
// the mutable graph and the warm refinement state, so each batch of changes
// costs O(churn) to absorb instead of a from-scratch partition.
package main

import (
	"fmt"
	"log"
	"time"

	"shp"
)

func main() {
	const users = 20000
	const k = 16
	g, err := shp.GenerateSocialEgoNets(users, 12, 100, 0.85, 1)
	if err != nil {
		log.Fatal(err)
	}
	g = shp.PruneTrivialQueries(g, 2)

	// One session for the lifetime of the deployment.
	start := time.Now()
	p, err := shp.NewPartitioner(g, shp.Options{K: k, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	fmt.Printf("day 0: cold partition of |E|=%d in %v, fanout %.3f\n",
		g.NumEdges(), coldTime.Round(time.Millisecond), shp.Fanout(g, p.Assignment(), k))

	// Every "day", ~1% of the ego-nets churn (friendships change, new users
	// join) and the sharding is refreshed in place.
	churn, err := shp.NewChurn(g, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	prev := p.Assignment()
	for day := 1; day <= 5; day++ {
		delta, err := churn.Next()
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Apply(delta); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := p.Repartition()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		moved := len(res.Assignment) - len(prev)
		for v := range prev {
			if prev[v] != res.Assignment[v] {
				moved++
			}
		}
		fmt.Printf("day %d: %4d delta ops absorbed in %8v (%5.1fx faster than cold), "+
			"%4d records moved, fanout %.3f\n",
			day, len(delta.Ops), elapsed.Round(time.Millisecond),
			coldTime.Seconds()/elapsed.Seconds(), moved,
			shp.Fanout(p.Graph(), res.Assignment, k))
		prev = res.Assignment
	}

	fmt.Println("\nthe session absorbs daily churn for a fraction of a cold partition's")
	fmt.Println("cost and data movement; shp.Options.MoveCostPenalty trims churn further")
	fmt.Println("(see examples/incremental for the penalty trade-off).")
}
