// Command shp partitions a hypergraph file and writes the bucket
// assignment, reporting the objectives before and after.
//
// Usage:
//
//	shp -in graph.hgr -k 32 [-format hmetis|edgelist] [-out assignment.txt]
//	    [-p 0.5] [-eps 0.05] [-direct] [-objective pfanout|fanout|cliquenet]
//	    [-iters N] [-seed S] [-workers W] [-warm previous.txt] [-penalty X]
//	    [-no-incremental] [-v] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	    [-distributed [-transport memory|tcp] [-no-combine]
//	     [-checkpoint-dir dir] [-checkpoint-every N] [-fault kill:worker=2,step=9]]
//	    [-stream trace.txt -prune=false]
//
// -no-incremental applies to both engines: in-process it ablates the
// incremental refinement engine; with -distributed it ablates the
// dirty-query delta message plane (full per-iteration gain rebroadcasts).
//
// Every run reports end-to-end throughput as edges/s (|E| divided by the
// partitioning wall-clock), so performance work is measurable outside
// `go test -bench`. -v adds a per-iteration table of the work counters
// (frontier size, gain work, scan work) next to the moved counts, making
// the active-frontier engine's sublinear idle iterations — and the
// -no-incremental ablation's pinned |D| frontier — visible from the CLI.
// -cpuprofile and -memprofile write pprof files covering the partitioning
// call; -no-incremental ablates the incremental refinement engine (full
// neighbor-data rebuilds every iteration).
//
// With -stream the run becomes a dynamic-graph replay: after the initial
// partition, delta batches from the trace file (addq/rmq/addd/setw/commit
// lines; see hgen -trace to generate one) are applied to a live Partitioner
// session, and each batch reports its repartition wall time, the number of
// records that moved shard, and the fanout trajectory. Traces address
// vertices of the graph as loaded, so streaming requires -prune=false.
//
// With -distributed the partition runs on the vertex-centric BSP engine
// (the paper's Giraph mode); -transport selects the message plane between
// the in-process exchange and a loopback TCP backend with real framing and
// serialization, and the engine's traffic accounting is reported.
// Distributed runs checkpoint every -checkpoint-every supersteps (default
// 64) so a worker failure rolls back and replays instead of failing the
// job; -checkpoint-dir persists snapshots to disk, and -fault injects
// deterministic failures (a worker kill, frame drops, or exchange delays)
// to exercise the recovery path — with -v the resilience counters
// (recoveries, retried frames, checkpoint bytes) are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"shp"
	"shp/internal/par"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath    = flag.String("in", "", "input hypergraph file (required)")
		format    = flag.String("format", "hmetis", "input format: hmetis or edgelist")
		outPath   = flag.String("out", "", "output assignment file (default stdout)")
		k         = flag.Int("k", 2, "number of buckets")
		p         = flag.Float64("p", 0.5, "fanout probability for p-fanout")
		eps       = flag.Float64("eps", 0.05, "allowed imbalance")
		direct    = flag.Bool("direct", false, "use direct k-way refinement (SHP-k) instead of recursive bisection (SHP-2)")
		objective = flag.String("objective", "pfanout", "objective: pfanout, fanout, or cliquenet")
		iters     = flag.Int("iters", 0, "max refinement iterations (0 = paper defaults)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallelism (0 = all cores)")
		warmPath  = flag.String("warm", "", "warm-start assignment file (incremental update)")
		penalty   = flag.Float64("penalty", 0, "move-cost penalty for incremental updates")
		prune     = flag.Bool("prune", true, "remove degree-<2 queries before partitioning")
		noInc     = flag.Bool("no-incremental", false, "disable the incremental refinement engine (ablation)")
		verbose   = flag.Bool("v", false, "print per-iteration frontier sizes and work counters")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the partitioning to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after partitioning to this file")
		dist      = flag.Bool("distributed", false, "run on the vertex-centric BSP engine (SHP-2 only)")
		transport = flag.String("transport", "memory", "distributed message plane: memory or tcp")
		noCombine = flag.Bool("no-combine", false, "disable sender-side message combining (distributed only)")
		stream    = flag.String("stream", "", "delta trace file to replay through a live partitioner session")
		ckptDir   = flag.String("checkpoint-dir", "", "persist distributed checkpoints to this directory (default: in-memory store)")
		ckptEvery = flag.Int("checkpoint-every", 0, "distributed checkpoint cadence in supersteps (0 = default 64)")
		fault     = flag.String("fault", "", "inject faults into the distributed transport, e.g. kill:worker=2,step=9 or drop:every=7")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	if *stream != "" && *prune {
		return fmt.Errorf("-stream traces address the unpruned graph; pass -prune=false")
	}
	if *stream != "" && *dist {
		return fmt.Errorf("-stream requires the in-process session engine, not -distributed")
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *shp.Hypergraph
	switch *format {
	case "hmetis":
		g, err = shp.ReadHMetis(f)
	case "edgelist":
		g, err = shp.ReadEdgeList(f)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if *prune {
		g = shp.PruneTrivialQueries(g, 2)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: |Q|=%d |D|=%d |E|=%d\n", *inPath, g.NumQueries(), g.NumData(), g.NumEdges())

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		mf, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shp: memprofile:", err)
			return
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(os.Stderr, "shp: memprofile:", err)
		}
	}()

	if *dist {
		return runDistributed(g, *k, *p, *eps, *iters, *seed, *workers, *transport, *noCombine, *noInc,
			*ckptDir, *ckptEvery, *fault, *verbose, *outPath)
	}
	if *ckptDir != "" || *ckptEvery != 0 || *fault != "" {
		return fmt.Errorf("-checkpoint-dir, -checkpoint-every, and -fault require -distributed")
	}

	opts := shp.Options{
		K: *k, P: *p, Epsilon: *eps, Direct: *direct,
		MaxIters: *iters, Seed: *seed, Parallelism: *workers,
		MoveCostPenalty: *penalty, DisableIncremental: *noInc,
	}
	switch *objective {
	case "pfanout":
		opts.Objective = shp.ObjPFanout
	case "fanout":
		opts.Objective = shp.ObjFanout
	case "cliquenet":
		opts.Objective = shp.ObjCliqueNet
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	if *warmPath != "" {
		wf, err := os.Open(*warmPath)
		if err != nil {
			return err
		}
		warm, err := shp.ReadAssignment(wf)
		wf.Close()
		if err != nil {
			return err
		}
		opts.Initial = warm
	}

	if *stream != "" {
		return runStream(g, opts, *stream, *outPath)
	}

	before := shp.Measure(g, shp.RandomAssignment(g.NumData(), *k, *seed), *k, *p)
	res, err := shp.Partition(g, opts)
	if err != nil {
		return err
	}
	after := shp.Measure(g, res.Assignment, *k, *p)
	fmt.Fprintf(os.Stderr, "partitioned into k=%d in %v (%d iterations)\n", *k, res.Elapsed, res.Iterations)
	fmt.Fprintf(os.Stderr, "throughput: %.4g edges/s on %d workers (|E| / wall-clock; assignment identical for any -workers)\n",
		float64(g.NumEdges())/res.Elapsed.Seconds(), par.Workers(*workers))
	fmt.Fprintf(os.Stderr, "fanout:    random %.4f -> shp %.4f (%.1f%%)\n",
		before.Fanout, after.Fanout, 100*(after.Fanout/before.Fanout-1))
	fmt.Fprintf(os.Stderr, "p-fanout:  random %.4f -> shp %.4f\n", before.PFanout, after.PFanout)
	fmt.Fprintf(os.Stderr, "imbalance: %.4f (eps %.2f)\n", after.Imbalance, *eps)
	if *verbose {
		printWork(res)
	}

	out := os.Stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return shp.WriteAssignment(out, res.Assignment)
}

// printWork dumps the per-iteration work counters next to the pinned
// history: the frontier the gain pass visited and the gain/scan work units
// spent. On the incremental engine these shrink with the moving frontier;
// with -no-incremental the frontier is pinned at |D| every iteration, which
// makes the ablation's cost visible directly from the CLI.
func printWork(res *shp.Result) {
	if len(res.Work) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%5s %5s %5s %10s %12s %12s %10s\n",
		"level", "task", "iter", "frontier", "gain-work", "scan-work", "moved")
	for i, w := range res.Work {
		var moved int64
		if i < len(res.History) {
			moved = res.History[i].Moved
		}
		fmt.Fprintf(os.Stderr, "%5d %5d %5d %10d %12d %12d %10d\n",
			w.Level, w.Task, w.Iter, w.Frontier, w.GainWork, w.ScanWork, moved)
	}
}

// parseFaultPlan parses a -fault spec into a deterministic injection plan.
// Forms: "kill:worker=W,step=S" kills worker W's exchange at superstep S
// (S >= 1); "drop:every=N" drops the first attempt of every N-th exchange
// (a transient fault, absorbed by retries); "delay:every=N,ms=M" sleeps M
// milliseconds before every N-th exchange.
func parseFaultPlan(spec string) (shp.FaultPlan, error) {
	var plan shp.FaultPlan
	kind, rest, _ := strings.Cut(spec, ":")
	fields := map[string]int{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return plan, fmt.Errorf("bad -fault field %q (want key=value)", kv)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return plan, fmt.Errorf("bad -fault value %q: %v", kv, err)
			}
			fields[key] = n
		}
	}
	switch kind {
	case "kill":
		plan.KillWorker = fields["worker"]
		plan.KillStep = fields["step"]
		if plan.KillStep < 1 {
			return plan, fmt.Errorf("-fault kill needs step>=1 (got %q)", spec)
		}
	case "drop":
		plan.DropEvery = fields["every"]
		if plan.DropEvery < 1 {
			return plan, fmt.Errorf("-fault drop needs every>=1 (got %q)", spec)
		}
	case "delay":
		plan.DelayEvery = fields["every"]
		plan.Delay = time.Duration(fields["ms"]) * time.Millisecond
		if plan.DelayEvery < 1 {
			return plan, fmt.Errorf("-fault delay needs every>=1 (got %q)", spec)
		}
	default:
		return plan, fmt.Errorf("unknown -fault kind %q (want kill, drop, or delay)", kind)
	}
	return plan, nil
}

// runStream replays a delta trace through a live Partitioner session: one
// initial partition, then per batch an Apply + Repartition with wall time,
// shard churn (records that moved), and the fanout trajectory reported.
func runStream(g *shp.Hypergraph, opts shp.Options, tracePath, outPath string) error {
	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	deltas, err := shp.ReadDeltaTrace(tf, g.NumQueries(), g.NumData())
	tf.Close()
	if err != nil {
		return err
	}
	p, err := shp.NewPartitioner(g, opts)
	if err != nil {
		return err
	}
	prev := p.Assignment()
	init := p.Result()
	fmt.Fprintf(os.Stderr, "initial partition: k=%d in %v, fanout %.4f\n",
		opts.K, init.Elapsed, shp.Fanout(g, prev, opts.K))
	fmt.Fprintf(os.Stderr, "replaying %d delta batches from %s\n", len(deltas), tracePath)
	fmt.Fprintf(os.Stderr, "%5s %10s %12s %10s %9s %9s %10s\n",
		"batch", "ops", "repartition", "moved", "|E|", "fanout", "edges/s")

	var totalRepart time.Duration
	for i, d := range deltas {
		if err := p.Apply(d); err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		start := time.Now()
		res, err := p.Repartition()
		if err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		elapsed := time.Since(start)
		totalRepart += elapsed
		moved := len(res.Assignment) - len(prev) // new records count as moved
		for v := range prev {
			if prev[v] != res.Assignment[v] {
				moved++
			}
		}
		fanout := shp.Fanout(p.Graph(), res.Assignment, opts.K)
		fmt.Fprintf(os.Stderr, "%5d %10d %12v %10d %9d %9.4f %10.4g\n",
			i, len(d.Ops), elapsed.Round(time.Microsecond), moved,
			p.Graph().NumEdges(), fanout,
			float64(p.Graph().NumEdges())/elapsed.Seconds())
		prev = res.Assignment
	}
	fmt.Fprintf(os.Stderr, "replayed %d batches in %v total repartition time (vs %v initial partition)\n",
		len(deltas), totalRepart.Round(time.Microsecond), init.Elapsed.Round(time.Microsecond))

	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return shp.WriteAssignment(out, prev)
}

// runDistributed partitions on the BSP engine and reports its measured
// message-plane traffic alongside the quality numbers: totals, per-protocol-
// phase byte attribution, and the moved-vertices trajectory that drives the
// dirty-query delta plane (-no-incremental ablates it back to full
// per-iteration gain rebroadcasts).
func runDistributed(g *shp.Hypergraph, k int, p, eps float64, iters int, seed uint64,
	workers int, transport string, noCombine, noInc bool,
	ckptDir string, ckptEvery int, fault string, verbose bool, outPath string) error {

	opts := shp.DistributedOptions{
		K: k, P: p, Epsilon: eps, ItersPerLevel: iters,
		Seed: seed, Workers: workers, DisableCombining: noCombine,
		DisableIncremental: noInc, CheckpointEvery: ckptEvery,
	}
	if ckptDir != "" {
		cp, err := shp.NewDiskCheckpointer(ckptDir)
		if err != nil {
			return err
		}
		opts.Checkpointer = cp
	}
	switch transport {
	case "memory":
		opts.Transport = shp.MemoryTransport()
	case "tcp":
		opts.Transport = shp.TCPTransport()
	default:
		return fmt.Errorf("unknown transport %q (want memory or tcp)", transport)
	}
	if fault != "" {
		plan, err := parseFaultPlan(fault)
		if err != nil {
			return err
		}
		opts.Transport = shp.FaultyTransport(opts.Transport, plan)
	}
	before := shp.Measure(g, shp.RandomAssignment(g.NumData(), k, seed), k, p)
	res, err := shp.PartitionDistributed(g, opts)
	if err != nil {
		return err
	}
	after := shp.Measure(g, res.Assignment, k, p)
	fmt.Fprintf(os.Stderr, "distributed (%s transport): k=%d in %v, %d supersteps, %d iterations\n",
		transport, k, res.Elapsed, res.Stats.Supersteps, res.Iterations)
	fmt.Fprintf(os.Stderr, "throughput: %.4g edges/s (|E| / wall-clock)\n",
		float64(g.NumEdges())/res.Elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "fanout:    random %.4f -> shp %.4f\n", before.Fanout, after.Fanout)
	fmt.Fprintf(os.Stderr, "messages:  %d total, %d crossed workers, %.2f MB on the %s plane\n",
		res.Stats.TotalMessages, res.Stats.RemoteMessages,
		float64(res.Stats.TotalBytes)/(1<<20), transport)
	phases := res.Stats.PhaseTotals(4)
	fmt.Fprintf(os.Stderr, "phase KB:  bucket-updates %.1f, gain/delta %.1f, proposals %.1f, moves %.1f\n",
		float64(phases[0].BytesSent)/(1<<10), float64(phases[1].BytesSent)/(1<<10),
		float64(phases[2].BytesSent)/(1<<10), float64(phases[3].BytesSent)/(1<<10))
	var totalMoved int64
	for _, rec := range res.History {
		totalMoved += rec.Moved
	}
	late, lateBytes := res.LateGainBytes(0.01)
	fmt.Fprintf(os.Stderr, "moved:     %d vertices across %d iterations; %d late iterations (<=1%% moved) shipped %.1f KB on the gain/delta superstep\n",
		totalMoved, len(res.History), late, float64(lateBytes)/(1<<10))
	lateP, lateAgg := res.LateProposalBytes(0.01)
	fmt.Fprintf(os.Stderr, "proposals: %.1f KB aggregator traffic total; %d late iterations shipped %.1f KB of retract/assert deltas\n",
		float64(res.Stats.AggBytes)/(1<<10), lateP, float64(lateAgg)/(1<<10))
	if verbose {
		fmt.Fprintf(os.Stderr, "resilience: %d recoveries, %d retried frames, %.1f KB of checkpoint snapshots\n",
			res.Stats.Recoveries, res.Stats.RetriedFrames, float64(res.Stats.CheckpointBytes)/(1<<10))
	}

	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return shp.WriteAssignment(out, res.Assignment)
}
