// Command shp partitions a hypergraph file and writes the bucket
// assignment, reporting the objectives before and after.
//
// Usage:
//
//	shp -in graph.hgr -k 32 [-format hmetis|edgelist] [-out assignment.txt]
//	    [-p 0.5] [-eps 0.05] [-direct] [-objective pfanout|fanout|cliquenet]
//	    [-iters N] [-seed S] [-workers W] [-warm previous.txt] [-penalty X]
//	    [-no-incremental] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	    [-distributed [-transport memory|tcp] [-no-combine]]
//
// Every run reports end-to-end throughput as edges/s (|E| divided by the
// partitioning wall-clock), so performance work is measurable outside
// `go test -bench`. -cpuprofile and -memprofile write pprof files covering
// the partitioning call; -no-incremental ablates the incremental
// refinement engine (full neighbor-data rebuilds every iteration).
//
// With -distributed the partition runs on the vertex-centric BSP engine
// (the paper's Giraph mode); -transport selects the message plane between
// the in-process exchange and a loopback TCP backend with real framing and
// serialization, and the engine's traffic accounting is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"shp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath    = flag.String("in", "", "input hypergraph file (required)")
		format    = flag.String("format", "hmetis", "input format: hmetis or edgelist")
		outPath   = flag.String("out", "", "output assignment file (default stdout)")
		k         = flag.Int("k", 2, "number of buckets")
		p         = flag.Float64("p", 0.5, "fanout probability for p-fanout")
		eps       = flag.Float64("eps", 0.05, "allowed imbalance")
		direct    = flag.Bool("direct", false, "use direct k-way refinement (SHP-k) instead of recursive bisection (SHP-2)")
		objective = flag.String("objective", "pfanout", "objective: pfanout, fanout, or cliquenet")
		iters     = flag.Int("iters", 0, "max refinement iterations (0 = paper defaults)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallelism (0 = all cores)")
		warmPath  = flag.String("warm", "", "warm-start assignment file (incremental update)")
		penalty   = flag.Float64("penalty", 0, "move-cost penalty for incremental updates")
		prune     = flag.Bool("prune", true, "remove degree-<2 queries before partitioning")
		noInc     = flag.Bool("no-incremental", false, "disable the incremental refinement engine (ablation)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the partitioning to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after partitioning to this file")
		dist      = flag.Bool("distributed", false, "run on the vertex-centric BSP engine (SHP-2 only)")
		transport = flag.String("transport", "memory", "distributed message plane: memory or tcp")
		noCombine = flag.Bool("no-combine", false, "disable sender-side message combining (distributed only)")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *shp.Hypergraph
	switch *format {
	case "hmetis":
		g, err = shp.ReadHMetis(f)
	case "edgelist":
		g, err = shp.ReadEdgeList(f)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if *prune {
		g = shp.PruneTrivialQueries(g, 2)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: |Q|=%d |D|=%d |E|=%d\n", *inPath, g.NumQueries(), g.NumData(), g.NumEdges())

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		mf, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shp: memprofile:", err)
			return
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(os.Stderr, "shp: memprofile:", err)
		}
	}()

	if *dist {
		return runDistributed(g, *k, *p, *eps, *iters, *seed, *workers, *transport, *noCombine, *outPath)
	}

	opts := shp.Options{
		K: *k, P: *p, Epsilon: *eps, Direct: *direct,
		MaxIters: *iters, Seed: *seed, Parallelism: *workers,
		MoveCostPenalty: *penalty, DisableIncremental: *noInc,
	}
	switch *objective {
	case "pfanout":
		opts.Objective = shp.ObjPFanout
	case "fanout":
		opts.Objective = shp.ObjFanout
	case "cliquenet":
		opts.Objective = shp.ObjCliqueNet
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	if *warmPath != "" {
		wf, err := os.Open(*warmPath)
		if err != nil {
			return err
		}
		warm, err := shp.ReadAssignment(wf)
		wf.Close()
		if err != nil {
			return err
		}
		opts.Initial = warm
	}

	before := shp.Measure(g, shp.RandomAssignment(g.NumData(), *k, *seed), *k, *p)
	res, err := shp.Partition(g, opts)
	if err != nil {
		return err
	}
	after := shp.Measure(g, res.Assignment, *k, *p)
	fmt.Fprintf(os.Stderr, "partitioned into k=%d in %v (%d iterations)\n", *k, res.Elapsed, res.Iterations)
	fmt.Fprintf(os.Stderr, "throughput: %.4g edges/s (|E| / wall-clock)\n",
		float64(g.NumEdges())/res.Elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "fanout:    random %.4f -> shp %.4f (%.1f%%)\n",
		before.Fanout, after.Fanout, 100*(after.Fanout/before.Fanout-1))
	fmt.Fprintf(os.Stderr, "p-fanout:  random %.4f -> shp %.4f\n", before.PFanout, after.PFanout)
	fmt.Fprintf(os.Stderr, "imbalance: %.4f (eps %.2f)\n", after.Imbalance, *eps)

	out := os.Stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return shp.WriteAssignment(out, res.Assignment)
}

// runDistributed partitions on the BSP engine and reports its measured
// message-plane traffic alongside the quality numbers.
func runDistributed(g *shp.Hypergraph, k int, p, eps float64, iters int, seed uint64,
	workers int, transport string, noCombine bool, outPath string) error {

	opts := shp.DistributedOptions{
		K: k, P: p, Epsilon: eps, ItersPerLevel: iters,
		Seed: seed, Workers: workers, DisableCombining: noCombine,
	}
	switch transport {
	case "memory":
		opts.Transport = shp.MemoryTransport()
	case "tcp":
		opts.Transport = shp.TCPTransport()
	default:
		return fmt.Errorf("unknown transport %q (want memory or tcp)", transport)
	}
	before := shp.Measure(g, shp.RandomAssignment(g.NumData(), k, seed), k, p)
	res, err := shp.PartitionDistributed(g, opts)
	if err != nil {
		return err
	}
	after := shp.Measure(g, res.Assignment, k, p)
	fmt.Fprintf(os.Stderr, "distributed (%s transport): k=%d in %v, %d supersteps, %d iterations\n",
		transport, k, res.Elapsed, res.Stats.Supersteps, res.Iterations)
	fmt.Fprintf(os.Stderr, "throughput: %.4g edges/s (|E| / wall-clock)\n",
		float64(g.NumEdges())/res.Elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "fanout:    random %.4f -> shp %.4f\n", before.Fanout, after.Fanout)
	fmt.Fprintf(os.Stderr, "messages:  %d total, %d crossed workers, %.2f MB on the %s plane\n",
		res.Stats.TotalMessages, res.Stats.RemoteMessages,
		float64(res.Stats.TotalBytes)/(1<<20), transport)

	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return shp.WriteAssignment(out, res.Assignment)
}
