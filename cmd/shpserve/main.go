// Command shpserve runs the assignment serving plane: an HTTP service that
// answers assign(vertex) lookups from an immutable epoch snapshot while the
// embedded partitioner absorbs churn and swaps refreshed epochs in
// atomically.
//
// Usage:
//
//	shpserve -in graph.hgr -k 32 [-format hmetis|edgelist] [-addr :7090]
//	    [-seed S] [-budget N] [-penalty X] [-eps E] [-iters N]
//	    [-churn 0.02 -churn-every 5s] [-sim] [-v]
//	shpserve -users 20000 -k 32 ...       (synthetic social workload)
//
// Endpoints:
//
//	GET  /assign?v=ID     bucket serving vertex ID + the epoch id
//	GET  /epoch           current epoch metadata
//	GET  /stats           lookup counters, sampled p50/p99, migration totals
//	POST /delta           apply a delta trace (addq/rmq/addd/setw/commit
//	                      lines); ?repartition=1 swaps immediately
//	POST /repartition     run one refinement epoch and swap
//
// -budget caps the records an epoch may move off the previous assignment
// (the serving fleet's migration traffic); -1 freezes the assignment so
// only new vertices are placed. -churn/-churn-every runs a synthetic churn
// loop in the background, so a bare `shpserve -users 50000 -k 32 -churn
// 0.02 -churn-every 2s` demonstrates the full serve-while-repartitioning
// cycle with no external driver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shpserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":7090", "HTTP listen address")
		inPath     = flag.String("in", "", "input hypergraph file (omit for -users synthetic workload)")
		format     = flag.String("format", "hmetis", "input format: hmetis or edgelist")
		users      = flag.Int("users", 20000, "synthetic social-graph size when -in is not given")
		k          = flag.Int("k", 16, "number of buckets (servers)")
		seed       = flag.Uint64("seed", 1, "random seed")
		budget     = flag.Int64("budget", 0, "migration budget per epoch: 0 unlimited, >0 max records moved, -1 frozen")
		penalty    = flag.Float64("penalty", 0, "soft move-cost penalty (objective units per move)")
		eps        = flag.Float64("eps", 0.05, "allowed imbalance")
		iters      = flag.Int("iters", 0, "max refinement iterations per epoch (0 = default)")
		churn      = flag.Float64("churn", 0, "background churn fraction per batch (0 = no background churn)")
		churnEvery = flag.Duration("churn-every", 5*time.Second, "background churn interval")
		sim        = flag.Bool("sim", false, "replay the workload through the sharding latency simulator on every epoch")
		verbose    = flag.Bool("v", false, "log every epoch swap")
	)
	flag.Parse()

	g, err := loadGraph(*inPath, *format, *users, *seed)
	if err != nil {
		return err
	}
	log.Printf("graph: %d queries, %d data vertices, %d edges", g.NumQueries(), g.NumData(), g.NumEdges())

	opts := shp.AssignServiceOptions{
		Core: shp.Options{
			K:               *k,
			Direct:          true, // epoch budgets bind the direct refiner
			Seed:            *seed,
			Epsilon:         *eps,
			MaxIters:        *iters,
			MigrationBudget: *budget,
			MoveCostPenalty: *penalty,
		},
	}
	if *sim {
		opts.Model = &shp.LatencyModel{}
		opts.ReplaySeed = *seed
		opts.ReplayMinCount = 1
	}

	start := time.Now()
	svc, err := shp.NewAssignService(g, opts)
	if err != nil {
		return err
	}
	ep := svc.Current()
	log.Printf("epoch 0 in %v: %d records over %d buckets, fanout %.3f",
		time.Since(start).Round(time.Millisecond), len(ep.Assignment), ep.K, ep.Fanout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	churnDone := make(chan error, 1)
	if *churn > 0 {
		c, err := svc.NewChurn(*churn, *seed+1)
		if err != nil {
			return err
		}
		go func() {
			churnDone <- svc.RunChurn(ctx, c, *churnEvery, func(ep *shp.AssignEpoch) {
				if *verbose {
					logEpoch(ep)
				}
			})
		}()
	} else {
		close(churnDone)
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-serveDone:
		stop()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-churnDone; err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	st := svc.Stats()
	log.Printf("served %d lookups over %d epochs (p50 %dns, p99 %dns, %d records migrated)",
		st.Lookups, st.Swaps, st.P50, st.P99, st.MovedTotal)
	return nil
}

func loadGraph(inPath, format string, users int, seed uint64) (*shp.Hypergraph, error) {
	if inPath == "" {
		return shp.GenerateSocialEgoNets(users, 12, 100, 0.85, seed)
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "hmetis":
		return shp.ReadHMetis(f)
	case "edgelist":
		return shp.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func logEpoch(ep *shp.AssignEpoch) {
	line := fmt.Sprintf("epoch %d: %d records, moved %d, fanout %.3f",
		ep.ID, len(ep.Assignment), ep.Moved, ep.Fanout)
	if ep.Migrated > 0 {
		line += fmt.Sprintf(" (engine accounting %d)", ep.Migrated)
	}
	if ep.Replay != nil {
		line += fmt.Sprintf(", simulated avg latency %.3ft at fanout %.2f",
			ep.Replay.AvgLat, ep.Replay.AvgFanout)
	}
	log.Print(line)
}
