// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table2 [-scale 1.0] [-quick] [-seed 1] [-workers 4]
//	experiments -run all
//
// Each experiment prints the same rows/series the paper reports; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shp/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		id      = flag.String("run", "", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 = defaults)")
		quick   = flag.Bool("quick", false, "shrink dataset lists and sweeps")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 4, "parallelism / simulated machine count")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *id == "" && !*list {
			return fmt.Errorf("missing -run")
		}
		return nil
	}

	cfg := experiments.Config{Scale: *scale, Quick: *quick, Seed: *seed, Workers: *workers}
	if *id == "all" {
		for _, e := range experiments.Registry {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Description)
			start := time.Now()
			if err := e.Run(os.Stdout, cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Printf("\n(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	e, ok := experiments.ByID(*id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try -list)", *id)
	}
	return e.Run(os.Stdout, cfg)
}
