// Command shplint runs the repo's determinism-invariant static-analysis
// suite (internal/lint) over the module:
//
//	go run ./cmd/shplint ./...
//
// It prints one line per finding and exits nonzero if any diagnostic
// remains, so CI can gate on a clean tree. See the internal/lint package
// documentation (and the README's "Static analysis & determinism contract"
// section) for the analyzers and the //shp: annotation conventions.
package main

import (
	"flag"
	"fmt"
	"os"

	"shp/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list the analyzers before running")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shplint [-v] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s", a.Name, a.Doc)
			if a.Suppress != "" {
				fmt.Fprintf(os.Stderr, " [//shp:%s(reason)]", a.Suppress)
			}
			fmt.Fprintln(os.Stderr)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *verbose {
		for _, a := range lint.Analyzers() {
			fmt.Printf("analyzer %-16s %s\n", a.Name, a.Doc)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
