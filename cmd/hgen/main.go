// Command hgen generates synthetic hypergraphs in the formats the shp tool
// reads: power-law bipartite graphs (web/social shape), ego-net social
// graphs (the storage-sharding workload), and planted-partition instances.
//
// Usage:
//
//	hgen -kind powerlaw -q 10000 -d 20000 -e 100000 -out g.hgr
//	hgen -kind hub -q 10000 -d 20000 -e 100000 -hubfrac 0.005 -hubdeg 5000 -out g.hgr
//	hgen -kind social -n 10000 -deg 20 -community 100 -out g.hgr
//	hgen -kind planted -k 8 -pergroup 1000 -q 20000 -deg 6 -out g.hgr
//
// With -trace, hgen additionally emits a churn trace next to the graph — a
// chained sequence of delta batches (hyperedges replaced by perturbed
// successors, new vertices joining) for `shp -stream`:
//
//	hgen -kind social -n 10000 -out g.hgr -trace g.trace -trace-batches 20 -trace-churn 0.01
//	shp -in g.hgr -k 32 -prune=false -stream g.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"shp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind      = flag.String("kind", "powerlaw", "generator: powerlaw, hub, social, or planted")
		outPath   = flag.String("out", "", "output file (default stdout)")
		format    = flag.String("format", "hmetis", "output format: hmetis or edgelist")
		seed      = flag.Uint64("seed", 1, "random seed")
		q         = flag.Int("q", 10000, "powerlaw/planted: number of queries (hyperedges)")
		d         = flag.Int("d", 20000, "powerlaw: number of data vertices")
		e         = flag.Int64("e", 100000, "powerlaw: target incidence count")
		exponent  = flag.Float64("exponent", 2.1, "powerlaw/hub: degree exponent")
		hubFrac   = flag.Float64("hubfrac", 0.005, "hub: fraction of queries pinned at the hub degree")
		hubDeg    = flag.Int("hubdeg", 0, "hub: exact degree of hub queries (0 = numD/4)")
		n         = flag.Int("n", 10000, "social: number of users")
		deg       = flag.Int("deg", 20, "social: average friend count; planted: hyperedge size")
		community = flag.Int("community", 100, "social: community size")
		intra     = flag.Float64("intra", 0.85, "social: intra-community edge fraction")
		k         = flag.Int("k", 8, "planted: number of groups")
		perGroup  = flag.Int("pergroup", 1000, "planted: vertices per group")
		purity    = flag.Float64("purity", 0.9, "planted: within-group query probability")
		tracePath = flag.String("trace", "", "also write a churn delta trace for shp -stream")
		traceN    = flag.Int("trace-batches", 20, "trace: number of delta batches")
		traceFrac = flag.Float64("trace-churn", 0.01, "trace: fraction of live hyperedges churned per batch")
	)
	flag.Parse()

	var g *shp.Hypergraph
	var err error
	switch *kind {
	case "powerlaw":
		g, err = shp.GeneratePowerLawBipartite(*q, *d, *e, *exponent, *seed)
	case "hub":
		g, err = shp.GenerateHubPowerLawBipartite(*q, *d, *e, *exponent, *hubFrac, *hubDeg, *seed)
	case "social":
		g, err = shp.GenerateSocialEgoNets(*n, *deg, *community, *intra, *seed)
	case "planted":
		g, err = shp.GeneratePlantedPartition(*k, *perGroup, *q, *deg, *purity, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: |Q|=%d |D|=%d |E|=%d\n", *kind, g.NumQueries(), g.NumData(), g.NumEdges())

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "hmetis":
		err = shp.WriteHMetis(out, g)
	case "edgelist":
		err = shp.WriteEdgeList(out, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil || *tracePath == "" {
		return err
	}

	// The churn generator mutates the graph as it chains batches; the graph
	// file above captures the pre-trace state the replay starts from.
	churn, err := shp.NewChurn(g, *traceFrac, *seed+1)
	if err != nil {
		return err
	}
	deltas, err := churn.Batches(*traceN)
	if err != nil {
		return err
	}
	tf, err := os.Create(*tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := shp.WriteDeltaTrace(tf, deltas); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d delta batches (%.2g%% churn each) to %s\n",
		*traceN, *traceFrac*100, *tracePath)
	return nil
}
